// Command rockbench regenerates every table and figure of the Rockhopper
// paper's evaluation (Section 6 plus the motivating Figures 1–3) on the
// simulated Spark substrate and prints the same rows/series the paper
// reports.
//
// Usage:
//
//	rockbench [-fig all|1|2|3|8|9|10|11|12|13|14|15|16|embedding|arch|applevel|ablations|guardrail|baselines|catalog|aqe]
//	          [-scale quick|paper] [-seed N] [-workers N]
//	rockbench -json [-short] [-out BENCH.json]
//	rockbench -compare OLD.json NEW.json [-tol 0.25]
//
// -scale quick (the default) runs reduced budgets suitable for a laptop
// minute; -scale paper uses the paper's run counts and horizons. -workers
// bounds the per-experiment worker pool (0 = NumCPU); results are
// byte-identical for any value.
//
// -json runs the pinned performance suite (internal/perfsuite) instead of
// the figures and writes a schema-versioned report; commit it as
// BENCH_<n>.json to extend the repository's performance trajectory. -short
// trims the slowest entries for CI. -compare diffs two reports and exits
// nonzero when a machine-independent metric (allocations per op, derived
// speedup ratios) regresses beyond -tol; raw ns/op differences are printed
// as advisory notes only. Both modes also enforce the absolute floors
// (incremental-GP speedup, zero-alloc event codec) from DESIGN.md §9.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/experiments"
	"github.com/rockhopper-db/rockhopper/internal/parallel"
	"github.com/rockhopper-db/rockhopper/internal/perfsuite"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (comma-separated list or 'all')")
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = per-figure default)")
	workers := flag.Int("workers", 0, "experiment worker pool size (0 = NumCPU; output identical for any value; values above NumCPU oversubscribe the cores and inflate the printed speedup estimate)")
	jsonMode := flag.Bool("json", false, "run the pinned performance suite and emit a JSON report instead of figures")
	short := flag.Bool("short", false, "with -json: trim the slowest suite entries (skips the n=1024 GP sizes)")
	out := flag.String("out", "", "with -json: write the report here instead of stdout")
	compare := flag.Bool("compare", false, "compare two reports: rockbench -compare OLD.json NEW.json")
	tol := flag.Float64("tol", 0.25, "with -compare: fractional noise tolerance for derived ratios")
	flag.Parse()

	if *jsonMode {
		os.Exit(runJSON(*short, *out))
	}
	if *compare {
		os.Exit(runCompare(flag.Args(), *tol))
	}

	paper := false
	switch *scale {
	case "quick":
	case "paper":
		paper = true
	default:
		fmt.Fprintf(os.Stderr, "rockbench: unknown scale %q (want quick or paper)\n", *scale)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		ran++
		//rocklint:allow wallclock -- benchmark wall-clock reporting; figure output is produced by seeded RNGs only
		start := time.Now()
		before := parallel.GlobalCounters()
		fn()
		//rocklint:allow wallclock -- benchmark wall-clock reporting; figure output is produced by seeded RNGs only
		wall := time.Since(start)
		delta := parallel.GlobalCounters().Sub(before)
		if delta.Finished > 0 {
			fmt.Printf("[%s done in %v; %d parallel runs, ~%.2fx estimated speedup over sequential]\n\n",
				name, wall.Round(time.Millisecond), delta.Finished,
				float64(delta.Busy)/float64(wall))
		} else {
			fmt.Printf("[%s done in %v]\n\n", name, wall.Round(time.Millisecond))
		}
	}

	// Budget helpers: quick scale divides the paper budgets.
	div := func(paperVal, quickVal int) int {
		if paper {
			return paperVal
		}
		return quickVal
	}

	run("1", func() {
		rows, parts := experiments.Fig01PartitionSweep(experiments.Fig01Params{Seed: *seed})
		experiments.PrintFig01(os.Stdout, rows, parts)
	})
	run("2", func() {
		experiments.Fig02NoisyBaselines(experiments.Fig02Params{
			Runs: div(200, 30), Iters: div(500, 120), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("3", func() {
		experiments.Fig03ManualVsBO(experiments.Fig03Params{
			Users: div(50, 25), Iters: 40, Seed: *seed,
		}).Print(os.Stdout)
	})
	run("8", func() {
		experiments.PrintFig08(os.Stdout, experiments.Fig08SyntheticFunction(experiments.Fig08Params{Seed: *seed}))
	})
	run("9", func() {
		experiments.Fig09SurrogateLevels(experiments.Fig09Params{
			Runs: div(100, 20), Iters: div(500, 150), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("10", func() {
		experiments.Fig10CLSVR(experiments.Fig10Params{
			Runs: div(100, 20), Iters: div(500, 150), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("11", func() {
		experiments.Fig11DynamicWorkloads(experiments.Fig11Params{
			Runs: div(100, 15), Iters: div(500, 150), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("12", func() {
		p := experiments.Fig12Params{Iters: 30, Seed: *seed}
		if paper {
			p.TargetQueries = []int{1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59}
			p.FlightRuns = 80
		}
		experiments.Fig12TransferLearning(p).Print(os.Stdout)
	})
	run("13", func() {
		p := experiments.Fig13Params{Iters: div(120, 60), Seed: *seed}
		if paper {
			p.Queries = []int{1, 2, 3, 5, 7, 11, 13, 17, 19, 23}
		}
		experiments.Fig13CLvsBO(p).Print(os.Stdout)
	})
	run("embedding", func() {
		p := experiments.EmbeddingAblationParams{Iters: div(30, 20), Seed: *seed}
		if !paper {
			p.TargetQueries = []int{1, 2, 3, 5, 7, 11, 13, 17}
			p.FlightRuns = 25
		}
		experiments.EmbeddingAblation(p).Print(os.Stdout)
	})
	run("14", func() {
		experiments.Fig14TPCH(experiments.Fig14Params{
			Iters: div(80, 40), FlightRuns: div(40, 20), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("15", func() {
		experiments.FleetStudy(experiments.FleetParams{
			Signatures: div(60, 25), Iters: div(120, 50), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("16", func() {
		// Production signatures ran "more than 30 iterations"; 45 keeps the
		// conservative guardrail's post-30 observation window faithful.
		experiments.FleetStudy(experiments.FleetParams{
			Signatures: div(416, 60), Iters: 45, Guardrail: true, Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("arch", func() {
		experiments.ArchRoundTrip(experiments.ArchParams{Iters: div(60, 30), Seed: *seed}).Print(os.Stdout)
	})
	run("applevel", func() {
		experiments.AppLevelJoint(experiments.AppLevelParams{Seed: *seed}).Print(os.Stdout)
	})
	run("aqe", func() {
		experiments.AQEStudy(experiments.AQEParams{Iters: div(80, 40), Seed: *seed}).Print(os.Stdout)
	})
	run("catalog", func() {
		experiments.CatalogStudy(experiments.CatalogParams{
			Queries: div(16, 6), Iters: div(80, 40), Seed: *seed,
		}).Print(os.Stdout)
	})
	run("baselines", func() {
		experiments.Baselines(experiments.BaselinesParams{
			Runs: div(20, 8), Iters: div(150, 80), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("guardrail", func() {
		experiments.GuardrailAblation(experiments.GuardrailAblationParams{
			Signatures: div(60, 20), Iters: div(90, 50), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})
	run("ablations", func() {
		experiments.Ablations(experiments.AblationParams{
			Runs: div(50, 10), Iters: div(300, 100), Seed: *seed, Workers: *workers,
		}).Print(os.Stdout)
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rockbench: no experiment matched -fig=%s\n", *fig)
		os.Exit(2)
	}
}

// runJSON executes the pinned performance suite and writes the report.
// Exit status 1 means the suite ran but violated an absolute floor.
func runJSON(short bool, out string) int {
	rep, err := perfsuite.Run(short)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", err)
		return 2
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", err)
		return 2
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", err)
		return 2
	}
	if bad := perfsuite.CheckFloors(rep); len(bad) > 0 {
		for _, v := range bad {
			fmt.Fprintf(os.Stderr, "rockbench: floor violated: %s\n", v)
		}
		return 1
	}
	return 0
}

// runCompare diffs two reports. Exit status 1 means a regression (or a new
// report that violates the absolute floors); 2 means the inputs were bad.
func runCompare(paths []string, tol float64) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "rockbench: -compare needs exactly two report paths: rockbench -compare OLD.json NEW.json")
		return 2
	}
	oldRep, err := loadReport(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", err)
		return 2
	}
	newRep, err := loadReport(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", err)
		return 2
	}
	regs, notes := perfsuite.Compare(oldRep, newRep, tol)
	for _, n := range notes {
		fmt.Printf("note: %s\n", n)
	}
	bad := perfsuite.CheckFloors(newRep)
	for _, v := range bad {
		fmt.Printf("FLOOR: %s\n", v)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Printf("REGRESSION: %s\n", r)
		}
	}
	if len(regs) > 0 || len(bad) > 0 {
		fmt.Printf("rockbench: %d regression(s), %d floor violation(s) (tol %.0f%%)\n", len(regs), len(bad), tol*100)
		return 1
	}
	fmt.Printf("rockbench: no regressions against %s (tol %.0f%%)\n", paths[0], tol*100)
	return 0
}

func loadReport(path string) (*perfsuite.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perfsuite.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != perfsuite.Schema {
		return nil, fmt.Errorf("%s: report schema %d, this rockbench understands %d", path, rep.Schema, perfsuite.Schema)
	}
	if rep.Suite != perfsuite.SuiteName {
		return nil, fmt.Errorf("%s: suite %q, want %q", path, rep.Suite, perfsuite.SuiteName)
	}
	return &rep, nil
}
