// Command rockmon renders the monitoring dashboard (Section 6.3) from a
// JSON-lines trace file — per-signature performance trends, configuration
// traces, and root-cause attribution of performance changes — or scrapes a
// live autotuned /metrics endpoint and renders the telemetry catalogue.
//
// Usage:
//
//	rockmon -traces traces.jsonl [-signature sig] [-space query|full] [-every 5]
//	rockmon -scrape http://localhost:8080/metrics [-require name,name,...]
//	rockmon -trace <16-hex-id> -nodes http://h1:8080,http://h2:8080,http://h3:8080 \
//	        [-require-spans wal_fsync,replication_wait]
//	rockmon -flightrec /var/lib/autotuned/flightrec-slo_breach-001.json
//
// Without -signature, every signature found in the file is reported. With
// -require, the scrape exits non-zero unless every named metric family is
// present — the CI liveness check.
//
// -trace gathers one trace's span fragments from every listed daemon's
// /api/trace ring and renders the assembled cross-node causal tree with
// timings. The exit code is non-zero when the fragments do not form one
// connected tree (orphaned spans mean broken propagation) or when a
// -require-spans name is missing (a name matches exactly or as the prefix
// of a ":"-suffixed span, so replication_wait matches replication_wait:b).
//
// -flightrec replays a flight-recorder snapshot written by a daemon as a
// readable event timeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/flightrec"
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

func main() {
	path := flag.String("traces", "", "JSON-lines trace file")
	signature := flag.String("signature", "", "only report this query signature")
	spaceName := flag.String("space", "query", "configuration space: query or full")
	every := flag.Int("every", 5, "sample the configuration trace every N events")
	scrape := flag.String("scrape", "", "scrape a /metrics URL instead of reading traces")
	require := flag.String("require", "", "comma-separated metric families that must be present in the scrape")
	traceID := flag.String("trace", "", "gather and render one trace ID (16 hex) from the -nodes daemons")
	nodes := flag.String("nodes", "", "comma-separated daemon base URLs to gather trace spans from")
	requireSpans := flag.String("require-spans", "",
		"comma-separated span names that must appear in the assembled trace (exact or name:* prefix match)")
	flightrecPath := flag.String("flightrec", "", "render a flight-recorder snapshot file as an event timeline")
	flag.Parse()

	if *flightrecPath != "" {
		os.Exit(renderFlightrec(*flightrecPath))
	}
	if *traceID != "" {
		os.Exit(gatherTrace(*traceID, *nodes, *requireSpans))
	}
	if *scrape != "" {
		os.Exit(scrapeMetrics(*scrape, *require))
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "rockmon: one of -traces or -scrape is required")
		os.Exit(2)
	}
	var space *sparksim.Space
	switch *spaceName {
	case "query":
		space = sparksim.QuerySpace()
	case "full":
		space = sparksim.FullSpace()
	default:
		fmt.Fprintf(os.Stderr, "rockmon: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	traces, err := flighting.ReadTraces(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		os.Exit(1)
	}

	dashboards := map[string]*monitor.Dashboard{}
	var order []string
	counts := map[string]int{}
	for _, tr := range traces {
		if *signature != "" && tr.QueryID != *signature {
			continue
		}
		if len(tr.Config) != space.Dim() {
			fmt.Fprintf(os.Stderr, "rockmon: trace for %s has %d config values, space has %d — wrong -space?\n",
				tr.QueryID, len(tr.Config), space.Dim())
			os.Exit(1)
		}
		d, ok := dashboards[tr.QueryID]
		if !ok {
			d = monitor.New(space, tr.QueryID)
			dashboards[tr.QueryID] = d
			order = append(order, tr.QueryID)
		}
		d.Record(sparksim.Observation{
			Config:    tr.Config,
			DataSize:  tr.DataSize,
			Time:      tr.TimeMs,
			Iteration: counts[tr.QueryID],
		}, nil)
		counts[tr.QueryID]++
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "rockmon: no matching traces")
		os.Exit(1)
	}
	for _, sig := range order {
		d := dashboards[sig]
		d.Report(os.Stdout)
		fmt.Println()
		d.ConfigTrace(os.Stdout, *every)
		fmt.Println()
	}
}

// gatherTrace pulls one trace's span fragments from every node's /api/trace
// ring, assembles the cross-node causal tree, renders it, and verifies the
// tree is connected (single root, zero orphans) plus any -require-spans
// names. Returns the process exit code.
func gatherTrace(traceID, nodes, requireSpans string) int {
	var bases []string
	for _, b := range strings.Split(nodes, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "rockmon: -trace requires -nodes")
		return 2
	}
	var spans []telemetry.Span
	for _, base := range bases {
		resp, err := http.Get(base + "/api/trace?trace=" + url.QueryEscape(traceID))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rockmon: gather %s: %v\n", base, err)
			return 1
		}
		var part []telemetry.Span
		err = json.NewDecoder(resp.Body).Decode(&part)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rockmon: gather %s: %v\n", base, err)
			return 1
		}
		spans = append(spans, part...)
	}
	tree := telemetry.AssembleTrace(traceID, spans)
	if len(tree.Roots) == 0 && len(tree.Orphans) == 0 {
		fmt.Fprintf(os.Stderr, "rockmon: no spans for trace %s on %d node(s)\n", traceID, len(bases))
		return 1
	}
	telemetry.RenderTree(os.Stdout, tree)

	code := 0
	if !tree.Connected() {
		fmt.Fprintf(os.Stderr, "rockmon: trace %s is not a single connected tree (%d roots, %d orphans)\n",
			traceID, len(tree.Roots), len(tree.Orphans))
		code = 1
	}
	assembled := tree.Spans()
	for _, want := range strings.Split(requireSpans, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, sp := range assembled {
			if sp.Name == want || strings.HasPrefix(sp.Name, want+":") {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "rockmon: required span %q missing from trace %s\n", want, traceID)
			code = 1
		}
	}
	return code
}

// renderFlightrec replays one flight-recorder snapshot as a readable
// timeline. Returns the process exit code.
func renderFlightrec(path string) int {
	snap, err := flightrec.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		return 1
	}
	flightrec.Render(os.Stdout, snap)
	return 0
}

// scrapeMetrics fetches a Prometheus text exposition, renders a compact
// catalogue (family, type, series count, and each series' labels and value),
// and verifies any -require families. Returns the process exit code.
func scrapeMetrics(url, require string) int {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: scrape %s: %v\n", url, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "rockmon: scrape %s: HTTP %d\n", url, resp.StatusCode)
		return 1
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: scrape %s: %v\n", url, err)
		return 1
	}

	for _, f := range fams {
		fmt.Printf("%s (%s) — %d series\n", f.Name, f.Type, len(f.Series))
		for _, s := range f.Series {
			fmt.Printf("  %s%s = %g\n", s.Name, labelSuffix(s.Labels), s.Value)
		}
	}

	code := 0
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := telemetry.Find(fams, name); !ok {
			fmt.Fprintf(os.Stderr, "rockmon: required metric family %s missing from %s\n", name, url)
			code = 1
		}
	}
	return code
}

// labelSuffix renders a parsed label set deterministically ({} elided).
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}
