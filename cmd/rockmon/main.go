// Command rockmon renders the monitoring dashboard (Section 6.3) from a
// JSON-lines trace file — per-signature performance trends, configuration
// traces, and root-cause attribution of performance changes — or scrapes a
// live autotuned /metrics endpoint and renders the telemetry catalogue.
//
// Usage:
//
//	rockmon -traces traces.jsonl [-signature sig] [-space query|full] [-every 5]
//	rockmon -scrape http://localhost:8080/metrics [-require name,name,...]
//
// Without -signature, every signature found in the file is reported. With
// -require, the scrape exits non-zero unless every named metric family is
// present — the CI liveness check.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

func main() {
	path := flag.String("traces", "", "JSON-lines trace file")
	signature := flag.String("signature", "", "only report this query signature")
	spaceName := flag.String("space", "query", "configuration space: query or full")
	every := flag.Int("every", 5, "sample the configuration trace every N events")
	scrape := flag.String("scrape", "", "scrape a /metrics URL instead of reading traces")
	require := flag.String("require", "", "comma-separated metric families that must be present in the scrape")
	flag.Parse()

	if *scrape != "" {
		os.Exit(scrapeMetrics(*scrape, *require))
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "rockmon: one of -traces or -scrape is required")
		os.Exit(2)
	}
	var space *sparksim.Space
	switch *spaceName {
	case "query":
		space = sparksim.QuerySpace()
	case "full":
		space = sparksim.FullSpace()
	default:
		fmt.Fprintf(os.Stderr, "rockmon: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	traces, err := flighting.ReadTraces(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		os.Exit(1)
	}

	dashboards := map[string]*monitor.Dashboard{}
	var order []string
	counts := map[string]int{}
	for _, tr := range traces {
		if *signature != "" && tr.QueryID != *signature {
			continue
		}
		if len(tr.Config) != space.Dim() {
			fmt.Fprintf(os.Stderr, "rockmon: trace for %s has %d config values, space has %d — wrong -space?\n",
				tr.QueryID, len(tr.Config), space.Dim())
			os.Exit(1)
		}
		d, ok := dashboards[tr.QueryID]
		if !ok {
			d = monitor.New(space, tr.QueryID)
			dashboards[tr.QueryID] = d
			order = append(order, tr.QueryID)
		}
		d.Record(sparksim.Observation{
			Config:    tr.Config,
			DataSize:  tr.DataSize,
			Time:      tr.TimeMs,
			Iteration: counts[tr.QueryID],
		}, nil)
		counts[tr.QueryID]++
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "rockmon: no matching traces")
		os.Exit(1)
	}
	for _, sig := range order {
		d := dashboards[sig]
		d.Report(os.Stdout)
		fmt.Println()
		d.ConfigTrace(os.Stdout, *every)
		fmt.Println()
	}
}

// scrapeMetrics fetches a Prometheus text exposition, renders a compact
// catalogue (family, type, series count, and each series' labels and value),
// and verifies any -require families. Returns the process exit code.
func scrapeMetrics(url, require string) int {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: scrape %s: %v\n", url, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "rockmon: scrape %s: HTTP %d\n", url, resp.StatusCode)
		return 1
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: scrape %s: %v\n", url, err)
		return 1
	}

	for _, f := range fams {
		fmt.Printf("%s (%s) — %d series\n", f.Name, f.Type, len(f.Series))
		for _, s := range f.Series {
			fmt.Printf("  %s%s = %g\n", s.Name, labelSuffix(s.Labels), s.Value)
		}
	}

	code := 0
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := telemetry.Find(fams, name); !ok {
			fmt.Fprintf(os.Stderr, "rockmon: required metric family %s missing from %s\n", name, url)
			code = 1
		}
	}
	return code
}

// labelSuffix renders a parsed label set deterministically ({} elided).
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}
