// Command rockmon renders the monitoring dashboard (Section 6.3) from a
// JSON-lines trace file: per-signature performance trends, configuration
// traces, and root-cause attribution of performance changes.
//
// Usage:
//
//	rockmon -traces traces.jsonl [-signature sig] [-space query|full] [-every 5]
//
// Without -signature, every signature found in the file is reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

func main() {
	path := flag.String("traces", "", "JSON-lines trace file (required)")
	signature := flag.String("signature", "", "only report this query signature")
	spaceName := flag.String("space", "query", "configuration space: query or full")
	every := flag.Int("every", 5, "sample the configuration trace every N events")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "rockmon: -traces is required")
		os.Exit(2)
	}
	var space *sparksim.Space
	switch *spaceName {
	case "query":
		space = sparksim.QuerySpace()
	case "full":
		space = sparksim.FullSpace()
	default:
		fmt.Fprintf(os.Stderr, "rockmon: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	traces, err := flighting.ReadTraces(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rockmon: %v\n", err)
		os.Exit(1)
	}

	dashboards := map[string]*monitor.Dashboard{}
	var order []string
	counts := map[string]int{}
	for _, tr := range traces {
		if *signature != "" && tr.QueryID != *signature {
			continue
		}
		if len(tr.Config) != space.Dim() {
			fmt.Fprintf(os.Stderr, "rockmon: trace for %s has %d config values, space has %d — wrong -space?\n",
				tr.QueryID, len(tr.Config), space.Dim())
			os.Exit(1)
		}
		d, ok := dashboards[tr.QueryID]
		if !ok {
			d = monitor.New(space, tr.QueryID)
			dashboards[tr.QueryID] = d
			order = append(order, tr.QueryID)
		}
		d.Record(sparksim.Observation{
			Config:    tr.Config,
			DataSize:  tr.DataSize,
			Time:      tr.TimeMs,
			Iteration: counts[tr.QueryID],
		}, nil)
		counts[tr.QueryID]++
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "rockmon: no matching traces")
		os.Exit(1)
	}
	for _, sig := range order {
		d := dashboards[sig]
		d.Report(os.Stdout)
		fmt.Println()
		d.ConfigTrace(os.Stdout, *every)
		fmt.Println()
	}
}
