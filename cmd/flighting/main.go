// Command flighting runs Rockhopper's offline exploration pipeline (Section
// 4.2): it executes a benchmark suite on the simulated Spark engine under
// randomly generated configurations and writes the execution traces — the
// baseline-model training data — as JSON lines.
//
// Usage:
//
//	flighting [-config file.json] [-suite tpcds|tpch] [-runs N]
//	          [-scale F] [-seed N] [-out traces.jsonl]
//
// With -config, the JSON file supplies the full flighting configuration
// (matching the production pipeline's config-file interface); the other
// flags override individual fields.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func main() {
	configPath := flag.String("config", "", "JSON flighting configuration file")
	suite := flag.String("suite", "tpcds", "benchmark suite: tpcds or tpch")
	runs := flag.Int("runs", 20, "random configurations per query")
	scale := flag.Float64("scale", 1, "benchmark scale factor")
	seed := flag.Uint64("seed", 42, "pipeline seed")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	cfg := flighting.Config{
		Suite:        workloads.Suite(*suite),
		RunsPerQuery: *runs,
		ScaleFactor:  *scale,
		Algorithm:    "random",
		Seed:         *seed,
		Noise:        noise.Low,
	}
	if *configPath != "" {
		blob, err := os.ReadFile(*configPath)
		if err != nil {
			fatal("read config: %v", err)
		}
		if err := json.Unmarshal(blob, &cfg); err != nil {
			fatal("parse config: %v", err)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal("%v", err)
	}

	pipe := flighting.NewPipeline(sparksim.NewEngine(sparksim.QuerySpace()))
	traces, err := pipe.Run(cfg)
	if err != nil {
		fatal("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create output: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := flighting.WriteTraces(w, traces); err != nil {
		fatal("write traces: %v", err)
	}
	fmt.Fprintf(os.Stderr, "flighting: wrote %d traces (%s, %d runs/query, SF %g)\n",
		len(traces), cfg.Suite, cfg.RunsPerQuery, cfg.ScaleFactor)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flighting: "+format+"\n", args...)
	os.Exit(1)
}
