// Command flighting runs Rockhopper's offline exploration pipeline (Section
// 4.2): it executes a benchmark suite on the simulated Spark engine under
// randomly generated configurations and writes the execution traces — the
// baseline-model training data — as JSON lines.
//
// Usage:
//
//	flighting [-config file.json] [-suite tpcds|tpch] [-runs N]
//	          [-scale F] [-seed N] [-out traces.jsonl]
//	          [-backend http://host:8080 -backend-secret s -user u -job j]
//	          [-timeout 10s] [-retries 4] [-fault-rate 0] [-fault-seed 1]
//
// With -config, the JSON file supplies the full flighting configuration
// (matching the production pipeline's config-file interface); the other
// flags override individual fields.
//
// With -backend, traces are additionally shipped to a running autotuned
// daemon through the resilient Autotune Client (per-call deadlines, jittered
// retries, circuit breaker), seeding its baseline models. -fault-rate injects
// transient transport faults into the upload path — a live demonstration
// that retries absorb them without losing traces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/client"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/resilience/faultinject"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func main() {
	configPath := flag.String("config", "", "JSON flighting configuration file")
	suite := flag.String("suite", "tpcds", "benchmark suite: tpcds or tpch")
	runs := flag.Int("runs", 20, "random configurations per query")
	scale := flag.Float64("scale", 1, "benchmark scale factor")
	seed := flag.Uint64("seed", 42, "pipeline seed")
	out := flag.String("out", "", "output path (default stdout)")
	backendURL := flag.String("backend", "", "autotuned base URL; ship traces there after the run")
	backendSecret := flag.String("backend-secret", "", "cluster shared secret for -backend")
	user := flag.String("user", "flighting", "backend user the traces are ingested under")
	job := flag.String("job", "flighting", "backend job ID the traces are ingested under")
	timeout := flag.Duration("timeout", client.DefaultCallTimeout, "per-call deadline for backend uploads")
	retries := flag.Int("retries", 0, "max upload attempts per call (0 = client default)")
	faultRate := flag.Float64("fault-rate", 0, "inject transient transport faults at this rate (demo)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for injected faults")
	flag.Parse()

	cfg := flighting.Config{
		Suite:        workloads.Suite(*suite),
		RunsPerQuery: *runs,
		ScaleFactor:  *scale,
		Algorithm:    "random",
		Seed:         *seed,
		Noise:        noise.Low,
	}
	if *configPath != "" {
		blob, err := os.ReadFile(*configPath)
		if err != nil {
			fatal("read config: %v", err)
		}
		if err := json.Unmarshal(blob, &cfg); err != nil {
			fatal("parse config: %v", err)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal("%v", err)
	}

	pipe := flighting.NewPipeline(sparksim.NewEngine(sparksim.QuerySpace()))
	traces, err := pipe.Run(cfg)
	if err != nil {
		fatal("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create output: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := flighting.WriteTraces(w, traces); err != nil {
		fatal("write traces: %v", err)
	}
	fmt.Fprintf(os.Stderr, "flighting: wrote %d traces (%s, %d runs/query, SF %g)\n",
		len(traces), cfg.Suite, cfg.RunsPerQuery, cfg.ScaleFactor)

	if *backendURL != "" {
		upload(traces, *backendURL, *backendSecret, *user, *job, *timeout, *retries, *faultRate, *faultSeed)
	}
}

// upload ships traces to the Autotune Backend through the resilient client,
// one PostEvents call per query signature.
func upload(traces []flighting.Trace, url, secret, user, job string,
	timeout time.Duration, retries int, faultRate float64, faultSeed uint64) {
	c := client.New(url, secret)
	c.CallTimeout = timeout
	if retries > 0 {
		c.Retry = resilience.Policy{MaxAttempts: retries}
	}
	var ft *faultinject.Transport
	if faultRate > 0 {
		ft = &faultinject.Transport{Plan: &faultinject.Rate{P: faultRate, RNG: stats.NewRNG(faultSeed)}}
		c.HTTP = &http.Client{Transport: ft, Timeout: client.DefaultHTTPTimeout}
	}

	bySig := make(map[string][]flighting.Trace)
	for _, tr := range traces {
		bySig[tr.QueryID] = append(bySig[tr.QueryID], tr)
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)

	shipped := 0
	for _, sig := range sigs {
		if err := c.PostEvents(context.Background(), user, sig, job, bySig[sig]); err != nil {
			fatal("upload %s: %v", sig, err)
		}
		shipped += len(bySig[sig])
	}
	if ft != nil {
		fmt.Fprintf(os.Stderr, "flighting: fault injection: %d/%d transport attempts faulted\n",
			ft.Attempts.Load()-ft.Forwarded.Load(), ft.Attempts.Load())
	}
	fmt.Fprintf(os.Stderr, "flighting: shipped %d traces across %d signatures to %s\n",
		shipped, len(sigs), url)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flighting: "+format+"\n", args...)
	os.Exit(1)
}
