// Command autotuned runs the Autotune Backend (Section 5, Figure 7) as a
// standalone HTTP daemon: token issuing, model storage, event ingestion with
// streaming model retraining, and app-cache generation. Autotune Clients
// (internal/client) point at its address.
//
// Usage:
//
//	autotuned [-addr :8080] [-secret cluster-secret] [-space query|full]
//	          [-retention 720h] [-request-timeout 15s]
//	          [-data-dir /var/lib/autotuned] [-snapshot-interval 10m]
//
// With -data-dir the object store is durable: every mutation is written to
// a CRC-framed write-ahead log before it is acknowledged, the log is
// compacted into an atomic snapshot on the -snapshot-interval cadence, and
// a restart with the same directory replays snapshot + WAL so previously
// trained models survive without retraining. Without it the store is
// memory-only and state dies with the process.
//
// Fleet mode shards the backend across several daemons:
//
//	autotuned -node-id a -peers a=http://h1:8080,b=http://h2:8080,c=http://h3:8080 \
//	          -replicas 2 -data-dir /var/lib/autotuned-a ...
//
// Every node must be started with the same -peers, -replicas, -vnodes, and
// -ring-seed. Each node owns the signatures the consistent-hash ring maps
// to it, bounces misrouted writes with 421 + the owner's address, ships its
// WAL to follower replicas before acknowledging ingest, and heartbeats the
// owners it follows so a dead node's shard fails over to its replica.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests drain, the
// model-updater queue flushes, and the durable store takes a final snapshot.
//
// Liveness and per-endpoint error accounting are exposed unauthenticated at
// GET /api/health; Prometheus text metrics (request latencies, WAL timings,
// updater queue depth, tuner gauges) at GET /metrics; the recent span ring
// at GET /api/trace (sized by -trace-ring, filterable with ?trace=<id>);
// and the flight-recorder event ring at GET /api/flightrec. -slo-latency
// arms the black box: a request over the objective snapshots the recorder
// to -data-dir. -debug-addr opens a separate net/http/pprof listener for
// profiling (off by default).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/fleet"
	"github.com/rockhopper-db/rockhopper/internal/flightrec"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// objectStore is the daemon's storage surface: the backend interface plus
// the retention sweep. Both store implementations satisfy it.
type objectStore interface {
	backend.ObjectStore
	CleanupOlderThan(retention time.Duration) int
}

// shutdownGrace bounds how long in-flight requests may drain on SIGTERM.
const shutdownGrace = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	secret := flag.String("secret", "", "cluster shared secret (required)")
	spaceName := flag.String("space", "query", "configuration space: query (3 params) or full (7 params)")
	retention := flag.Duration("retention", 30*24*time.Hour, "event-file retention window (GDPR cleanup)")
	signingKey := flag.String("signing-key", "", "token signing key (required)")
	reqTimeout := flag.Duration("request-timeout", backend.DefaultRequestTimeout,
		"per-request handler deadline (0 disables)")
	dataDir := flag.String("data-dir", "",
		"durable store directory (snapshot + WAL); empty keeps the store in memory only")
	snapInterval := flag.Duration("snapshot-interval", 10*time.Minute,
		"WAL compaction cadence for -data-dir stores (0 disables time-based compaction)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"per-tenant ingest rate limit in events/second (0 disables rate limiting)")
	tenantBurst := flag.Float64("tenant-burst", 0,
		"per-tenant token-bucket burst capacity (0 means the default)")
	tenantWeights := flag.String("tenant-weights", "",
		"comma-separated tenant=weight pairs for Model Updater fair scheduling, e.g. etl=4,adhoc=1")
	nodeID := flag.String("node-id", "",
		"this node's fleet identity; setting it enables sharded fleet mode (requires -peers and -data-dir)")
	peersFlag := flag.String("peers", "",
		"comma-separated id=url pairs for every fleet node including this one, e.g. a=http://h1:8080,b=http://h2:8080")
	replicas := flag.Int("replicas", 2,
		"fleet replica-set size per shard, including the owner")
	vnodes := flag.Int("vnodes", 0,
		"virtual nodes per fleet member on the hash ring (0 means the default)")
	ringSeed := flag.Uint64("ring-seed", 1,
		"hash-ring placement seed; must match on every node and client")
	heartbeat := flag.Duration("heartbeat", 5*time.Second,
		"fleet peer heartbeat interval (0 disables failure detection)")
	traceRing := flag.Int("trace-ring", backend.DefaultTraceRingSpans,
		"spans retained in the /api/trace ring (rockhopper_trace_spans_evicted_total counts overflow)")
	debugAddr := flag.String("debug-addr", "",
		"separate listener for net/http/pprof profiling endpoints (empty disables; never expose publicly)")
	sloLatency := flag.Duration("slo-latency", 0,
		"per-request latency objective; a breach dumps the flight recorder to -data-dir (0 disables)")
	flightEvents := flag.Int("flightrec-events", 512,
		"events retained in the flight-recorder ring served at /api/flightrec (0 disables)")
	flag.Parse()

	if *secret == "" || *signingKey == "" {
		fmt.Fprintln(os.Stderr, "autotuned: -secret and -signing-key are required")
		os.Exit(2)
	}
	var space *sparksim.Space
	switch *spaceName {
	case "query":
		space = sparksim.QuerySpace()
	case "full":
		space = sparksim.FullSpace()
	default:
		fmt.Fprintf(os.Stderr, "autotuned: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "autotuned: ", log.LstdFlags)
	recNode := *nodeID
	if recNode == "" {
		recNode = "autotuned"
	}
	//rocklint:allow wallclock -- the flight recorder timestamps operational events, not tuning state
	flightRec := flightrec.New(*flightEvents, recNode, *dataDir, time.Now)
	flightRec.OnDump(func(reason, path string) {
		logger.Printf("flight recorder dumped (%s) to %s", reason, path)
	})
	var st objectStore
	var durable *store.DurableStore
	var srv *backend.Server
	var node *fleet.Node
	var handler http.Handler
	if *nodeID != "" {
		if *peersFlag == "" || *dataDir == "" {
			fmt.Fprintln(os.Stderr, "autotuned: fleet mode (-node-id) requires -peers and -data-dir")
			os.Exit(2)
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autotuned: %v\n", err)
			os.Exit(2)
		}
		if _, ok := peers[*nodeID]; !ok {
			fmt.Fprintf(os.Stderr, "autotuned: -node-id %q is not listed in -peers\n", *nodeID)
			os.Exit(2)
		}
		n, err := fleet.NewNode(fleet.NodeOptions{
			ID:                *nodeID,
			Peers:             peers,
			Replicas:          *replicas,
			Vnodes:            *vnodes,
			Seed:              *ringSeed,
			Space:             space,
			DataDir:           *dataDir,
			StoreSecret:       []byte(*signingKey),
			ClusterSecret:     *secret,
			Metrics:           telemetry.Default(),
			Logger:            logger,
			SnapshotInterval:  *snapInterval,
			HeartbeatInterval: *heartbeat,
			TraceRingSpans:    *traceRing,
			SLOLatency:        *sloLatency,
			FlightRecorder:    flightRec,
		})
		if err != nil {
			logger.Fatal(err)
		}
		node, srv = n, n.Backend()
		st, durable = n.Store(), n.Store()
		handler = n.Handler()
		logger.Printf("fleet node %s: %d peers, replicas=%d, vnodes=%d, ring-seed=%d, heartbeat=%v (%d objects recovered)",
			*nodeID, len(peers), *replicas, *vnodes, *ringSeed, *heartbeat, n.Store().Len())
	} else {
		if *dataDir != "" {
			ds, err := store.OpenDurable(*dataDir, []byte(*signingKey), store.DurableOptions{
				SnapshotInterval: *snapInterval,
				Logger:           logger,
				Metrics:          telemetry.Default(),
			})
			if err != nil {
				logger.Fatal(err)
			}
			logger.Printf("durable store open at %s (%d objects recovered, snapshot-interval=%v)",
				*dataDir, ds.Len(), *snapInterval)
			st, durable = ds, ds
		} else {
			st = store.New([]byte(*signingKey))
		}
		//rocklint:allow wallclock -- daemon startup entropy for the backend seed; not an experiment path
		srv = backend.New(space, st, *secret, uint64(time.Now().UnixNano()))
		// Identity, ring sizing, and the SLO check must land before
		// SetMetrics: bindTelemetry bakes them into the tracer it builds.
		srv.NodeName = recNode
		srv.TraceRingSpans = *traceRing
		srv.SLOLatency = *sloLatency
		// Publish on the process-global registry so the store's durability
		// instruments and the backend's request accounting share one
		// /metrics. (Fleet nodes wire the registry through NodeOptions.)
		srv.SetMetrics(telemetry.Default())
		srv.SetFlightRecorder(flightRec)
		if durable != nil {
			durable.SetTracer(srv.Tracer())
		}
		handler = srv.Handler()
	}
	srv.Logger = logger
	srv.RequestTimeout = *reqTimeout
	srv.TenantRate = *tenantRate
	srv.TenantBurst = *tenantBurst
	if *tenantWeights != "" {
		for _, pair := range strings.Split(*tenantWeights, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			w, err := strconv.Atoi(val)
			if !ok || name == "" || err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "autotuned: bad -tenant-weights entry %q (want tenant=weight, weight >= 1)\n", pair)
				os.Exit(2)
			}
			srv.SetTenantWeight(name, w)
		}
	}

	// Profiling listener: explicit pprof mux on its own address, never on
	// the service listener, so operators opt in and firewalls can fence it.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//rocklint:allow goroutineleak -- the debug listener is process-lifetime by design: it serves pprof until the daemon exits and dies with it
		go func() {
			logger.Printf("pprof debug listener on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if node != nil {
		node.Start(ctx)
	}

	// Storage Manager housekeeping: retention sweep plus WAL compaction.
	go func() {
		//rocklint:allow wallclock -- housekeeping cadence is operational wall time, not tuning state
		tick := time.NewTicker(time.Hour)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				// A latched durability failure means acknowledged writes can
				// no longer be persisted; crash so the supervisor restarts us
				// into recovery instead of serving from a diverging store.
				// (/api/health reports it as "down" in the meantime.)
				if durable != nil {
					if err := durable.Err(); err != nil && !errors.Is(err, store.ErrClosed) {
						logger.Fatalf("durable store is down: %v", err)
					}
				}
				if n := st.CleanupOlderThan(*retention); n > 0 {
					logger.Printf("retention cleanup removed %d event files", n)
				}
				if durable != nil {
					if err := durable.MaybeCompact(); err != nil {
						logger.Printf("snapshot compaction: %v", err)
					}
				}
			}
		}
	}()

	hs := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		logger.Print("shutting down (draining requests)")
		shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("listening on %s (space=%s, retention=%v, request-timeout=%v, health at /api/health, metrics at /metrics)",
		*addr, *spaceName, *retention, *reqTimeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	// Drain the model updater before the final snapshot so the flush
	// captures every retrained model.
	if node != nil {
		if err := node.Close(); err != nil {
			logger.Printf("fleet node close: %v", err)
		} else {
			logger.Print("fleet node flushed")
		}
		return
	}
	srv.Close()
	if durable != nil {
		if err := durable.Close(); err != nil {
			logger.Printf("durable store close: %v", err)
		} else {
			logger.Print("durable store flushed")
		}
	}
}

// parsePeers parses the -peers flag: comma-separated id=url pairs.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", pair)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate node id %q in -peers", id)
		}
		peers[id] = url
	}
	return peers, nil
}
