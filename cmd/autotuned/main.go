// Command autotuned runs the Autotune Backend (Section 5, Figure 7) as a
// standalone HTTP daemon: token issuing, model storage, event ingestion with
// streaming model retraining, and app-cache generation. Autotune Clients
// (internal/client) point at its address.
//
// Usage:
//
//	autotuned [-addr :8080] [-secret cluster-secret] [-space query|full]
//	          [-retention 720h] [-request-timeout 15s]
//
// Liveness and per-endpoint error accounting are exposed unauthenticated at
// GET /api/health.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	secret := flag.String("secret", "", "cluster shared secret (required)")
	spaceName := flag.String("space", "query", "configuration space: query (3 params) or full (7 params)")
	retention := flag.Duration("retention", 30*24*time.Hour, "event-file retention window (GDPR cleanup)")
	signingKey := flag.String("signing-key", "", "token signing key (required)")
	reqTimeout := flag.Duration("request-timeout", backend.DefaultRequestTimeout,
		"per-request handler deadline (0 disables)")
	flag.Parse()

	if *secret == "" || *signingKey == "" {
		fmt.Fprintln(os.Stderr, "autotuned: -secret and -signing-key are required")
		os.Exit(2)
	}
	var space *sparksim.Space
	switch *spaceName {
	case "query":
		space = sparksim.QuerySpace()
	case "full":
		space = sparksim.FullSpace()
	default:
		fmt.Fprintf(os.Stderr, "autotuned: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "autotuned: ", log.LstdFlags)
	st := store.New([]byte(*signingKey))
	//rocklint:allow wallclock -- daemon startup entropy for the backend seed; not an experiment path
	srv := backend.New(space, st, *secret, uint64(time.Now().UnixNano()))
	srv.Logger = logger
	srv.RequestTimeout = *reqTimeout
	defer srv.Close()

	// Storage Manager retention sweep.
	go func() {
		//rocklint:allow wallclock -- retention sweep cadence is operational wall time, not tuning state
		tick := time.NewTicker(time.Hour)
		defer tick.Stop()
		for range tick.C {
			if n := st.CleanupOlderThan(*retention); n > 0 {
				logger.Printf("retention cleanup removed %d event files", n)
			}
		}
	}()

	logger.Printf("listening on %s (space=%s, retention=%v, request-timeout=%v, health at /api/health)",
		*addr, *spaceName, *retention, *reqTimeout)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logger.Fatal(err)
	}
}
