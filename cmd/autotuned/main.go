// Command autotuned runs the Autotune Backend (Section 5, Figure 7) as a
// standalone HTTP daemon: token issuing, model storage, event ingestion with
// streaming model retraining, and app-cache generation. Autotune Clients
// (internal/client) point at its address.
//
// Usage:
//
//	autotuned [-addr :8080] [-secret cluster-secret] [-space query|full]
//	          [-retention 720h] [-request-timeout 15s]
//	          [-data-dir /var/lib/autotuned] [-snapshot-interval 10m]
//
// With -data-dir the object store is durable: every mutation is written to
// a CRC-framed write-ahead log before it is acknowledged, the log is
// compacted into an atomic snapshot on the -snapshot-interval cadence, and
// a restart with the same directory replays snapshot + WAL so previously
// trained models survive without retraining. Without it the store is
// memory-only and state dies with the process.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests drain, the
// model-updater queue flushes, and the durable store takes a final snapshot.
//
// Liveness and per-endpoint error accounting are exposed unauthenticated at
// GET /api/health; Prometheus text metrics (request latencies, WAL timings,
// updater queue depth, tuner gauges) at GET /metrics; and the recent span
// ring at GET /api/trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// objectStore is the daemon's storage surface: the backend interface plus
// the retention sweep. Both store implementations satisfy it.
type objectStore interface {
	backend.ObjectStore
	CleanupOlderThan(retention time.Duration) int
}

// shutdownGrace bounds how long in-flight requests may drain on SIGTERM.
const shutdownGrace = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	secret := flag.String("secret", "", "cluster shared secret (required)")
	spaceName := flag.String("space", "query", "configuration space: query (3 params) or full (7 params)")
	retention := flag.Duration("retention", 30*24*time.Hour, "event-file retention window (GDPR cleanup)")
	signingKey := flag.String("signing-key", "", "token signing key (required)")
	reqTimeout := flag.Duration("request-timeout", backend.DefaultRequestTimeout,
		"per-request handler deadline (0 disables)")
	dataDir := flag.String("data-dir", "",
		"durable store directory (snapshot + WAL); empty keeps the store in memory only")
	snapInterval := flag.Duration("snapshot-interval", 10*time.Minute,
		"WAL compaction cadence for -data-dir stores (0 disables time-based compaction)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"per-tenant ingest rate limit in events/second (0 disables rate limiting)")
	tenantBurst := flag.Float64("tenant-burst", 0,
		"per-tenant token-bucket burst capacity (0 means the default)")
	tenantWeights := flag.String("tenant-weights", "",
		"comma-separated tenant=weight pairs for Model Updater fair scheduling, e.g. etl=4,adhoc=1")
	flag.Parse()

	if *secret == "" || *signingKey == "" {
		fmt.Fprintln(os.Stderr, "autotuned: -secret and -signing-key are required")
		os.Exit(2)
	}
	var space *sparksim.Space
	switch *spaceName {
	case "query":
		space = sparksim.QuerySpace()
	case "full":
		space = sparksim.FullSpace()
	default:
		fmt.Fprintf(os.Stderr, "autotuned: unknown space %q\n", *spaceName)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "autotuned: ", log.LstdFlags)
	var st objectStore
	var durable *store.DurableStore
	if *dataDir != "" {
		ds, err := store.OpenDurable(*dataDir, []byte(*signingKey), store.DurableOptions{
			SnapshotInterval: *snapInterval,
			Logger:           logger,
			Metrics:          telemetry.Default(),
		})
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("durable store open at %s (%d objects recovered, snapshot-interval=%v)",
			*dataDir, ds.Len(), *snapInterval)
		st, durable = ds, ds
	} else {
		st = store.New([]byte(*signingKey))
	}
	//rocklint:allow wallclock -- daemon startup entropy for the backend seed; not an experiment path
	srv := backend.New(space, st, *secret, uint64(time.Now().UnixNano()))
	srv.Logger = logger
	srv.RequestTimeout = *reqTimeout
	srv.TenantRate = *tenantRate
	srv.TenantBurst = *tenantBurst
	if *tenantWeights != "" {
		for _, pair := range strings.Split(*tenantWeights, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			w, err := strconv.Atoi(val)
			if !ok || name == "" || err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "autotuned: bad -tenant-weights entry %q (want tenant=weight, weight >= 1)\n", pair)
				os.Exit(2)
			}
			srv.SetTenantWeight(name, w)
		}
	}
	// Publish on the process-global registry so the store's durability
	// instruments and the backend's request accounting share one /metrics.
	srv.SetMetrics(telemetry.Default())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Storage Manager housekeeping: retention sweep plus WAL compaction.
	go func() {
		//rocklint:allow wallclock -- housekeeping cadence is operational wall time, not tuning state
		tick := time.NewTicker(time.Hour)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				// A latched durability failure means acknowledged writes can
				// no longer be persisted; crash so the supervisor restarts us
				// into recovery instead of serving from a diverging store.
				// (/api/health reports it as "down" in the meantime.)
				if durable != nil {
					if err := durable.Err(); err != nil && !errors.Is(err, store.ErrClosed) {
						logger.Fatalf("durable store is down: %v", err)
					}
				}
				if n := st.CleanupOlderThan(*retention); n > 0 {
					logger.Printf("retention cleanup removed %d event files", n)
				}
				if durable != nil {
					if err := durable.MaybeCompact(); err != nil {
						logger.Printf("snapshot compaction: %v", err)
					}
				}
			}
		}
	}()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		logger.Print("shutting down (draining requests)")
		shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("listening on %s (space=%s, retention=%v, request-timeout=%v, health at /api/health, metrics at /metrics)",
		*addr, *spaceName, *retention, *reqTimeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	// Drain the model updater before the final snapshot so the flush
	// captures every retrained model.
	srv.Close()
	if durable != nil {
		if err := durable.Close(); err != nil {
			logger.Printf("durable store close: %v", err)
		} else {
			logger.Print("durable store flushed")
		}
	}
}
