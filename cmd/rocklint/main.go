// Command rocklint runs the repository's custom static analyzers
// (internal/lint) over the module and exits nonzero on findings. It
// enforces the invariants Rockhopper's correctness guarantees depend on:
// injected clocks (wallclock), injected splittable RNGs (globalrand), no
// map-iteration-order leaks (maporder), lock hygiene (lockdiscipline), and
// context-first I/O signatures (ctxfirst).
//
// Usage:
//
//	rocklint [-tests=false] [-suppressed] [-list] [packages]
//
// packages default to ./... — patterns are module-relative directories,
// with /... for subtrees. Deliberate exceptions are annotated in source:
//
//	//rocklint:allow <rule>[,<rule>] -- <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rockhopper-db/rockhopper/internal/lint"
)

func main() {
	tests := flag.Bool("tests", true, "analyze _test.go files (rules that opt in)")
	suppressed := flag.Bool("suppressed", false, "also print suppressed findings with their reasons")
	list := flag.Bool("list", false, "list the registered rules and exit")
	flag.Parse()

	rules := lint.DefaultRules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-15s %s\n", r.Name(), r.Doc())
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		os.Exit(2)
	}
	pkgs = filterPatterns(pkgs, flag.Args())
	extra, err := loadTestdata(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		os.Exit(2)
	}
	pkgs = append(pkgs, extra...)

	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "rocklint: warning: %s: incomplete type info: %v\n", p.Path, terr)
		}
	}

	cfg := lint.DefaultConfig()
	cfg.IncludeTests = *tests
	diags := lint.Run(pkgs, rules, cfg)

	findings := 0
	for _, d := range diags {
		if d.Suppressed {
			if *suppressed {
				fmt.Printf("%s (suppressed: %s)\n", rel(d), d.SuppressReason)
			}
			continue
		}
		findings++
		fmt.Println(rel(d))
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "rocklint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rocklint: ok (%d packages, %d rules)\n", len(pkgs), len(rules))
}

// rel renders a diagnostic with a working-directory-relative path.
func rel(d lint.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			d.Pos.Filename = r
		}
	}
	return d.String()
}

// loadTestdata loads packages for patterns that point into a testdata
// tree. LoadAll deliberately skips testdata directories (fixtures are not
// module packages), so naming one on the command line is an explicit
// request — that is how CI proves rocklint exits nonzero on the seeded
// golden fixtures under internal/lint/testdata.
func loadTestdata(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var out []*lint.Package
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if !strings.Contains(pat, "testdata") {
			continue
		}
		root := filepath.Join(loader.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
		if !strings.HasSuffix(pat, "/...") {
			got, err := loader.LoadDir(root)
			if err != nil {
				return nil, err
			}
			out = append(out, got...)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			got, err := loader.LoadDir(path)
			if err != nil {
				return err
			}
			out = append(out, got...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// filterPatterns selects packages matching the command-line patterns.
// Supported forms: "./..." (everything), "./dir/..." (subtree), "./dir"
// (exact); the leading "./" is optional.
func filterPatterns(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(relPath string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
			if pat == "..." || pat == "" {
				return true
			}
			if prefix, wild := strings.CutSuffix(pat, "/..."); wild {
				if relPath == prefix || strings.HasPrefix(relPath, prefix+"/") {
					return true
				}
			} else if relPath == pat {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if match(p.RelPath) {
			out = append(out, p)
		}
	}
	return out
}
