// Command rocklint runs the repository's custom static analyzers
// (internal/lint) over the module and exits nonzero on findings. It
// enforces the invariants Rockhopper's correctness guarantees depend on:
// injected clocks (wallclock), injected splittable RNGs (globalrand), no
// map-iteration-order leaks (maporder), lock hygiene (lockdiscipline), and
// context-first I/O signatures (ctxfirst).
//
// Usage:
//
//	rocklint [-tests=false] [-suppressed] [-list] [-json] [-parallel=false] [packages]
//
// packages default to ./... — patterns are module-relative directories,
// with /... for subtrees. -parallel (the default) loads and checks
// packages across GOMAXPROCS workers in module-import dependency order;
// its output is byte-identical to the serial engine, which CI asserts.
// -json emits a machine-readable report instead of the line-per-finding
// text form. Deliberate exceptions are annotated in source:
//
//	//rocklint:allow <rule>[,<rule>] -- <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rockhopper-db/rockhopper/internal/lint"
)

func main() {
	tests := flag.Bool("tests", true, "analyze _test.go files (rules that opt in)")
	suppressed := flag.Bool("suppressed", false, "also print suppressed findings with their reasons")
	list := flag.Bool("list", false, "list the registered rules and exit")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	parallel := flag.Bool("parallel", true, "load and check packages across GOMAXPROCS workers")
	flag.Parse()

	rules := lint.DefaultRules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-15s %s\n", r.Name(), r.Doc())
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		os.Exit(2)
	}
	var pkgs []*lint.Package
	if *parallel {
		pkgs, err = loader.LoadAllParallel(0)
	} else {
		pkgs, err = loader.LoadAll()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		os.Exit(2)
	}
	pkgs = filterPatterns(pkgs, flag.Args())
	extra, err := loadTestdata(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		os.Exit(2)
	}
	pkgs = append(pkgs, extra...)

	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "rocklint: warning: %s: incomplete type info: %v\n", p.Path, terr)
		}
	}

	cfg := lint.DefaultConfig()
	cfg.IncludeTests = *tests
	var diags []lint.Diagnostic
	if *parallel {
		diags = lint.RunParallel(pkgs, rules, cfg, 0)
	} else {
		diags = lint.Run(pkgs, rules, cfg)
	}

	if *jsonOut {
		os.Exit(reportJSON(pkgs, rules, diags))
	}
	findings := 0
	for _, d := range diags {
		if d.Suppressed {
			if *suppressed {
				fmt.Printf("%s (suppressed: %s)\n", rel(d), d.SuppressReason)
			}
			continue
		}
		findings++
		fmt.Println(rel(d))
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "rocklint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rocklint: ok (%d packages, %d rules)\n", len(pkgs), len(rules))
}

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	Rule   string `json:"rule"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Msg    string `json:"msg"`
	Reason string `json:"reason,omitempty"`
}

// jsonReport is the -json document: counts up front for job summaries,
// findings and waived (suppressed) diagnostics as separate lists.
type jsonReport struct {
	Packages int        `json:"packages"`
	Rules    []string   `json:"rules"`
	Findings []jsonDiag `json:"findings"`
	Waived   []jsonDiag `json:"waived"`
}

// reportJSON renders the run as JSON and returns the process exit code.
func reportJSON(pkgs []*lint.Package, rules []lint.Rule, diags []lint.Diagnostic) int {
	rep := jsonReport{Packages: len(pkgs), Findings: []jsonDiag{}, Waived: []jsonDiag{}}
	for _, r := range rules {
		rep.Rules = append(rep.Rules, r.Name())
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if wd != "" {
			if r, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(r, "..") {
				file = r
			}
		}
		jd := jsonDiag{Rule: d.Rule, File: file, Line: d.Pos.Line, Col: d.Pos.Column, Msg: d.Msg}
		if d.Suppressed {
			jd.Reason = d.SuppressReason
			rep.Waived = append(rep.Waived, jd)
		} else {
			rep.Findings = append(rep.Findings, jd)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "rocklint:", err)
		return 2
	}
	if len(rep.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "rocklint: %d finding(s) in %d package(s)\n", len(rep.Findings), len(pkgs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "rocklint: ok (%d packages, %d rules)\n", len(pkgs), len(rules))
	return 0
}

// rel renders a diagnostic with a working-directory-relative path.
func rel(d lint.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			d.Pos.Filename = r
		}
	}
	return d.String()
}

// loadTestdata loads packages for patterns that point into a testdata
// tree. LoadAll deliberately skips testdata directories (fixtures are not
// module packages), so naming one on the command line is an explicit
// request — that is how CI proves rocklint exits nonzero on the seeded
// golden fixtures under internal/lint/testdata.
//
// A `<pkg>/testdata/src` tree is loaded as its own miniature module with
// import path "fixture" (the same convention the golden tests use), so
// fixtures may import each other — `fixture/telemetry` — and still
// type-check fully.
func loadTestdata(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var out []*lint.Package
	loaders := map[string]*lint.Loader{loader.ModuleRoot: loader}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if !strings.Contains(pat, "testdata") {
			continue
		}
		ld := loader
		if i := strings.Index(pat, "testdata/src"); i >= 0 {
			fixRoot := filepath.Join(loader.ModuleRoot, filepath.FromSlash(pat[:i+len("testdata/src")]))
			if loaders[fixRoot] == nil {
				loaders[fixRoot] = lint.NewLoaderAt(fixRoot, "fixture")
			}
			ld = loaders[fixRoot]
		}
		root := filepath.Join(loader.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
		if !strings.HasSuffix(pat, "/...") {
			got, err := ld.LoadDir(root)
			if err != nil {
				return nil, err
			}
			out = append(out, got...)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			got, err := ld.LoadDir(path)
			if err != nil {
				return err
			}
			out = append(out, got...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// filterPatterns selects packages matching the command-line patterns.
// Supported forms: "./..." (everything), "./dir/..." (subtree), "./dir"
// (exact); the leading "./" is optional.
func filterPatterns(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(relPath string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
			if pat == "..." || pat == "" {
				return true
			}
			if prefix, wild := strings.CutSuffix(pat, "/..."); wild {
				if relPath == prefix || strings.HasPrefix(relPath, prefix+"/") {
					return true
				}
			} else if relPath == pat {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if match(p.RelPath) {
			out = append(out, p)
		}
	}
	return out
}
