package rockhopper

import (
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// TestManagerMetrics drives one signature into a guardrail trip and checks
// the manager publishes iterations, best cost, and exactly one trip (the
// disable edge, not one per disabled observation).
func TestManagerMetrics(t *testing.T) {
	m, err := NewManager(QuerySpace(), WithGuardrail(5, 0.005, 2))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m.SetMetrics(reg)

	const sig = "regressing"
	iters := 0
	growth := 1000.0
	tn, _ := m.Tuner(sig)
	for i := 0; i < 60 && !tn.Disabled(); i++ {
		cfg, err := m.Suggest(sig, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(sig, Observation{Config: cfg, DataSize: 1e9, Time: growth, Iteration: i}); err != nil {
			t.Fatal(err)
		}
		iters++
		growth *= 1.12
	}
	if !tn.Disabled() {
		t.Fatal("guardrail never tripped")
	}

	iterations := reg.Counter("rockhopper_tuner_iterations_total", "", "algo", "signature")
	if got := iterations.With("centroid", sig).Value(); got != float64(iters) {
		t.Errorf("iterations = %v, want %d", got, iters)
	}
	best := reg.Gauge("rockhopper_tuner_best_cost_ms", "", "algo", "signature")
	if got := best.With("centroid", sig).Value(); got != 1000 {
		t.Errorf("best cost = %v, want 1000 (the first, cheapest run)", got)
	}
	trips := reg.Counter("rockhopper_guardrail_trips_total", "", "signature")
	if got := trips.With(sig).Value(); got != 1 {
		t.Errorf("guardrail trips = %v, want 1", got)
	}

	// Observations while disabled must not re-count the same incident.
	for i := 0; i < 3; i++ {
		cfg, _ := m.Suggest(sig, 1e9)
		if err := m.Observe(sig, Observation{Config: cfg, DataSize: 1e9, Time: growth, Iteration: iters + i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := trips.With(sig).Value(); got != 1 {
		t.Errorf("trips after disabled stretch = %v, want still 1", got)
	}
}
