package rockhopper

// One testing.B benchmark per paper figure/table, as indexed in DESIGN.md.
// Each benchmark regenerates its figure at a reduced budget per iteration
// (cmd/rockbench -scale paper runs the full budgets) and reports a
// figure-specific headline metric alongside ns/op so trends are visible in
// benchstat output.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/experiments"
	"github.com/rockhopper-db/rockhopper/internal/parallel"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func BenchmarkFig01PartitionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig01PartitionSweep(experiments.Fig01Params{})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig02NoisyBaselines(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig02NoisyBaselines(experiments.Fig02Params{Runs: 6, Iters: 60})
		bo := r.Bands["bo"]
		gap = stats.Mean(bo.Median[48:]) / r.Optimal
	}
	b.ReportMetric(gap, "bo-final/optimal")
}

// BenchmarkFig02Workers measures the parallel experiment engine: the same
// Figure 2 study at one worker versus the machine's core count. The output is
// byte-identical across sub-benchmarks (see TestParallelGoldenEquivalence);
// only wall time and pool occupancy change. On a multi-core runner the NumCPU
// variant should show a >2x ns/op reduction at ~full occupancy.
func BenchmarkFig02Workers(b *testing.B) {
	for _, w := range []int{1, runtime.NumCPU()} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			before := parallel.GlobalCounters()
			for i := 0; i < b.N; i++ {
				r := experiments.Fig02NoisyBaselines(experiments.Fig02Params{Runs: 6, Iters: 60, Workers: w})
				if len(r.Bands) == 0 {
					b.Fatal("no bands")
				}
			}
			d := parallel.GlobalCounters().Sub(before)
			b.ReportMetric(float64(d.Finished)/float64(b.N), "runs/op")
			b.ReportMetric(float64(d.Busy.Nanoseconds())/float64(b.Elapsed().Nanoseconds()+1), "speedup")
		})
	}
}

// BenchmarkFig15Workers is the fleet-scale counterpart: signatures fan out
// across the pool, so speedup tracks min(workers, signatures).
func BenchmarkFig15Workers(b *testing.B) {
	for _, w := range []int{1, runtime.NumCPU()} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.FleetStudy(experiments.FleetParams{Signatures: 12, Iters: 40, Workers: w})
				if len(r.ImprovementsPct) != 12 {
					b.Fatal("signatures")
				}
			}
		})
	}
}

func BenchmarkFig03ManualVsBO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig03ManualVsBO(experiments.Fig03Params{Queries: []int{1, 2}, Users: 12, Iters: 25})
		r.Print(io.Discard)
	}
}

func BenchmarkFig08SyntheticFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig08SyntheticFunction(experiments.Fig08Params{}); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig09SurrogateLevels(b *testing.B) {
	var l1 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig09SurrogateLevels(experiments.Fig09Params{Levels: []int{5, 1}, Runs: 5, Iters: 60})
		l1 = stats.Mean(r.Bands[1].Median[48:]) / r.Optimal
	}
	b.ReportMetric(l1, "L1-final/optimal")
}

func BenchmarkFig10CLSVR(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10CLSVR(experiments.Fig10Params{Runs: 5, Iters: 70})
		final = stats.Mean(r.Band.Median[56:]) / r.Optimal
	}
	b.ReportMetric(final, "CL-final/optimal")
}

func BenchmarkFig11DynamicWorkloads(b *testing.B) {
	var normed float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11DynamicWorkloads(experiments.Fig11Params{Runs: 4, Iters: 70})
		normed = stats.Mean(r.Normed["periodic"].Median[56:])
	}
	b.ReportMetric(normed, "periodic-final-normed")
}

func BenchmarkFig12TransferLearning(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12TransferLearning(experiments.Fig12Params{
			TargetQueries: []int{1, 2, 3}, Iters: 15, FlightRuns: 30, SampleSizes: []int{100, 500},
		})
		sp = r.Speedup[500][14]
	}
	b.ReportMetric(sp, "n500-final-speedup")
}

func BenchmarkFig13CLvsBO(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13CLvsBO(experiments.Fig13Params{Queries: []int{1, 2, 3}, Iters: 40})
		ratio = stats.Mean(r.CBO[32:]) / stats.Mean(r.CL[32:])
	}
	b.ReportMetric(ratio, "bo/cl-final-ratio")
}

func BenchmarkFigEmbeddingAblation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := experiments.EmbeddingAblation(experiments.EmbeddingAblationParams{
			TargetQueries: []int{1, 2, 3, 5, 7, 11}, Iters: 15, FlightRuns: 20,
		})
		gain = r.MeanGainFromIter5
	}
	b.ReportMetric(gain, "virtual-gain-%")
}

func BenchmarkFig14TPCH(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14TPCH(experiments.Fig14Params{Iters: 25, FlightRuns: 12, DSQueries: []int{1, 2, 3, 5}})
		imp = r.TotalImprovementPct
	}
	b.ReportMetric(imp, "total-improvement-%")
}

func BenchmarkFig15InternalFleet(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.FleetStudy(experiments.FleetParams{Signatures: 15, Iters: 45})
		imp = r.TotalImprovementPct
	}
	b.ReportMetric(imp, "total-improvement-%")
}

func BenchmarkFig16ExternalFleet(b *testing.B) {
	var maintained float64
	for i := 0; i < b.N; i++ {
		r := experiments.FleetStudy(experiments.FleetParams{Signatures: 20, Iters: 45, Guardrail: true})
		maintained = float64(r.Maintained)
	}
	b.ReportMetric(maintained, "maintained-signatures")
}

func BenchmarkArchRoundTrip(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.ArchRoundTrip(experiments.ArchParams{Iters: 20})
		imp = r.ImprovementPct
	}
	b.ReportMetric(imp, "improvement-%")
}

func BenchmarkAppLevelJoint(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.AppLevelJoint(experiments.AppLevelParams{})
		imp = r.ImprovementPct
	}
	b.ReportMetric(imp, "improvement-%")
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ablations(experiments.AblationParams{Runs: 4, Iters: 60})
		if len(r.WindowN) == 0 {
			b.Fatal("no ablation rows")
		}
	}
}

// Micro-benchmarks for the library hot paths: one tuner iteration
// (Recommend + Report) and one simulator evaluation.

func BenchmarkTunerIteration(b *testing.B) {
	space := QuerySpace()
	engine := NewEngine(space)
	q, err := NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		b.Fatal(err)
	}
	tn, err := NewTuner(space, WithoutGuardrail())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	size := q.Plan.LeafInputBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := tn.Recommend(i, size)
		o := engine.Run(q, cfg, 1, r, nil)
		if err := tn.Report(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTrueTime(b *testing.B) {
	space := QuerySpace()
	engine := NewEngine(space)
	q, err := NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if engine.TrueTime(q, cfg, 1) <= 0 {
			b.Fatal("non-positive time")
		}
	}
}

func BenchmarkGuardrailAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.GuardrailAblation(experiments.GuardrailAblationParams{
			Signatures: 10, Iters: 45, Thresholds: []float64{-1, 0},
		})
		if len(r.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkBaselinesTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Baselines(experiments.BaselinesParams{Runs: 4, Iters: 60})
		if len(r.Rows) != 6 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkCatalogStudy(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.CatalogStudy(experiments.CatalogParams{Queries: 4, Iters: 30})
		imp = r.TotalImprovementPct
	}
	b.ReportMetric(imp, "total-improvement-%")
}

func BenchmarkAQEStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AQEStudy(experiments.AQEParams{Queries: []int{1, 2}, Iters: 25})
		if len(r.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}
