package rockhopper_test

import (
	"fmt"

	"github.com/rockhopper-db/rockhopper"
)

// The minimal tuning loop: one tuner per recurrent query, driven by the
// caller's own executions (here: the bundled simulator, noiselessly, so the
// output is deterministic).
func ExampleNewTuner() {
	space := rockhopper.QuerySpace()
	engine := rockhopper.NewEngine(space)
	query, _ := rockhopper.NewBenchmarkQuery("tpcds", 2, 99)

	tuner, _ := rockhopper.NewTuner(space, rockhopper.WithSeed(7), rockhopper.WithoutGuardrail())
	size := query.Plan.LeafInputBytes()
	first, last := 0.0, 0.0
	for i := 0; i < 40; i++ {
		cfg := tuner.Recommend(i, size)
		obs := engine.Run(query, cfg, 1, nil, nil) // the user's execution
		obs.Iteration = i
		_ = tuner.Report(obs)
		if i == 0 {
			first = obs.Time
		}
		last = obs.Time
	}
	fmt.Printf("improved: %v\n", last < first)
	// Output: improved: true
}

// Spaces are ordered parameter sets; configurations are plain float vectors
// addressed by parameter name.
func ExampleSpace() {
	space := rockhopper.QuerySpace()
	cfg := space.Default()
	fmt.Printf("%s = %.0f\n", rockhopper.ShufflePartitions, space.Get(cfg, rockhopper.ShufflePartitions))
	cfg = space.With(cfg, rockhopper.ShufflePartitions, 64)
	fmt.Printf("tuned to %.0f\n", space.Get(cfg, rockhopper.ShufflePartitions))
	// Output:
	// spark.sql.shuffle.partitions = 200
	// tuned to 64
}

// A Manager keeps one tuner per query signature, creating them on demand —
// the per-query tuning model of the production deployment.
func ExampleManager() {
	m, _ := rockhopper.NewManager(rockhopper.QuerySpace())
	q1, _ := rockhopper.NewBenchmarkQuery("tpch", 1, 5)
	q2, _ := rockhopper.NewBenchmarkQuery("tpch", 2, 5)
	a, _ := m.Tuner(rockhopper.SignatureOf(q1.Plan))
	b, _ := m.Tuner(rockhopper.SignatureOf(q2.Plan))
	again, _ := m.Tuner(rockhopper.SignatureOf(q1.Plan))
	fmt.Println(m.Len(), a == again, a == b)
	// Output: 2 true false
}
