package rockhopper

import (
	"sync"
	"testing"
)

// TestManagerConcurrentSuggestObserve hammers one Manager from many
// goroutines across overlapping signatures — the production shape where
// retries and speculative submissions of the same recurrent query race. Under
// -race this checks the Manager map and every Tuner's internal state; the
// final iteration count checks that no observation was lost.
func TestManagerConcurrentSuggestObserve(t *testing.T) {
	t.Parallel()
	m, err := NewManager(QuerySpace(), WithoutGuardrail())
	if err != nil {
		t.Fatal(err)
	}
	sigs := []string{"etl-daily", "dash-hourly", "ml-feature", "report-weekly"}
	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sig := sigs[(g+i)%len(sigs)]
				cfg, err := m.Suggest(sig, 1e9)
				if err != nil {
					errs <- err
					return
				}
				if err := m.Observe(sig, Observation{
					Config: cfg, DataSize: 1e9, Time: 1000 + float64(i),
				}); err != nil {
					errs <- err
					return
				}
				// Fleet monitoring runs concurrently with tuning.
				_ = m.Disabled()
				if tn, err := m.Tuner(sig); err == nil {
					_ = tn.Centroid()
					if _, err := tn.Save(); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m.Len() != len(sigs) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(sigs))
	}
	total := 0
	for _, sig := range sigs {
		tn, err := m.Tuner(sig)
		if err != nil {
			t.Fatal(err)
		}
		total += tn.Iterations()
	}
	if total != goroutines*iters {
		t.Fatalf("total observations = %d, want %d (lost updates)", total, goroutines*iters)
	}
}

// TestTunerConcurrentAccess drives one Tuner directly from several
// goroutines using Suggest, whose iteration index is read under the same
// lock as the proposal.
func TestTunerConcurrentAccess(t *testing.T) {
	t.Parallel()
	tn, err := NewTuner(QuerySpace(), WithoutGuardrail())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cfg := tn.Suggest(1e9)
				if err := tn.Report(Observation{Config: cfg, DataSize: 1e9, Time: 500}); err != nil {
					errs <- err
					return
				}
				_ = tn.Disabled()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := tn.Iterations(); got != goroutines*iters {
		t.Fatalf("Iterations = %d, want %d", got, goroutines*iters)
	}
}
