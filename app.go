package rockhopper

import (
	"fmt"

	"github.com/rockhopper-db/rockhopper/internal/applevel"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// QueryHistory is one query's tuning state used by app-level optimization:
// its centroid (exploration anchor) and observation log from the completed
// application run.
type QueryHistory struct {
	ID           string
	Centroid     Config
	Observations []Observation
}

// ArtifactID derives the stable identifier of a recurrent Spark application
// from its artifact (e.g. notebook contents or a job definition), used as
// the app_cache key.
func ArtifactID(artifact []byte) string { return applevel.ArtifactID(artifact) }

// AppTuner pre-computes application-level configurations (executor count,
// memory, off-heap) for recurrent applications via the Algorithm 2 joint
// optimizer (Section 4.4 of the paper). App-level parameters must be fixed
// at startup, so the optimal setting is computed after each run completes
// and cached under the application's artifact id for the next submission.
type AppTuner struct {
	space *Space
	jo    *applevel.JointOptimizer
	cache *applevel.Cache
}

// NewAppTuner builds an app-level tuner; the space must contain app-level
// parameters (use FullSpace or a custom space with AppLevel params).
func NewAppTuner(space *Space, seed uint64) (*AppTuner, error) {
	if space == nil || len(space.AppParams()) == 0 {
		return nil, fmt.Errorf("rockhopper: AppTuner requires a space with app-level parameters")
	}
	return &AppTuner{
		space: space,
		jo:    applevel.NewJointOptimizer(space, stats.NewRNG(seed)),
		cache: applevel.NewCache(),
	}, nil
}

// ComputeCache runs the joint optimization after an application run and
// stores the winning app-level configuration under artifactID. It returns
// the computed configuration.
func (a *AppTuner) ComputeCache(artifactID string, current Config, queries []QueryHistory) (Config, error) {
	if artifactID == "" {
		return nil, fmt.Errorf("rockhopper: artifact id required")
	}
	states := make([]applevel.QueryState, 0, len(queries))
	for _, qh := range queries {
		qs, err := applevel.FitQueryState(a.space, qh.ID, qh.Centroid, qh.Observations)
		if err != nil {
			return nil, err
		}
		states = append(states, qs)
	}
	best, err := a.jo.Optimize(current, states)
	if err != nil {
		return nil, err
	}
	var score float64
	for _, qs := range states {
		score += qs.Predict(best, qs.DataSize)
	}
	a.cache.Put(artifactID, best, score)
	return best, nil
}

// Cached returns the pre-computed app-level configuration for an artifact,
// used at job submission to skip optimization on the critical path.
func (a *AppTuner) Cached(artifactID string) (Config, bool) {
	e, ok := a.cache.Get(artifactID)
	if !ok {
		return nil, false
	}
	return e.Config, true
}
