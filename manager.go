package rockhopper

import (
	"fmt"
	"sort"
	"sync"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// Manager owns one Tuner per recurrent query signature — the per-query
// tuning model of the production deployment, where Fabric processes
// hundreds of thousands of query runs across thousands of signatures
// (Section 3.1's scalability discussion). It is safe for concurrent use by
// multiple query submission paths; each signature's tuner is still driven
// sequentially by its own recurrent runs.
type Manager struct {
	space *Space
	opts  []Option

	mu      sync.Mutex
	tuners  map[string]*Tuner
	seq     uint64
	best    map[string]float64 // lowest observed time per signature
	tripped map[string]bool    // guardrail edge detector per signature

	iterations *telemetry.CounterVec // {algo, signature}
	bestCost   *telemetry.GaugeVec   // {algo, signature}
	trips      *telemetry.CounterVec // {signature}
}

// managedAlgo is the algorithm label the Manager publishes under: every
// managed tuner runs the paper's Centroid Learning loop.
const managedAlgo = "centroid"

// bindMetrics registers the manager's instruments on reg. The families are
// shared with tuners.Instrument, so a daemon mixing both publishes one
// coherent catalogue.
func (m *Manager) bindMetrics(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.iterations = reg.Counter("rockhopper_tuner_iterations_total",
		"Observations fed to a tuning loop, by algorithm and query signature.", "algo", "signature")
	m.bestCost = reg.Gauge("rockhopper_tuner_best_cost_ms",
		"Lowest observed execution time (ms) so far, by algorithm and query signature.", "algo", "signature")
	m.trips = reg.Counter("rockhopper_guardrail_trips_total",
		"Guardrail reversions to the default configuration, by query signature.", "signature")
}

// SetMetrics publishes the manager's convergence instruments — per-signature
// iteration counts, best-cost gauges, and guardrail trips — to reg. Call it
// before traffic; the default is a discarding registry.
func (m *Manager) SetMetrics(reg *telemetry.Registry) { m.bindMetrics(reg) }

// NewManager builds a manager that creates tuners over space with the given
// default options. Per-signature seeds are derived automatically so two
// signatures never share a random stream.
func NewManager(space *Space, opts ...Option) (*Manager, error) {
	if space == nil || space.Dim() == 0 {
		return nil, fmt.Errorf("rockhopper: a non-empty Space is required")
	}
	// Validate the option set once by building a probe tuner.
	if _, err := NewTuner(space, opts...); err != nil {
		return nil, err
	}
	m := &Manager{
		space:   space,
		opts:    opts,
		tuners:  make(map[string]*Tuner),
		best:    make(map[string]float64),
		tripped: make(map[string]bool),
	}
	m.bindMetrics(nil)
	return m, nil
}

// Tuner returns the tuner for a query signature, creating it on first use.
func (m *Manager) Tuner(signature string) (*Tuner, error) {
	if signature == "" {
		return nil, fmt.Errorf("rockhopper: empty query signature")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tuners[signature]; ok {
		return t, nil
	}
	m.seq++
	opts := append(append([]Option(nil), m.opts...), WithSeed(signatureSeed(signature, m.seq)))
	t, err := NewTuner(m.space, opts...)
	if err != nil {
		return nil, err
	}
	m.tuners[signature] = t
	return t, nil
}

// Suggest returns the next configuration for a signature, creating its tuner
// on first use. The iteration index is the tuner's own observation count, so
// concurrent submission paths for the same signature stay consistent.
func (m *Manager) Suggest(signature string, expectedInputBytes float64) (Config, error) {
	t, err := m.Tuner(signature)
	if err != nil {
		return nil, err
	}
	return t.Suggest(expectedInputBytes), nil
}

// Observe reports an execution outcome for a signature, creating its tuner on
// first use (a cold start observed before any Suggest still counts).
func (m *Manager) Observe(signature string, o Observation) error {
	t, err := m.Tuner(signature)
	if err != nil {
		return err
	}
	if err := t.Report(o); err != nil {
		return err
	}
	disabled := t.Disabled()
	m.mu.Lock()
	//rocklint:allow metriccardinality -- signature labels are the managed-signature set this Manager owns; DESIGN.md §8 blesses signature on tuning series
	m.iterations.With(managedAlgo, signature).Inc()
	if b, ok := m.best[signature]; !ok || o.Time < b {
		m.best[signature] = o.Time
		//rocklint:allow metriccardinality -- signature labels are the managed-signature set this Manager owns; DESIGN.md §8 blesses signature on tuning series
		m.bestCost.With(managedAlgo, signature).Set(o.Time)
	}
	// Count guardrail trips on the disable edge only: a long disabled
	// stretch is one incident, not one per observation.
	if disabled && !m.tripped[signature] {
		//rocklint:allow metriccardinality -- signature labels are the managed-signature set this Manager owns; DESIGN.md §8 blesses signature on tuning series
		m.trips.With(signature).Inc()
	}
	m.tripped[signature] = disabled
	m.mu.Unlock()
	return nil
}

// signatureSeed hashes the signature into a stable seed; seq breaks ties for
// adversarially colliding strings.
func signatureSeed(sig string, seq uint64) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= 1099511628211
	}
	return h ^ (seq << 48)
}

// Len returns the number of managed signatures.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tuners)
}

// Signatures returns the managed signatures, sorted.
func (m *Manager) Signatures() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tuners))
	for s := range m.tuners {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Disabled returns the signatures whose guardrail has reverted tuning to the
// default configuration — the fleet health view of the monitoring dashboard.
func (m *Manager) Disabled() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for s, t := range m.tuners {
		if t.Disabled() {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Forget drops a signature's tuner (e.g. when its plan changes and it gets a
// new signature anyway, or on GDPR deletion of the customer's history).
func (m *Manager) Forget(signature string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.tuners, signature)
	delete(m.best, signature)
	delete(m.tripped, signature)
}
