package rockhopper

import (
	"fmt"
	"sort"
	"sync"
)

// Manager owns one Tuner per recurrent query signature — the per-query
// tuning model of the production deployment, where Fabric processes
// hundreds of thousands of query runs across thousands of signatures
// (Section 3.1's scalability discussion). It is safe for concurrent use by
// multiple query submission paths; each signature's tuner is still driven
// sequentially by its own recurrent runs.
type Manager struct {
	space *Space
	opts  []Option

	mu     sync.Mutex
	tuners map[string]*Tuner
	seq    uint64
}

// NewManager builds a manager that creates tuners over space with the given
// default options. Per-signature seeds are derived automatically so two
// signatures never share a random stream.
func NewManager(space *Space, opts ...Option) (*Manager, error) {
	if space == nil || space.Dim() == 0 {
		return nil, fmt.Errorf("rockhopper: a non-empty Space is required")
	}
	// Validate the option set once by building a probe tuner.
	if _, err := NewTuner(space, opts...); err != nil {
		return nil, err
	}
	return &Manager{space: space, opts: opts, tuners: make(map[string]*Tuner)}, nil
}

// Tuner returns the tuner for a query signature, creating it on first use.
func (m *Manager) Tuner(signature string) (*Tuner, error) {
	if signature == "" {
		return nil, fmt.Errorf("rockhopper: empty query signature")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tuners[signature]; ok {
		return t, nil
	}
	m.seq++
	opts := append(append([]Option(nil), m.opts...), WithSeed(signatureSeed(signature, m.seq)))
	t, err := NewTuner(m.space, opts...)
	if err != nil {
		return nil, err
	}
	m.tuners[signature] = t
	return t, nil
}

// Suggest returns the next configuration for a signature, creating its tuner
// on first use. The iteration index is the tuner's own observation count, so
// concurrent submission paths for the same signature stay consistent.
func (m *Manager) Suggest(signature string, expectedInputBytes float64) (Config, error) {
	t, err := m.Tuner(signature)
	if err != nil {
		return nil, err
	}
	return t.Suggest(expectedInputBytes), nil
}

// Observe reports an execution outcome for a signature, creating its tuner on
// first use (a cold start observed before any Suggest still counts).
func (m *Manager) Observe(signature string, o Observation) error {
	t, err := m.Tuner(signature)
	if err != nil {
		return err
	}
	return t.Report(o)
}

// signatureSeed hashes the signature into a stable seed; seq breaks ties for
// adversarially colliding strings.
func signatureSeed(sig string, seq uint64) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= 1099511628211
	}
	return h ^ (seq << 48)
}

// Len returns the number of managed signatures.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tuners)
}

// Signatures returns the managed signatures, sorted.
func (m *Manager) Signatures() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tuners))
	for s := range m.tuners {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Disabled returns the signatures whose guardrail has reverted tuning to the
// default configuration — the fleet health view of the monitoring dashboard.
func (m *Manager) Disabled() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for s, t := range m.tuners {
		if t.Disabled() {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Forget drops a signature's tuner (e.g. when its plan changes and it gets a
// new signature anyway, or on GDPR deletion of the customer's history).
func (m *Manager) Forget(signature string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.tuners, signature)
}
