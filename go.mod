module github.com/rockhopper-db/rockhopper

go 1.22
