package rockhopper

import (
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

// Monitoring types re-exported for library users (Section 6.3's dashboard).
type (
	// Dashboard records tuned executions for one query signature and
	// provides trend analysis, configuration traces, and root-cause
	// attribution of performance changes.
	Dashboard = monitor.Dashboard
	// Attribution is one configuration dimension's estimated contribution
	// to a performance change.
	Attribution = monitor.Attribution
	// StageStat is the per-operator execution breakdown from the simulator.
	StageStat = sparksim.StageStat
)

// NewDashboard returns an empty monitoring dashboard for a query signature.
func NewDashboard(space *Space, signature string) *Dashboard {
	return monitor.New(space, signature)
}

// SignatureOf computes the stable query signature of a plan: structurally
// identical plans at similar data magnitudes share a signature, which is the
// key production models and tuners are partitioned by.
func SignatureOf(p *Plan) string { return sparksim.Signature(p) }
