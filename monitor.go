package rockhopper

import (
	"io"
	"net/http"

	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// Monitoring types re-exported for library users (Section 6.3's dashboard).
type (
	// Dashboard records tuned executions for one query signature and
	// provides trend analysis, configuration traces, and root-cause
	// attribution of performance changes.
	Dashboard = monitor.Dashboard
	// Attribution is one configuration dimension's estimated contribution
	// to a performance change.
	Attribution = monitor.Attribution
	// StageStat is the per-operator execution breakdown from the simulator.
	StageStat = sparksim.StageStat
)

// NewDashboard returns an empty monitoring dashboard for a query signature.
func NewDashboard(space *Space, signature string) *Dashboard {
	return monitor.New(space, signature)
}

// SignatureOf computes the stable query signature of a plan: structurally
// identical plans at similar data magnitudes share a signature, which is the
// key production models and tuners are partitioned by.
func SignatureOf(p *Plan) string { return sparksim.Signature(p) }

// Telemetry types re-exported for library users, so the embedded view is the
// same one the daemons serve at /metrics (DESIGN.md §8).
type (
	// MetricsRegistry is a race-safe set of counters, gauges, and
	// histograms rendered in the Prometheus text exposition format.
	MetricsRegistry = telemetry.Registry
	// MetricFamily is one parsed metric family from a /metrics scrape.
	MetricFamily = telemetry.Family
	// MetricSeries is one parsed series (label tuple and value).
	MetricSeries = telemetry.Series
	// SpanContext is the trace/span identity carried on a context and sent
	// over the TraceHeader.
	SpanContext = telemetry.SpanContext
	// Span is one finished server-side span from the /api/trace ring.
	Span = telemetry.Span
)

// TraceHeader is the HTTP header carrying the client-minted trace identity.
const TraceHeader = telemetry.TraceHeader

// Metrics returns the process-global registry the daemons expose at
// /metrics. Components accept an injected *MetricsRegistry (Manager.
// SetMetrics, client.Client.Metrics, store.DurableOptions.Metrics); passing
// this one publishes them all on the shared endpoint.
func Metrics() *MetricsRegistry { return telemetry.Default() }

// MetricsHandler serves the global registry in Prometheus text format —
// mount it at /metrics in an embedding application.
func MetricsHandler() http.Handler { return telemetry.Default().Handler() }

// WriteMetrics renders the global registry to w in Prometheus text format.
func WriteMetrics(w io.Writer) error { return telemetry.Default().WritePrometheus(w) }

// ParseMetrics parses a Prometheus text exposition (e.g. a /metrics scrape)
// into metric families, name-sorted — the same parser cmd/rockmon uses.
func ParseMetrics(r io.Reader) ([]MetricFamily, error) { return telemetry.ParseText(r) }
