// Package rockhopper is a from-scratch reproduction of "Rockhopper: A Robust
// Optimizer for Spark Configuration Tuning in Production Environment"
// (SIGMOD-Companion '25): a noise-robust online configuration tuner for
// recurrent Spark queries built around the Centroid Learning algorithm, with
// workload-embedding transfer learning, an offline flighting phase, an
// app-level joint optimizer, and a production guardrail.
//
// The package is the library façade. A downstream user creates one Tuner per
// recurrent query signature and drives a simple loop:
//
//	tuner, _ := rockhopper.NewTuner(rockhopper.QuerySpace())
//	for i := 0; ; i++ {
//	    cfg := tuner.Recommend(i, expectedInputBytes)
//	    elapsed := runSparkQuery(cfg) // the user's own execution
//	    tuner.Report(rockhopper.Observation{
//	        Config: cfg, DataSize: actualInputBytes, Time: elapsed,
//	    })
//	}
//
// Everything the paper's evaluation needs beyond the tuner — the simulated
// Spark engine, benchmark workload generators, baseline optimizers, and the
// experiment harness — lives in internal packages and is exposed through
// cmd/rockbench and the examples.
package rockhopper

import (
	"fmt"
	"sync"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// Core types re-exported for library users.
type (
	// Config is a point in a configuration Space: one float per parameter.
	Config = sparksim.Config
	// Space is an ordered set of tunable Spark parameters.
	Space = sparksim.Space
	// Param describes a single tunable parameter.
	Param = sparksim.Param
	// Observation is one execution record fed back to the tuner.
	Observation = sparksim.Observation
	// BaselinePoint is one offline benchmark observation used for
	// warm-starting (transfer learning, Section 4.2 of the paper).
	BaselinePoint = tuners.BaselinePoint
	// Plan is a simulated Spark physical plan (for embeddings and the
	// bundled simulator).
	Plan = sparksim.Plan
	// Query is a recurrent query signature in the bundled simulator.
	Query = sparksim.Query
	// Engine is the bundled analytic Spark cost-model simulator.
	Engine = sparksim.Engine
)

// Spark parameter names tuned in production (Section 6.3).
const (
	MaxPartitionBytes    = sparksim.MaxPartitionBytes
	AutoBroadcastJoinThr = sparksim.AutoBroadcastJoinThr
	ShufflePartitions    = sparksim.ShufflePartitions
	ExecutorInstances    = sparksim.ExecutorInstances
	ExecutorMemoryGB     = sparksim.ExecutorMemoryGB
)

// QuerySpace returns the three query-level parameters Rockhopper tunes in
// production: spark.sql.files.maxPartitionBytes,
// spark.sql.autoBroadcastJoinThreshold, and spark.sql.shuffle.partitions.
func QuerySpace() *Space { return sparksim.QuerySpace() }

// FullSpace returns the seven-parameter space of the paper's manual-tuning
// study, adding executor sizing and off-heap memory at application level.
func FullSpace() *Space { return sparksim.FullSpace() }

// NewEngine returns the bundled Spark simulator over the given space; use it
// to experiment without a cluster.
func NewEngine(space *Space) *Engine { return sparksim.NewEngine(space) }

// NewBenchmarkQuery generates query idx of the synthetic TPC-DS-like (suite
// "tpcds", 99 queries) or TPC-H-like ("tpch", 22 queries) populations used
// throughout the evaluation.
func NewBenchmarkQuery(suite string, idx int, seed uint64) (*Query, error) {
	var s workloads.Suite
	switch suite {
	case "tpcds":
		s = workloads.TPCDS
	case "tpch":
		s = workloads.TPCH
	default:
		return nil, fmt.Errorf("rockhopper: unknown suite %q (want tpcds or tpch)", suite)
	}
	if idx < 1 || idx > s.QueryCount() {
		return nil, fmt.Errorf("rockhopper: %s has queries 1..%d, got %d", suite, s.QueryCount(), idx)
	}
	return workloads.NewGenerator(seed).Query(s, idx), nil
}

// EmbedPlan computes the virtual-operator workload embedding of a plan
// (Section 4.1), the context vector used for transfer learning.
func EmbedPlan(p *Plan) []float64 { return embedding.NewVirtual().Embed(p) }

// Params are the Centroid Learning hyperparameters (Algorithm 1).
type Params = core.Params

// DefaultParams mirrors the production configuration: α=0.08 overshoot,
// β=0.08 neighbourhood, window N=20, model-based FIND_BEST and
// model-probe FIND_GRADIENT.
func DefaultParams() Params { return core.DefaultParams() }

// Tuner tunes one recurrent query signature with Centroid Learning. All
// methods are safe for concurrent use; the tuner serializes them internally,
// matching the production setting where retries and speculative submissions
// of the same signature can overlap.
type Tuner struct {
	space *Space

	mu sync.Mutex
	cl *core.CentroidLearner
}

// Option customizes a Tuner.
type Option func(*tunerConfig)

type tunerConfig struct {
	seed      uint64
	params    *Params
	start     Config
	context   []float64
	warm      []BaselinePoint
	guardrail *core.Guardrail
	noGuard   bool
	svr       bool
}

// WithSeed fixes the tuner's random stream (default 1).
func WithSeed(seed uint64) Option { return func(c *tunerConfig) { c.seed = seed } }

// WithParams overrides the Centroid Learning hyperparameters.
func WithParams(p Params) Option { return func(c *tunerConfig) { c.params = &p } }

// WithStart sets the initial centroid (default: the space default). Use the
// customer's current configuration so iteration 0 cannot regress.
func WithStart(cfg Config) Option { return func(c *tunerConfig) { c.start = cfg.Clone() } }

// WithWarmStart supplies offline benchmark observations and the query's
// workload embedding for transfer learning (Section 4.2).
func WithWarmStart(context []float64, warm []BaselinePoint) Option {
	return func(c *tunerConfig) {
		c.context = append([]float64(nil), context...)
		c.warm = warm
	}
}

// WithGuardrail tunes the regression guardrail: monitoring starts at
// minIterations, and autotuning is disabled after `consecutive` checks whose
// predicted per-iteration growth exceeds threshold. Threshold 0 is the
// "extremely conservative" production policy.
func WithGuardrail(minIterations int, threshold float64, consecutive int) Option {
	return func(c *tunerConfig) {
		c.guardrail = &core.Guardrail{
			MinIterations: minIterations, Threshold: threshold,
			Consecutive: consecutive, Window: 40,
		}
	}
}

// WithoutGuardrail disables regression monitoring entirely.
func WithoutGuardrail() Option { return func(c *tunerConfig) { c.noGuard = true } }

// WithSVRSurrogate switches candidate selection from the default GP +
// Expected Improvement to the kernel-ridge ("SVR") predicted-mean surrogate
// of the paper's Figure 10 variant.
func WithSVRSurrogate() Option { return func(c *tunerConfig) { c.svr = true } }

// NewTuner builds a Centroid Learning tuner over the given space.
func NewTuner(space *Space, opts ...Option) (*Tuner, error) {
	if space == nil || space.Dim() == 0 {
		return nil, fmt.Errorf("rockhopper: a non-empty Space is required")
	}
	cfg := tunerConfig{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	root := stats.NewRNG(cfg.seed)
	sel := core.NewSurrogateSelector(space, cfg.context, cfg.warm, root.Split())
	if cfg.svr {
		sel.NewModel = func() ml.Regressor { return ml.NewKernelRidge() }
	}
	cl := core.New(space, sel, root.Split())
	if cfg.params != nil {
		cl.Params = *cfg.params
	}
	if cfg.start != nil {
		if len(cfg.start) != space.Dim() {
			return nil, fmt.Errorf("rockhopper: start config has %d values, space has %d", len(cfg.start), space.Dim())
		}
		cl.Start = cfg.start
	}
	if cfg.noGuard {
		cl.Guardrail = nil
	} else if cfg.guardrail != nil {
		cl.Guardrail = cfg.guardrail
	}
	return &Tuner{space: space, cl: cl}, nil
}

// Recommend returns the configuration to apply at iteration t (0-based).
// expectedInputBytes is the anticipated input size of the upcoming run; pass
// 0 when unknown.
func (t *Tuner) Recommend(iteration int, expectedInputBytes float64) Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cl.Propose(iteration, expectedInputBytes)
}

// Suggest is Recommend with the iteration index managed by the tuner: it uses
// the number of observations reported so far, read under the same lock as the
// proposal, so concurrent callers cannot observe a torn iteration counter.
// Prefer it when several submission paths drive one signature.
func (t *Tuner) Suggest(expectedInputBytes float64) Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cl.Propose(t.cl.Iterations(), expectedInputBytes)
}

// Report feeds an execution outcome back to the tuner. Config and Time are
// required; DataSize enables the size-aware FIND_BEST refinement.
func (t *Tuner) Report(o Observation) error {
	if len(o.Config) != t.space.Dim() {
		return fmt.Errorf("rockhopper: observation config has %d values, space has %d", len(o.Config), t.space.Dim())
	}
	if o.Time <= 0 {
		return fmt.Errorf("rockhopper: observation time must be positive, got %g", o.Time)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cl.Observe(o)
	return nil
}

// Disabled reports whether the guardrail has reverted this query to the
// default configuration.
func (t *Tuner) Disabled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cl.Disabled()
}

// Centroid exposes the current exploration anchor (monitoring/debugging).
func (t *Tuner) Centroid() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cl.Centroid()
}

// Space returns the tuner's configuration space.
func (t *Tuner) Space() *Space { return t.space }

// Save serializes the tuner's full state (centroid, observation history,
// guardrail trend, hyperparameters) so tuning can resume across process
// restarts. Warm-start data and the configuration space are not included;
// supply them again on Load.
func (t *Tuner) Save() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return core.EncodeSnapshot(t.cl.Snapshot())
}

// Load restores state saved by Save into a tuner built over an identical
// space (same parameters in the same order). Options given at construction
// (warm start, surrogate choice) are preserved; hyperparameters, history,
// and guardrail state come from the snapshot.
func (t *Tuner) Load(blob []byte) error {
	snap, err := core.DecodeSnapshot(blob)
	if err != nil {
		return err
	}
	if len(snap.Centroid) != 0 && len(snap.Centroid) != t.space.Dim() {
		return fmt.Errorf("rockhopper: snapshot is for a %d-dim space, tuner has %d", len(snap.Centroid), t.space.Dim())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cl.Restore(snap)
	return nil
}

// Iterations returns the number of observations reported so far — the
// iteration index to continue from after a Load.
func (t *Tuner) Iterations() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cl.Iterations()
}
