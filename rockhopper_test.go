package rockhopper

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func TestNewTunerValidation(t *testing.T) {
	if _, err := NewTuner(nil); err == nil {
		t.Fatal("nil space should error")
	}
	space := QuerySpace()
	if _, err := NewTuner(space, WithStart(Config{1})); err == nil {
		t.Fatal("bad start dimension should error")
	}
	if _, err := NewTuner(space); err != nil {
		t.Fatal(err)
	}
}

func TestTunerFirstRecommendationIsStart(t *testing.T) {
	space := QuerySpace()
	tn, err := NewTuner(space)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tn.Recommend(0, 0)
	def := space.Default()
	for i := range cfg {
		if cfg[i] != def[i] {
			t.Fatal("iteration 0 should be the default configuration")
		}
	}
	start := space.With(def, ShufflePartitions, 999)
	tn2, err := NewTuner(space, WithStart(start))
	if err != nil {
		t.Fatal(err)
	}
	if space.Get(tn2.Recommend(0, 0), ShufflePartitions) != 999 {
		t.Fatal("WithStart ignored")
	}
}

func TestTunerReportValidation(t *testing.T) {
	tn, _ := NewTuner(QuerySpace())
	if err := tn.Report(Observation{Config: Config{1}, Time: 5}); err == nil {
		t.Fatal("bad config dim should error")
	}
	if err := tn.Report(Observation{Config: QuerySpace().Default(), Time: 0}); err == nil {
		t.Fatal("non-positive time should error")
	}
	if err := tn.Report(Observation{Config: QuerySpace().Default(), Time: 5, DataSize: 1e9}); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndTuningImproves(t *testing.T) {
	// The full public-API loop on the bundled simulator under noise.
	space := QuerySpace()
	engine := NewEngine(space)
	q, err := NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner(space, WithSeed(7), WithoutGuardrail())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(11)
	nm := noise.Model{FL: 0.3, SL: 0.3}
	var first, tail []float64
	for i := 0; i < 80; i++ {
		cfg := tn.Recommend(i, q.Plan.LeafInputBytes())
		o := engine.Run(q, cfg, 1, r, nm)
		o.Iteration = i
		if err := tn.Report(o); err != nil {
			t.Fatal(err)
		}
		if i < 5 {
			first = append(first, o.TrueTime)
		}
		if i >= 65 {
			tail = append(tail, o.TrueTime)
		}
	}
	if stats.Median(tail) >= stats.Median(first) {
		t.Fatalf("tuning should improve: first=%g tail=%g", stats.Median(first), stats.Median(tail))
	}
}

func TestNewBenchmarkQuery(t *testing.T) {
	if _, err := NewBenchmarkQuery("oops", 1, 1); err == nil {
		t.Fatal("unknown suite should error")
	}
	if _, err := NewBenchmarkQuery("tpch", 23, 1); err == nil {
		t.Fatal("out-of-range query should error")
	}
	q, err := NewBenchmarkQuery("tpch", 22, 1)
	if err != nil || q == nil {
		t.Fatal(err)
	}
	if q.ID != "tpch-q22" {
		t.Fatalf("id = %s", q.ID)
	}
}

func TestEmbedPlan(t *testing.T) {
	q, _ := NewBenchmarkQuery("tpcds", 7, 1)
	vec := EmbedPlan(q.Plan)
	if len(vec) == 0 {
		t.Fatal("empty embedding")
	}
	for _, v := range vec {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad embedding value %g", v)
		}
	}
}

func TestWarmStartOption(t *testing.T) {
	space := QuerySpace()
	engine := NewEngine(space)
	q, _ := NewBenchmarkQuery("tpcds", 2, 99)
	r := stats.NewRNG(3)
	var warm []BaselinePoint
	ctx := EmbedPlan(q.Plan)
	for i := 0; i < 80; i++ {
		cfg := space.Random(r)
		warm = append(warm, BaselinePoint{
			Context: ctx, Config: cfg,
			DataSize: q.Plan.LeafInputBytes(),
			Time:     engine.TrueTime(q, cfg, 1),
		})
	}
	tn, err := NewTuner(space, WithWarmStart(ctx, warm), WithoutGuardrail(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started selection should beat the default within few iterations
	// noiselessly.
	var best float64 = math.Inf(1)
	for i := 0; i < 10; i++ {
		cfg := tn.Recommend(i, q.Plan.LeafInputBytes())
		tt := engine.TrueTime(q, cfg, 1)
		if tt < best {
			best = tt
		}
		if err := tn.Report(Observation{Config: cfg, DataSize: q.Plan.LeafInputBytes(), Time: tt}); err != nil {
			t.Fatal(err)
		}
	}
	def := engine.TrueTime(q, space.Default(), 1)
	if best >= def {
		t.Fatalf("warm start should find something better than default quickly: %g vs %g", best, def)
	}
}

func TestGuardrailOptionDisables(t *testing.T) {
	space := QuerySpace()
	tn, err := NewTuner(space, WithGuardrail(10, 0.005, 2), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !tn.Disabled(); i++ {
		cfg := tn.Recommend(i, 1e9)
		// Steeply regressing synthetic feedback.
		if err := tn.Report(Observation{Config: cfg, DataSize: 1e9, Time: 1000 * math.Pow(1.15, float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if !tn.Disabled() {
		t.Fatal("guardrail should have disabled the tuner")
	}
	def := space.Default()
	cfg := tn.Recommend(99, 0)
	for i := range cfg {
		if cfg[i] != def[i] {
			t.Fatal("disabled tuner must recommend the default")
		}
	}
}

func TestSVRSurrogateOption(t *testing.T) {
	tn, err := NewTuner(QuerySpace(), WithSVRSurrogate(), WithoutGuardrail())
	if err != nil {
		t.Fatal(err)
	}
	// Smoke: the SVR-backed tuner runs a few iterations without error.
	for i := 0; i < 8; i++ {
		cfg := tn.Recommend(i, 1e9)
		if err := tn.Report(Observation{Config: cfg, DataSize: 1e9, Time: 1000 + float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.N = 7
	tn, err := NewTuner(QuerySpace(), WithParams(p), WithoutGuardrail())
	if err != nil {
		t.Fatal(err)
	}
	_ = tn.Centroid()
	if tn.Space().Dim() != 3 {
		t.Fatal("space accessor wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	space := QuerySpace()
	engine := NewEngine(space)
	q, _ := NewBenchmarkQuery("tpcds", 2, 99)
	tn, err := NewTuner(space, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(4)
	for i := 0; i < 25; i++ {
		cfg := tn.Recommend(i, q.Plan.LeafInputBytes())
		o := engine.Run(q, cfg, 1, r, noise.Low)
		o.Iteration = i
		if err := tn.Report(o); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := tn.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewTuner(space, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Iterations() != 25 {
		t.Fatalf("iterations = %d; want 25", restored.Iterations())
	}
	a := restored.Centroid()
	b := tn.Centroid()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("centroid drift after restore: %v vs %v", a, b)
		}
	}
	// The restored tuner must keep working.
	cfg := restored.Recommend(25, q.Plan.LeafInputBytes())
	if err := restored.Report(engine.Run(q, cfg, 1, r, noise.Low)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsWrongSpace(t *testing.T) {
	tn, _ := NewTuner(FullSpace())
	def := FullSpace().Default()
	for i := 0; i < 5; i++ {
		_ = tn.Recommend(i, 1e9)
		if err := tn.Report(Observation{Config: def, DataSize: 1e9, Time: 100}); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := tn.Save()
	if err != nil {
		t.Fatal(err)
	}
	other, _ := NewTuner(QuerySpace())
	if err := other.Load(blob); err == nil {
		t.Fatal("loading a 7-dim snapshot into a 3-dim tuner should fail")
	}
	if err := other.Load([]byte("junk")); err == nil {
		t.Fatal("garbage snapshot should fail")
	}
}

func TestSaveLoadPreservesDisabled(t *testing.T) {
	tn, _ := NewTuner(QuerySpace(), WithGuardrail(5, 0.005, 2))
	for i := 0; i < 60 && !tn.Disabled(); i++ {
		cfg := tn.Recommend(i, 1e9)
		if err := tn.Report(Observation{Config: cfg, DataSize: 1e9, Time: 1000 * math.Pow(1.15, float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if !tn.Disabled() {
		t.Fatal("setup: tuner should be disabled")
	}
	blob, _ := tn.Save()
	back, _ := NewTuner(QuerySpace(), WithGuardrail(5, 0.005, 2))
	if err := back.Load(blob); err != nil {
		t.Fatal(err)
	}
	if !back.Disabled() {
		t.Fatal("disabled flag lost in round trip")
	}
}
