package tuners

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// BaselinePoint is one offline observation from the flighting pipeline used
// to warm-start contextual surrogates: the embedding of the benchmark query
// it came from, the configuration, the input size, and the measured time.
type BaselinePoint struct {
	Context  []float64
	Config   sparksim.Config
	DataSize float64
	Time     float64
}

// BO is vanilla Bayesian Optimization with a Gaussian-process surrogate and
// Expected Improvement acquisition over the full configuration space. It is
// the primary model-guided baseline (Figure 2a, Figure 13) and, with a
// context vector and warm-start data, becomes Contextual BO (Figure 12).
type BO struct {
	Space *sparksim.Space
	RNG   *stats.RNG
	// Context is the workload embedding prepended to surrogate features;
	// nil yields vanilla (non-contextual) BO.
	Context []float64
	// Warm supplies offline baseline observations (Section 4.2). They are
	// folded into every surrogate fit alongside the query's own history.
	Warm []BaselinePoint
	// Candidates is the number of random acquisition candidates per
	// iteration (default 128).
	Candidates int
	// InitRandom is the number of leading iterations run at random
	// configurations before the surrogate takes over (default 3; 0 is
	// honoured when warm-start data is present).
	InitRandom int
	// Xi is the EI exploration margin relative to the observed time scale.
	Xi float64
	// MaxRows caps the surrogate design matrix (default 220): the GP fit is
	// O(n³) and sits on the job-submission critical path (Section 3.1).
	MaxRows int
	// Start overrides the iteration-0 configuration; nil means the space
	// default. Figure 13 starts from an intentionally poor configuration.
	Start sparksim.Config
	// LogTime fits the surrogate on log1p(time); production times are
	// heavy-tailed, and the log transform is what keeps spikes from
	// dominating the GP fit.
	LogTime bool
	// RefitEvery caps how many incremental O(n²) GP.Observe extensions run
	// between full O(n³) refits (default 32). A full refit also triggers
	// whenever the design has grown ≥50% since the last one, so the frozen
	// feature scaler tracks the data while the model is small and refits
	// become rare as it grows; 1 restores the legacy refit-every-iteration
	// behavior.
	RefitEvery int

	hist History
	name string

	// Incremental-surrogate state: the persistent GP, the number of design
	// rows it has absorbed, and the incremental extensions since the last
	// full refit.
	gp       *ml.GP
	gpRows   int
	sinceFit int
}

// NewBO returns a vanilla Bayesian Optimization tuner.
func NewBO(space *sparksim.Space, rng *stats.RNG) *BO {
	return &BO{
		Space: space, RNG: rng,
		Candidates: 128, InitRandom: 3, Xi: 0.01, LogTime: true,
		name: "bo",
	}
}

// NewCBO returns Contextual BO: the workload embedding is part of the
// surrogate features and warm-start points transfer benchmark knowledge.
func NewCBO(space *sparksim.Space, rng *stats.RNG, context []float64, warm []BaselinePoint) *BO {
	b := NewBO(space, rng)
	b.Context = context
	b.Warm = warm
	if len(warm) > 0 {
		b.InitRandom = 0
	}
	b.name = "cbo"
	return b
}

// Name implements Tuner.
func (b *BO) Name() string { return b.name }

// Observe implements Tuner. When a surrogate is live and under its row cap,
// the observation is folded in through the O(n²) incremental GP.Observe path
// instead of scheduling an O(n³) refit; past the cap (or the RefitEvery
// staleness bound) the surrogate is dropped so the next Propose refits on
// the capped window, exactly as before.
func (b *BO) Observe(o sparksim.Observation) {
	b.hist.Add(o)
	if b.gp == nil {
		return
	}
	maxRows := b.MaxRows
	if maxRows <= 0 {
		maxRows = 220
	}
	refitEvery := b.RefitEvery
	if refitEvery <= 0 {
		refitEvery = 32
	}
	grownHalf := b.sinceFit > 0 && 2*b.sinceFit >= b.gpRows-b.sinceFit
	if b.gpRows >= maxRows || b.sinceFit >= refitEvery || grownHalf {
		b.gp = nil
		return
	}
	x := ConfigFeatures(b.Space, b.Context, o.Config, o.DataSize)
	if err := b.gp.Observe(x, b.transform(o.Time)); err != nil {
		b.gp = nil
		return
	}
	b.gpRows++
	b.sinceFit++
}

// Propose implements Tuner.
func (b *BO) Propose(t int, dataSize float64) sparksim.Config {
	if t == 0 {
		if b.Start != nil {
			return b.Start.Clone()
		}
		return b.Space.Default()
	}
	if b.hist.Len() < b.InitRandom {
		return b.Space.Random(b.RNG)
	}
	gp, best, ok := b.fitSurrogate(dataSize)
	if !ok {
		return b.Space.Random(b.RNG)
	}
	cands := b.candidateSet()
	bestIdx, bestEI := 0, math.Inf(-1)
	for i, c := range cands {
		x := ConfigFeatures(b.Space, b.Context, c, dataSize)
		ei := gp.ExpectedImprovement(x, best, b.Xi*math.Abs(best))
		if ei > bestEI {
			bestIdx, bestEI = i, ei
		}
	}
	return cands[bestIdx]
}

// candidateSet samples acquisition candidates uniformly from the space.
func (b *BO) candidateSet() []sparksim.Config {
	n := b.Candidates
	if n <= 0 {
		n = 128
	}
	out := make([]sparksim.Config, 0, n+1)
	out = append(out, b.Space.Default())
	for i := 0; i < n; i++ {
		out = append(out, b.Space.Random(b.RNG))
	}
	return out
}

// fitSurrogate returns the live incremental GP, or trains a fresh one on
// warm-start plus query history, together with the incumbent best
// (transformed) response.
func (b *BO) fitSurrogate(dataSize float64) (*ml.GP, float64, bool) {
	if b.gp != nil {
		return b.gp, b.incumbent(), true
	}
	gp, rows, ok := b.fullFit(dataSize)
	if !ok {
		return nil, 0, false
	}
	b.gp, b.gpRows, b.sinceFit = gp, rows, 0
	return b.gp, b.incumbent(), true
}

// fullFit trains the GP from scratch on warm-start plus query history and
// returns the number of design rows it absorbed.
func (b *BO) fullFit(dataSize float64) (*ml.GP, int, bool) {
	n := len(b.Warm) + b.hist.Len()
	if n < 2 {
		return nil, 0, false
	}
	// Cap the design size to keep the O(n³) GP fit on the inference-latency
	// budget (Section 3.1): prefer the query's own history, fill the
	// remainder with a random subsample of warm-start points.
	maxRows := b.MaxRows
	if maxRows <= 0 {
		maxRows = 220
	}
	x := make([][]float64, 0, n)
	y := make([]float64, 0, n)
	warm := b.Warm
	if len(warm)+b.hist.Len() > maxRows && b.hist.Len() < maxRows {
		keep := maxRows - b.hist.Len()
		idx := b.RNG.Perm(len(warm))[:keep]
		sub := make([]BaselinePoint, 0, keep)
		for _, i := range idx {
			sub = append(sub, warm[i])
		}
		warm = sub
	}
	for _, w := range warm {
		ctx := w.Context
		if b.Context == nil {
			ctx = nil
		}
		x = append(x, ConfigFeatures(b.Space, ctx, w.Config, w.DataSize))
		y = append(y, b.transform(w.Time))
	}
	for _, o := range b.hist.Window(maxRows) {
		x = append(x, ConfigFeatures(b.Space, b.Context, o.Config, o.DataSize))
		y = append(y, b.transform(o.Time))
	}
	_ = dataSize
	gp := ml.NewGP()
	gp.Kernel.LengthScale = 0.7
	gp.Noise = 0.2
	if err := gp.Fit(x, y); err != nil {
		return nil, 0, false
	}
	return gp, len(x), true
}

// incumbent is the EI reference: the best of THIS query's own observations.
// Warm points describe other workloads whose absolute times are not
// comparable; using their global minimum would flatten EI to near zero for
// any slower target query. With no own history yet it falls back to the
// surrogate's training minimum.
func (b *BO) incumbent() float64 {
	best := math.Inf(1)
	for _, o := range b.hist.Obs {
		if v := b.transform(o.Time); v < best {
			best = v
		}
	}
	if math.IsInf(best, 1) && b.gp != nil {
		// No own observations: fall back to the warm-start minimum on the
		// transformed scale.
		for _, w := range b.Warm {
			if v := b.transform(w.Time); v < best {
				best = v
			}
		}
	}
	return best
}

func (b *BO) transform(t float64) float64 {
	if b.LogTime {
		return math.Log1p(t)
	}
	return t
}

var _ Tuner = (*BO)(nil)
