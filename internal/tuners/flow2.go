package tuners

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// FLOW2 is the frugal gradientless descent of Wu, Wang & Huang (AAAI'21),
// the optimizer inside FLAML and one of the paper's greedy baselines
// (Figure 2b). It keeps an incumbent configuration and a step size; each
// iteration probes the incumbent displaced by a random unit direction in the
// normalized space (then the opposite direction if the first fails), moving
// on improvement and shrinking the step after both directions fail.
//
// Its defining weakness in production — the reason Centroid Learning exists —
// is that accept/reject decisions compare exactly two noisy observations, so
// a single fluctuation or spike can move the incumbent the wrong way.
type FLOW2 struct {
	Space *sparksim.Space
	RNG   *stats.RNG
	// Step0 is the initial relative step size in normalized space.
	Step0 float64
	// MinStep stops step shrinking (FLOW2's lower bound).
	MinStep float64
	// Start is the initial incumbent; nil means the space default.
	Start sparksim.Config

	incumbent     sparksim.Config
	incumbentCost float64
	step          float64
	dir           []float64 // current probe direction
	triedOpposite bool
	pending       sparksim.Config
	havePending   bool
	hist          History
}

// NewFLOW2 returns a FLOW2 tuner with the canonical step schedule.
func NewFLOW2(space *sparksim.Space, rng *stats.RNG) *FLOW2 {
	return &FLOW2{Space: space, RNG: rng, Step0: 0.1, MinStep: 0.005}
}

// Name implements Tuner.
func (f *FLOW2) Name() string { return "flow2" }

// Propose implements Tuner.
func (f *FLOW2) Propose(t int, _ float64) sparksim.Config {
	if t == 0 || f.incumbent == nil {
		start := f.Start
		if start == nil {
			start = f.Space.Default()
		}
		f.pending = start.Clone()
		f.havePending = true
		return f.pending
	}
	if f.step == 0 {
		f.step = f.Step0
	}
	var probe []float64
	u := f.Space.Normalize(f.incumbent)
	if f.dir != nil && !f.triedOpposite {
		// Second leg: probe the opposite direction.
		probe = addScaled(u, f.dir, -f.step)
		f.triedOpposite = true
	} else {
		f.dir = f.randomUnit(len(u))
		f.triedOpposite = false
		probe = addScaled(u, f.dir, +f.step)
	}
	f.pending = f.Space.Denormalize(probe)
	f.havePending = true
	return f.pending
}

// Observe implements Tuner.
func (f *FLOW2) Observe(o sparksim.Observation) {
	f.hist.Add(o)
	if !f.havePending {
		return
	}
	f.havePending = false
	if f.incumbent == nil {
		f.incumbent = o.Config.Clone()
		f.incumbentCost = o.Time
		return
	}
	if o.Time < f.incumbentCost {
		// Improvement: move and keep exploring fresh directions.
		f.incumbent = o.Config.Clone()
		f.incumbentCost = o.Time
		f.dir = nil
		f.triedOpposite = false
		return
	}
	if f.triedOpposite {
		// Both directions failed: shrink the step, bounded below.
		f.step *= 0.7
		if f.step < f.MinStep {
			f.step = f.MinStep
		}
		f.dir = nil
		f.triedOpposite = false
	}
}

// Incumbent exposes the current best-known configuration (for tests and the
// monitoring dashboard).
func (f *FLOW2) Incumbent() sparksim.Config { return f.incumbent }

func (f *FLOW2) randomUnit(dim int) []float64 {
	v := make([]float64, dim)
	var norm float64
	for norm < 1e-9 {
		norm = 0
		for i := range v {
			v[i] = f.RNG.NormFloat64()
			norm += v[i] * v[i]
		}
	}
	inv := 1 / math.Sqrt(norm)
	for i := range v {
		v[i] *= inv
	}
	return v
}

func addScaled(u, d []float64, s float64) []float64 {
	out := make([]float64, len(u))
	for i := range u {
		out[i] = stats.Clamp(u[i]+s*d[i], 0, 1)
	}
	return out
}

// HillClimb greedily evaluates axis-aligned neighbours of the incumbent,
// moving whenever the observed time improves — the classic manual-tuning
// strategy (Section 4.3's "hill-climbing" reference). Like FLOW2 it trusts
// single observations, so noise derails it.
type HillClimb struct {
	Space *sparksim.Space
	RNG   *stats.RNG
	// Step is the relative axis step in normalized space.
	Step float64
	// Start is the initial incumbent; nil means the space default.
	Start sparksim.Config

	incumbent     sparksim.Config
	incumbentCost float64
	queue         []sparksim.Config
	hist          History
}

// NewHillClimb returns a hill-climbing tuner.
func NewHillClimb(space *sparksim.Space, rng *stats.RNG) *HillClimb {
	return &HillClimb{Space: space, RNG: rng, Step: 0.08}
}

// Name implements Tuner.
func (h *HillClimb) Name() string { return "hillclimb" }

// Propose implements Tuner.
func (h *HillClimb) Propose(t int, _ float64) sparksim.Config {
	if t == 0 || h.incumbent == nil {
		start := h.Start
		if start == nil {
			start = h.Space.Default()
		}
		return start.Clone()
	}
	if len(h.queue) == 0 {
		h.queue = h.Space.AxisNeighbors(h.incumbent, h.Step)
		h.RNG.Shuffle(len(h.queue), func(i, j int) { h.queue[i], h.queue[j] = h.queue[j], h.queue[i] })
	}
	next := h.queue[0]
	h.queue = h.queue[1:]
	return next
}

// Observe implements Tuner.
func (h *HillClimb) Observe(o sparksim.Observation) {
	h.hist.Add(o)
	if h.incumbent == nil {
		h.incumbent = o.Config.Clone()
		h.incumbentCost = o.Time
		return
	}
	if o.Time < h.incumbentCost {
		h.incumbent = o.Config.Clone()
		h.incumbentCost = o.Time
		h.queue = nil // re-centre the neighbourhood
	}
}

// Incumbent exposes the current best-known configuration.
func (h *HillClimb) Incumbent() sparksim.Config { return h.incumbent }

var (
	_ Tuner = (*FLOW2)(nil)
	_ Tuner = (*HillClimb)(nil)
)
