package tuners

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func setup() (*sparksim.Engine, *sparksim.Query) {
	e := sparksim.NewEngine(sparksim.QuerySpace())
	q := workloads.NewGenerator(99).Query(workloads.TPCDS, 2)
	return e, q
}

func drive(e *sparksim.Engine, q *sparksim.Query, tn Tuner, iters int, nm noise.Model, seed uint64) []float64 {
	r := stats.NewRNG(seed)
	traj := make([]float64, iters)
	for i := 0; i < iters; i++ {
		cfg := tn.Propose(i, q.Plan.LeafInputBytes())
		o := e.Run(q, cfg, 1, r, nm)
		o.Iteration = i
		tn.Observe(o)
		traj[i] = o.TrueTime
	}
	return traj
}

func TestAllTunersStartAtDefault(t *testing.T) {
	e, _ := setup()
	r := stats.NewRNG(1)
	for _, tn := range []Tuner{
		NewRandomSearch(e.Space, r.Split()),
		NewBO(e.Space, r.Split()),
		NewFLOW2(e.Space, r.Split()),
		NewHillClimb(e.Space, r.Split()),
	} {
		cfg := tn.Propose(0, 0)
		def := e.Space.Default()
		for i := range cfg {
			if cfg[i] != def[i] {
				t.Fatalf("%s iteration 0 should be default", tn.Name())
			}
		}
	}
}

func TestProposalsAreLegal(t *testing.T) {
	e, q := setup()
	r := stats.NewRNG(2)
	for _, tn := range []Tuner{
		NewRandomSearch(e.Space, r.Split()),
		NewBO(e.Space, r.Split()),
		NewFLOW2(e.Space, r.Split()),
		NewHillClimb(e.Space, r.Split()),
	} {
		rr := stats.NewRNG(3)
		for i := 0; i < 30; i++ {
			cfg := tn.Propose(i, q.Plan.LeafInputBytes())
			for j, p := range e.Space.Params {
				if cfg[j] < p.Min || cfg[j] > p.Max {
					t.Fatalf("%s proposed illegal %s = %g", tn.Name(), p.Name, cfg[j])
				}
			}
			tn.Observe(e.Run(q, cfg, 1, rr, noise.Low))
		}
	}
}

func TestBOImprovesNoiseless(t *testing.T) {
	e, q := setup()
	bo := NewBO(e.Space, stats.NewRNG(4))
	traj := drive(e, q, bo, 60, noise.None, 5)
	def := traj[0]
	best := stats.Min(traj)
	if best >= def*0.95 {
		t.Fatalf("BO found nothing: default=%g best=%g", def, best)
	}
}

func TestBODegradesUnderHighNoise(t *testing.T) {
	// The Figure 2 phenomenon: under FL=1/SL=1 noise, vanilla BO's
	// trajectory keeps visiting bad configurations late into the run; its
	// recent true-time spread stays wide compared to a noiseless run.
	e, q := setup()
	clean := drive(e, q, NewBO(e.Space, stats.NewRNG(6)), 80, noise.None, 7)
	noisy := drive(e, q, NewBO(e.Space, stats.NewRNG(6)), 80, noise.High, 7)
	cleanSpread := stats.Quantile(clean[40:], 0.95) - stats.Quantile(clean[40:], 0.05)
	noisySpread := stats.Quantile(noisy[40:], 0.95) - stats.Quantile(noisy[40:], 0.05)
	if noisySpread <= cleanSpread {
		t.Fatalf("noise should widen BO's late trajectory: clean=%g noisy=%g", cleanSpread, noisySpread)
	}
}

func TestCBOWarmStartHelpsEarly(t *testing.T) {
	e, q := setup()
	r := stats.NewRNG(8)
	// Warm data: the true surface sampled at random configs for the same
	// query (idealised transfer).
	var warm []BaselinePoint
	ctx := []float64{1, 2} // fixed toy context
	for i := 0; i < 150; i++ {
		cfg := e.Space.Random(r)
		warm = append(warm, BaselinePoint{
			Context: ctx, Config: cfg,
			DataSize: q.Plan.LeafInputBytes(),
			Time:     e.TrueTime(q, cfg, 1),
		})
	}
	cold := drive(e, q, NewBO(e.Space, stats.NewRNG(9)), 15, noise.None, 10)
	warmT := drive(e, q, NewCBO(e.Space, stats.NewRNG(9), ctx, warm), 15, noise.None, 10)
	if stats.Mean(warmT[1:]) >= stats.Mean(cold[1:]) {
		t.Fatalf("warm start should help early: warm=%g cold=%g",
			stats.Mean(warmT[1:]), stats.Mean(cold[1:]))
	}
}

func TestFLOW2DescendsNoiseless(t *testing.T) {
	e, q := setup()
	f := NewFLOW2(e.Space, stats.NewRNG(11))
	traj := drive(e, q, f, 120, noise.None, 12)
	if stats.Mean(traj[100:]) >= traj[0]*0.97 {
		t.Fatalf("FLOW2 failed to descend noiselessly: start=%g final=%g", traj[0], stats.Mean(traj[100:]))
	}
	if f.Incumbent() == nil {
		t.Fatal("incumbent not tracked")
	}
}

func TestFLOW2MisledByNoise(t *testing.T) {
	// A spike on the incumbent's own evaluation can anchor FLOW2 to a bad
	// point; statistically its noisy improvement should be much smaller
	// than its noiseless improvement (the paper's core criticism).
	e, q := setup()
	var cleanGain, noisyGain []float64
	for s := uint64(0); s < 6; s++ {
		clean := drive(e, q, NewFLOW2(e.Space, stats.NewRNG(100+s)), 100, noise.None, 200+s)
		noisy := drive(e, q, NewFLOW2(e.Space, stats.NewRNG(100+s)), 100, noise.High, 300+s)
		cleanGain = append(cleanGain, clean[0]-stats.Mean(clean[80:]))
		noisyGain = append(noisyGain, noisy[0]-stats.Mean(noisy[80:]))
	}
	if stats.Median(noisyGain) >= stats.Median(cleanGain) {
		t.Fatalf("noise should hurt FLOW2: clean gain=%g noisy gain=%g",
			stats.Median(cleanGain), stats.Median(noisyGain))
	}
}

func TestHillClimbMovesOnImprovement(t *testing.T) {
	e, q := setup()
	h := NewHillClimb(e.Space, stats.NewRNG(13))
	drive(e, q, h, 60, noise.None, 14)
	if h.Incumbent() == nil {
		t.Fatal("no incumbent")
	}
	inc := e.TrueTime(q, h.Incumbent(), 1)
	def := e.TrueTime(q, e.Space.Default(), 1)
	if inc > def {
		t.Fatalf("noiseless hill climbing should not end worse than default: %g vs %g", inc, def)
	}
}

func TestFLOW2CustomStart(t *testing.T) {
	e, _ := setup()
	start := e.Space.With(e.Space.Default(), sparksim.ShufflePartitions, 1777)
	f := NewFLOW2(e.Space, stats.NewRNG(15))
	f.Start = start
	cfg := f.Propose(0, 0)
	if e.Space.Get(cfg, sparksim.ShufflePartitions) != 1777 {
		t.Fatal("custom start ignored")
	}
}

func TestConfigFeaturesLayout(t *testing.T) {
	e, _ := setup()
	cfg := e.Space.Default()
	ctx := []float64{7, 8}
	x := ConfigFeatures(e.Space, ctx, cfg, 1e9)
	if len(x) != 2+e.Space.Dim()+1 {
		t.Fatalf("feature width = %d", len(x))
	}
	if x[0] != 7 || x[1] != 8 {
		t.Fatal("context must lead the feature vector")
	}
	if math.Abs(x[len(x)-1]-math.Log1p(1e9)) > 1e-12 {
		t.Fatal("data size must be log-transformed at the tail")
	}
	bare := ConfigFeatures(e.Space, nil, cfg, 0)
	if len(bare) != e.Space.Dim()+1 {
		t.Fatal("nil context layout wrong")
	}
}

func TestRandomSearchExplores(t *testing.T) {
	e, _ := setup()
	rs := NewRandomSearch(e.Space, stats.NewRNG(16))
	seen := map[float64]bool{}
	for i := 1; i < 30; i++ {
		cfg := rs.Propose(i, 0)
		seen[e.Space.Get(cfg, sparksim.ShufflePartitions)] = true
	}
	if len(seen) < 20 {
		t.Fatalf("random search insufficiently diverse: %d distinct", len(seen))
	}
}

func TestOPPerTuneDescendsNoiseless(t *testing.T) {
	e, q := setup()
	op := NewOPPerTune(e.Space, stats.NewRNG(31))
	traj := drive(e, q, op, 200, noise.None, 32)
	final := e.TrueTime(q, op.Center(), 1)
	if final >= traj[0]*0.97 {
		t.Fatalf("OPPerTune center should descend noiselessly: start=%g center=%g", traj[0], final)
	}
}

func TestOPPerTuneProposalsLegal(t *testing.T) {
	e, q := setup()
	op := NewOPPerTune(e.Space, stats.NewRNG(33))
	r := stats.NewRNG(34)
	for i := 0; i < 40; i++ {
		cfg := op.Propose(i, 0)
		for j, p := range e.Space.Params {
			if cfg[j] < p.Min || cfg[j] > p.Max {
				t.Fatalf("illegal %s = %g", p.Name, cfg[j])
			}
		}
		op.Observe(e.Run(q, cfg, 1, r, noise.Low))
	}
}

func TestOPPerTuneHurtByNoise(t *testing.T) {
	// The two-point gradient is built from two noisy runs; under high noise
	// the center should make much less progress than noiselessly.
	e, q := setup()
	var cleanGain, noisyGain []float64
	def := e.TrueTime(q, e.Space.Default(), 1)
	for s := uint64(0); s < 5; s++ {
		opClean := NewOPPerTune(e.Space, stats.NewRNG(400+s))
		drive(e, q, opClean, 150, noise.None, 500+s)
		cleanGain = append(cleanGain, def-e.TrueTime(q, opClean.Center(), 1))
		opNoisy := NewOPPerTune(e.Space, stats.NewRNG(400+s))
		drive(e, q, opNoisy, 150, noise.High, 600+s)
		noisyGain = append(noisyGain, def-e.TrueTime(q, opNoisy.Center(), 1))
	}
	if stats.Median(noisyGain) >= stats.Median(cleanGain) {
		t.Fatalf("noise should hurt the bandit: clean=%g noisy=%g",
			stats.Median(cleanGain), stats.Median(noisyGain))
	}
}

func TestOPPerTuneCustomStart(t *testing.T) {
	e, _ := setup()
	start := e.Space.With(e.Space.Default(), sparksim.ShufflePartitions, 1234)
	op := NewOPPerTune(e.Space, stats.NewRNG(35))
	op.Start = start
	cfg := op.Propose(0, 0)
	if e.Space.Get(cfg, sparksim.ShufflePartitions) != 1234 {
		t.Fatal("custom start ignored")
	}
}

func TestHistoryEmpty(t *testing.T) {
	var h History
	if _, ok := h.BestObserved(); ok {
		t.Fatal("empty history should have no best")
	}
	if len(h.Window(5)) != 0 {
		t.Fatal("empty window should be empty")
	}
}
