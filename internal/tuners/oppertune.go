package tuners

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// OPPerTune is a simplified reimplementation of the bandit-style
// post-deployment tuner the paper groups with hill climbing and FLOW2
// (Section 4.3): a two-point bandit gradient descent (the Bluefin scheme).
// The tuner keeps a center w and alternates mirrored perturbations
// w ± δ·u with a random unit direction u; after observing both rewards it
// takes the one-step gradient estimate
//
//	ĝ = (dim/(2δ)) · (f(w+δu) − f(w−δu)) · u
//
// and descends w ← w − η·ĝ. Like the other single-observation methods, the
// gradient estimate is built from exactly two noisy runs, which is what
// Centroid Learning's windowed statistics are designed to fix.
type OPPerTune struct {
	Space *sparksim.Space
	RNG   *stats.RNG
	// Delta is the perturbation radius in normalized space.
	Delta float64
	// Eta is the descent step size applied to the normalized gradient.
	Eta float64
	// Start is the initial center; nil means the space default.
	Start sparksim.Config

	center []float64
	dir    []float64
	// plusTime holds the first leg's observation while the mirrored leg
	// runs; NaN marks "no pending first leg".
	plusTime float64
	phase    int // 0 = propose +δ next, 1 = propose −δ next
	hist     History
}

// NewOPPerTune returns a tuner with the reference hyperparameters.
func NewOPPerTune(space *sparksim.Space, rng *stats.RNG) *OPPerTune {
	return &OPPerTune{Space: space, RNG: rng, Delta: 0.08, Eta: 0.02, plusTime: math.NaN()}
}

// Name implements Tuner.
func (o *OPPerTune) Name() string { return "oppertune" }

// Propose implements Tuner.
func (o *OPPerTune) Propose(t int, _ float64) sparksim.Config {
	if t == 0 || o.center == nil {
		start := o.Start
		if start == nil {
			start = o.Space.Default()
		}
		o.center = o.Space.Normalize(start)
		return start.Clone()
	}
	if o.phase == 0 {
		o.dir = o.randomUnit(len(o.center))
	}
	sign := 1.0
	if o.phase == 1 {
		sign = -1
	}
	probe := make([]float64, len(o.center))
	for j := range probe {
		probe[j] = stats.Clamp(o.center[j]+sign*o.Delta*o.dir[j], 0, 1)
	}
	return o.Space.Denormalize(probe)
}

// Observe implements Tuner.
func (o *OPPerTune) Observe(obs sparksim.Observation) {
	o.hist.Add(obs)
	if o.center == nil || o.dir == nil {
		return // iteration 0: center just initialized
	}
	if o.phase == 0 {
		o.plusTime = obs.Time
		o.phase = 1
		return
	}
	// Mirrored leg complete: gradient step.
	minusTime := obs.Time
	o.phase = 0
	if math.IsNaN(o.plusTime) {
		return
	}
	dim := float64(len(o.center))
	// Normalize the reward difference by its level so η is scale-free.
	level := (o.plusTime + minusTime) / 2
	if level <= 0 {
		return
	}
	g := dim / (2 * o.Delta) * (o.plusTime - minusTime) / level
	for j := range o.center {
		o.center[j] = stats.Clamp(o.center[j]-o.Eta*g*o.dir[j], 0, 1)
	}
	o.plusTime = math.NaN()
}

// Center exposes the current descent center (tests, dashboards).
func (o *OPPerTune) Center() sparksim.Config {
	if o.center == nil {
		if o.Start != nil {
			return o.Start.Clone()
		}
		return o.Space.Default()
	}
	return o.Space.Denormalize(o.center)
}

func (o *OPPerTune) randomUnit(dim int) []float64 {
	v := make([]float64, dim)
	var norm float64
	for norm < 1e-9 {
		norm = 0
		for i := range v {
			v[i] = o.RNG.NormFloat64()
			norm += v[i] * v[i]
		}
	}
	inv := 1 / math.Sqrt(norm)
	for i := range v {
		v[i] *= inv
	}
	return v
}

var _ Tuner = (*OPPerTune)(nil)
