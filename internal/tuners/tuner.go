// Package tuners defines the common tuning-loop contract and implements the
// baseline configuration optimizers Rockhopper is evaluated against
// (Sections 2.2, 6.1, 6.2): vanilla Bayesian Optimization, Contextual
// Bayesian Optimization with workload embeddings, FLOW2-style frugal
// directional search, hill climbing, and random search. The Centroid
// Learning algorithm itself lives in internal/core and implements the same
// Tuner interface.
package tuners

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Tuner is one online tuning loop for a single recurrent query signature:
// Propose the configuration for the next run, then Observe its outcome.
// Implementations are not safe for concurrent use; production runs one tuner
// per query signature.
type Tuner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Propose returns the configuration to apply at iteration t (0-based).
	// DataSize is the expected input size for the upcoming run when known
	// (production knows it only approximately; 0 means unknown).
	Propose(t int, dataSize float64) sparksim.Config
	// Observe records the outcome of the previously proposed run.
	Observe(o sparksim.Observation)
}

// History is a bounded observation log shared by tuner implementations.
type History struct {
	Obs []sparksim.Observation
}

// Add appends an observation.
func (h *History) Add(o sparksim.Observation) { h.Obs = append(h.Obs, o) }

// Len returns the number of recorded observations.
func (h *History) Len() int { return len(h.Obs) }

// Window returns the latest n observations (all of them when n ≤ 0 or n
// exceeds the history), the Ω(t, N) of Algorithm 1.
func (h *History) Window(n int) []sparksim.Observation {
	if n <= 0 || n >= len(h.Obs) {
		return h.Obs
	}
	return h.Obs[len(h.Obs)-n:]
}

// BestObserved returns the observation with the lowest observed time, or
// false when empty. Raw observed time is the FIND_BEST v1 criterion; see
// internal/core for the normalized and model-based refinements.
func (h *History) BestObserved() (sparksim.Observation, bool) {
	if len(h.Obs) == 0 {
		return sparksim.Observation{}, false
	}
	best := h.Obs[0]
	for _, o := range h.Obs[1:] {
		if o.Time < best.Time {
			best = o
		}
	}
	return best, true
}

// ConfigFeatures maps a configuration to the surrogate's input features:
// the normalized configuration vector, optionally prefixed by a workload
// context (embedding) and suffixed with log1p(dataSize). Every surrogate in
// the repository — the baselines here and Centroid Learning's — uses this
// single layout so models are interchangeable.
func ConfigFeatures(space *sparksim.Space, context []float64, cfg sparksim.Config, dataSize float64) []float64 {
	u := space.Normalize(cfg)
	out := make([]float64, 0, len(context)+len(u)+1)
	out = append(out, context...)
	out = append(out, u...)
	out = append(out, math.Log1p(dataSize))
	return out
}

// RandomSearch proposes uniformly random configurations; the zero-skill
// baseline.
type RandomSearch struct {
	Space *sparksim.Space
	RNG   *stats.RNG
	hist  History
}

// NewRandomSearch returns a random-search tuner.
func NewRandomSearch(space *sparksim.Space, rng *stats.RNG) *RandomSearch {
	return &RandomSearch{Space: space, RNG: rng}
}

// Name implements Tuner.
func (r *RandomSearch) Name() string { return "random" }

// Propose implements Tuner. Iteration 0 runs the default configuration so
// every algorithm starts from the same anchor.
func (r *RandomSearch) Propose(t int, _ float64) sparksim.Config {
	if t == 0 {
		return r.Space.Default()
	}
	return r.Space.Random(r.RNG)
}

// Observe implements Tuner.
func (r *RandomSearch) Observe(o sparksim.Observation) { r.hist.Add(o) }

var _ Tuner = (*RandomSearch)(nil)
