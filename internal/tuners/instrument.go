package tuners

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// Instrumented wraps a Tuner so its convergence is observable live on a
// telemetry registry: every Observe bumps the iteration counter and keeps a
// best-cost gauge at the lowest observed time so far. Labels are the
// algorithm name and the query signature — both from closed sets (the
// algorithm roster and the managed signatures), per the cardinality rules in
// DESIGN.md §8. Like every Tuner, it is not safe for concurrent use.
type Instrumented struct {
	Tuner
	iterations telemetry.Counter
	bestCost   telemetry.Gauge
	best       float64
}

// Instrument wraps t with instruments bound to reg (nil reg discards). The
// signature label distinguishes concurrent tuning loops in one registry.
func Instrument(t Tuner, reg *telemetry.Registry, signature string) *Instrumented {
	return &Instrumented{
		Tuner: t,
		iterations: reg.Counter("rockhopper_tuner_iterations_total",
			"Observations fed to a tuning loop, by algorithm and query signature.",
			//rocklint:allow metriccardinality -- signature labels come from the managed-signature set the Manager already tracks; DESIGN.md §8 blesses signature on tuning series
			"algo", "signature").With(t.Name(), signature),
		bestCost: reg.Gauge("rockhopper_tuner_best_cost_ms",
			"Lowest observed execution time (ms) so far, by algorithm and query signature.",
			//rocklint:allow metriccardinality -- signature labels come from the managed-signature set the Manager already tracks; DESIGN.md §8 blesses signature on tuning series
			"algo", "signature").With(t.Name(), signature),
		best: math.Inf(1),
	}
}

// Observe implements Tuner, recording the outcome before accounting for it.
func (i *Instrumented) Observe(o sparksim.Observation) {
	i.Tuner.Observe(o)
	i.iterations.Inc()
	if o.Time < i.best {
		i.best = o.Time
		i.bestCost.Set(o.Time)
	}
}

var _ Tuner = (*Instrumented)(nil)
