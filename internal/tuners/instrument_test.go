package tuners

import (
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// TestInstrumentedTuner checks the wrapper forwards the tuning contract and
// keeps the iteration counter and best-cost gauge truthful.
func TestInstrumentedTuner(t *testing.T) {
	space := sparksim.QuerySpace()
	reg := telemetry.NewRegistry()
	tn := Instrument(NewRandomSearch(space, stats.NewRNG(1)), reg, "q1")
	if tn.Name() != "random" {
		t.Errorf("Name = %q, want passthrough", tn.Name())
	}

	for i, ms := range []float64{2000, 1500, 1800} {
		cfg := tn.Propose(i, 1e9)
		tn.Observe(sparksim.Observation{Config: cfg, DataSize: 1e9, Time: ms, Iteration: i})
	}

	iterations := reg.Counter("rockhopper_tuner_iterations_total", "", "algo", "signature")
	if got := iterations.With("random", "q1").Value(); got != 3 {
		t.Errorf("iterations = %v, want 3", got)
	}
	best := reg.Gauge("rockhopper_tuner_best_cost_ms", "", "algo", "signature")
	if got := best.With("random", "q1").Value(); got != 1500 {
		t.Errorf("best cost = %v, want 1500", got)
	}

	// The wrapped tuner saw every observation (history drives BestObserved).
	if o, ok := tn.Tuner.(*RandomSearch).hist.BestObserved(); !ok || o.Time != 1500 {
		t.Errorf("wrapped history best = %+v ok=%v, want 1500", o, ok)
	}
}
