// Package sparksim is the simulated Apache Spark substrate on which every
// Rockhopper experiment runs. The real paper tunes Spark on Microsoft Fabric
// clusters; this package replaces the cluster with a deterministic analytic
// cost model over query execution plans, exposing exactly the interface the
// tuning algorithms observe in production: submit a query with a
// configuration, get back an execution time and an input data size.
//
// The package has three parts:
//
//   - the configuration space (this file): typed Spark parameters at query
//     and application level, with defaults, bounds, log scaling, neighbour
//     generation, and snapping to legal values;
//   - query plans (plan.go): operator trees with optimizer cardinality
//     estimates, the input to workload embeddings;
//   - the engine (cost.go): an analytic cost model that walks a plan and
//     charges scan, shuffle, join, aggregation, and scheduling costs as
//     functions of the configuration, cluster shape, and input data size.
package sparksim

import (
	"fmt"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Level says whether a parameter binds at query submission or application
// startup (Section 4.4): app-level values must stay fixed for the lifetime of
// a Spark application, query-level values may change per query.
type Level int

const (
	// QueryLevel parameters are set per query at submission time.
	QueryLevel Level = iota
	// AppLevel parameters are fixed at application startup.
	AppLevel
)

func (l Level) String() string {
	if l == AppLevel {
		return "app"
	}
	return "query"
}

// Canonical Spark parameter names used throughout the repository. The three
// query-level parameters are the ones Rockhopper tunes in production
// (Section 6.3); the app-level parameters appear in the manual-tuning study
// and the joint optimizer.
const (
	MaxPartitionBytes    = "spark.sql.files.maxPartitionBytes"
	AutoBroadcastJoinThr = "spark.sql.autoBroadcastJoinThreshold"
	ShufflePartitions    = "spark.sql.shuffle.partitions"
	ExecutorInstances    = "spark.executor.instances"
	ExecutorMemoryGB     = "spark.executor.memory"
	OffHeapEnabled       = "spark.memory.offHeap.enabled"
	OffHeapSizeGB        = "spark.memory.offHeap.size"
)

// Param describes one tunable configuration dimension.
type Param struct {
	Name    string
	Level   Level
	Min     float64
	Max     float64
	Default float64
	// Log marks dimensions that are searched in log space (byte sizes,
	// partition counts); neighbourhood steps are multiplicative for these.
	Log bool
	// Quantum, when > 0, snaps applied values to multiples of this quantum
	// (e.g. whole partitions, whole executors).
	Quantum float64
}

// Snap clamps v into [Min, Max] and rounds to the parameter's quantum.
func (p Param) Snap(v float64) float64 {
	v = stats.Clamp(v, p.Min, p.Max)
	if p.Quantum > 0 {
		v = math.Round(v/p.Quantum) * p.Quantum
		v = stats.Clamp(v, p.Min, p.Max)
	}
	return v
}

// Space is an ordered set of parameters; a Config is a vector aligned with
// this order.
type Space struct {
	Params []Param
	index  map[string]int
}

// NewSpace builds a Space from parameter definitions, validating bounds.
func NewSpace(params ...Param) (*Space, error) {
	s := &Space{Params: params, index: make(map[string]int, len(params))}
	for i, p := range params {
		if p.Min >= p.Max {
			return nil, fmt.Errorf("sparksim: param %q has empty range [%g, %g]", p.Name, p.Min, p.Max)
		}
		if p.Default < p.Min || p.Default > p.Max {
			return nil, fmt.Errorf("sparksim: param %q default %g outside [%g, %g]", p.Name, p.Default, p.Min, p.Max)
		}
		if p.Log && p.Min <= 0 {
			return nil, fmt.Errorf("sparksim: log param %q has non-positive min %g", p.Name, p.Min)
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("sparksim: duplicate param %q", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error; for package-level defaults.
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.Params) }

// Index returns the position of the named parameter, or −1.
func (s *Space) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Config is a point in a Space: one value per parameter, in Space order.
type Config []float64

// Default returns the default configuration.
func (s *Space) Default() Config {
	c := make(Config, len(s.Params))
	for i, p := range s.Params {
		c[i] = p.Default
	}
	return c
}

// Clone copies a configuration.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Get returns the value of the named parameter, or NaN if absent.
func (s *Space) Get(c Config, name string) float64 {
	i := s.Index(name)
	if i < 0 || i >= len(c) {
		return math.NaN()
	}
	return c[i]
}

// With returns a copy of c with the named parameter set (snapped).
func (s *Space) With(c Config, name string, v float64) Config {
	i := s.Index(name)
	out := c.Clone()
	if i >= 0 {
		out[i] = s.Params[i].Snap(v)
	}
	return out
}

// Snap returns a copy of c with every value clamped and quantized.
func (s *Space) Snap(c Config) Config {
	out := make(Config, len(c))
	for i, p := range s.Params {
		out[i] = p.Snap(c[i])
	}
	return out
}

// Random returns a uniformly random configuration (log-uniform on log
// dimensions), snapped to legal values.
func (s *Space) Random(r *stats.RNG) Config {
	c := make(Config, len(s.Params))
	for i, p := range s.Params {
		if p.Log {
			c[i] = p.Snap(math.Exp(r.Uniform(math.Log(p.Min), math.Log(p.Max))))
		} else {
			c[i] = p.Snap(r.Uniform(p.Min, p.Max))
		}
	}
	return c
}

// LatinHypercube generates n configurations by Latin hypercube sampling:
// each dimension's [0,1] range is split into n strata, each stratum is
// sampled once, and the per-dimension samples are permuted independently.
// Compared to uniform random generation this guarantees marginal coverage,
// the property that made LHS a popular offline-exploration design in prior
// Spark-tuning work the paper cites.
func (s *Space) LatinHypercube(n int, r *stats.RNG) []Config {
	if n <= 0 {
		return nil
	}
	dim := len(s.Params)
	// strata[j][k] is the sample for dimension j in stratum k.
	cols := make([][]float64, dim)
	for j := 0; j < dim; j++ {
		col := make([]float64, n)
		for k := 0; k < n; k++ {
			col[k] = (float64(k) + r.Float64()) / float64(n)
		}
		r.Shuffle(n, func(a, b int) { col[a], col[b] = col[b], col[a] })
		cols[j] = col
	}
	out := make([]Config, n)
	u := make([]float64, dim)
	for k := 0; k < n; k++ {
		for j := 0; j < dim; j++ {
			u[j] = cols[j][k]
		}
		out[k] = s.Denormalize(u)
	}
	return out
}

// Neighborhood generates n candidate configurations around center. Each
// candidate perturbs every dimension by a uniform step within ±beta of the
// centre, where beta is a fraction of the dimension's range (linear
// dimensions) or of its log-range (log dimensions). This is the candidate
// set C(e_t) of Algorithm 1: bounding the step keeps exploration local,
// which is Rockhopper's primary guard against performance regressions.
func (s *Space) Neighborhood(center Config, beta float64, n int, r *stats.RNG) []Config {
	out := make([]Config, 0, n)
	for k := 0; k < n; k++ {
		c := make(Config, len(s.Params))
		for i, p := range s.Params {
			step := r.Uniform(-beta, beta)
			if p.Log {
				span := math.Log(p.Max) - math.Log(p.Min)
				c[i] = p.Snap(math.Exp(math.Log(center[i]) + step*span))
			} else {
				span := p.Max - p.Min
				c[i] = p.Snap(center[i] + step*span)
			}
		}
		out = append(out, c)
	}
	return out
}

// AxisNeighbors returns the 2·dim single-axis perturbations of center at
// relative step beta, used by the FLOW2 and hill-climbing baselines.
func (s *Space) AxisNeighbors(center Config, beta float64) []Config {
	out := make([]Config, 0, 2*len(s.Params))
	for i, p := range s.Params {
		for _, sign := range []float64{+1, -1} {
			c := center.Clone()
			if p.Log {
				span := math.Log(p.Max) - math.Log(p.Min)
				c[i] = p.Snap(math.Exp(math.Log(center[i]) + sign*beta*span))
			} else {
				c[i] = p.Snap(center[i] + sign*beta*(p.Max-p.Min))
			}
			out = append(out, c)
		}
	}
	return out
}

// Normalize maps c to [0,1]^dim (log dimensions in log space); the inverse of
// Denormalize. Tuners and surrogate models operate on normalized vectors so
// that dimensions with wildly different units are comparable.
func (s *Space) Normalize(c Config) []float64 {
	out := make([]float64, len(c))
	for i, p := range s.Params {
		if p.Log {
			out[i] = (math.Log(c[i]) - math.Log(p.Min)) / (math.Log(p.Max) - math.Log(p.Min))
		} else {
			out[i] = (c[i] - p.Min) / (p.Max - p.Min)
		}
	}
	return out
}

// Denormalize maps a [0,1]^dim vector back to a snapped Config.
func (s *Space) Denormalize(u []float64) Config {
	c := make(Config, len(u))
	for i, p := range s.Params {
		v := stats.Clamp(u[i], 0, 1)
		if p.Log {
			c[i] = p.Snap(math.Exp(math.Log(p.Min) + v*(math.Log(p.Max)-math.Log(p.Min))))
		} else {
			c[i] = p.Snap(p.Min + v*(p.Max-p.Min))
		}
	}
	return c
}

// QueryParams returns the indices of query-level parameters.
func (s *Space) QueryParams() []int {
	var out []int
	for i, p := range s.Params {
		if p.Level == QueryLevel {
			out = append(out, i)
		}
	}
	return out
}

// AppParams returns the indices of app-level parameters.
func (s *Space) AppParams() []int {
	var out []int
	for i, p := range s.Params {
		if p.Level == AppLevel {
			out = append(out, i)
		}
	}
	return out
}

// QuerySpace returns the production tuning space: the three query-level
// parameters Rockhopper tunes in Microsoft Fabric (Section 6.3).
func QuerySpace() *Space {
	return MustSpace(
		Param{Name: MaxPartitionBytes, Level: QueryLevel, Min: 1 << 20, Max: 1 << 30,
			Default: 128 << 20, Log: true, Quantum: 1 << 20},
		Param{Name: AutoBroadcastJoinThr, Level: QueryLevel, Min: 1 << 20, Max: 256 << 20,
			Default: 10 << 20, Log: true, Quantum: 1 << 20},
		Param{Name: ShufflePartitions, Level: QueryLevel, Min: 8, Max: 2000,
			Default: 200, Log: true, Quantum: 1},
	)
}

// FullSpace returns the seven-parameter space of the manual-tuning study
// (Section 2.2): the three query-level parameters plus executor sizing and
// off-heap memory at application level. The boolean off-heap toggle is
// modelled as a continuous [0,1] value thresholded at 0.5, following the
// paper's note that categorical values are embedded into continuous space.
func FullSpace() *Space {
	qs := QuerySpace()
	params := append([]Param{}, qs.Params...)
	params = append(params,
		Param{Name: ExecutorInstances, Level: AppLevel, Min: 1, Max: 64,
			Default: 8, Log: true, Quantum: 1},
		Param{Name: ExecutorMemoryGB, Level: AppLevel, Min: 1, Max: 64,
			Default: 8, Log: true, Quantum: 1},
		Param{Name: OffHeapEnabled, Level: AppLevel, Min: 0, Max: 1, Default: 0},
		Param{Name: OffHeapSizeGB, Level: AppLevel, Min: 0.5, Max: 32,
			Default: 2, Log: true, Quantum: 0.5},
	)
	return MustSpace(params...)
}
