package sparksim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// StageStat is the per-operator execution breakdown of one simulated run:
// the metrics the production monitoring dashboard collects to explain
// performance changes — partitions/tasks, input sizes, spill, and the join
// strategy actually chosen at run time (Section 6.3's posterior analysis).
type StageStat struct {
	// Op is the operator; Label distinguishes multiple instances.
	Op    Op
	Label string
	// Tasks is the number of tasks the stage scheduled (scan splits or
	// shuffle partitions); 0 for pipelined operators.
	Tasks int
	// InputBytes is the bytes consumed by the stage at the run's scale.
	InputBytes float64
	// SpillBytes estimates bytes spilled when the working set exceeded the
	// task memory budget.
	SpillBytes float64
	// Broadcast reports whether a join executed as a broadcast join.
	Broadcast bool
	// TimeMs is the operator's contribution to the total.
	TimeMs float64
}

// Explain runs the cost model and returns the per-operator breakdown plus
// the total time. The sum of stage times equals TrueTime up to the off-heap
// serialization tax.
func (e *Engine) Explain(q *Query, cfg Config, scale float64) ([]StageStat, float64) {
	k := e.knobs(cfg)
	tw := q.Tweak.norm()
	cores := k.executors * float64(e.Cluster.CoresPerExecutor)
	if cores < 1 {
		cores = 1
	}
	taskMem := k.memGB * float64(1<<30) / float64(e.Cluster.CoresPerExecutor) * e.MemFraction
	if k.offHeap {
		taskMem += k.offHeapGB * float64(1<<30) / float64(e.Cluster.CoresPerExecutor) * 0.8
	}

	var stages []StageStat
	counts := map[Op]int{}
	q.Plan.Walk(func(n *Node) {
		counts[n.Op]++
		st := StageStat{
			Op:         n.Op,
			Label:      fmt.Sprintf("%s#%d", n.Op, counts[n.Op]),
			InputBytes: n.InRows * scale * n.RowBytes,
			TimeMs:     e.opTime(n, k, tw, scale, cores, taskMem),
		}
		switch n.Op {
		case OpScan:
			st.Tasks = int(math.Max(1, math.Ceil(st.InputBytes/k.maxPartitionBytes)))
			perTask := st.InputBytes / float64(st.Tasks) * (1 + tw.Skew*math.Sqrt(200/float64(st.Tasks)))
			if perTask > taskMem {
				st.SpillBytes = (perTask - taskMem) * float64(st.Tasks)
			}
		case OpExchange, OpSortMergeJoin:
			st.Tasks = int(math.Max(1, k.shufflePartitions))
			perTask := st.InputBytes / float64(st.Tasks) * (1 + tw.Skew*math.Sqrt(200/float64(st.Tasks)))
			if perTask > taskMem {
				st.SpillBytes = (perTask - taskMem) * float64(st.Tasks)
			}
		case OpBroadcastHashJoin:
			st.Broadcast = true
		}
		if n.Op == OpSortMergeJoin || n.Op == OpBroadcastHashJoin {
			// Report the strategy the engine actually picks at this
			// threshold, which can differ from the compile-time plan.
			left, right := n.Children[0], n.Children[1]
			build := math.Min(left.OutRows*scale*left.RowBytes, right.OutRows*scale*right.RowBytes)
			st.Broadcast = build <= k.broadcastThr
			if st.Broadcast {
				st.Tasks = 0
				st.SpillBytes = 0
			}
		}
		stages = append(stages, st)
	})
	var total float64
	for _, s := range stages {
		total += s.TimeMs
	}
	if k.offHeap {
		total *= 1.03
	}
	return stages, total
}

// TotalTasks sums the task counts across stages, one of the dashboard's
// config-sensitive metrics.
func TotalTasks(stages []StageStat) int {
	n := 0
	for _, s := range stages {
		n += s.Tasks
	}
	return n
}

// TotalSpill sums estimated spill bytes across stages.
func TotalSpill(stages []StageStat) float64 {
	var v float64
	for _, s := range stages {
		v += s.SpillBytes
	}
	return v
}

// BroadcastJoins counts joins executed via broadcast.
func BroadcastJoins(stages []StageStat) int {
	n := 0
	for _, s := range stages {
		if (s.Op == OpSortMergeJoin || s.Op == OpBroadcastHashJoin) && s.Broadcast {
			n++
		}
	}
	return n
}

// FormatStages renders the breakdown sorted by time, largest first.
func FormatStages(stages []StageStat) string {
	sorted := append([]StageStat(nil), stages...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TimeMs > sorted[j].TimeMs })
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %12s %12s %6s %10s\n", "stage", "tasks", "input", "spill", "bcast", "time ms")
	for _, s := range sorted {
		fmt.Fprintf(&b, "%-22s %8d %12.0f %12.0f %6v %10.0f\n",
			s.Label, s.Tasks, s.InputBytes, s.SpillBytes, s.Broadcast, s.TimeMs)
	}
	return b.String()
}
