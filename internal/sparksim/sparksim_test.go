package sparksim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// testQuery builds a shuffle-heavy join query with ~10 GB of scan input at
// scale 1: two scans feeding a join through exchanges, then aggregation.
func testQuery() *Query {
	left := Scan(50e6, 160)  // 8 GB fact table
	right := Scan(20e6, 120) // 2.4 GB dimension-ish table
	lx := Unary(OpExchange, Unary(OpFilter, left, 0.5), 1)
	rx := Unary(OpExchange, right, 1)
	j := Join(OpSortMergeJoin, lx, rx, 1.0)
	agg := Unary(OpHashAggregate, Unary(OpExchange, j, 1), 0.01)
	return &Query{ID: "test-q1", Plan: &Plan{Root: agg}}
}

// smallBroadcastQuery has a 50 MB build side so the broadcast threshold
// matters.
func smallBroadcastQuery() *Query {
	fact := Scan(100e6, 100) // 10 GB
	dim := Scan(500e3, 100)  // 50 MB
	j := Join(OpSortMergeJoin, Unary(OpExchange, fact, 1), Unary(OpExchange, dim, 1), 0.9)
	return &Query{ID: "test-bcast", Plan: &Plan{Root: Unary(OpProject, j, 1)}}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(Param{Name: "x", Min: 2, Max: 1, Default: 1.5}); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, err := NewSpace(Param{Name: "x", Min: 0, Max: 1, Default: 5}); err == nil {
		t.Fatal("default outside range should fail")
	}
	if _, err := NewSpace(Param{Name: "x", Min: 0, Max: 1, Default: 0.5, Log: true}); err == nil {
		t.Fatal("log param with min 0 should fail")
	}
	if _, err := NewSpace(
		Param{Name: "x", Min: 0, Max: 1, Default: 0},
		Param{Name: "x", Min: 0, Max: 1, Default: 0},
	); err == nil {
		t.Fatal("duplicate names should fail")
	}
}

func TestQuerySpaceDefaults(t *testing.T) {
	s := QuerySpace()
	c := s.Default()
	if s.Get(c, MaxPartitionBytes) != 128<<20 {
		t.Fatal("maxPartitionBytes default wrong")
	}
	if s.Get(c, ShufflePartitions) != 200 {
		t.Fatal("shuffle partitions default wrong")
	}
	if s.Get(c, AutoBroadcastJoinThr) != 10<<20 {
		t.Fatal("broadcast threshold default wrong")
	}
	if len(s.QueryParams()) != 3 || len(s.AppParams()) != 0 {
		t.Fatal("query space level partition wrong")
	}
}

func TestFullSpaceLevels(t *testing.T) {
	s := FullSpace()
	if len(s.QueryParams()) != 3 || len(s.AppParams()) != 4 {
		t.Fatalf("full space levels: %d query, %d app", len(s.QueryParams()), len(s.AppParams()))
	}
}

func TestSnapQuantum(t *testing.T) {
	s := QuerySpace()
	c := s.With(s.Default(), ShufflePartitions, 123.7)
	if v := s.Get(c, ShufflePartitions); v != 124 {
		t.Fatalf("snap = %g; want 124", v)
	}
	c = s.With(s.Default(), ShufflePartitions, 1e9)
	if v := s.Get(c, ShufflePartitions); v != 2000 {
		t.Fatalf("clamp = %g; want 2000", v)
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	s := QuerySpace()
	r := stats.NewRNG(1)
	for i := 0; i < 50; i++ {
		c := s.Random(r)
		back := s.Denormalize(s.Normalize(c))
		for j := range c {
			// Round trip must agree up to quantum snapping.
			if math.Abs(back[j]-c[j]) > s.Params[j].Quantum+1e-9 {
				t.Fatalf("round trip drift at %d: %g vs %g", j, c[j], back[j])
			}
		}
	}
}

func TestRandomInBounds(t *testing.T) {
	s := FullSpace()
	r := stats.NewRNG(2)
	for i := 0; i < 200; i++ {
		c := s.Random(r)
		for j, p := range s.Params {
			if c[j] < p.Min || c[j] > p.Max {
				t.Fatalf("random config out of bounds: %s = %g", p.Name, c[j])
			}
		}
	}
}

func TestNeighborhoodLocality(t *testing.T) {
	s := QuerySpace()
	r := stats.NewRNG(3)
	center := s.Default()
	for _, c := range s.Neighborhood(center, 0.05, 50, r) {
		u0 := s.Normalize(center)
		u := s.Normalize(c)
		for j := range u {
			if math.Abs(u[j]-u0[j]) > 0.05+0.01 {
				t.Fatalf("neighbour strayed beyond beta on dim %d: |%g−%g|", j, u[j], u0[j])
			}
		}
	}
}

func TestAxisNeighbors(t *testing.T) {
	s := QuerySpace()
	ns := s.AxisNeighbors(s.Default(), 0.1)
	if len(ns) != 2*s.Dim() {
		t.Fatalf("axis neighbours = %d; want %d", len(ns), 2*s.Dim())
	}
}

func TestPlanAccounting(t *testing.T) {
	q := testQuery()
	if err := q.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if rc := q.Plan.RootCardinality(); rc <= 0 {
		t.Fatalf("root cardinality = %g", rc)
	}
	if lc := q.Plan.LeafInputCardinality(); lc != 70e6 {
		t.Fatalf("leaf cardinality = %g; want 7e7", lc)
	}
	counts := q.Plan.OperatorCounts()
	if counts[OpScan] != 2 || counts[OpExchange] != 3 || counts[OpSortMergeJoin] != 1 {
		t.Fatalf("operator counts wrong: %v", counts)
	}
	if q.Plan.NodeCount() != 8 {
		t.Fatalf("node count = %d", q.Plan.NodeCount())
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	bad := &Plan{Root: &Node{Op: OpSortMergeJoin, Children: []*Node{Scan(1, 1)}, InRows: 1, OutRows: 1, RowBytes: 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unary join should fail validation")
	}
	bad2 := &Plan{Root: &Node{Op: OpScan, InRows: -1, OutRows: 1, RowBytes: 1}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative cardinality should fail validation")
	}
}

func TestShufflePartitionsHasInteriorOptimum(t *testing.T) {
	// Figure 1's core observation: execution time is convex-ish in
	// spark.sql.shuffle.partitions with an interior optimum.
	e := NewEngine(QuerySpace())
	q := testQuery()
	base := e.Space.Default()
	timeAt := func(p float64) float64 {
		return e.TrueTime(q, e.Space.With(base, ShufflePartitions, p), 1)
	}
	lo, mid, hi := timeAt(8), timeAt(64), timeAt(2000)
	if !(mid < lo && mid < hi) {
		t.Fatalf("no interior optimum: t(8)=%g t(64)=%g t(2000)=%g", lo, mid, hi)
	}
}

func TestMaxPartitionBytesTradeoff(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	base := e.Space.Default()
	timeAt := func(m float64) float64 {
		return e.TrueTime(q, e.Space.With(base, MaxPartitionBytes, m), 1)
	}
	tiny, def, huge := timeAt(1<<20), timeAt(128<<20), timeAt(1<<30)
	if !(def < tiny) {
		t.Fatalf("tiny partitions should be slow: t(1MB)=%g t(128MB)=%g", tiny, def)
	}
	if !(def <= huge) {
		t.Fatalf("huge partitions should not beat default here: t(128MB)=%g t(1GB)=%g", def, huge)
	}
}

func TestBroadcastThresholdSwitchesJoinStrategy(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := smallBroadcastQuery()
	base := e.Space.Default()
	// Build side is 50 MB: threshold 10 MB forces sort-merge, 128 MB
	// enables the cheaper broadcast.
	smj := e.TrueTime(q, e.Space.With(base, AutoBroadcastJoinThr, 10<<20), 1)
	bhj := e.TrueTime(q, e.Space.With(base, AutoBroadcastJoinThr, 128<<20), 1)
	if bhj >= smj {
		t.Fatalf("broadcast should win for a 50 MB build side: bhj=%g smj=%g", bhj, smj)
	}
}

func TestTimeScalesWithData(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	cfg := e.Space.Default()
	t1 := e.TrueTime(q, cfg, 1)
	t4 := e.TrueTime(q, cfg, 4)
	if t4 <= t1 {
		t.Fatalf("4x data should be slower: %g vs %g", t1, t4)
	}
}

func TestRunInjectsNoise(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	r := stats.NewRNG(7)
	cfg := e.Space.Default()
	o := e.Run(q, cfg, 1, r, noise.High)
	if o.Time < o.TrueTime {
		t.Fatalf("noise should slow down: observed=%g true=%g", o.Time, o.TrueTime)
	}
	if o.DataSize != q.Plan.LeafInputBytes() {
		t.Fatalf("data size = %g; want %g", o.DataSize, q.Plan.LeafInputBytes())
	}
	clean := e.Run(q, cfg, 1, r, nil)
	if clean.Time != clean.TrueTime {
		t.Fatal("nil injector should be noiseless")
	}
}

func TestRunCopiesConfig(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	cfg := e.Space.Default()
	o := e.Run(q, cfg, 1, stats.NewRNG(1), nil)
	cfg[0] = 999
	if o.Config[0] == 999 {
		t.Fatal("observation must own a copy of the config")
	}
}

func TestExecutorScalingInFullSpace(t *testing.T) {
	e := NewEngine(FullSpace())
	q := testQuery()
	base := e.Space.Default()
	few := e.TrueTime(q, e.Space.With(base, ExecutorInstances, 2), 1)
	many := e.TrueTime(q, e.Space.With(base, ExecutorInstances, 32), 1)
	if many >= few {
		t.Fatalf("more executors should speed up this query: 2→%g 32→%g", few, many)
	}
}

func TestAppStartupChargesExecutors(t *testing.T) {
	e := NewEngine(FullSpace())
	small := e.AppStartupMs(e.Space.With(e.Space.Default(), ExecutorInstances, 2))
	big := e.AppStartupMs(e.Space.With(e.Space.Default(), ExecutorInstances, 64))
	if big <= small {
		t.Fatal("startup should grow with executor count")
	}
}

func TestRunApp(t *testing.T) {
	e := NewEngine(FullSpace())
	app := &App{ArtifactID: "nb-1", Queries: []*Query{testQuery(), smallBroadcastQuery()}}
	obs, total := e.RunApp(app, e.Space.Default(), 1, stats.NewRNG(5), nil)
	if len(obs) != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	sum := e.AppStartupMs(e.Space.Default())
	for _, o := range obs {
		sum += o.Time
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("total %g != startup+queries %g", total, sum)
	}
}

func TestOptimalConfigBeatsDefault(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	_, best := e.OptimalConfig(q, 1, 16)
	def := e.TrueTime(q, e.Space.Default(), 1)
	if best > def {
		t.Fatalf("oracle optimum %g worse than default %g", best, def)
	}
}

// Property: TrueTime is strictly positive and finite for any legal config.
func TestPropTrueTimePositive(t *testing.T) {
	e := NewEngine(FullSpace())
	q := testQuery()
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cfg := e.Space.Random(r)
		scale := 0.1 + r.Float64()*10
		tt := e.TrueTime(q, cfg, scale)
		return tt > 0 && !math.IsInf(tt, 0) && !math.IsNaN(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TrueTime is monotone in data scale for a fixed config.
func TestPropMonotoneInScale(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cfg := e.Space.Random(r)
		s1 := 0.5 + r.Float64()*2
		s2 := s1 * (1.5 + r.Float64())
		return e.TrueTime(q, cfg, s2) >= e.TrueTime(q, cfg, s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatinHypercubeCoverage(t *testing.T) {
	s := QuerySpace()
	r := stats.NewRNG(17)
	n := 40
	cfgs := s.LatinHypercube(n, r)
	if len(cfgs) != n {
		t.Fatalf("lhs returned %d configs", len(cfgs))
	}
	// Stratification: each dimension's normalized samples must land in
	// distinct strata, so every decile contains ≈ n/10 samples.
	for j := 0; j < s.Dim(); j++ {
		var deciles [10]int
		for _, c := range cfgs {
			u := s.Normalize(c)[j]
			d := int(u * 10)
			if d > 9 {
				d = 9
			}
			if d < 0 {
				d = 0
			}
			deciles[d]++
		}
		for d, cnt := range deciles {
			if cnt < 2 || cnt > 6 {
				t.Fatalf("dim %d decile %d has %d samples; LHS stratification broken", j, d, cnt)
			}
		}
	}
	if s.LatinHypercube(0, r) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestLatinHypercubeInBounds(t *testing.T) {
	s := FullSpace()
	r := stats.NewRNG(19)
	for _, c := range s.LatinHypercube(25, r) {
		for j, p := range s.Params {
			if c[j] < p.Min || c[j] > p.Max {
				t.Fatalf("lhs out of bounds: %s = %g", p.Name, c[j])
			}
		}
	}
}

func TestSignatureStableUnderSmallDrift(t *testing.T) {
	mk := func(rows float64) *Plan {
		scan := Scan(rows, 100)
		return &Plan{Root: Unary(OpHashAggregate, Unary(OpExchange, scan, 1), 0.01)}
	}
	a := Signature(mk(50e6))
	b := Signature(mk(55e6)) // +10%: same magnitude bucket
	if a != b {
		t.Fatal("small data drift must not change the signature")
	}
	c := Signature(mk(600e6)) // 12×: different magnitude
	if a == c {
		t.Fatal("order-of-magnitude data change should change the signature")
	}
}

func TestSignatureDistinguishesStructure(t *testing.T) {
	s1 := &Plan{Root: Unary(OpFilter, Scan(1e6, 100), 0.5)}
	s2 := &Plan{Root: Unary(OpProject, Scan(1e6, 100), 0.5)}
	if Signature(s1) == Signature(s2) {
		t.Fatal("different operators should give different signatures")
	}
	j1 := &Plan{Root: Join(OpSortMergeJoin, Scan(1e6, 100), Scan(1e3, 50), 1)}
	j2 := &Plan{Root: Join(OpSortMergeJoin, Scan(1e3, 50), Scan(1e6, 100), 1)}
	if Signature(j1) == Signature(j2) {
		t.Fatal("child order is structural and should matter")
	}
}

func TestSignatureDeterministicAcrossProcessShape(t *testing.T) {
	q := testQuery()
	if Signature(q.Plan) != Signature(q.Plan) {
		t.Fatal("signature not deterministic")
	}
	if len(Signature(q.Plan)) != len("sig-")+16 {
		t.Fatalf("unexpected signature shape %q", Signature(q.Plan))
	}
}

func TestAQECoalescesOversizedPartitions(t *testing.T) {
	q := testQuery()
	base := QuerySpace().Default()
	off := NewEngine(QuerySpace())
	on := NewEngine(QuerySpace())
	on.AQE = true
	huge := off.Space.With(base, ShufflePartitions, 2000)
	// With AQE, an absurd partition count is largely forgiven at runtime.
	tOff := off.TrueTime(q, huge, 1)
	tOn := on.TrueTime(q, huge, 1)
	if tOn >= tOff {
		t.Fatalf("AQE should dampen the oversized-P penalty: on=%g off=%g", tOn, tOff)
	}
	// With a sane partition count, AQE should be nearly neutral.
	sane := off.Space.With(base, ShufflePartitions, 64)
	a, b := off.TrueTime(q, sane, 1), on.TrueTime(q, sane, 1)
	if math.Abs(a-b) > 0.02*a {
		t.Fatalf("AQE changed a sane config's time: %g vs %g", a, b)
	}
}

func TestAQEShrinksPartitionHeadroom(t *testing.T) {
	// The tuning consequence: the spread of TrueTime across partition
	// settings is narrower with AQE on.
	q := testQuery()
	spread := func(aqe bool) float64 {
		e := NewEngine(QuerySpace())
		e.AQE = aqe
		base := e.Space.Default()
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range []float64{64, 200, 800, 2000} {
			tt := e.TrueTime(q, e.Space.With(base, ShufflePartitions, p), 1)
			if tt < lo {
				lo = tt
			}
			if tt > hi {
				hi = tt
			}
		}
		return hi / lo
	}
	if spread(true) >= spread(false) {
		t.Fatalf("AQE should narrow the partition response: on=%g off=%g", spread(true), spread(false))
	}
}

func TestSpaceAccessorEdges(t *testing.T) {
	s := QuerySpace()
	c := s.Default()
	if !math.IsNaN(s.Get(c, "spark.unknown.param")) {
		t.Fatal("unknown param should read NaN")
	}
	// With on an unknown name returns an unchanged copy.
	out := s.With(c, "spark.unknown.param", 42)
	for i := range c {
		if out[i] != c[i] {
			t.Fatal("unknown With should be identity")
		}
	}
	out[0] = -1
	if c[0] == -1 {
		t.Fatal("With must return a copy")
	}
	clone := c.Clone()
	clone[1] = -2
	if c[1] == -2 {
		t.Fatal("Clone must copy")
	}
	if s.Index("nope") != -1 {
		t.Fatal("Index of unknown should be -1")
	}
}

func TestEngineStringers(t *testing.T) {
	if DefaultCluster().String() == "" {
		t.Fatal("cluster stringer empty")
	}
	if OpScan.String() != "Scan" || Op(99).String() == "" {
		t.Fatal("op stringer wrong")
	}
	if QueryLevel.String() != "query" || AppLevel.String() != "app" {
		t.Fatal("level stringer wrong")
	}
}
