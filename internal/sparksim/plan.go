package sparksim

import (
	"fmt"
	"strings"
)

// Op identifies a physical operator kind in a simulated Spark plan. The set
// mirrors the operators that dominate TPC-DS/TPC-H physical plans and that
// the workload embedding counts (Section 4.1).
type Op int

// Physical operator kinds.
const (
	OpScan Op = iota
	OpFilter
	OpProject
	OpExchange // shuffle boundary
	OpSort
	OpHashAggregate
	OpSortMergeJoin
	OpBroadcastHashJoin
	OpWindow
	OpLimit
	OpUnion
	numOps
)

var opNames = [...]string{
	"Scan", "Filter", "Project", "Exchange", "Sort", "HashAggregate",
	"SortMergeJoin", "BroadcastHashJoin", "Window", "Limit", "Union",
}

func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// NumOps is the number of distinct operator kinds, exported for embedding
// vectors.
const NumOps = int(numOps)

// Node is one operator in a plan tree, annotated with the query optimizer's
// compile-time cardinality estimates. Estimates — not true runtime counts —
// feed the workload embedding, exactly as in the paper (the information
// "available at compile time, without requiring additional training").
type Node struct {
	Op       Op
	Children []*Node
	// InRows and OutRows are the optimizer's estimated input and output row
	// counts at scale factor 1. Actual cardinalities scale with the query's
	// data-size multiplier at run time.
	InRows  float64
	OutRows float64
	// RowBytes is the estimated width of one row in bytes.
	RowBytes float64
}

// Plan is a rooted operator tree.
type Plan struct {
	Root *Node
}

// Walk visits every node of the plan in pre-order.
func (p *Plan) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
}

// RootCardinality returns the estimated output rows of the root operator,
// component (1) of the workload embedding.
func (p *Plan) RootCardinality() float64 {
	if p.Root == nil {
		return 0
	}
	return p.Root.OutRows
}

// LeafInputCardinality returns the total estimated input rows across all
// leaf (scan) operators, component (2) of the workload embedding.
func (p *Plan) LeafInputCardinality() float64 {
	var total float64
	p.Walk(func(n *Node) {
		if len(n.Children) == 0 {
			total += n.InRows
		}
	})
	return total
}

// LeafInputBytes returns total estimated scan bytes at scale factor 1.
func (p *Plan) LeafInputBytes() float64 {
	var total float64
	p.Walk(func(n *Node) {
		if len(n.Children) == 0 {
			total += n.InRows * n.RowBytes
		}
	})
	return total
}

// OperatorCounts returns the frequency of each operator kind in the plan,
// component (3) of the workload embedding.
func (p *Plan) OperatorCounts() [NumOps]int {
	var counts [NumOps]int
	p.Walk(func(n *Node) {
		counts[n.Op]++
	})
	return counts
}

// NodeCount returns the total number of operators.
func (p *Plan) NodeCount() int {
	c := 0
	p.Walk(func(*Node) { c++ })
	return c
}

// String renders the plan as an indented tree for debugging and logs.
func (p *Plan) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		fmt.Fprintf(&b, "%s%s(in=%.3g, out=%.3g)\n", strings.Repeat("  ", depth), n.Op, n.InRows, n.OutRows)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return b.String()
}

// Validate checks structural invariants: operator kinds in range,
// non-negative cardinalities, leaves are scans, and join nodes binary.
func (p *Plan) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("sparksim: plan has no root")
	}
	var err error
	p.Walk(func(n *Node) {
		if err != nil {
			return
		}
		if n.Op < 0 || int(n.Op) >= NumOps {
			err = fmt.Errorf("sparksim: invalid op %d", int(n.Op))
			return
		}
		if n.InRows < 0 || n.OutRows < 0 || n.RowBytes <= 0 {
			err = fmt.Errorf("sparksim: %s has invalid cardinalities in=%g out=%g width=%g",
				n.Op, n.InRows, n.OutRows, n.RowBytes)
			return
		}
		switch n.Op {
		case OpScan:
			if len(n.Children) != 0 {
				err = fmt.Errorf("sparksim: scan with children")
			}
		case OpSortMergeJoin, OpBroadcastHashJoin:
			if len(n.Children) != 2 {
				err = fmt.Errorf("sparksim: %s with %d children", n.Op, len(n.Children))
			}
		case OpUnion:
			if len(n.Children) < 2 {
				err = fmt.Errorf("sparksim: union with %d children", len(n.Children))
			}
		default:
			if len(n.Children) != 1 {
				err = fmt.Errorf("sparksim: %s with %d children", n.Op, len(n.Children))
			}
		}
	})
	return err
}

// Scan constructs a leaf scan node.
func Scan(rows, rowBytes float64) *Node {
	return &Node{Op: OpScan, InRows: rows, OutRows: rows, RowBytes: rowBytes}
}

// Unary wraps child in a single-input operator with the given selectivity
// (output rows = selectivity × input rows).
func Unary(op Op, child *Node, selectivity float64) *Node {
	return &Node{
		Op:       op,
		Children: []*Node{child},
		InRows:   child.OutRows,
		OutRows:  child.OutRows * selectivity,
		RowBytes: child.RowBytes,
	}
}

// Join constructs a binary join whose output cardinality is fanout × max of
// the input cardinalities.
func Join(op Op, left, right *Node, fanout float64) *Node {
	in := left.OutRows + right.OutRows
	out := fanout * maxf(left.OutRows, right.OutRows)
	return &Node{
		Op:       op,
		Children: []*Node{left, right},
		InRows:   in,
		OutRows:  out,
		RowBytes: left.RowBytes + right.RowBytes,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
