package sparksim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
)

// Signature computes the query signature of a plan: a stable hash of the
// plan's *structure* — operator kinds, tree shape, and coarse cardinality
// magnitudes — such that recurrent runs of the same query map to the same
// signature even as exact input sizes drift, while structurally different
// plans (or plans whose data changed by orders of magnitude) get distinct
// signatures. This mirrors the SparkCruise-style signatures the paper keys
// its per-query models on: "each corresponds to a distinct query execution
// plan".
//
// Cardinalities participate only through their order of magnitude
// (log10 bucket), so day-to-day variation in row counts does not fragment a
// recurrent query across signatures, but a 10× data change — which the
// paper treats as a different tuning problem — does.
func Signature(p *Plan) string {
	var b strings.Builder
	encodeNode(&b, p.Root)
	sum := sha256.Sum256([]byte(b.String()))
	return "sig-" + hex.EncodeToString(sum[:8])
}

func encodeNode(b *strings.Builder, n *Node) {
	if n == nil {
		b.WriteString("()")
		return
	}
	fmt.Fprintf(b, "(%d:%d:%d", int(n.Op), magnitude(n.InRows), magnitude(n.OutRows))
	for _, c := range n.Children {
		encodeNode(b, c)
	}
	b.WriteByte(')')
}

// magnitude buckets a cardinality by order of magnitude.
func magnitude(rows float64) int {
	if rows < 1 {
		return 0
	}
	return int(math.Floor(math.Log10(rows)))
}
