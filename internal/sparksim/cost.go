package sparksim

import (
	"fmt"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Cluster describes the simulated executor hardware.
type Cluster struct {
	// CoresPerExecutor is the number of concurrent task slots per executor.
	CoresPerExecutor int
	// DiskMBps is the per-core scan/shuffle bandwidth in MB/s.
	DiskMBps float64
	// NetMBps is the per-executor network bandwidth in MB/s used for
	// broadcasts.
	NetMBps float64
	// RowsPerMsPerCore is the per-core CPU row-processing rate.
	RowsPerMsPerCore float64
}

// DefaultCluster mirrors a mid-size Fabric pool node.
func DefaultCluster() Cluster {
	return Cluster{
		CoresPerExecutor: 4,
		DiskMBps:         150,
		NetMBps:          400,
		RowsPerMsPerCore: 5000,
	}
}

// CostTweak diversifies per-query response surfaces: two queries with similar
// plans still peak at different configurations because their CPU/IO balance,
// scheduling overheads, and data skew differ. Zero values are replaced by 1.
type CostTweak struct {
	CPU      float64 // multiplies CPU costs
	IO       float64 // multiplies scan/shuffle IO costs
	Overhead float64 // multiplies per-task scheduling overhead
	Skew     float64 // relative size of the largest partition vs the mean
}

func (t CostTweak) norm() CostTweak {
	if t.CPU == 0 {
		t.CPU = 1
	}
	if t.IO == 0 {
		t.IO = 1
	}
	if t.Overhead == 0 {
		t.Overhead = 1
	}
	return t
}

// Query is one recurrent query signature: a plan plus its cost personality.
type Query struct {
	// ID is the query signature (distinct execution plan), e.g. "ds-q17".
	ID string
	// Plan is the compile-time physical plan at the default configuration.
	Plan *Plan
	// Tweak adjusts the cost model for this query.
	Tweak CostTweak
}

// Observation is one execution record: the tuple (config, data size,
// observed performance) that drives Centroid Learning, plus the noiseless
// time used only for experiment measurement (never visible to tuners in
// production mode).
type Observation struct {
	Config    Config
	DataSize  float64 // input bytes actually scanned
	Time      float64 // observed execution time, ms (noisy)
	TrueTime  float64 // noiseless execution time, ms
	Iteration int
}

// Engine evaluates queries against the analytic cost model.
type Engine struct {
	Space   *Space
	Cluster Cluster
	// TaskOverheadMs is the scheduling + serialization cost per task.
	TaskOverheadMs float64
	// MemFraction is the fraction of executor memory available to tasks.
	MemFraction float64
	// SpillPenalty multiplies the excess IO incurred when a task's working
	// set exceeds its memory share.
	SpillPenalty float64
	// DriverBroadcastLimitBytes is the build-side size beyond which a
	// broadcast join risks driver pressure and is heavily penalised.
	DriverBroadcastLimitBytes float64
	// AQE enables adaptive query execution: at runtime, shuffle reads
	// coalesce small partitions up to AdvisoryPartitionBytes, so an
	// oversized spark.sql.shuffle.partitions setting costs much less than
	// it does statically. This is the Spark 3.x behaviour Fabric runs with;
	// it dampens (but does not remove) the value of partition tuning.
	AQE bool
	// AdvisoryPartitionBytes is AQE's coalescing target (default 64 MB).
	AdvisoryPartitionBytes float64
}

// NewEngine returns an engine over the given configuration space with
// default cluster characteristics.
func NewEngine(space *Space) *Engine {
	return &Engine{
		Space:                     space,
		Cluster:                   DefaultCluster(),
		TaskOverheadMs:            80,
		MemFraction:               0.6,
		SpillPenalty:              2.5,
		DriverBroadcastLimitBytes: 512 << 20,
		AdvisoryPartitionBytes:    64 << 20,
	}
}

// knobs extracts the effective configuration, substituting production
// defaults for parameters absent from the space (QuerySpace has no app-level
// parameters, so executor sizing falls back to the pool default).
type knobs struct {
	maxPartitionBytes float64
	broadcastThr      float64
	shufflePartitions float64
	executors         float64
	memGB             float64
	offHeap           bool
	offHeapGB         float64
}

func (e *Engine) knobs(cfg Config) knobs {
	get := func(name string, def float64) float64 {
		v := e.Space.Get(cfg, name)
		if math.IsNaN(v) {
			return def
		}
		return v
	}
	k := knobs{
		maxPartitionBytes: get(MaxPartitionBytes, 128<<20),
		broadcastThr:      get(AutoBroadcastJoinThr, 10<<20),
		shufflePartitions: get(ShufflePartitions, 200),
		executors:         get(ExecutorInstances, 8),
		memGB:             get(ExecutorMemoryGB, 8),
		offHeapGB:         get(OffHeapSizeGB, 0),
	}
	if v := e.Space.Get(cfg, OffHeapEnabled); !math.IsNaN(v) && v >= 0.5 {
		k.offHeap = true
	}
	return k
}

// TrueTime returns the noiseless execution time in milliseconds of q at the
// given configuration and data-size scale (scale multiplies every
// cardinality in the plan; scale 1 is the plan's nominal size).
func (e *Engine) TrueTime(q *Query, cfg Config, scale float64) float64 {
	k := e.knobs(cfg)
	tw := q.Tweak.norm()
	cores := k.executors * float64(e.Cluster.CoresPerExecutor)
	if cores < 1 {
		cores = 1
	}
	taskMem := k.memGB * float64(1<<30) / float64(e.Cluster.CoresPerExecutor) * e.MemFraction
	if k.offHeap {
		// Off-heap memory expands the per-task working budget but charges a
		// fixed serialization overhead.
		taskMem += k.offHeapGB * float64(1<<30) / float64(e.Cluster.CoresPerExecutor) * 0.8
	}

	var total float64
	q.Plan.Walk(func(n *Node) {
		total += e.opTime(n, k, tw, scale, cores, taskMem)
	})
	if k.offHeap {
		total *= 1.03 // constant serialization tax
	}
	return total
}

// stageTime models a wave-scheduled stage: nTasks tasks, each moving
// bytesPerTask through the per-core disk bandwidth and spending cpuMs of
// compute, with per-task scheduling overhead, a data-skew straggler tail,
// and spill penalties when the working set exceeds task memory.
//
// Skew modelling: hash partitioning averages key skew out as the partition
// count grows, so the largest partition carries bytesPerTask·(1 +
// skew·√(200/nTasks)) — large relative inflation with few partitions,
// vanishing with many. This is what makes the optimal partition count
// query-specific (Figure 1): overhead pushes the optimum down, skew and
// spill push it up, and the balance depends on shuffle volume and the
// query's skew personality.
func (e *Engine) stageTime(nTasks, bytesPerTask, cpuMsPerTask, cores, taskMem, skew, ovhFactor, ioFactor float64) float64 {
	if nTasks < 1 {
		nTasks = 1
	}
	waves := nTasks / cores
	if waves < 1 {
		waves = 1
	}
	bytesPerMs := e.Cluster.DiskMBps * 1e3 // MB/s → bytes/ms
	meanIo := bytesPerTask / bytesPerMs * ioFactor
	maxBytes := bytesPerTask * (1 + skew*math.Sqrt(200/nTasks))
	stragglerIo := (maxBytes - bytesPerTask) / bytesPerMs * ioFactor
	spill := 0.0
	if maxBytes > taskMem && taskMem > 0 {
		spill = (maxBytes - taskMem) / bytesPerMs * e.SpillPenalty * ioFactor
	}
	return waves*(meanIo+cpuMsPerTask+e.TaskOverheadMs*ovhFactor) + stragglerIo + spill
}

// opTime charges one operator.
func (e *Engine) opTime(n *Node, k knobs, tw CostTweak, scale, cores, taskMem float64) float64 {
	inRows := n.InRows * scale
	outRows := n.OutRows * scale
	inBytes := inRows * n.RowBytes
	cpuRate := e.Cluster.RowsPerMsPerCore / tw.CPU

	switch n.Op {
	case OpScan:
		nTasks := math.Ceil(inBytes / k.maxPartitionBytes)
		if nTasks < 1 {
			nTasks = 1
		}
		bytesPerTask := inBytes / nTasks
		cpuMs := (inRows / nTasks) / cpuRate * 0.2 // decode cost
		return e.stageTime(nTasks, bytesPerTask, cpuMs, cores, taskMem, tw.Skew, tw.Overhead, tw.IO)

	case OpExchange:
		// Shuffle write (map side) + shuffle read (reduce side with P tasks).
		p := e.effectivePartitions(k.shufflePartitions, inBytes)
		writeMs := inBytes / (e.Cluster.DiskMBps * 1e6 / 1e3) / cores * tw.IO
		bytesPerPart := inBytes / p
		cpuMs := (inRows / p) / cpuRate * 0.1
		readMs := e.stageTime(p, bytesPerPart, cpuMs, cores, taskMem, tw.Skew, tw.Overhead, tw.IO)
		return writeMs + readMs

	case OpSort:
		if inRows < 2 {
			return 0
		}
		cpuMs := inRows * math.Log2(inRows+2) / cpuRate / cores * 0.15
		spill := 0.0
		perTaskBytes := inBytes / math.Max(k.shufflePartitions, 1)
		if perTaskBytes > taskMem && taskMem > 0 {
			spill = (perTaskBytes - taskMem) * math.Max(k.shufflePartitions, 1) /
				(e.Cluster.DiskMBps * 1e6 / 1e3) / cores * e.SpillPenalty * tw.IO
		}
		return cpuMs + spill

	case OpHashAggregate:
		cpuMs := inRows / cpuRate / cores
		// Hash tables live in task memory; large groups spill.
		perTaskBytes := outRows * n.RowBytes / math.Max(k.shufflePartitions, 1)
		spill := 0.0
		if perTaskBytes > taskMem && taskMem > 0 {
			spill = (perTaskBytes - taskMem) * math.Max(k.shufflePartitions, 1) /
				(e.Cluster.DiskMBps * 1e6 / 1e3) / cores * e.SpillPenalty * tw.IO
		}
		return cpuMs + spill

	case OpSortMergeJoin, OpBroadcastHashJoin:
		return e.joinTime(n, k, tw, scale, cores, taskMem, cpuRate)

	case OpFilter, OpProject, OpLimit:
		return inRows / cpuRate / cores * 0.3

	case OpWindow:
		if inRows < 2 {
			return 0
		}
		return inRows * math.Log2(inRows+2) / cpuRate / cores * 0.25

	case OpUnion:
		return inRows / cpuRate / cores * 0.05
	}
	return 0
}

// joinTime picks the physical join strategy at run time from the broadcast
// threshold, exactly as Spark's planner does: if the smaller side's
// estimated bytes fall under spark.sql.autoBroadcastJoinThreshold the join
// broadcasts, otherwise it shuffles both sides and sort-merges.
func (e *Engine) joinTime(n *Node, k knobs, tw CostTweak, scale, cores, taskMem, cpuRate float64) float64 {
	left, right := n.Children[0], n.Children[1]
	lBytes := left.OutRows * scale * left.RowBytes
	rBytes := right.OutRows * scale * right.RowBytes
	buildBytes := math.Min(lBytes, rBytes)
	probeRows := math.Max(left.OutRows, right.OutRows) * scale
	buildRows := math.Min(left.OutRows, right.OutRows) * scale

	if buildBytes <= k.broadcastThr {
		// Broadcast path: ship the build side to every executor, then a
		// single streaming probe pass with no shuffle.
		bcastMs := buildBytes * k.executors / (e.Cluster.NetMBps * 1e6 / 1e3) * tw.IO
		probeMs := probeRows / cpuRate / cores * 0.8
		penalty := 0.0
		if buildBytes > e.DriverBroadcastLimitBytes {
			// Driver memory pressure: sharply superlinear penalty.
			penalty = (buildBytes/e.DriverBroadcastLimitBytes - 1) * 30000
		}
		return bcastMs + probeMs + penalty
	}
	// Sort-merge path: both sides shuffle into P partitions and merge.
	shuffleBytes := lBytes + rBytes
	p := e.effectivePartitions(k.shufflePartitions, shuffleBytes)
	writeMs := shuffleBytes / (e.Cluster.DiskMBps * 1e6 / 1e3) / cores * tw.IO
	bytesPerPart := shuffleBytes / p
	cpuMs := (probeRows + buildRows) / p / cpuRate * 1.2
	mergeMs := e.stageTime(p, bytesPerPart, cpuMs, cores, taskMem, tw.Skew, tw.Overhead, tw.IO)
	return writeMs + mergeMs
}

// effectivePartitions applies AQE coalescing: the runtime merges partitions
// smaller than the advisory size, capping the effective reduce-side
// parallelism at ceil(bytes / advisory).
func (e *Engine) effectivePartitions(p, bytes float64) float64 {
	if p < 1 {
		p = 1
	}
	if !e.AQE {
		return p
	}
	advisory := e.AdvisoryPartitionBytes
	if advisory <= 0 {
		advisory = 64 << 20
	}
	target := math.Ceil(bytes / advisory)
	if target < 1 {
		target = 1
	}
	if p > target {
		return target
	}
	return p
}

// Run executes q once: it computes the noiseless time, perturbs it with the
// injector, and returns the full observation. The RNG drives only the noise.
func (e *Engine) Run(q *Query, cfg Config, scale float64, r *stats.RNG, inj noise.Injector) Observation {
	truth := e.TrueTime(q, cfg, scale)
	observed := truth
	if inj != nil {
		observed = inj.Inject(r, truth)
	}
	return Observation{
		Config:   cfg.Clone(),
		DataSize: q.Plan.LeafInputBytes() * scale,
		Time:     observed,
		TrueTime: truth,
	}
}

// App is a Spark application: an ordered set of queries sharing app-level
// configuration (Section 4.4).
type App struct {
	// ArtifactID identifies the recurrent application (a hash of the
	// notebook or job definition in production).
	ArtifactID string
	Queries    []*Query
}

// AppStartupMs models executor provisioning cost: a fixed base plus a
// per-executor charge, so over-provisioning app-level resources is not free.
func (e *Engine) AppStartupMs(cfg Config) float64 {
	k := e.knobs(cfg)
	return 2000 + 120*k.executors + 15*k.executors*k.memGB
}

// RunApp executes every query in the app under a shared configuration and
// returns per-query observations plus the total wall time including startup.
func (e *Engine) RunApp(a *App, cfg Config, scale float64, r *stats.RNG, inj noise.Injector) ([]Observation, float64) {
	obs := make([]Observation, 0, len(a.Queries))
	total := e.AppStartupMs(cfg)
	for _, q := range a.Queries {
		o := e.Run(q, cfg, scale, r, inj)
		obs = append(obs, o)
		total += o.Time
	}
	return obs, total
}

// OptimalConfig grid-searches the true optimum of q at the given scale with
// the provided per-dimension resolution. It is an oracle used only by the
// experiment harness to measure optimality gaps; tuners never see it.
func (e *Engine) OptimalConfig(q *Query, scale float64, steps int) (Config, float64) {
	if steps < 2 {
		steps = 2
	}
	dim := e.Space.Dim()
	best := e.Space.Default()
	bestTime := e.TrueTime(q, best, scale)
	// Coordinate-wise iterated grid refinement: cheap and adequate for the
	// near-separable response surfaces of the cost model.
	for sweep := 0; sweep < 4; sweep++ {
		improved := false
		for d := 0; d < dim; d++ {
			u := e.Space.Normalize(best)
			for s := 0; s <= steps; s++ {
				u[d] = float64(s) / float64(steps)
				cand := e.Space.Denormalize(u)
				t := e.TrueTime(q, cand, scale)
				if t < bestTime {
					best, bestTime = cand, t
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, bestTime
}

// String renders the engine's cluster for logs.
func (c Cluster) String() string {
	return fmt.Sprintf("cluster(cores/executor=%d, disk=%gMB/s, net=%gMB/s)",
		c.CoresPerExecutor, c.DiskMBps, c.NetMBps)
}
