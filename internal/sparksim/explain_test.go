package sparksim

import (
	"math"
	"strings"
	"testing"
)

func TestExplainMatchesTrueTime(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	cfg := e.Space.Default()
	stages, total := e.Explain(q, cfg, 1)
	if len(stages) != q.Plan.NodeCount() {
		t.Fatalf("stages = %d; want %d", len(stages), q.Plan.NodeCount())
	}
	if tt := e.TrueTime(q, cfg, 1); math.Abs(total-tt) > 1e-6*tt {
		t.Fatalf("Explain total %g != TrueTime %g", total, tt)
	}
}

func TestExplainMatchesTrueTimeFullSpace(t *testing.T) {
	e := NewEngine(FullSpace())
	q := testQuery()
	cfg := e.Space.With(e.Space.Default(), OffHeapEnabled, 1)
	_, total := e.Explain(q, cfg, 2)
	if tt := e.TrueTime(q, cfg, 2); math.Abs(total-tt) > 1e-6*tt {
		t.Fatalf("off-heap Explain total %g != TrueTime %g", total, tt)
	}
}

func TestExplainTaskCountsFollowConfig(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	small := e.Space.With(e.Space.Default(), ShufflePartitions, 16)
	big := e.Space.With(e.Space.Default(), ShufflePartitions, 1000)
	sSmall, _ := e.Explain(q, small, 1)
	sBig, _ := e.Explain(q, big, 1)
	if TotalTasks(sBig) <= TotalTasks(sSmall) {
		t.Fatalf("more partitions should mean more tasks: %d vs %d", TotalTasks(sSmall), TotalTasks(sBig))
	}
}

func TestExplainSpillAtLowPartitions(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	low := e.Space.With(e.Space.Default(), ShufflePartitions, 8)
	high := e.Space.With(e.Space.Default(), ShufflePartitions, 800)
	sLow, _ := e.Explain(q, low, 2)
	sHigh, _ := e.Explain(q, high, 2)
	if TotalSpill(sLow) <= TotalSpill(sHigh) {
		t.Fatalf("tiny partition counts should spill more: %g vs %g", TotalSpill(sLow), TotalSpill(sHigh))
	}
}

func TestExplainBroadcastDecision(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := smallBroadcastQuery() // 50 MB build side
	smj := e.Space.With(e.Space.Default(), AutoBroadcastJoinThr, 1<<20)
	bhj := e.Space.With(e.Space.Default(), AutoBroadcastJoinThr, 128<<20)
	s1, _ := e.Explain(q, smj, 1)
	s2, _ := e.Explain(q, bhj, 1)
	if BroadcastJoins(s1) != 0 {
		t.Fatal("1MB threshold should not broadcast a 50MB build side")
	}
	if BroadcastJoins(s2) != 1 {
		t.Fatal("128MB threshold should broadcast")
	}
}

func TestFormatStages(t *testing.T) {
	e := NewEngine(QuerySpace())
	q := testQuery()
	stages, _ := e.Explain(q, e.Space.Default(), 1)
	out := FormatStages(stages)
	if !strings.Contains(out, "Scan#1") || !strings.Contains(out, "time ms") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
	// Sorted by time descending.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(stages)+1 {
		t.Fatalf("line count %d", len(lines))
	}
}
