package eventlog

import (
	"io"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/testutil"
)

// Allocation budgets for the event codec hot paths. These are regression
// tests, not benchmarks: the budgets are exact (zero) and a violation is a
// performance bug. They skip under -race because the detector's
// instrumentation allocates.

func skipIfRace(t *testing.T) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
}

func TestAppendEventAllocFree(t *testing.T) {
	skipIfRace(t)
	task := Event{Event: EventTaskEnd, ExecutionID: 42, StageLabel: "shuffle-7", TaskMs: 12.5}
	end := Event{Event: EventExecutionEnd, ExecutionID: 42, DurationMs: 901.25}
	buf := make([]byte, 0, 512)
	var sink int
	if n := testing.AllocsPerRun(1000, func() {
		b, err := AppendEvent(buf[:0], &task)
		if err != nil {
			panic(err)
		}
		b, err = AppendEvent(b, &end)
		if err != nil {
			panic(err)
		}
		sink += len(b)
	}); n != 0 {
		t.Fatalf("AppendEvent allocates %v times per task+end record pair; budget is 0", n)
	}
	if sink == 0 {
		t.Fatal("encode produced no bytes")
	}
}

func TestDecoderAllocFree(t *testing.T) {
	skipIfRace(t)
	line := []byte(`{"Event":"SparkListenerTaskEnd","executionId":7,"timestamp":0,"stage":"shuffle-3","taskDurationMs":12.25}` + "\n" +
		`{"Event":"SparkListenerSQLExecutionEnd","executionId":7,"timestamp":0,"durationMs":901.5}` + "\n")
	d := NewDecoder(line)
	var ev Event
	// Warm the intern table: the first pass pays one allocation per distinct
	// string, by design.
	if err := d.Next(&ev); err != nil {
		t.Fatal(err)
	}
	if err := d.Next(&ev); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		d.Reset(line)
		for {
			if err := d.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				panic(err)
			}
		}
	}); n != 0 {
		t.Fatalf("Decoder.Next allocates %v times per 2-record stream; budget is 0", n)
	}
	if ev.DurationMs != 901.5 {
		t.Fatalf("decode drifted: %+v", ev)
	}
}
