package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"unicode/utf8"
	"unsafe"

	"github.com/rockhopper-db/rockhopper/internal/jsonz"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

// This file is the zero-allocation fast path of the event-log codec.
// AppendEvent renders an Event byte-identically to encoding/json, and
// Decoder parses the one-event-per-line streams WriteRun produces without
// heap allocation in steady state (task and end events; start events carry a
// plan and fall back to encoding/json once per run). Parse keeps full
// encoding/json streaming semantics; ParseBytes is the drop-in equivalent
// that takes the fast path when the stream is well-formed JSONL and defers
// to Parse on any anomaly, so the two never disagree on verdict or content.

// AppendEvent appends the JSON encoding of ev to dst and returns the
// extended slice. The output is byte-identical to json.Marshal(ev) —
// same field order, omitempty handling, string escaping, float formatting,
// and sorted sparkConf keys. Task and end events encode with zero heap
// allocations; start events allocate only for the plan (marshalled through
// encoding/json) and the sorted key list. On error dst's extension is
// unspecified and must be discarded.
func AppendEvent(dst []byte, ev *Event) ([]byte, error) {
	dst = append(dst, `{"Event":`...)
	dst = jsonz.AppendString(dst, ev.Event)
	dst = append(dst, `,"executionId":`...)
	dst = jsonz.AppendInt(dst, ev.ExecutionID)
	dst = append(dst, `,"timestamp":`...)
	dst = jsonz.AppendInt(dst, ev.Timestamp)
	if ev.QueryID != "" {
		dst = append(dst, `,"queryId":`...)
		dst = jsonz.AppendString(dst, ev.QueryID)
	}
	if ev.Plan != nil {
		dst = append(dst, `,"physicalPlan":`...)
		pb, err := json.Marshal(ev.Plan)
		if err != nil {
			return dst, fmt.Errorf("eventlog: encode plan: %w", err)
		}
		dst = append(dst, pb...)
	}
	if len(ev.SparkConf) > 0 {
		dst = append(dst, `,"sparkConf":{`...)
		keys := make([]string, 0, len(ev.SparkConf))
		for k := range ev.SparkConf {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for ki, k := range keys {
			if ki > 0 {
				dst = append(dst, ',')
			}
			dst = jsonz.AppendString(dst, k)
			dst = append(dst, ':')
			var err error
			if dst, err = jsonz.AppendFloat(dst, ev.SparkConf[k]); err != nil {
				return dst, fmt.Errorf("eventlog: encode sparkConf[%s]: %w", k, err)
			}
		}
		dst = append(dst, '}')
	}
	var err error
	if dst, err = appendOptFloat(dst, `,"inputBytes":`, ev.InputBytes); err != nil {
		return dst, err
	}
	if ev.StageLabel != "" {
		dst = append(dst, `,"stage":`...)
		dst = jsonz.AppendString(dst, ev.StageLabel)
	}
	if dst, err = appendOptFloat(dst, `,"taskDurationMs":`, ev.TaskMs); err != nil {
		return dst, err
	}
	if dst, err = appendOptFloat(dst, `,"durationMs":`, ev.DurationMs); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

func appendOptFloat(dst []byte, prefix string, v float64) ([]byte, error) {
	if v == 0 {
		return dst, nil
	}
	dst = append(dst, prefix...)
	dst, err := jsonz.AppendFloat(dst, v)
	if err != nil {
		return dst, fmt.Errorf("eventlog: encode %s %w", prefix[2:len(prefix)-2], err)
	}
	return dst, nil
}

// internCap bounds the decoder's string-intern table so an adversarial
// stream cannot grow it without bound; past the cap strings are simply
// allocated.
const internCap = 1 << 14

// Decoder is the allocation-free streaming decoder for one-event-per-line
// JSONL streams (the format WriteRun emits). Task and end events decode with
// zero heap allocations in steady state: repeated strings (event names,
// stage labels, query IDs) are interned and numbers are parsed in place.
// Lines outside the fast path's strict subset — plans, escaped strings,
// exotic numbers — transparently fall back to encoding/json for that line,
// with identical semantics. A Decoder is not safe for concurrent use.
type Decoder struct {
	data []byte
	off  int
	strs map[string]string
}

// NewDecoder returns a Decoder reading from data.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{data: data}
}

// Reset repoints the Decoder at a new stream, keeping the intern table warm.
func (d *Decoder) Reset(data []byte) {
	d.data = data
	d.off = 0
}

// Next decodes the next event into *ev, overwriting it completely. It
// returns io.EOF at end of stream and an error on a line that is not a
// valid JSON event.
func (d *Decoder) Next(ev *Event) error {
	for d.off < len(d.data) {
		var line []byte
		if nl := bytes.IndexByte(d.data[d.off:], '\n'); nl < 0 {
			line = d.data[d.off:]
			d.off = len(d.data)
		} else {
			line = d.data[d.off : d.off+nl]
			d.off += nl + 1
		}
		line = trimJSONSpace(line)
		if len(line) == 0 {
			continue
		}
		*ev = Event{}
		if d.parseLine(line, ev) {
			return nil
		}
		// Outside the strict fast subset: let encoding/json decide, with
		// identical accept/reject semantics for any single-line value.
		*ev = Event{}
		if err := json.Unmarshal(line, ev); err != nil {
			return fmt.Errorf("eventlog: parse: %w", err)
		}
		return nil
	}
	return io.EOF
}

// ParseBytes is Parse for in-memory streams. Well-formed one-event-per-line
// input takes the zero-allocation fast path; anything else — multi-line
// values, malformed lines, semantic errors — re-parses through Parse so
// ParseBytes(data) and Parse(bytes.NewReader(data)) always agree on both
// verdict and content.
func ParseBytes(data []byte, space *sparksim.Space) ([]Run, error) {
	d := NewDecoder(data)
	runs, err := d.decodeRuns(space)
	if err != nil {
		return Parse(bytes.NewReader(data), space)
	}
	return runs, nil
}

// decodeRuns mirrors Parse's reassembly loop over the fast decoder.
func (d *Decoder) decodeRuns(space *sparksim.Space) ([]Run, error) {
	open := map[int64]*Run{}
	var done []Run
	var ev Event
	for {
		if err := d.Next(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		switch ev.Event {
		case EventExecutionStart:
			if ev.Plan == nil {
				return nil, fmt.Errorf("eventlog: execution %d start without plan", ev.ExecutionID)
			}
			if err := ev.Plan.Validate(); err != nil {
				return nil, fmt.Errorf("eventlog: execution %d: %w", ev.ExecutionID, err)
			}
			cfg := space.Default()
			for i, p := range space.Params {
				if v, ok := ev.SparkConf[p.Name]; ok {
					cfg[i] = p.Snap(v)
				}
			}
			open[ev.ExecutionID] = &Run{
				ExecutionID: ev.ExecutionID,
				QueryID:     ev.QueryID,
				Plan:        ev.Plan,
				Config:      cfg,
				InputBytes:  ev.InputBytes,
			}
		case EventTaskEnd:
			if run, ok := open[ev.ExecutionID]; ok {
				run.TaskEvents++
			}
		case EventExecutionEnd:
			run, ok := open[ev.ExecutionID]
			if !ok {
				continue
			}
			run.DurationMs = ev.DurationMs
			done = append(done, *run)
			delete(open, ev.ExecutionID)
		}
	}
	return done, nil
}

// parseLine decodes one line holding exactly one JSON object within the
// strict fast subset. It reports false — leaving ev in an unspecified
// state — whenever the line needs the encoding/json fallback, either
// because it is malformed or because it uses a feature the fast path does
// not model (escapes, nested values, non-canonical numbers).
func (d *Decoder) parseLine(b []byte, ev *Event) bool {
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return false
	}
	i = skipWS(b, i+1)
	if i < len(b) && b[i] == '}' {
		return skipWS(b, i+1) == len(b)
	}
	for {
		key, j, ok := scanSimpleString(b, i)
		if !ok {
			return false
		}
		i = skipWS(b, j)
		if i >= len(b) || b[i] != ':' {
			return false
		}
		i = skipWS(b, i+1)
		switch string(key) {
		case "Event":
			if ev.Event, i, ok = d.stringValue(b, i); !ok {
				return false
			}
		case "queryId":
			if ev.QueryID, i, ok = d.stringValue(b, i); !ok {
				return false
			}
		case "stage":
			if ev.StageLabel, i, ok = d.stringValue(b, i); !ok {
				return false
			}
		case "executionId":
			if ev.ExecutionID, i, ok = intValue(b, i); !ok {
				return false
			}
		case "timestamp":
			if ev.Timestamp, i, ok = intValue(b, i); !ok {
				return false
			}
		case "inputBytes":
			if ev.InputBytes, i, ok = floatValue(b, i); !ok {
				return false
			}
		case "taskDurationMs":
			if ev.TaskMs, i, ok = floatValue(b, i); !ok {
				return false
			}
		case "durationMs":
			if ev.DurationMs, i, ok = floatValue(b, i); !ok {
				return false
			}
		case "physicalPlan", "sparkConf":
			// Nested values: once per run, the fallback handles them.
			return false
		default:
			if i, ok = skipScalar(b, i); !ok {
				return false
			}
		}
		i = skipWS(b, i)
		if i >= len(b) {
			return false
		}
		if b[i] == ',' {
			i = skipWS(b, i+1)
			continue
		}
		if b[i] == '}' {
			return skipWS(b, i+1) == len(b)
		}
		return false
	}
}

// stringValue decodes a string (or null) value, interning the result so
// repeated labels cost no allocation.
func (d *Decoder) stringValue(b []byte, i int) (string, int, bool) {
	if j, ok := scanNull(b, i); ok {
		return "", j, true
	}
	content, j, ok := scanSimpleString(b, i)
	if !ok || !utf8.Valid(content) {
		// Escapes and invalid UTF-8 (which encoding/json coerces to U+FFFD)
		// go through the fallback.
		return "", 0, false
	}
	if s, hit := d.strs[string(content)]; hit {
		return s, j, true
	}
	s := string(content)
	if d.strs == nil {
		d.strs = make(map[string]string, 16)
	}
	if len(d.strs) < internCap {
		d.strs[s] = s
	}
	return s, j, true
}

func intValue(b []byte, i int) (int64, int, bool) {
	if j, ok := scanNull(b, i); ok {
		return 0, j, true
	}
	tok, j, ok := scanNumberToken(b, i)
	if !ok || !validJSONInteger(tok) {
		return 0, 0, false
	}
	v, err := strconv.ParseInt(byteString(tok), 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return v, j, true
}

func floatValue(b []byte, i int) (float64, int, bool) {
	if j, ok := scanNull(b, i); ok {
		return 0, j, true
	}
	tok, j, ok := scanNumberToken(b, i)
	if !ok || !validJSONNumber(tok) {
		return 0, 0, false
	}
	v, err := strconv.ParseFloat(byteString(tok), 64)
	if err != nil {
		return 0, 0, false
	}
	return v, j, true
}

// byteString views b as a string without copying. The view must not outlive
// b or survive any mutation of it; it exists only to feed strconv.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// skipScalar advances past a scalar value (string without escapes, number,
// true/false/null); anything else forces the fallback.
func skipScalar(b []byte, i int) (int, bool) {
	if i >= len(b) {
		return 0, false
	}
	switch b[i] {
	case '"':
		_, j, ok := scanSimpleString(b, i)
		return j, ok
	case 't':
		return scanLit(b, i, "true")
	case 'f':
		return scanLit(b, i, "false")
	case 'n':
		return scanLit(b, i, "null")
	default:
		tok, j, ok := scanNumberToken(b, i)
		if !ok || !validJSONNumber(tok) {
			return 0, false
		}
		return j, true
	}
}

func scanNull(b []byte, i int) (int, bool) {
	return scanLit(b, i, "null")
}

func scanLit(b []byte, i int, lit string) (int, bool) {
	if len(b)-i < len(lit) || string(b[i:i+len(lit)]) != lit {
		return 0, false
	}
	return i + len(lit), true
}

// scanSimpleString scans a quoted string containing no escapes and no raw
// control characters, returning its contents and the index past the closing
// quote.
func scanSimpleString(b []byte, i int) ([]byte, int, bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	for j := i + 1; j < len(b); j++ {
		switch c := b[j]; {
		case c == '"':
			return b[i+1 : j], j + 1, true
		case c == '\\' || c < 0x20:
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// scanNumberToken scans the maximal run of number characters; the caller
// validates it against the JSON grammar.
func scanNumberToken(b []byte, i int) ([]byte, int, bool) {
	j := i
	for j < len(b) {
		switch c := b[j]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			j++
		default:
			if j == i {
				return nil, 0, false
			}
			return b[i:j], j, true
		}
	}
	if j == i {
		return nil, 0, false
	}
	return b[i:j], j, true
}

// validJSONNumber checks tok against RFC 8259's number grammar, which is
// stricter than strconv.ParseFloat (no leading '+', '.5', '1.', '0x…').
func validJSONNumber(tok []byte) bool {
	i := 0
	if i < len(tok) && tok[i] == '-' {
		i++
	}
	switch {
	case i < len(tok) && tok[i] == '0':
		i++
	case i < len(tok) && tok[i] >= '1' && tok[i] <= '9':
		for i < len(tok) && isDigit(tok[i]) {
			i++
		}
	default:
		return false
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		if i >= len(tok) || !isDigit(tok[i]) {
			return false
		}
		for i < len(tok) && isDigit(tok[i]) {
			i++
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= len(tok) || !isDigit(tok[i]) {
			return false
		}
		for i < len(tok) && isDigit(tok[i]) {
			i++
		}
	}
	return i == len(tok)
}

// validJSONInteger additionally rejects fractions and exponents, matching
// encoding/json's refusal to decode them into integer fields.
func validJSONInteger(tok []byte) bool {
	if !validJSONNumber(tok) {
		return false
	}
	for _, c := range tok {
		if c == '.' || c == 'e' || c == 'E' {
			return false
		}
	}
	return true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func skipWS(b []byte, i int) int {
	for i < len(b) && isJSONSpace(b[i]) {
		i++
	}
	return i
}

func trimJSONSpace(b []byte) []byte {
	for len(b) > 0 && isJSONSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isJSONSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isJSONSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
