package eventlog

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func simulateRuns(t *testing.T, n int) (*bytes.Buffer, *sparksim.Space, *sparksim.Query) {
	t.Helper()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(3).Query(workloads.TPCDS, 2)
	r := stats.NewRNG(5)
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		cfg := space.Random(r)
		o := e.Run(q, cfg, 1, r, noise.Low)
		o.Iteration = i
		stages, _ := e.Explain(q, cfg, 1)
		if err := WriteRun(&buf, int64(i), space, q, o, stages, 5); err != nil {
			t.Fatal(err)
		}
	}
	return &buf, space, q
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	buf, space, q := simulateRuns(t, 6)
	runs, err := Parse(buf, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 {
		t.Fatalf("runs = %d", len(runs))
	}
	for i, run := range runs {
		if run.QueryID != q.ID {
			t.Fatalf("run %d query id %q", i, run.QueryID)
		}
		if run.DurationMs <= 0 || run.InputBytes <= 0 {
			t.Fatalf("run %d degenerate: %+v", i, run)
		}
		if run.TaskEvents == 0 {
			t.Fatalf("run %d has no task events", i)
		}
		if err := run.Plan.Validate(); err != nil {
			t.Fatalf("run %d plan invalid after round trip: %v", i, err)
		}
		// The reassembled plan must embed identically to the original.
		emb := embedding.NewVirtual()
		a, b := emb.Embed(run.Plan), emb.Embed(q.Plan)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d embedding drift at %d", i, j)
			}
		}
		// Config snapping must hold.
		for j, p := range space.Params {
			if run.Config[j] < p.Min || run.Config[j] > p.Max {
				t.Fatalf("run %d config out of bounds", i)
			}
		}
	}
}

func TestParseDropsTruncatedExecutions(t *testing.T) {
	t.Parallel()
	buf, space, _ := simulateRuns(t, 3)
	// Chop the log so the final ExecutionEnd is lost.
	raw := buf.String()
	idx := strings.LastIndex(raw, `{"Event":"SparkListenerSQLExecutionEnd"`)
	runs, err := Parse(strings.NewReader(raw[:idx]), space)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("truncated log should yield 2 complete runs, got %d", len(runs))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	t.Parallel()
	space := sparksim.QuerySpace()
	if _, err := Parse(strings.NewReader("{nope"), space); err == nil {
		t.Fatal("garbage should error")
	}
	// Start without a plan.
	bad := `{"Event":"SparkListenerSQLExecutionStart","executionId":1}` + "\n"
	if _, err := Parse(strings.NewReader(bad), space); err == nil {
		t.Fatal("start without plan should error")
	}
}

func TestParseIgnoresOrphanEnd(t *testing.T) {
	t.Parallel()
	space := sparksim.QuerySpace()
	orphan := `{"Event":"SparkListenerSQLExecutionEnd","executionId":9,"durationMs":5}` + "\n"
	runs, err := Parse(strings.NewReader(orphan), space)
	if err != nil || len(runs) != 0 {
		t.Fatalf("orphan end should be skipped: %v %d", err, len(runs))
	}
}

func TestETL(t *testing.T) {
	t.Parallel()
	buf, space, q := simulateRuns(t, 4)
	runs, err := Parse(buf, space)
	if err != nil {
		t.Fatal(err)
	}
	traces := ETL(runs, nil)
	if len(traces) != 4 {
		t.Fatalf("traces = %d", len(traces))
	}
	emb := embedding.NewVirtual()
	want := emb.Embed(q.Plan)
	for _, tr := range traces {
		if tr.TimeMs <= 0 || len(tr.Embedding) != emb.Dim() {
			t.Fatalf("trace malformed: %+v", tr)
		}
		for j := range want {
			if tr.Embedding[j] != want[j] {
				t.Fatal("ETL embedding mismatch")
			}
		}
	}
	// Zero-duration runs are filtered.
	runs[0].DurationMs = 0
	if got := ETL(runs, emb); len(got) != 3 {
		t.Fatalf("zero-duration run not filtered: %d", len(got))
	}
}
