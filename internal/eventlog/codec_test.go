package eventlog

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// randEvent builds arbitrary Events for the byte-identity property; plans
// are drawn from the workload generator when the low bits say so.
func randEvent(rawStrings func() string, rawFloat func() float64, rawInt func() int64, withPlan bool) Event {
	ev := Event{
		Event:       rawStrings(),
		ExecutionID: rawInt(),
		Timestamp:   rawInt(),
		QueryID:     rawStrings(),
		StageLabel:  rawStrings(),
		InputBytes:  rawFloat(),
		TaskMs:      rawFloat(),
		DurationMs:  rawFloat(),
	}
	if withPlan {
		ev.Plan = workloads.NewGenerator(7).Query(workloads.TPCDS, 1).Plan
		ev.SparkConf = map[string]float64{
			"spark.executor.memory": 4096,
			"spark.sql.<shuffle>":   rawFloat(),
			"häßlich":               -1.5,
		}
	}
	return ev
}

// TestAppendEventMatchesEncodingJSON is the codec's core claim: AppendEvent
// and json.Marshal produce identical bytes for every event shape, including
// adversarial strings and float edge cases.
func TestAppendEventMatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	strs := []string{"", "plain", `esc "x" \y`, "html <&>", "unicode 日本", "ctrl\x01\n\t", "bad\xffutf8"}
	floats := []float64{0, 1, -2.5, 1e-7, 3.4e21, math.MaxFloat64, 0.1}
	ints := []int64{0, 1, -9, math.MaxInt64, math.MinInt64}
	si, fi, ii := 0, 0, 0
	nextS := func() string { si++; return strs[si%len(strs)] }
	nextF := func() float64 { fi++; return floats[fi%len(floats)] }
	nextI := func() int64 { ii++; return ints[ii%len(ints)] }
	for trial := 0; trial < 200; trial++ {
		ev := randEvent(nextS, nextF, nextI, trial%5 == 0)
		want, err := json.Marshal(&ev)
		if err != nil {
			t.Fatalf("trial %d: json.Marshal: %v", trial, err)
		}
		got, err := AppendEvent(nil, &ev)
		if err != nil {
			t.Fatalf("trial %d: AppendEvent: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\n got %s\nwant %s", trial, got, want)
		}
	}
	// Non-finite floats must fail, as they do for encoding/json.
	bad := Event{Event: "x", DurationMs: math.NaN()}
	if _, err := AppendEvent(nil, &bad); err == nil {
		t.Fatal("AppendEvent accepted NaN")
	}
	if _, err := json.Marshal(&bad); err == nil {
		t.Fatal("fixture invalid: encoding/json accepted NaN")
	}
}

// TestWriteRunBytesUnchanged pins that the pooled AppendEvent path emits the
// same stream the json.Encoder path used to: every line must round-trip
// through json.Marshal as a fixed point.
func TestWriteRunBytesUnchanged(t *testing.T) {
	t.Parallel()
	buf, _, _ := simulateRuns(t, 4)
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) < 8 {
		t.Fatalf("suspiciously few event lines: %d", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		re, err := json.Marshal(&ev)
		if err != nil {
			t.Fatalf("line %d re-marshal: %v", i, err)
		}
		if !bytes.Equal(line, re) {
			t.Fatalf("line %d is not an encoding/json fixed point:\n got %s\nwant %s", i, line, re)
		}
	}
}

// TestDecoderMatchesEncodingJSON feeds the fast decoder event lines both
// inside and outside its strict subset and checks field-for-field agreement
// with json.Unmarshal.
func TestDecoderMatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	lines := []string{
		`{"Event":"SparkListenerTaskEnd","executionId":7,"timestamp":0,"stage":"shuffle-3","taskDurationMs":12.25}`,
		`{"Event":"SparkListenerSQLExecutionEnd","executionId":7,"timestamp":0,"durationMs":901.5}`,
		`{"Event":"x","executionId":-3,"timestamp":9223372036854775807}`,
		`{"Event":"esc\"aped","executionId":1,"timestamp":2,"stage":"tab\tlabel"}`, // escapes: fallback path
		`{"Event":"n","executionId":1,"timestamp":2,"durationMs":1e3}`,
		`{"Event":"n","executionId":1,"timestamp":2,"durationMs":-0.5e-7}`,
		`{"Event":"n","executionId":null,"timestamp":2,"stage":null}`,
		`{"unknown":"skip","alsoUnknown":true,"more":null,"num":1.5,"Event":"u","executionId":4,"timestamp":5}`,
		`  {"Event":"ws","executionId":1,"timestamp":2}  `,
		`{}`,
		`{"Event":"dup","executionId":1,"timestamp":2,"executionId":9}`,
	}
	for i, line := range lines {
		var want Event
		if err := json.Unmarshal([]byte(line), &want); err != nil {
			t.Fatalf("fixture %d invalid: %v", i, err)
		}
		d := NewDecoder([]byte(line + "\n"))
		var got Event
		if err := d.Next(&got); err != nil {
			t.Fatalf("line %d: Next: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("line %d:\n got %+v\nwant %+v", i, got, want)
		}
		if err := d.Next(&got); err != io.EOF {
			t.Fatalf("line %d: expected EOF, got %v", i, err)
		}
	}
	// Lines encoding/json rejects must be rejected too.
	for i, line := range []string{
		`{"Event":"x","executionId":1.5,"timestamp":2}`, // float into int64
		`{"Event":"x","executionId":01,"timestamp":2}`,  // leading zero
		`{"Event":"x","durationMs":.5}`,                 // bare fraction
		`{"Event":"x","durationMs":1.}`,                 // trailing dot
		`{"Event":"x","durationMs":0x10}`,               // hex
		`{"Event":"x","durationMs":1e999}`,              // overflow
		`not json at all`,
		`{"Event":"x"`,                   // truncated
		`{"Event":"x"} trailing`,         // trailing garbage
		`{"Event":"x"}{"Event":"y"}`,     // two values on one line
		"{\"Event\":\"raw\x01ctrl\"}",    // raw control char in string
		`{"Event":"x","durationMs":"s"}`, // string into float
	} {
		var ref Event
		if err := json.Unmarshal([]byte(line), &ref); err == nil {
			t.Fatalf("reject fixture %d is actually valid for encoding/json", i)
		}
		d := NewDecoder([]byte(line))
		var got Event
		if err := d.Next(&got); err == nil {
			t.Fatalf("reject fixture %d: fast decoder accepted %q", i, line)
		}
	}
}

// TestDecoderInvalidUTF8AgreesWithJSON pins the subtle case that forces the
// UTF-8 validity check: encoding/json coerces invalid bytes to U+FFFD, so
// the fast path must not pass raw bytes through.
func TestDecoderInvalidUTF8AgreesWithJSON(t *testing.T) {
	t.Parallel()
	line := []byte("{\"Event\":\"bad\xffbyte\",\"executionId\":1,\"timestamp\":2}")
	var want Event
	if err := json.Unmarshal(line, &want); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	var got Event
	if err := NewDecoder(line).Next(&got); err != nil {
		t.Fatal(err)
	}
	if got.Event != want.Event {
		t.Fatalf("invalid UTF-8 diverged: %q vs %q", got.Event, want.Event)
	}
}

// TestParseBytesEquivalence checks ParseBytes ≡ Parse on generated streams,
// streams with truncation, and random byte soup.
func TestParseBytesEquivalence(t *testing.T) {
	t.Parallel()
	buf, space, _ := simulateRuns(t, 5)
	data := buf.Bytes()
	checkEquiv := func(data []byte) {
		t.Helper()
		fast, fastErr := ParseBytes(data, space)
		ref, refErr := Parse(bytes.NewReader(data), space)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("verdict diverged: fast=%v ref=%v", fastErr, refErr)
		}
		if fastErr != nil {
			return
		}
		if len(fast) != len(ref) {
			t.Fatalf("run count diverged: %d vs %d", len(fast), len(ref))
		}
		for i := range fast {
			f, r := fast[i], ref[i]
			if f.ExecutionID != r.ExecutionID || f.QueryID != r.QueryID ||
				f.InputBytes != r.InputBytes || f.DurationMs != r.DurationMs ||
				f.TaskEvents != r.TaskEvents || !reflect.DeepEqual(f.Config, r.Config) {
				t.Fatalf("run %d diverged:\nfast %+v\nref  %+v", i, f, r)
			}
		}
	}
	checkEquiv(data)
	checkEquiv(data[:len(data)/2])
	checkEquiv([]byte{})
	checkEquiv([]byte("\n\n  \n"))
	checkEquiv([]byte(`{"Event":"SparkListenerSQLExecutionEnd","executionId":1,"timestamp":0,"durationMs":5}`))
	// Multi-line JSON values: the fast path cannot frame them and must
	// defer to Parse, not reject.
	pretty := bytes.ReplaceAll(data[:bytes.IndexByte(data, '\n')], []byte(","), []byte(",\n"))
	checkEquiv(pretty)
	f := func(soup []byte) bool {
		fast, fastErr := ParseBytes(soup, space)
		ref, refErr := Parse(bytes.NewReader(soup), space)
		return (fastErr == nil) == (refErr == nil) && len(fast) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
