// Package eventlog implements a Spark-event-log-shaped codec and the
// Embedding ETL of Figure 7. The production backend does not receive
// digested training rows — it receives raw Spark listener event files and
// runs a streaming ETL ("the Embedding ETL, which processes Spark job
// logs") to extract plans, configurations, input sizes, and durations.
// This package reproduces that boundary: simulated runs are serialized as
// JSON listener events (SQLExecutionStart with the physical plan and
// effective configuration, sampled TaskEnd events, SQLExecutionEnd with the
// duration), and the ETL parses event streams back into training traces.
package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

// Listener event names, mirroring Spark's SparkListener event vocabulary.
const (
	EventExecutionStart = "SparkListenerSQLExecutionStart"
	EventTaskEnd        = "SparkListenerTaskEnd"
	EventExecutionEnd   = "SparkListenerSQLExecutionEnd"
)

// Event is one listener event. Fields are a union across event kinds;
// unused fields are omitted from the JSON, as in Spark's own logs.
type Event struct {
	Event       string `json:"Event"`
	ExecutionID int64  `json:"executionId"`
	Timestamp   int64  `json:"timestamp"`

	// ExecutionStart fields.
	QueryID    string             `json:"queryId,omitempty"`
	Plan       *sparksim.Plan     `json:"physicalPlan,omitempty"`
	SparkConf  map[string]float64 `json:"sparkConf,omitempty"`
	InputBytes float64            `json:"inputBytes,omitempty"`

	// TaskEnd fields.
	StageLabel string  `json:"stage,omitempty"`
	TaskMs     float64 `json:"taskDurationMs,omitempty"`

	// ExecutionEnd fields.
	DurationMs float64 `json:"durationMs,omitempty"`
}

// encBufPool recycles WriteRun's encode buffers; under ingest load a run is
// rendered into one pooled buffer and flushed with a single Write.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// WriteRun serializes one simulated execution as an event stream: start
// (plan + effective Spark conf + input size), up to maxTasks sampled task
// events, and the end event with the observed duration. The whole run is
// rendered into a pooled buffer through the zero-allocation AppendEvent
// codec and written with one Write call; the bytes are identical to the
// former json.Encoder output.
func WriteRun(w io.Writer, execID int64, space *sparksim.Space, q *sparksim.Query,
	o sparksim.Observation, stages []sparksim.StageStat, maxTasks int) error {
	bp := encBufPool.Get().(*[]byte)
	buf, err := appendRun((*bp)[:0], execID, space, q, o, stages, maxTasks)
	if err != nil {
		encBufPool.Put(bp)
		return err
	}
	_, werr := w.Write(buf)
	*bp = buf
	encBufPool.Put(bp)
	if werr != nil {
		return fmt.Errorf("eventlog: write run: %w", werr)
	}
	return nil
}

// appendRun renders the full event stream of one execution into dst.
func appendRun(dst []byte, execID int64, space *sparksim.Space, q *sparksim.Query,
	o sparksim.Observation, stages []sparksim.StageStat, maxTasks int) ([]byte, error) {
	conf := make(map[string]float64, space.Dim())
	for i, p := range space.Params {
		conf[p.Name] = o.Config[i]
	}
	start := Event{
		Event:       EventExecutionStart,
		ExecutionID: execID,
		Timestamp:   int64(o.Iteration),
		QueryID:     q.ID,
		Plan:        q.Plan,
		SparkConf:   conf,
		InputBytes:  o.DataSize,
	}
	var err error
	if dst, err = AppendEvent(dst, &start); err != nil {
		return dst, fmt.Errorf("eventlog: write start: %w", err)
	}
	dst = append(dst, '\n')
	n := 0
	ev := Event{Event: EventTaskEnd, ExecutionID: execID}
	for _, st := range stages {
		if n >= maxTasks {
			break
		}
		if st.Tasks == 0 {
			continue
		}
		ev.StageLabel = st.Label
		ev.TaskMs = st.TimeMs / float64(st.Tasks)
		if dst, err = AppendEvent(dst, &ev); err != nil {
			return dst, fmt.Errorf("eventlog: write task: %w", err)
		}
		dst = append(dst, '\n')
		n++
	}
	end := Event{
		Event:       EventExecutionEnd,
		ExecutionID: execID,
		DurationMs:  o.Time,
	}
	if dst, err = AppendEvent(dst, &end); err != nil {
		return dst, fmt.Errorf("eventlog: write end: %w", err)
	}
	return append(dst, '\n'), nil
}

// Run is one reassembled execution.
type Run struct {
	ExecutionID int64
	QueryID     string
	Plan        *sparksim.Plan
	Config      sparksim.Config
	InputBytes  float64
	DurationMs  float64
	TaskEvents  int
}

// Parse reassembles executions from an event stream. Executions missing
// either their start or end event are dropped (truncated logs are routine
// in production); an execution whose plan fails validation is an error.
func Parse(r io.Reader, space *sparksim.Space) ([]Run, error) {
	dec := json.NewDecoder(r)
	open := map[int64]*Run{}
	var done []Run
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("eventlog: parse: %w", err)
		}
		switch ev.Event {
		case EventExecutionStart:
			if ev.Plan == nil {
				return nil, fmt.Errorf("eventlog: execution %d start without plan", ev.ExecutionID)
			}
			if err := ev.Plan.Validate(); err != nil {
				return nil, fmt.Errorf("eventlog: execution %d: %w", ev.ExecutionID, err)
			}
			cfg := space.Default()
			for i, p := range space.Params {
				if v, ok := ev.SparkConf[p.Name]; ok {
					cfg[i] = p.Snap(v)
				}
			}
			open[ev.ExecutionID] = &Run{
				ExecutionID: ev.ExecutionID,
				QueryID:     ev.QueryID,
				Plan:        ev.Plan,
				Config:      cfg,
				InputBytes:  ev.InputBytes,
			}
		case EventTaskEnd:
			if run, ok := open[ev.ExecutionID]; ok {
				run.TaskEvents++
			}
		case EventExecutionEnd:
			run, ok := open[ev.ExecutionID]
			if !ok {
				continue // end without start: truncated log
			}
			run.DurationMs = ev.DurationMs
			done = append(done, *run)
			delete(open, ev.ExecutionID)
		}
	}
	return done, nil
}

// ETL converts parsed runs into surrogate training traces, computing each
// plan's workload embedding — the Embedding ETL streaming job. Embeddings
// are memoized per query signature (EmbedSig), so the recurring jobs that
// dominate production ingest pay the plan walk once; the resulting vectors
// are shared and must be treated as read-only.
func ETL(runs []Run, embedder *embedding.Embedder) []flighting.Trace {
	if embedder == nil {
		embedder = defaultETLEmbedder
	}
	out := make([]flighting.Trace, 0, len(runs))
	for _, run := range runs {
		if run.DurationMs <= 0 {
			continue
		}
		out = append(out, flighting.Trace{
			QueryID:   run.QueryID,
			Embedding: embedder.EmbedSig(run.QueryID, run.Plan),
			Config:    run.Config,
			DataSize:  run.InputBytes,
			TimeMs:    run.DurationMs,
		})
	}
	return out
}

// defaultETLEmbedder is shared across ETL calls so its signature memo
// survives between ingest batches.
var defaultETLEmbedder = embedding.NewVirtual()
