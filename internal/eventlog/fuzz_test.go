package eventlog

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// decodeEvents reads a whole stream of listener events; it is the inverse of
// encodeEvents for the round-trip invariant below.
func decodeEvents(data []byte) ([]Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

func encodeEvents(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			t.Fatalf("encode event %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// FuzzEventLogRoundTrip checks the codec's stability on arbitrary inputs:
// decoding never panics, and once a stream survives one decode→encode pass
// the representation is a fixed point (encode∘decode is the identity on it).
// Equality is asserted on bytes rather than reflect.DeepEqual because JSON
// legitimately collapses empty-but-non-nil maps/slices through omitempty.
// Parse (the ETL front end) must also agree on the scalar content of the
// original and canonicalized streams.
func FuzzEventLogRoundTrip(f *testing.F) {
	// Seed corpus: a genuine simulated event stream per suite...
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	r := stats.NewRNG(11)
	for i, suite := range []workloads.Suite{workloads.TPCDS, workloads.TPCH} {
		q := workloads.NewGenerator(3).Query(suite, 2)
		cfg := space.Random(r)
		o := e.Run(q, cfg, 1, r, noise.Low)
		o.Iteration = i
		stages, _ := e.Explain(q, cfg, 1)
		var buf bytes.Buffer
		if err := WriteRun(&buf, int64(i), space, q, o, stages, 4); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// ...plus malformed shapes the parser must reject or skip gracefully.
	f.Add([]byte(`{"Event":"SparkListenerSQLExecutionStart","executionId":1}`))
	f.Add([]byte(`{"Event":"SparkListenerSQLExecutionEnd","executionId":9,"durationMs":5}`))
	f.Add([]byte(`{"Event":"SparkListenerTaskEnd","executionId":-1,"stage":"s","taskDurationMs":1e-9}`))
	f.Add([]byte("{nope"))
	f.Add([]byte(`{"Event":"SparkListenerSQLExecutionStart","executionId":2,"sparkConf":{},"physicalPlan":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The fast in-memory parser must agree with the reference parser on
		// every input: same verdict, same run count.
		fastRuns, fastErr := ParseBytes(data, space)
		refRuns, refErr := Parse(bytes.NewReader(data), space)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("ParseBytes verdict diverged from Parse: %v vs %v", fastErr, refErr)
		}
		if fastErr == nil && len(fastRuns) != len(refRuns) {
			t.Fatalf("ParseBytes run count diverged: %d vs %d", len(fastRuns), len(refRuns))
		}

		events, err := decodeEvents(data)
		if err != nil {
			// Undecodable input: Parse must reject it without panicking.
			if _, perr := Parse(bytes.NewReader(data), space); perr == nil {
				t.Fatalf("Parse accepted a stream the event codec rejects")
			}
			return
		}
		b1 := encodeEvents(t, events)
		events2, err := decodeEvents(b1)
		if err != nil {
			t.Fatalf("re-decode of canonical stream failed: %v", err)
		}
		b2 := encodeEvents(t, events2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode∘decode is not a fixed point:\n b1=%q\n b2=%q", b1, b2)
		}

		runs1, err1 := Parse(bytes.NewReader(data), space)
		runs2, err2 := Parse(bytes.NewReader(b1), space)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Parse verdict changed across canonicalization: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(runs1) != len(runs2) {
			t.Fatalf("run count changed: %d vs %d", len(runs1), len(runs2))
		}
		for i := range runs1 {
			a, b := runs1[i], runs2[i]
			if a.ExecutionID != b.ExecutionID || a.QueryID != b.QueryID ||
				a.DurationMs != b.DurationMs || a.InputBytes != b.InputBytes ||
				a.TaskEvents != b.TaskEvents {
				t.Fatalf("run %d drifted: %+v vs %+v", i, a, b)
			}
			if len(a.Config) != len(b.Config) {
				t.Fatalf("run %d config length drifted", i)
			}
			for j := range a.Config {
				if a.Config[j] != b.Config[j] {
					t.Fatalf("run %d config[%d] drifted: %g vs %g", i, j, a.Config[j], b.Config[j])
				}
			}
		}
	})
}
