// Package embedding computes workload embeddings: compact vectors that
// characterize a query's execution plan and serve as the "context" of the
// contextual surrogate model f([embedding, configs]) = perf (Section 4.1).
//
// Two schemes are implemented:
//
//   - Plain: the Phoebe-style embedding of [Zhu et al., VLDB'21] — estimated
//     root cardinality, total leaf input cardinality, and a count per
//     physical operator kind. This is the ablation baseline of Section 6.2.
//   - Virtual: Rockhopper's refinement. Each physical operator is split into
//     *virtual operators* by bucketing its estimated input and output sizes
//     against clustering thresholds (Figure 4), so that e.g. a Filter that
//     barely reduces a huge input and a Filter that collapses it to a few
//     rows count as different operator types. The thresholds are the
//     fine-tuned clustering boundaries the paper mentions.
//
// Cardinalities enter the vector as log1p values so that scans of 10⁴ and
// 10⁸ rows remain commensurable for distance-based surrogates.
package embedding

import (
	"fmt"
	"math"
	"sync"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

// Scheme selects the embedding flavour.
type Scheme int

const (
	// Plain is the operator-count embedding from prior work.
	Plain Scheme = iota
	// Virtual adds input/output-size virtual operator refinement.
	Virtual
)

func (s Scheme) String() string {
	if s == Virtual {
		return "virtual"
	}
	return "plain"
}

// Embedder converts plans to fixed-width vectors. An Embedder must not be
// copied after first use of EmbedSig (it carries a mutex-guarded memo
// table); Embed alone keeps the embedder stateless.
type Embedder struct {
	Scheme Scheme
	// InputThresholds and OutputThresholds are ascending row-count
	// boundaries that bucket an operator's estimated input and output sizes
	// into len+1 classes each. Only used by the Virtual scheme.
	InputThresholds  []float64
	OutputThresholds []float64
	// Structural appends plan-shape features — tree depth, the length of
	// the longest join chain, and leaf count — the "complex execution plan
	// structures" direction the paper flags as future work (citing Eraser's
	// richer plan encodings).
	Structural bool

	// Per-signature embedding memo (EmbedSig): production ingest re-embeds
	// the same recurring jobs on every run, so the plan walk is paid once
	// per signature and guarded by a cheap structural fingerprint.
	mu   sync.RWMutex
	memo map[string]memoEntry
}

type memoEntry struct {
	fp  uint64
	vec []float64
}

// Default thresholds: the experiments in Section 6.2 fine-tune the
// clustering boundaries end-to-end; these values separate "small dimension
// table", "mid-size stream", and "large fact scan" regimes at SF≈1.
var (
	defaultInputThresholds  = []float64{1e5, 1e7}
	defaultOutputThresholds = []float64{1e4, 1e6}
)

// NewPlain returns the operator-count baseline embedder.
func NewPlain() *Embedder { return &Embedder{Scheme: Plain} }

// NewVirtual returns a virtual-operator embedder with the default
// fine-tuned thresholds.
func NewVirtual() *Embedder {
	return &Embedder{
		Scheme:           Virtual,
		InputThresholds:  defaultInputThresholds,
		OutputThresholds: defaultOutputThresholds,
	}
}

func (e *Embedder) inThr() []float64 {
	if len(e.InputThresholds) == 0 {
		return defaultInputThresholds
	}
	return e.InputThresholds
}

func (e *Embedder) outThr() []float64 {
	if len(e.OutputThresholds) == 0 {
		return defaultOutputThresholds
	}
	return e.OutputThresholds
}

// Dim returns the embedding width: 2 cardinality features plus the operator
// count block, plus 3 structural features when enabled.
func (e *Embedder) Dim() int {
	d := 2 + sparksim.NumOps
	if e.Scheme == Virtual {
		nIn := len(e.inThr()) + 1
		nOut := len(e.outThr()) + 1
		d = 2 + sparksim.NumOps*nIn*nOut
	}
	if e.Structural {
		d += 3
	}
	return d
}

func bucket(v float64, thresholds []float64) int {
	for i, t := range thresholds {
		if v < t {
			return i
		}
	}
	return len(thresholds)
}

// Embed computes the embedding of plan.
func (e *Embedder) Embed(plan *sparksim.Plan) []float64 {
	out := make([]float64, e.Dim())
	out[0] = math.Log1p(plan.RootCardinality())
	out[1] = math.Log1p(plan.LeafInputCardinality())
	if e.Scheme == Plain {
		counts := plan.OperatorCounts()
		for i, c := range counts {
			out[2+i] = float64(c)
		}
	} else {
		inThr, outThr := e.inThr(), e.outThr()
		nIn, nOut := len(inThr)+1, len(outThr)+1
		plan.Walk(func(n *sparksim.Node) {
			bi := bucket(n.InRows, inThr)
			bo := bucket(n.OutRows, outThr)
			idx := 2 + (int(n.Op)*nIn+bi)*nOut + bo
			out[idx]++
		})
	}
	if e.Structural {
		depth, chain, leaves := structuralFeatures(plan)
		base := e.Dim() - 3
		out[base] = float64(depth)
		out[base+1] = float64(chain)
		out[base+2] = float64(leaves)
	}
	return out
}

// memoCap bounds the per-signature memo so unbounded distinct signatures
// (an adversarial or misconfigured ingest feed) cannot grow it without
// limit; past the cap EmbedSig degrades to plain Embed.
const memoCap = 1 << 12

// EmbedSig returns the embedding of plan memoized under the signature sig.
// The returned slice is shared between callers and MUST be treated as
// read-only. A cheap structural fingerprint guards each hit, so a signature
// whose plan changes (schema drift, replanning) is re-embedded rather than
// served a stale vector. Safe for concurrent use.
func (e *Embedder) EmbedSig(sig string, plan *sparksim.Plan) []float64 {
	if sig == "" || plan == nil {
		return e.Embed(plan)
	}
	fp := planFingerprint(plan)
	e.mu.RLock()
	ent, ok := e.memo[sig]
	e.mu.RUnlock()
	if ok && ent.fp == fp {
		return ent.vec
	}
	vec := e.Embed(plan)
	e.mu.Lock()
	if e.memo == nil {
		e.memo = make(map[string]memoEntry, 16)
	}
	if _, exists := e.memo[sig]; exists || len(e.memo) < memoCap {
		e.memo[sig] = memoEntry{fp: fp, vec: vec}
	}
	e.mu.Unlock()
	return vec
}

// planFingerprint hashes the plan's structure and cardinalities (FNV-1a over
// a preorder walk) without allocating; it is the staleness guard for the
// EmbedSig memo, not a cryptographic digest.
func planFingerprint(plan *sparksim.Plan) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	plan.Walk(func(n *sparksim.Node) {
		mix(uint64(n.Op))
		mix(math.Float64bits(n.InRows))
		mix(math.Float64bits(n.OutRows))
		mix(math.Float64bits(n.RowBytes))
		mix(uint64(len(n.Children)))
	})
	return h
}

// structuralFeatures computes tree depth, the longest root-to-leaf chain of
// join operators, and the leaf count.
func structuralFeatures(plan *sparksim.Plan) (depth, joinChain, leaves int) {
	var rec func(n *sparksim.Node, d, joins int)
	rec = func(n *sparksim.Node, d, joins int) {
		if n == nil {
			return
		}
		if n.Op == sparksim.OpSortMergeJoin || n.Op == sparksim.OpBroadcastHashJoin {
			joins++
		}
		if joins > joinChain {
			joinChain = joins
		}
		if d > depth {
			depth = d
		}
		if len(n.Children) == 0 {
			leaves++
			return
		}
		for _, c := range n.Children {
			rec(c, d+1, joins)
		}
	}
	rec(plan.Root, 1, 0)
	return depth, joinChain, leaves
}

// VirtualOpName renders a virtual operator label like
// "Filter[in:1,out:0]" for monitoring dashboards and explainability logs
// ("the suggested configurations along with their rationale", Section 5).
func (e *Embedder) VirtualOpName(op sparksim.Op, inRows, outRows float64) string {
	if e.Scheme == Plain {
		return op.String()
	}
	return fmt.Sprintf("%s[in:%d,out:%d]", op, bucket(inRows, e.inThr()), bucket(outRows, e.outThr()))
}

// Distance returns the Euclidean distance between two embeddings; the
// contextual surrogate's notion of "workloads with similar contexts".
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
