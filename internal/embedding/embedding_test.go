package embedding

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// bigSmallFilterPlans builds two plans identical except for filter
// selectivity: one filter keeps almost everything, the other collapses its
// input. Plain embeddings cannot tell them apart; virtual embeddings can
// (the Figure 4 scenario).
func bigSmallFilterPlans() (*sparksim.Plan, *sparksim.Plan) {
	mk := func(sel float64) *sparksim.Plan {
		scan := sparksim.Scan(50e6, 100)
		f := sparksim.Unary(sparksim.OpFilter, scan, sel)
		agg := sparksim.Unary(sparksim.OpHashAggregate, sparksim.Unary(sparksim.OpExchange, f, 1), 0.001)
		return &sparksim.Plan{Root: agg}
	}
	return mk(0.99), mk(0.00001)
}

func TestDims(t *testing.T) {
	t.Parallel()
	p := NewPlain()
	if p.Dim() != 2+sparksim.NumOps {
		t.Fatalf("plain dim = %d", p.Dim())
	}
	v := NewVirtual()
	want := 2 + sparksim.NumOps*3*3
	if v.Dim() != want {
		t.Fatalf("virtual dim = %d; want %d", v.Dim(), want)
	}
}

func TestEmbedWidthsMatchDim(t *testing.T) {
	t.Parallel()
	g := workloads.NewGenerator(1)
	q := g.Query(workloads.TPCDS, 7)
	for _, e := range []*Embedder{NewPlain(), NewVirtual()} {
		vec := e.Embed(q.Plan)
		if len(vec) != e.Dim() {
			t.Fatalf("%v: len=%d dim=%d", e.Scheme, len(vec), e.Dim())
		}
	}
}

func TestPlainCountsOperators(t *testing.T) {
	t.Parallel()
	g := workloads.NewGenerator(2)
	q := g.Query(workloads.TPCH, 3)
	vec := NewPlain().Embed(q.Plan)
	counts := q.Plan.OperatorCounts()
	for i, c := range counts {
		if vec[2+i] != float64(c) {
			t.Fatalf("plain count mismatch at op %d: %g vs %d", i, vec[2+i], c)
		}
	}
	if vec[0] != math.Log1p(q.Plan.RootCardinality()) {
		t.Fatal("root cardinality feature wrong")
	}
	if vec[1] != math.Log1p(q.Plan.LeafInputCardinality()) {
		t.Fatal("leaf cardinality feature wrong")
	}
}

func TestVirtualPreservesTotalCounts(t *testing.T) {
	t.Parallel()
	// Summing over the virtual buckets of an operator must recover the
	// plain count.
	g := workloads.NewGenerator(3)
	q := g.Query(workloads.TPCDS, 42)
	v := NewVirtual()
	vec := v.Embed(q.Plan)
	counts := q.Plan.OperatorCounts()
	nIn, nOut := 3, 3
	for op := 0; op < sparksim.NumOps; op++ {
		var sum float64
		for bi := 0; bi < nIn; bi++ {
			for bo := 0; bo < nOut; bo++ {
				sum += vec[2+(op*nIn+bi)*nOut+bo]
			}
		}
		if sum != float64(counts[op]) {
			t.Fatalf("op %d: virtual sum %g != plain count %d", op, sum, counts[op])
		}
	}
}

func TestVirtualDistinguishesSelectivity(t *testing.T) {
	t.Parallel()
	a, b := bigSmallFilterPlans()
	plain := NewPlain()
	virt := NewVirtual()
	// The two plans have identical operator multisets; only cardinalities
	// differ, which the plain scheme sees solely through the two cardinality
	// features. Zero those out and the plain embeddings collide while the
	// virtual ones differ.
	pa, pb := plain.Embed(a), plain.Embed(b)
	va, vb := virt.Embed(a), virt.Embed(b)
	pa[0], pa[1], pb[0], pb[1] = 0, 0, 0, 0
	va[0], va[1], vb[0], vb[1] = 0, 0, 0, 0
	if Distance(pa, pb) != 0 {
		t.Fatalf("plain count block should collide: dist=%g", Distance(pa, pb))
	}
	if Distance(va, vb) == 0 {
		t.Fatal("virtual embedding should distinguish selectivity regimes")
	}
}

func TestBucketBoundaries(t *testing.T) {
	t.Parallel()
	thr := []float64{10, 100}
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {9.99, 0}, {10, 1}, {50, 1}, {100, 2}, {1e9, 2}}
	for _, c := range cases {
		if got := bucket(c.v, thr); got != c.want {
			t.Fatalf("bucket(%g) = %d; want %d", c.v, got, c.want)
		}
	}
}

func TestVirtualOpName(t *testing.T) {
	t.Parallel()
	v := NewVirtual()
	name := v.VirtualOpName(sparksim.OpFilter, 5e7, 100)
	if name != "Filter[in:2,out:0]" {
		t.Fatalf("virtual name = %q", name)
	}
	p := NewPlain()
	if p.VirtualOpName(sparksim.OpScan, 1, 1) != "Scan" {
		t.Fatal("plain name should be the bare operator")
	}
}

func TestDistance(t *testing.T) {
	t.Parallel()
	if Distance([]float64{0, 0}, []float64{3, 4}) != 5 {
		t.Fatal("distance wrong")
	}
	if !math.IsInf(Distance([]float64{1}, []float64{1, 2}), 1) {
		t.Fatal("length mismatch should be +Inf")
	}
}

func TestSimilarPlansAreClose(t *testing.T) {
	t.Parallel()
	// The same query at two nearby scale factors should embed closer
	// together than two structurally different queries.
	gA := workloads.NewGenerator(5)
	gB := workloads.NewGenerator(5)
	gB.ScaleFactor = 1.2
	v := NewVirtual()
	q1a := v.Embed(gA.Query(workloads.TPCDS, 11).Plan)
	q1b := v.Embed(gB.Query(workloads.TPCDS, 11).Plan)
	q2 := v.Embed(gA.Query(workloads.TPCDS, 14).Plan)
	if Distance(q1a, q1b) >= Distance(q1a, q2) {
		t.Fatalf("same query at nearby scale should be closer: %g vs %g",
			Distance(q1a, q1b), Distance(q1a, q2))
	}
}

func TestStructuralFeatures(t *testing.T) {
	t.Parallel()
	g := workloads.NewGenerator(4)
	q := g.Query(workloads.TPCDS, 3)
	base := NewVirtual()
	st := NewVirtual()
	st.Structural = true
	if st.Dim() != base.Dim()+3 {
		t.Fatalf("structural dim = %d; want %d", st.Dim(), base.Dim()+3)
	}
	vec := st.Embed(q.Plan)
	if len(vec) != st.Dim() {
		t.Fatal("structural embed width wrong")
	}
	depth := vec[len(vec)-3]
	chain := vec[len(vec)-2]
	leaves := vec[len(vec)-1]
	if depth < 2 {
		t.Fatalf("depth = %g", depth)
	}
	counts := q.Plan.OperatorCounts()
	if int(leaves) != counts[sparksim.OpScan] {
		t.Fatalf("leaves = %g; want %d scans", leaves, counts[sparksim.OpScan])
	}
	joins := counts[sparksim.OpSortMergeJoin] + counts[sparksim.OpBroadcastHashJoin]
	if int(chain) > joins {
		t.Fatalf("join chain %g exceeds total joins %d", chain, joins)
	}
	// The non-structural prefix must be identical.
	pre := base.Embed(q.Plan)
	for i := range pre {
		if pre[i] != vec[i] {
			t.Fatal("structural flag must not perturb base features")
		}
	}
}
