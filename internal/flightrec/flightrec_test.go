package flightrec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// fakeClock is an advancing injected clock; the recorder never reads wall
// time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) tick(d time.Duration) {
	c.t = c.t.Add(d)
}

func newTestRecorder(t *testing.T, n int) (*Recorder, *fakeClock, string) {
	t.Helper()
	dir := t.TempDir()
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	rec := New(n, "node-a", dir, clock.now)
	if rec == nil {
		t.Fatal("New returned nil for a valid config")
	}
	return rec, clock, dir
}

// TestFlightrecRingBounds: the ring retains exactly the last n events,
// oldest first, with a total order that survives a frozen clock.
func TestFlightrecRingBounds(t *testing.T) {
	rec, _, _ := newTestRecorder(t, 4)
	for i := 0; i < 7; i++ {
		rec.Eventf(LevelInfo, "store", telemetry.SpanContext{}, "event %d", i)
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(4 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first, last 4 retained)", i, ev.Seq, want)
		}
	}
	if evs[3].Message != "event 6" {
		t.Errorf("newest retained = %q, want event 6", evs[3].Message)
	}
}

// TestFlightrecDumpLoadRenderTimeline is the black-box drill: record a
// breach's prelude, dump on the trigger, and replay the snapshot from disk
// into a readable timeline with offsets, levels, and trace correlation.
func TestFlightrecDumpLoadRenderTimeline(t *testing.T) {
	rec, clock, dir := newTestRecorder(t, 16)
	sc := telemetry.SpanContext{TraceID: 0xab, SpanID: 0xcd}
	rec.Eventf(LevelInfo, "backend", telemetry.SpanContext{}, "ingest accepted 8 traces")
	clock.tick(250 * time.Millisecond)
	rec.Eventf(LevelWarn, "backend", sc, "request exceeded SLO latency (1.2s)")
	clock.tick(50 * time.Millisecond)
	rec.Eventf(LevelError, "store", sc, "wal fsync failed: disk full")

	var dumped []string
	rec.OnDump(func(reason, path string) { dumped = append(dumped, reason+" "+path) })
	path, err := rec.Dump("slo_breach")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flightrec-slo_breach-001.json"); path != want {
		t.Fatalf("dump path = %q, want %q", path, want)
	}
	if len(dumped) != 1 || !strings.HasPrefix(dumped[0], "slo_breach ") {
		t.Fatalf("OnDump callback saw %v", dumped)
	}

	snap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Node != "node-a" || snap.Reason != "slo_breach" || len(snap.Events) != 3 {
		t.Fatalf("snapshot = node %q reason %q %d events", snap.Node, snap.Reason, len(snap.Events))
	}

	var out strings.Builder
	Render(&out, snap)
	text := out.String()
	for _, want := range []string{
		"flight recorder: node=node-a reason=slo_breach events=3",
		"     0.000s info  backend", // first event anchors the timeline
		"     0.250s warn  backend  trace=00000000000000ab request exceeded SLO latency",
		"     0.300s error store    trace=00000000000000ab wal fsync failed: disk full",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("timeline missing %q:\n%s", want, text)
		}
	}
}

// TestFlightrecDumpOncePerReason: the first trigger per reason is the
// evidence; repeats must not churn disk. Distinct reasons get distinct,
// monotonically numbered files.
func TestFlightrecDumpOncePerReason(t *testing.T) {
	rec, _, dir := newTestRecorder(t, 8)
	rec.Eventf(LevelWarn, "backend", telemetry.SpanContext{}, "breach")
	p1, err := rec.Dump("slo_breach")
	if err != nil || p1 == "" {
		t.Fatalf("first dump: %q, %v", p1, err)
	}
	p2, err := rec.Dump("slo_breach")
	if err != nil || p2 != "" {
		t.Fatalf("repeat dump: %q, %v — want suppressed", p2, err)
	}
	p3, err := rec.Dump("promotion")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flightrec-promotion-002.json"); p3 != want {
		t.Fatalf("second reason path = %q, want %q", p3, want)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 2 {
		t.Fatalf("data dir has %d snapshots, want 2", len(files))
	}
}

// TestFlightrecDisabledDir: an empty dir keeps the live ring but never
// writes; a nil recorder discards everything without branching call sites.
func TestFlightrecDisabledDir(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	rec := New(4, "n", "", clock.now)
	rec.Eventf(LevelError, "store", telemetry.SpanContext{}, "crash")
	if path, err := rec.Dump("store_crash_latch"); err != nil || path != "" {
		t.Fatalf("disabled dump = %q, %v", path, err)
	}
	if len(rec.Events()) != 1 {
		t.Fatal("empty dir must keep the live ring")
	}

	var nilRec *Recorder
	nilRec.Eventf(LevelInfo, "x", telemetry.SpanContext{}, "discarded")
	nilRec.OnDump(func(string, string) {})
	if path, err := nilRec.Dump("r"); err != nil || path != "" {
		t.Fatalf("nil recorder dump = %q, %v", path, err)
	}
	if nilRec.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
}
