// Package flightrec is the fleet's black-box flight recorder: a bounded
// in-memory ring of leveled, trace-correlated structured events that every
// daemon keeps regardless of log configuration, and that snapshots itself
// to the data directory the moment something goes wrong — an SLO breach, a
// latched durable-store failure, a failover promotion. The ring answers
// "what was this node doing in the seconds before it broke" after the
// fact, the way a crashed aircraft's recorder does: nobody was watching,
// but the evidence is on disk.
//
// The recorder never reads the wall clock or ambient randomness — time is
// injected — and a nil *Recorder discards everything, so instrumentation
// call sites never branch on whether a recorder is configured.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// Level grades an event's severity.
type Level string

// The recorder's severity scale, lowest to highest.
const (
	LevelDebug Level = "debug"
	LevelInfo  Level = "info"
	LevelWarn  Level = "warn"
	LevelError Level = "error"
)

// Event is one recorded occurrence.
type Event struct {
	// Seq orders events totally even when the injected clock is frozen
	// (fake clocks stamp many events with one instant).
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	Level    Level  `json:"level"`
	// Component names the subsystem that recorded the event (backend,
	// store, fleet, updater).
	Component string `json:"component"`
	// TraceID/SpanID correlate the event with the causal trace it happened
	// under, when it happened under one.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	Message string `json:"message"`
}

// Snapshot is the on-disk dump format: the ring's contents at the moment a
// trigger fired, oldest event first.
type Snapshot struct {
	Node      string  `json:"node"`
	Reason    string  `json:"reason"`
	WrittenAt int64   `json:"written_unix_nano"`
	Events    []Event `json:"events"`
}

// Recorder is the bounded event ring. All methods are safe for concurrent
// use and safe on a nil receiver.
type Recorder struct {
	node string
	dir  string
	now  func() time.Time

	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     uint64
	dumpSeq int
	dumped  map[string]bool
	onDump  func(reason, path string)
}

// New builds a recorder retaining the last n events for a node. dir is
// where Dump writes snapshots (empty disables dumping while keeping the
// live ring). n <= 0 or a nil clock yields a nil, discarding recorder.
func New(n int, node, dir string, now func() time.Time) *Recorder {
	if n <= 0 || now == nil {
		return nil
	}
	return &Recorder{
		node:   node,
		dir:    dir,
		now:    now,
		buf:    make([]Event, n),
		dumped: make(map[string]bool),
	}
}

// OnDump installs a callback invoked after each successful Dump — daemons
// log the snapshot path so operators find the black box.
func (r *Recorder) OnDump(fn func(reason, path string)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onDump = fn
	r.mu.Unlock()
}

// Eventf records one event. sc correlates it with a causal trace; pass the
// zero SpanContext for untraced work.
func (r *Recorder) Eventf(level Level, component string, sc telemetry.SpanContext, format string, args ...any) {
	if r == nil {
		return
	}
	ev := Event{
		UnixNano:  r.now().UnixNano(),
		Level:     level,
		Component: component,
		Message:   fmt.Sprintf(format, args...),
	}
	if sc.Valid() {
		ev.TraceID = sc.TraceHex()
		ev.SpanID = sc.SpanHex()
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

func (r *Recorder) eventsLocked() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump snapshots the ring to the data directory, named by reason and a
// monotone sequence number (never the wall clock — dump names must be
// deterministic under a fake clock). Each reason dumps at most once per
// process: the first breach is the evidence; re-dumping on every
// subsequent request would churn disk while the node is already degraded.
// It returns the written path, or "" with a nil error when dumping is
// disabled or the reason already dumped.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	if r.dir == "" || r.dumped[reason] {
		r.mu.Unlock()
		return "", nil
	}
	r.dumped[reason] = true
	r.dumpSeq++
	snap := Snapshot{
		Node:      r.node,
		Reason:    reason,
		WrittenAt: r.now().UnixNano(),
		Events:    r.eventsLocked(),
	}
	path := filepath.Join(r.dir, fmt.Sprintf("flightrec-%s-%03d.json", reason, r.dumpSeq))
	fn := r.onDump
	r.mu.Unlock()

	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flightrec: encode snapshot: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return "", fmt.Errorf("flightrec: write snapshot: %w", err)
	}
	if fn != nil {
		fn(reason, path)
	}
	return path, nil
}

// Load reads a snapshot written by Dump.
func Load(path string) (Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("flightrec: read snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return Snapshot{}, fmt.Errorf("flightrec: decode %s: %w", path, err)
	}
	return s, nil
}

// Render replays a snapshot as a readable event timeline, oldest first —
// the rockmon -flightrec output.
func Render(w io.Writer, s Snapshot) {
	fmt.Fprintf(w, "flight recorder: node=%s reason=%s events=%d\n", s.Node, s.Reason, len(s.Events))
	evs := append([]Event(nil), s.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	var origin int64
	if len(evs) > 0 {
		origin = evs[0].UnixNano
	}
	for _, ev := range evs {
		offset := float64(ev.UnixNano-origin) / float64(time.Second)
		trace := ""
		if ev.TraceID != "" {
			trace = " trace=" + ev.TraceID
		}
		fmt.Fprintf(w, "%10.3fs %-5s %-8s%s %s\n", offset, ev.Level, ev.Component, trace, ev.Message)
	}
}
