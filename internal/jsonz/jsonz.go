// Package jsonz provides allocation-free append-style JSON encoding
// primitives whose output is byte-identical to encoding/json for the value
// shapes Rockhopper's hot paths emit: strings (with encoding/json's default
// HTML-safe escaping), IEEE-754 floats (with its exponent normalization),
// integers, and base64 byte blobs. The event-log codec and the WAL record
// encoder build their frames from these so that steady-state encoding costs
// zero heap allocations while remaining bit-compatible with streams written
// by encoding/json — replay of old logs and decode of new ones are the same
// code path.
package jsonz

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// AppendString appends the JSON encoding of s, replicating encoding/json's
// default escaping: control characters, '"', '\\', the HTML-sensitive
// '<', '>', '&', and the JS line separators U+2028/U+2029 are escaped;
// invalid UTF-8 is replaced with U+FFFD.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeASCII(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				// Includes '<', '>', '&' and control characters, exactly as
				// encoding/json renders them.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// safeASCII reports whether b needs no escaping under encoding/json's
// default (HTML-escaping) encoder.
func safeASCII(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// AppendFloat appends f exactly as encoding/json renders a float64,
// including its cleanup of three-digit exponents. Non-finite values are an
// error, as they are for encoding/json.
func AppendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("jsonz: unsupported value: %g", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// AppendInt appends the decimal encoding of v.
func AppendInt(dst []byte, v int64) []byte { return strconv.AppendInt(dst, v, 10) }

// AppendUint appends the decimal encoding of v.
func AppendUint(dst []byte, v uint64) []byte { return strconv.AppendUint(dst, v, 10) }

// AppendBase64 appends the standard-encoding base64 of data as a JSON
// string, matching encoding/json's []byte rendering.
func AppendBase64(dst []byte, data []byte) []byte {
	dst = append(dst, '"')
	n := base64.StdEncoding.EncodedLen(len(data))
	off := len(dst)
	for cap(dst) < off+n {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:off+n]
	base64.StdEncoding.Encode(dst[off:], data)
	return append(dst, '"')
}
