package jsonz

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestAppendStringMatchesEncodingJSON pins byte-for-byte equality with
// encoding/json across adversarial and random strings — the codec's whole
// claim to compatibility rests on this.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	fixed := []string{
		"",
		"plain",
		`quotes " and \ backslash`,
		"tabs\tnewlines\nreturns\r",
		"control\x00\x01\x1f",
		"html <b>&amp;</b>",
		"unicode: héllo wörld 日本語",
		"line separators   and  ",
		"invalid utf8: \xff\xfe",
		"mixed \xc3\x28 truncated",
		strings.Repeat("long ascii ", 100),
	}
	for _, s := range fixed {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Fatalf("AppendString(%q) = %s; want %s", s, got, want)
		}
	}
	f := func(s string) bool {
		want, err := json.Marshal(s)
		if err != nil {
			return true
		}
		return string(AppendString(nil, s)) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendFloatMatchesEncodingJSON pins float formatting, including the
// short-exponent cleanup and the f/e format switchover thresholds.
func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	fixed := []float64{
		0, 1, -1, 0.5, 1e-6, 9.9e-7, 1e21, 9.99e20, 1e-9, -2.5e-9,
		3.141592653589793, 1234567.875, math.MaxFloat64, math.SmallestNonzeroFloat64,
		-0.0,
	}
	for _, v := range fixed {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", v, err)
		}
		got, err := AppendFloat(nil, v)
		if err != nil {
			t.Fatalf("AppendFloat(%v): %v", v, err)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendFloat(%v) = %s; want %s", v, got, want)
		}
	}
	if _, err := AppendFloat(nil, math.NaN()); err == nil {
		t.Fatal("AppendFloat accepted NaN")
	}
	if _, err := AppendFloat(nil, math.Inf(1)); err == nil {
		t.Fatal("AppendFloat accepted +Inf")
	}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		want, _ := json.Marshal(v)
		got, err := AppendFloat(nil, v)
		return err == nil && string(got) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBase64MatchesEncodingJSON pins []byte rendering.
func TestAppendBase64MatchesEncodingJSON(t *testing.T) {
	t.Parallel()
	f := func(b []byte) bool {
		want, _ := json.Marshal(b)
		if b == nil {
			// encoding/json renders nil []byte as null; callers handle nil
			// before reaching AppendBase64.
			return true
		}
		return string(AppendBase64(nil, b)) == string(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if got := string(AppendBase64(nil, []byte{})); got != `""` {
		t.Fatalf("empty slice = %s; want \"\"", got)
	}
}

// TestAppendIntUint spot-checks the integer helpers.
func TestAppendIntUint(t *testing.T) {
	t.Parallel()
	if got := string(AppendInt(nil, -42)); got != "-42" {
		t.Fatalf("AppendInt = %s", got)
	}
	if got := string(AppendUint(nil, 18446744073709551615)); got != "18446744073709551615" {
		t.Fatalf("AppendUint = %s", got)
	}
}
