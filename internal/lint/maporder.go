package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fmtPrintFuncs write formatted output whose order is the iteration order.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// MapOrder flags `for range` over a map whose body leaks the iteration
// order: appending to a slice declared outside the loop (or accumulating a
// string) without a subsequent sort, or printing directly from the loop
// body. Go randomizes map iteration order per run, so any of these turns a
// deterministic pipeline into a different-every-time one. The blessed
// shape is Store.List's collect-then-sort: range to gather, sort, then
// consume.
//
// Order-insensitive bodies — counting, summing into scalars, building
// another map, deleting keys — are not flagged.
type MapOrder struct{}

// Name implements Rule.
func (MapOrder) Name() string { return "maporder" }

// Doc implements Rule.
func (MapOrder) Doc() string {
	return "no map iteration order leaking into slices, strings, or output: collect then sort"
}

// IncludeTests implements Rule.
func (MapOrder) IncludeTests() bool { return false }

// Check implements Rule.
func (MapOrder) Check(pass *Pass) {
	for _, f := range pass.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			checkMapRanges(pass, body.List)
		})
	}
}

// checkMapRanges walks one statement list (recursing into nested lists but
// not into function literals, which funcBodies visits separately) and
// analyzes every map-range it contains against the list's remaining tail.
func checkMapRanges(pass *Pass, list []ast.Stmt) {
	for i, st := range list {
		for _, child := range childStmtLists(st) {
			checkMapRanges(pass, child)
		}
		rs, ok := st.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rs.X) {
			continue
		}
		analyzeMapRange(pass, rs, list[i+1:])
	}
}

func isMapType(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// analyzeMapRange inspects one map-range body for order leaks; tail is the
// enclosing statement list after the loop, searched for the redeeming sort.
func analyzeMapRange(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	// sinks maps the rendered expression of each order-dependent
	// accumulator to the position of its first accumulation.
	sinks := map[string]token.Pos{}
	record := func(e ast.Expr, pos token.Pos) {
		key := exprString(e)
		if _, seen := sinks[key]; !seen {
			sinks[key] = pos
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate body; funcBodies handles it
		case *ast.CallExpr:
			if pkg, name, ok := pass.PkgQualifier(x.Fun); ok && pkg == "fmt" && fmtPrintFuncs[name] {
				pass.Reportf(x.Pos(), "fmt.%s inside a map range emits output in map iteration order; collect into a slice, sort it, then print", name)
			}
		case *ast.AssignStmt:
			for i, rh := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				lhs := x.Lhs[i]
				if declaredInside(pass, lhs, rs) {
					continue
				}
				if call, ok := rh.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) && x.Tok == token.ASSIGN {
					record(lhs, x.Pos())
				}
			}
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(pass, x.Lhs[0]) && !declaredInside(pass, x.Lhs[0], rs) {
				record(x.Lhs[0], x.Pos())
			}
		}
		return true
	})
	for key, pos := range sinks {
		if sortedInTail(pass, tail, key) {
			continue
		}
		pass.Reportf(pos, "map range over %s accumulates into %s in map iteration order with no subsequent sort; sort it afterwards (sort.Slice / slices.Sort — the Store.List collect-then-sort pattern)", exprString(rs.X), key)
	}
}

// declaredInside reports whether e is an identifier whose declaration lies
// within the range statement (a per-iteration local, not an outer sink).
func declaredInside(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.ObjectOf(id)
	return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	// With type info, insist on the builtin (a local function named
	// append shadows it); without, accept the name.
	if obj := pass.Pkg.Info.Uses[id]; obj != nil {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}

func isStringType(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sortedInTail reports whether any statement after the loop sorts the sink
// expression via package sort or slices.
func sortedInTail(pass *Pass, tail []ast.Stmt, key string) bool {
	for _, st := range tail {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _, ok := pass.PkgQualifier(call.Fun)
			if !ok || (pkg != "sort" && pkg != "slices") {
				return true
			}
			for _, arg := range call.Args {
				a := arg
				if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
					a = u.X
				}
				if exprString(a) == key {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
