package lint

import (
	"go/ast"
	"strings"
)

// exprString renders a restricted expression form — identifier, selector
// chain, index, call, pointer deref — as a canonical string, used to match
// lock receivers ("s.mu") and slice targets across statements. Expressions
// outside the supported shapes render as "?", which never matches anything.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[...]")
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("()")
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	default:
		b.WriteByte('?')
	}
}

// funcBodies visits every function body in f — declarations and literals —
// exactly once.
func funcBodies(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				visit(x, x.Body)
			}
		case *ast.FuncLit:
			if x.Body != nil {
				visit(x, x.Body)
			}
		}
		return true
	})
}

// childStmtLists returns the statement lists directly nested in st, without
// descending into function literals (those are separate bodies).
func childStmtLists(st ast.Stmt) [][]ast.Stmt {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		lists := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			lists = append(lists, childStmtLists(s.Else)...)
		}
		return lists
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return caseLists(s.Body)
	case *ast.TypeSwitchStmt:
		return caseLists(s.Body)
	case *ast.SelectStmt:
		var lists [][]ast.Stmt
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				lists = append(lists, c.Body)
			}
		}
		return lists
	case *ast.LabeledStmt:
		return childStmtLists(s.Stmt)
	}
	return nil
}

func caseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CaseClause); ok {
			lists = append(lists, c.Body)
		}
	}
	return lists
}
