package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak flags `go` statements that spawn a goroutine with no
// visible termination signal. A goroutine is judged lifecycle-safe when the
// spawned body (a function literal, or a same-package function resolved
// through go/types) shows any of the coordination shapes this codebase
// uses to bound goroutine lifetimes:
//
//   - it references a context.Context (cancellation reaches it),
//   - it performs a channel operation — receive, send, range over a
//     channel, or select — (a peer can unblock and end it),
//   - it calls a method on a sync.WaitGroup (a joiner awaits it), or
//   - it waits on a sync.Cond (a closer can Broadcast it awake).
//
// A spawn whose body cannot be resolved (cross-package callee, method
// value) is flagged too: the rule cannot prove it terminates, and an
// //rocklint:allow waiver documents why the owner believes it does. The
// rule skips _test.go files — t.Cleanup-joined helpers and deliberately
// leaky harness goroutines would drown the signal.
type GoroutineLeak struct{}

// Name implements Rule.
func (GoroutineLeak) Name() string { return "goroutineleak" }

// Doc implements Rule.
func (GoroutineLeak) Doc() string {
	return "spawned goroutines must show a termination signal: a context, a channel op, a WaitGroup, or a Cond"
}

// IncludeTests implements Rule.
func (GoroutineLeak) IncludeTests() bool { return false }

// Check implements Rule.
func (r GoroutineLeak) Check(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// A context argument at the spawn site is an explicit lifetime
			// hand-off even when the body is out of reach.
			for _, arg := range g.Call.Args {
				if isContextType(pass, arg) {
					return true
				}
			}
			body := spawnedBody(pass, g.Call)
			if body == nil {
				pass.Reportf(g.Pos(), "goroutine body is out of analysis reach and shows no termination signal; pass a context or waive with a reason")
				return true
			}
			if !bodyCoordinates(pass, body) {
				pass.Reportf(g.Pos(), "goroutine has no termination signal (context, channel op, WaitGroup, or Cond); it can leak past its owner's lifetime")
			}
			return true
		})
	}
}

// spawnedBody resolves the block the go statement runs: the literal's body,
// or the body of a same-package function/method declaration.
func spawnedBody(pass *Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if pass.Pkg.Info.Defs[decl.Name] == fn {
				return decl.Body
			}
		}
	}
	return nil
}

// bodyCoordinates reports whether body contains any recognized termination
// signal. Nested function literals are inspected too: a loop body hoisted
// into a closure still coordinates for the goroutine running it.
func bodyCoordinates(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypeOf(x.X).Underlying().(*types.Chan); ok {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && isSyncCoordinator(pass.TypeOf(sel.X)) {
				found = true
			}
		case *ast.Ident:
			if isContextType(pass, x) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSyncCoordinator reports whether t is sync.WaitGroup or sync.Cond
// (possibly behind a pointer) — the join/wake primitives whose presence in
// a body marks it awaited.
func isSyncCoordinator(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "WaitGroup" || obj.Name() == "Cond"
}
