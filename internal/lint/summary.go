package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Per-function summaries, propagated over the call graph to a fixed point.
// A summary answers, without re-walking the callee at every call site:
//
//   - Acquires: which global lock classes the function may take, itself or
//     transitively (deadlockcycle's order-graph input);
//   - Blocks: whether it may park the goroutine on a channel op, an fsync,
//     or network I/O, with a human-readable cause chain (deadlockcycle's
//     held-across-blocking input);
//   - HasCtx / CtxDown: whether it receives a context.Context (literals
//     inherit lexically), and whether some ctx-bearing function reaches it
//     through the call graph (ctxflow's "below an entry point" test).
//
// The propagation is a monotone worklist over the sorted function keys, so
// the result — including the deterministic cause/witness strings used in
// diagnostics — is byte-identical regardless of load order or worker
// count.

// Summary is the propagated per-function analysis state.
type Summary struct {
	// Acquires maps global lock classes (see lockClass) the function may
	// acquire, directly or via callees. Function-local mutexes are
	// excluded: they cannot participate in cross-function ordering.
	Acquires map[string]bool
	// Blocks is true when the function may perform a blocking operation.
	Blocks bool
	// BlockCause describes the first blocking cause in deterministic
	// order, e.g. "channel receive" or "(*os.File).Sync (via
	// (*DurableStore).appendLocked)".
	BlockCause string
	// HasCtx reports a context.Context parameter (or, for a literal, a
	// lexically enclosing function that has one).
	HasCtx bool
	// CtxDown reports that a ctx-bearing function reaches this one through
	// module call edges, so a context could have been plumbed to it.
	CtxDown bool
	// CtxWitness names one ctx-bearing (or ctx-down) caller proving
	// CtxDown.
	CtxWitness string
}

// lockClass canonicalizes the receiver of a sync.Mutex/RWMutex method call
// into a (class, display) pair. Global classes — struct fields and
// package-level vars — use the defining package path and type, so the same
// lock seen from different analysis units lands in the same class. Local
// mutexes get a per-function class that never collides globally.
func lockClass(fi *FuncInfo, x ast.Expr) (class, display string) {
	pkg := fi.Pkg
	x = ast.Unparen(x)
	if star, ok := x.(*ast.StarExpr); ok {
		x = ast.Unparen(star.X)
	}
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[e]; sel != nil {
			if fv, ok := sel.Obj().(*types.Var); ok && fv.IsField() {
				recv := sel.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
					class = named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fv.Name()
					display = named.Obj().Name() + "." + fv.Name()
					return class, display
				}
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			if v.Parent() == v.Pkg().Scope() {
				class = v.Pkg().Path() + "." + v.Name()
				return class, v.Name()
			}
		}
	}
	// Function-local or unrecognized shape: unique per function.
	return "local:" + fi.Key + ":" + exprString(x), exprString(x)
}

// mutexMethod matches a call to a locking method of sync.Mutex/RWMutex
// (directly or through embedding) and returns the receiver expression and
// verb.
func mutexMethod(pkg *Package, call *ast.CallExpr) (recv ast.Expr, verb string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	s := pkg.Info.Selections[sel]
	if s == nil {
		return nil, "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// --- direct blocking-operation detection ---

// blockingExternal names the cause when fn (a call that leaves the module)
// is a known goroutine-parking entry point; "" otherwise. The list is
// deliberately narrow: constructors and accessors never appear.
func blockingExternal(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "net/http":
		if httpIOFuncs[fn.Name()] || httpIOMethods[fn.Name()] {
			return "net/http." + fn.Name() + " (network I/O)"
		}
	case "net":
		if netIOFuncs[fn.Name()] {
			return "net." + fn.Name() + " (network I/O)"
		}
	case "os":
		if fn.Name() == "Sync" {
			return "(*os.File).Sync (fsync)"
		}
	}
	return ""
}

// directBlock describes a blocking operation performed by a statement or
// expression node of fi's own body, or "" when n does not block.
func directBlock(fi *FuncInfo, n ast.Node) string {
	switch x := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive"
		}
	case *ast.RangeStmt:
		if t := fi.Pkg.Info.TypeOf(x.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel"
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // has a default clause: non-blocking poll
			}
		}
		return "select"
	}
	return ""
}

// --- held-lock scanning (deadlockcycle's per-site input) ---

// lockAcq records one acquisition with the classes already held there.
type lockAcq struct {
	Class, Display string
	Verb           string
	Pos            token.Pos
	Held           []heldLock
}

// heldLock is one element of the held stack.
type heldLock struct {
	Class, Display string
	Pos            token.Pos
}

// heldCall is a resolved call site reached with locks held.
type heldCall struct {
	Site *CallSite
	Held []heldLock
}

// heldBlock is a direct blocking operation reached with locks held.
type heldBlock struct {
	Cause string
	Pos   token.Pos
	Held  []heldLock
}

// heldScan is the result of scanning one function with the held-lock state
// machine.
type heldScan struct {
	Acqs   []lockAcq
	Calls  []heldCall
	Blocks []heldBlock
}

// scanHeld runs the state machine over fi's own body. The model matches
// lockdiscipline's: statement lists are scanned linearly; a branch inherits
// the held stack at entry and its releases do not escape; an explicit
// Unlock pops the class; a deferred Unlock keeps the lock held through the
// rest of the function (which is exactly the held-across semantics the
// deadlock rule needs).
func scanHeld(fi *FuncInfo) *heldScan {
	s := &heldScan{}
	callIndex := make(map[*ast.CallExpr]*CallSite, len(fi.Calls))
	for _, cs := range fi.Calls {
		callIndex[cs.Call] = cs
	}
	s.walkList(fi, callIndex, fi.Body.List, nil)
	return s
}

func (s *heldScan) walkList(fi *FuncInfo, calls map[*ast.CallExpr]*CallSite, list []ast.Stmt, held []heldLock) {
	// held is treated as immutable by children: copy-on-write via append
	// with full reslice below.
	cur := held
	for _, st := range list {
		switch x := st.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, verb, ok := mutexMethod(fi.Pkg, call); ok {
					class, disp := lockClass(fi, recv)
					switch verb {
					case "Lock", "RLock":
						s.Acqs = append(s.Acqs, lockAcq{Class: class, Display: disp, Verb: verb, Pos: call.Pos(), Held: append([]heldLock(nil), cur...)})
						cur = append(cur[:len(cur):len(cur)], heldLock{Class: class, Display: disp, Pos: call.Pos()})
					case "Unlock", "RUnlock":
						cur = removeHeld(cur, class)
					}
					continue
				}
			}
			s.scanExpr(fi, calls, x, cur)
		case *ast.GoStmt:
			// The spawned call runs on another goroutine: only its argument
			// expressions are evaluated here.
			for _, a := range x.Call.Args {
				s.scanNode(fi, calls, a, cur)
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remainder; other
			// deferred calls run at return, not here — only their argument
			// expressions are evaluated at this point.
			if _, _, ok := mutexMethod(fi.Pkg, x.Call); ok {
				continue
			}
			for _, a := range x.Call.Args {
				s.scanNode(fi, calls, a, cur)
			}
		default:
			children := childStmtLists(st)
			if len(children) > 0 {
				// Scan the statement's own header expressions (conditions,
				// select comm clauses) against the current held stack.
				s.scanHeader(fi, calls, st, cur)
				for _, child := range children {
					s.walkList(fi, calls, child, cur)
				}
			} else {
				s.scanExpr(fi, calls, st, cur)
			}
		}
	}
}

// removeHeld pops the most recent acquisition of class.
func removeHeld(held []heldLock, class string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].Class == class {
			out := make([]heldLock, 0, len(held)-1)
			out = append(out, held[:i]...)
			out = append(out, held[i+1:]...)
			return out
		}
	}
	return held
}

// scanHeader records calls/blocking ops in the non-body parts of a
// compound statement (if/for conditions, switch tags, select comms).
func (s *heldScan) scanHeader(fi *FuncInfo, calls map[*ast.CallExpr]*CallSite, st ast.Stmt, held []heldLock) {
	header := st
	switch x := st.(type) {
	case *ast.IfStmt:
		s.scanNode(fi, calls, x.Cond, held)
		if x.Init != nil {
			s.scanNode(fi, calls, x.Init, held)
		}
		return
	case *ast.ForStmt:
		if x.Cond != nil {
			s.scanNode(fi, calls, x.Cond, held)
		}
		return
	case *ast.RangeStmt:
		s.scanNode(fi, calls, x.X, held)
		if d := directBlock(fi, x); d != "" && len(held) > 0 {
			s.Blocks = append(s.Blocks, heldBlock{Cause: d, Pos: x.Pos(), Held: append([]heldLock(nil), held...)})
		}
		return
	case *ast.SelectStmt:
		if d := directBlock(fi, x); d != "" && len(held) > 0 {
			s.Blocks = append(s.Blocks, heldBlock{Cause: d, Pos: x.Pos(), Held: append([]heldLock(nil), held...)})
		}
		return
	case *ast.SwitchStmt:
		if x.Tag != nil {
			s.scanNode(fi, calls, x.Tag, held)
		}
		return
	}
	_ = header
}

// scanExpr records the calls and blocking operations inside a simple
// statement against the current held stack.
func (s *heldScan) scanExpr(fi *FuncInfo, calls map[*ast.CallExpr]*CallSite, n ast.Node, held []heldLock) {
	s.scanNode(fi, calls, n, held)
}

func (s *heldScan) scanNode(fi *FuncInfo, calls map[*ast.CallExpr]*CallSite, n ast.Node, held []heldLock) {
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != fi.Lit {
			return false // nested literal: its own node's business
		}
		switch v := x.(type) {
		case *ast.CallExpr:
			if cs := calls[v]; cs != nil && len(held) > 0 {
				s.Calls = append(s.Calls, heldCall{Site: cs, Held: append([]heldLock(nil), held...)})
			}
			// External blocking calls (http, fsync) are caught through the
			// summary of the call site by the rule; direct externals have
			// no CallSite only when unresolved — handle via directBlock
			// equivalents below.
		}
		if d := directBlock(fi, x); d != "" && len(held) > 0 {
			s.Blocks = append(s.Blocks, heldBlock{Cause: d, Pos: x.Pos(), Held: append([]heldLock(nil), held...)})
		}
		return true
	})
}

// --- summary computation (fixed point) ---

func (m *Module) computeSummaries() {
	// Direct facts first, in deterministic order.
	for _, key := range m.Order {
		fi := m.Funcs[key]
		sum := &fi.summary
		sum.Acquires = make(map[string]bool)
		sum.HasCtx = fi.CtxParamIndex() >= 0
		if !sum.HasCtx {
			for p := fi.Parent; p != nil; p = p.Parent {
				if p.CtxParamIndex() >= 0 {
					sum.HasCtx = true
					break
				}
			}
		}
		walkOwn(fi, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, verb, ok := mutexMethod(fi.Pkg, call); ok && (verb == "Lock" || verb == "RLock") {
					if class, _ := lockClass(fi, recv); !isLocalLockClass(class) {
						sum.Acquires[class] = true
					}
				}
			}
			if !sum.Blocks {
				if d := directBlock(fi, n); d != "" {
					sum.Blocks = true
					sum.BlockCause = d
				}
			}
			return true
		})
		// External blocking callees count as direct causes.
		if !sum.Blocks {
			for _, cs := range fi.Calls {
				if cs.External != nil && !cs.Go && !cs.Defer {
					if cause := blockingExternal(cs.External); cause != "" {
						sum.Blocks = true
						sum.BlockCause = cause
						break
					}
				}
			}
		}
	}
	// Transitive closure: iterate to a fixed point. The lattice is finite
	// (set of lock classes, one bool) and the transfer is monotone, so
	// this terminates; the sorted sweep order makes cause strings
	// deterministic.
	for changed := true; changed; {
		changed = false
		for _, key := range m.Order {
			fi := m.Funcs[key]
			sum := &fi.summary
			for _, cs := range fi.Calls {
				if cs.Go {
					continue // runs on another goroutine's stack
				}
				for _, callee := range cs.Callees {
					cSum := &callee.summary
					for class := range cSum.Acquires {
						if !sum.Acquires[class] {
							sum.Acquires[class] = true
							changed = true
						}
					}
					if cSum.Blocks && !sum.Blocks && !cs.Defer {
						sum.Blocks = true
						sum.BlockCause = cSum.BlockCause + " (via " + callee.Name + ")"
						changed = true
					}
				}
			}
		}
	}
	// Ctx reachability: propagate downward from ctx-bearing functions.
	for changed := true; changed; {
		changed = false
		for _, key := range m.Order {
			fi := m.Funcs[key]
			if !fi.summary.HasCtx && !fi.summary.CtxDown {
				continue
			}
			for _, cs := range fi.Calls {
				for _, callee := range cs.Callees {
					if callee.summary.HasCtx || callee.summary.CtxDown {
						continue
					}
					callee.summary.CtxDown = true
					callee.summary.CtxWitness = fi.Name
					changed = true
				}
			}
		}
	}
}

func isLocalLockClass(class string) bool {
	return len(class) > 6 && class[:6] == "local:"
}

// Summary returns fi's computed summary (read-only after BuildModule).
func (f *FuncInfo) Summary() *Summary { return &f.summary }

// sortedClasses renders a held stack deterministically.
func heldDisplays(held []heldLock) []string {
	out := make([]string, len(held))
	for i, h := range held {
		out[i] = h.Display
	}
	return out
}

var _ = sort.Strings // keep sort imported for rule files sharing this package
