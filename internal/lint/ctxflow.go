package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxFlow is the interprocedural context-plumbing rule. ctxfirst (PR 3)
// checks signatures — exported I/O functions must accept a ctx; CtxFlow
// checks dataflow — a context that was accepted must actually travel:
//
//   - a function that receives a context.Context (as a parameter, or
//     lexically for a closure) must forward a context to every
//     ctx-accepting callee; calling one without any ctx argument severs
//     cancellation at that hop;
//   - context.Background()/TODO() inside a ctx-bearing function — or in a
//     function the call graph shows is reachable from one — mints a fresh,
//     uncancellable root below an entry point, which is how shutdown
//     deadlines stop propagating.
//
// Entry points (main, tests, handlers invoked through net/http) are
// naturally exempt: nothing ctx-bearing reaches them through module call
// edges. The `if ctx == nil { ctx = context.Background() }` defaulting
// guard is recognized and allowed.
type CtxFlow struct{}

// Name implements Rule.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Rule.
func (CtxFlow) Doc() string {
	return "received contexts must flow to ctx-accepting callees; no fresh Background()/TODO() below entry points"
}

// IncludeTests implements Rule.
func (CtxFlow) IncludeTests() bool { return false }

// NeedsModule marks the rule interprocedural.
func (CtxFlow) NeedsModule() {}

// Check implements Rule.
func (r CtxFlow) Check(pass *Pass) {
	if pass.Module == nil {
		return
	}
	findings := pass.Module.Memo("ctxflow", func() any {
		return ctxflowAnalyze(pass.Module)
	}).([]modFinding)
	for _, f := range findings {
		if f.Pkg == pass.Pkg {
			pass.Reportf(f.Pos, "%s", f.Msg)
		}
	}
}

func ctxflowAnalyze(m *Module) []modFinding {
	var findings []modFinding
	for _, key := range m.Order {
		fi := m.Funcs[key]
		sum := fi.Summary()
		switch {
		case sum.HasCtx:
			findings = append(findings, ctxRootFindings(fi, "function receives a context but calls context.%s(); use the caller's ctx so cancellation propagates")...)
			findings = append(findings, ctxForwardFindings(m, fi)...)
		case sum.CtxDown:
			findings = append(findings, ctxRootFindings(fi, "context.%s() in a function reachable from ctx-bearing "+sum.CtxWitness+"; plumb the context through the call chain")...)
		}
	}
	return findings
}

// ctxRootFindings reports context.Background()/TODO() calls in fi's own
// body, excluding the nil-defaulting guard idiom (a call lexically inside
// `if <ctx> == nil { ... }`).
func ctxRootFindings(fi *FuncInfo, format string) []modFinding {
	var findings []modFinding
	var walk func(n ast.Node, nilGuard bool)
	walk = func(n ast.Node, nilGuard bool) {
		if n == nil {
			return
		}
		if ifStmt, ok := n.(*ast.IfStmt); ok && isCtxNilGuard(fi, ifStmt.Cond) {
			walk(ifStmt.Cond, nilGuard)
			walk(ifStmt.Body, true)
			walk(ifStmt.Else, nilGuard)
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if x == n {
				return true
			}
			if lit, ok := x.(*ast.FuncLit); ok && lit != fi.Lit {
				return false
			}
			if inner, ok := x.(*ast.IfStmt); ok && isCtxNilGuard(fi, inner.Cond) {
				walk(inner, nilGuard)
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok && !nilGuard {
				if name, ok := ctxRootCall(fi.Pkg, call); ok {
					findings = append(findings, modFinding{
						Pkg: fi.Pkg,
						Pos: call.Pos(),
						Msg: fmt.Sprintf(format, name),
					})
				}
			}
			return true
		})
	}
	walk(fi.Body, false)
	return findings
}

// ctxRootCall matches context.Background() / context.TODO().
func ctxRootCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name, true
	}
	return "", false
}

// isCtxNilGuard matches `<expr of type context.Context> == nil`.
func isCtxNilGuard(fi *FuncInfo, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	x, y := bin.X, bin.Y
	if isNilIdent(y) {
		return isContextParam(typeOrNil(fi, x))
	}
	if isNilIdent(x) {
		return isContextParam(typeOrNil(fi, y))
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func typeOrNil(fi *FuncInfo, e ast.Expr) types.Type {
	return fi.Pkg.Info.TypeOf(e)
}

// ctxForwardFindings reports call sites where fi, which has a context in
// scope, calls a ctx-accepting callee without passing any context value.
func ctxForwardFindings(m *Module, fi *FuncInfo) []modFinding {
	var findings []modFinding
	for _, cs := range fi.Calls {
		name, ok := ctxAcceptingCallee(m, cs)
		if !ok {
			continue
		}
		forwarded := false
		for _, arg := range cs.Call.Args {
			if isContextParam(fi.Pkg.Info.TypeOf(arg)) {
				forwarded = true
				break
			}
		}
		if !forwarded {
			findings = append(findings, modFinding{
				Pkg: fi.Pkg,
				Pos: cs.Call.Pos(),
				Msg: "has a ctx in scope but calls " + name + " without forwarding it; pass the ctx (or a derived one)",
			})
		}
	}
	return findings
}

// ctxAcceptingCallee reports whether the call site's callee takes a
// context.Context parameter, and its display name. Only statically
// resolved callees count: for interface calls the interface method's own
// signature decides (every implementation shares it).
func ctxAcceptingCallee(m *Module, cs *CallSite) (string, bool) {
	// In-module resolution (direct or literal).
	if len(cs.Callees) > 0 && !cs.Interface {
		callee := cs.Callees[0]
		if callee.CtxParamIndex() >= 0 {
			return callee.Name, true
		}
		return "", false
	}
	// Interface and external calls: consult the declared signature.
	fn := calleeOf(cs.Caller.Pkg, cs.Call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextParam(sig.Params().At(i).Type()) {
			return displayName(fn), true
		}
	}
	return "", false
}
