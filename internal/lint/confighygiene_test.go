package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests keep the blessed-exception surface honest: an allowlist
// entry pointing at a package that no longer exists, or a committed
// //rocklint:allow directive that no longer suppresses anything, is dead
// configuration that silently widens what the linter ignores. Both fail
// the build here instead of rotting.

// TestDefaultRulesComplete pins the rule count so adding or removing an
// analyzer forces the DESIGN.md §6 table, the README list, and the CI
// fixture matrix to be revisited.
func TestDefaultRulesComplete(t *testing.T) {
	rules := DefaultRules()
	if len(rules) != 11 {
		t.Fatalf("DefaultRules() has %d rules, want 11 — update DESIGN.md §6/§11, README, and the CI fixture matrix alongside this number", len(rules))
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		if r.Name() == "" || r.Doc() == "" {
			t.Errorf("rule %T needs a non-empty Name and Doc", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
}

// TestDefaultConfigAllowPathsExist asserts every DefaultConfig allowlist
// entry names a real module package directory with Go files in it.
func TestDefaultConfigAllowPathsExist(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	for rule, paths := range DefaultConfig().Allow {
		for _, pat := range paths {
			rel := strings.TrimSuffix(pat, "/...")
			dir := filepath.Join(root, filepath.FromSlash(rel))
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Errorf("allowlist %q: %s does not name a module directory: %v", rule, pat, err)
				continue
			}
			hasGo := false
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					hasGo = true
					break
				}
			}
			if !hasGo {
				t.Errorf("allowlist %q: %s contains no Go files — stale entry", rule, pat)
			}
		}
	}
}

// TestModuleCleanAndWaiversLive loads the real module and runs the full
// default rule set: the tree must be finding-free, and — because the
// engine reports directives that suppress nothing as unsuppressable
// "rocklint" findings — every committed waiver must still be doing work.
// This is the in-process twin of CI's `rocklint ./...` gate.
func TestModuleCleanAndWaiversLive(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped under -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAllParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("module loader found no packages")
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: incomplete type info: %v", p.Path, p.TypeErrors[0])
		}
	}
	diags := RunParallel(pkgs, DefaultRules(), DefaultConfig(), 0)
	waivers := 0
	for _, d := range diags {
		if d.Suppressed {
			waivers++
			continue
		}
		t.Errorf("%s: [%s] %s", d.Pos, d.Rule, d.Msg)
	}
	if t.Failed() {
		t.Fatal("the module must be finding-free: fix the code or add a justified //rocklint:allow waiver (stale waivers surface above as unused-directive findings)")
	}
	if waivers == 0 {
		t.Error("expected at least one live waiver in the tree; if all were removed, drop this assertion deliberately")
	}
	t.Logf("module clean: %d packages, %d live waivers", len(pkgs), waivers)
}
