package lint

import (
	"go/ast"
	"go/types"
)

// UnusedResult flags statement-position calls to functions whose error
// result must not be dropped. The durability contract makes this a
// correctness rule, not a style rule: DurableStore.Put returns nil only
// after the WAL record is on disk, so a caller that discards the error has
// acknowledged a mutation that may not survive a crash. The watch list is
// resolved through go/types (types.Func.FullName), so aliases, embedding,
// and interface dispatch are all seen through — a dropped
// ObjectStore.Put is a finding even though the concrete store is only
// known at runtime. An explicit `_ =` discard is a conscious decision and
// is not flagged.
type UnusedResult struct {
	// Funcs are the watched callees as types.Func.FullName strings, e.g.
	// "(*path/to/store.Store).Put" for a pointer method,
	// "(path/to/backend.ObjectStore).Put" for an interface method, and
	// "path/to/client.FinishApp" for a package-level function.
	Funcs []string
}

// Name implements Rule.
func (UnusedResult) Name() string { return "unusedresult" }

// Doc implements Rule.
func (UnusedResult) Doc() string {
	return "errors from durability- and session-critical calls must be handled, not dropped"
}

// IncludeTests implements Rule. Tests drop these errors as easily as
// production code, and a test that ignores a failed Put asserts nothing.
func (UnusedResult) IncludeTests() bool { return true }

// Check implements Rule.
func (r UnusedResult) Check(pass *Pass) {
	watched := make(map[string]bool, len(r.Funcs))
	for _, name := range r.Funcs {
		watched[name] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Statement-position calls drop their results in all three
			// shapes: plain expression statements, and defer/go statements,
			// whose call results are discarded by the language itself.
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !watched[fn.FullName()] {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s is dropped; handle the error or discard it explicitly with _ =", fn.FullName())
			return true
		})
	}
}

// calleeFunc resolves the called function object, for both method calls
// (concrete or via interface) and plain function calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if s := pass.Pkg.Info.Selections[fun]; s != nil {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.Pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
