package lint

import "go/ast"

// wallclockFuncs are the package time entry points that read or act on the
// wall clock. Types and constants (time.Duration, time.Second, time.Unix)
// are fine — they carry no ambient now.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock flags every reference to a wall-clock entry point of package
// time outside the resilience.Clock abstraction. PR 1's byte-identical
// parallel results and PR 2's identical convergence under fault injection
// both hold only because no production path reads ambient time; a stray
// time.Now() breaks replayability silently.
//
// The rule skips _test.go files: test harnesses legitimately measure and
// wait on real time.
type WallClock struct{}

// Name implements Rule.
func (WallClock) Name() string { return "wallclock" }

// Doc implements Rule.
func (WallClock) Doc() string {
	return "no time.Now/Since/Sleep/timers outside resilience.Clock: production paths must inject a clock"
}

// IncludeTests implements Rule.
func (WallClock) IncludeTests() bool { return false }

// Check implements Rule.
func (WallClock) Check(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pass.PkgQualifier(sel)
			if !ok || pkg != "time" || !wallclockFuncs[name] {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; inject a resilience.Clock so behaviour is deterministic under test", name)
			return true
		})
	}
}
