package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time entry points that read or act on the
// wall clock. Types and constants (time.Duration, time.Second, time.Unix)
// are fine — they carry no ambient now.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock flags every reference to a wall-clock entry point of package
// time outside the resilience.Clock abstraction. PR 1's byte-identical
// parallel results and PR 2's identical convergence under fault injection
// both hold only because no production path reads ambient time; a stray
// time.Now() breaks replayability silently.
//
// The rule is type-aware about method values: `x.Now` where x satisfies the
// full Clock contract (Now() time.Time plus a Sleep method) is the blessed
// injection pattern — `RealClock{}.Now` as an injection-point default needs
// no waiver. A receiver that offers a clock-shaped Now WITHOUT the rest of
// the contract is flagged: a bare Now-provider is an unvetted time source,
// the one-method wrapper that would otherwise smuggle time.Now past the
// time-package check.
//
// The rule skips _test.go files: test harnesses legitimately measure and
// wait on real time.
type WallClock struct{}

// Name implements Rule.
func (WallClock) Name() string { return "wallclock" }

// Doc implements Rule.
func (WallClock) Doc() string {
	return "no time.Now/Since/Sleep/timers outside resilience.Clock: production paths must inject a clock (full-contract Clock method values are blessed)"
}

// IncludeTests implements Rule.
func (WallClock) IncludeTests() bool { return false }

// Check implements Rule.
func (WallClock) Check(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := pass.PkgQualifier(sel); ok {
				if pkg == "time" && wallclockFuncs[name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; inject a resilience.Clock so behaviour is deterministic under test", name)
				}
				return true
			}
			checkNowMethod(pass, sel)
			return true
		})
	}
}

// checkNowMethod applies the Clock-contract test to a non-package selector:
// a method named Now with the clock shape `func() time.Time` is fine only on
// a receiver that also carries a Sleep method (the injectable contract).
func checkNowMethod(pass *Pass, sel *ast.SelectorExpr) {
	if sel.Sel.Name != "Now" {
		return
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return // a field (store's injected func) or a type expression
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 || !isTimeTime(sig.Results().At(0).Type()) {
		return // not clock-shaped; Now() here doesn't hand out time
	}
	if hasSleepMethod(selection.Recv(), pass.Pkg.Types) {
		return // full Clock contract: the blessed injection pattern
	}
	pass.Reportf(sel.Pos(), "%s.Now provides wall-clock time without the full Clock contract (no Sleep); inject a resilience.Clock instead", types.TypeString(selection.Recv(), types.RelativeTo(pass.Pkg.Types)))
}

// isTimeTime reports whether t is time.Time.
func isTimeTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}

// hasSleepMethod reports whether recv's method set includes a Sleep method —
// the second half of the Clock contract. The signature is not checked
// further: a type that offers both Now and Sleep is an injected clock by
// repository convention.
func hasSleepMethod(recv types.Type, from *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(recv, true, from, "Sleep")
	fn, ok := obj.(*types.Func)
	return ok && fn != nil
}
