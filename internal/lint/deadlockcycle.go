package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// DeadlockCycle is the interprocedural deadlock rule. It builds a global
// lock-acquisition-order graph from the per-function held-lock scans: an
// edge A→B means some call path acquires lock class B while already holding
// class A (directly, or because a callee's summary says it acquires B). Two
// findings come out of it:
//
//   - a cycle in the order graph (two lock classes taken in inconsistent
//     order on any pair of paths) — the classic ABBA deadlock;
//   - a lock held across a blocking operation — channel send/receive,
//     select without default, fsync, network I/O — reached directly or
//     transitively through callees.
//
// Lock classes are receiver-instance-insensitive (every `s.mu` of the same
// struct type is one class), so two *different* instances locked in
// sequence do not produce a self-edge finding; that trade and the
// unresolved-call soundness limits are documented in DESIGN.md §11.
type DeadlockCycle struct{}

// Name implements Rule.
func (DeadlockCycle) Name() string { return "deadlockcycle" }

// Doc implements Rule.
func (DeadlockCycle) Doc() string {
	return "lock-order cycles and locks held across blocking calls, found via call-graph summaries"
}

// IncludeTests implements Rule; deadlock analysis covers production code
// (the module graph is built from non-test files only).
func (DeadlockCycle) IncludeTests() bool { return false }

// NeedsModule marks the rule interprocedural.
func (DeadlockCycle) NeedsModule() {}

// modFinding is a whole-module finding routed back to the package that owns
// its position (module rules run once, report per package).
type modFinding struct {
	Pkg *Package
	Pos token.Pos
	Msg string
}

// Check implements Rule.
func (r DeadlockCycle) Check(pass *Pass) {
	if pass.Module == nil {
		return
	}
	findings := pass.Module.Memo("deadlockcycle", func() any {
		return deadlockAnalyze(pass.Module)
	}).([]modFinding)
	for _, f := range findings {
		if f.Pkg == pass.Pkg {
			pass.Reportf(f.Pos, "%s", f.Msg)
		}
	}
}

// lockEdge is one order-graph edge with its first (deterministic) witness.
type lockEdge struct {
	From, To         string
	FromDisp, ToDisp string
	Pkg              *Package
	Pos              token.Pos
	Via              string // callee name for interprocedural edges, "" for direct
}

func deadlockAnalyze(m *Module) []modFinding {
	var findings []modFinding
	edges := make(map[[2]string]*lockEdge)
	addEdge := func(e *lockEdge) {
		key := [2]string{e.From, e.To}
		if _, ok := edges[key]; !ok {
			edges[key] = e
		}
	}

	for _, key := range m.Order {
		fi := m.Funcs[key]
		scan := scanHeld(fi)
		// Direct nested acquisitions.
		for _, acq := range scan.Acqs {
			if isLocalLockClass(acq.Class) {
				continue
			}
			for _, h := range acq.Held {
				if isLocalLockClass(h.Class) || h.Class == acq.Class {
					continue
				}
				addEdge(&lockEdge{From: h.Class, To: acq.Class, FromDisp: h.Display, ToDisp: acq.Display, Pkg: fi.Pkg, Pos: acq.Pos})
			}
		}
		// Call sites reached with locks held: callee acquisitions extend the
		// order graph; callee blocking operations are held-across findings.
		for _, hc := range scan.Calls {
			cs := hc.Site
			if cs.Go {
				continue // runs on another goroutine: no held-across relation
			}
			for _, callee := range cs.Callees {
				sum := callee.Summary()
				classes := make([]string, 0, len(sum.Acquires))
				for c := range sum.Acquires {
					classes = append(classes, c)
				}
				sort.Strings(classes)
				for _, c := range classes {
					for _, h := range hc.Held {
						if isLocalLockClass(h.Class) || h.Class == c {
							continue
						}
						addEdge(&lockEdge{From: h.Class, To: c, FromDisp: h.Display, ToDisp: classDisplay(c), Pkg: fi.Pkg, Pos: cs.Call.Pos(), Via: callee.Name})
					}
				}
			}
			if cs.Defer {
				continue // deferred calls run at return; held set there is a different question
			}
			if cause, who := blockingCallee(cs); cause != "" {
				findings = append(findings, modFinding{
					Pkg: fi.Pkg,
					Pos: cs.Call.Pos(),
					Msg: fmt.Sprintf("lock %s held across blocking call to %s (%s)", strings.Join(heldDisplays(hc.Held), ", "), who, cause),
				})
			}
		}
		// Direct blocking operations under a lock.
		for _, hb := range scan.Blocks {
			findings = append(findings, modFinding{
				Pkg: fi.Pkg,
				Pos: hb.Pos,
				Msg: fmt.Sprintf("lock %s held across %s", strings.Join(heldDisplays(hb.Held), ", "), hb.Cause),
			})
		}
	}

	findings = append(findings, cycleFindings(m, edges)...)
	return findings
}

// blockingCallee reports the blocking cause of a call site, if any: an
// in-module callee whose summary blocks, or a known blocking external.
func blockingCallee(cs *CallSite) (cause, who string) {
	for _, callee := range cs.Callees {
		if s := callee.Summary(); s.Blocks {
			return s.BlockCause, callee.Name
		}
	}
	if cs.External != nil {
		if c := blockingExternal(cs.External); c != "" {
			return c, cs.External.Name()
		}
	}
	return "", ""
}

// classDisplay shortens a lock class ("path/to/pkg.Type.field" →
// "Type.field") for diagnostics.
func classDisplay(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		class = class[i+1:]
	}
	if i := strings.Index(class, "."); i >= 0 {
		return class[i+1:]
	}
	return class
}

// cycleFindings runs Tarjan's SCC over the order graph and reports, for
// every edge inside a multi-node SCC, a finding at that edge's witness
// position naming the cycle and the reverse witness when one exists.
func cycleFindings(m *Module, edges map[[2]string]*lockEdge) []modFinding {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for key := range edges {
		nodes[key[0]], nodes[key[1]] = true, true
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Tarjan, recursive (the graph is a handful of lock classes).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	scc := make(map[string]int) // node → component id
	var stack []string
	next, comp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc[w] = comp
				if w == v {
					break
				}
			}
			comp++
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	compSize := make(map[int]int)
	for _, c := range scc {
		compSize[c]++
	}

	edgeKeys := make([][2]string, 0, len(edges))
	for k := range edges {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		if edgeKeys[i][0] != edgeKeys[j][0] {
			return edgeKeys[i][0] < edgeKeys[j][0]
		}
		return edgeKeys[i][1] < edgeKeys[j][1]
	})

	var findings []modFinding
	for _, key := range edgeKeys {
		e := edges[key]
		if scc[e.From] != scc[e.To] || compSize[scc[e.From]] < 2 {
			continue
		}
		members := make([]string, 0, 2)
		for n, c := range scc {
			if c == scc[e.From] {
				members = append(members, classDisplay(n))
			}
		}
		sort.Strings(members)
		msg := fmt.Sprintf("lock order cycle {%s}: %s acquired while holding %s", strings.Join(members, ", "), e.ToDisp, e.FromDisp)
		if e.Via != "" {
			msg += fmt.Sprintf(" (via %s)", e.Via)
		}
		if rev, ok := edges[[2]string{e.To, e.From}]; ok {
			msg += fmt.Sprintf("; reverse order at %s", rev.Pkg.Fset.Position(rev.Pos))
		}
		findings = append(findings, modFinding{Pkg: e.Pkg, Pos: e.Pos, Msg: msg})
	}
	return findings
}
