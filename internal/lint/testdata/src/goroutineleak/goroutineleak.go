// Package goroutineleak seeds spawns with and without termination signals
// for the goroutineleak rule.
package goroutineleak

import (
	"context"
	"sync"
)

// leakyLoop never checks anything that could end it: flagged.
func leakyLoop() {
	go func() { // want "goroutine has no termination signal"
		for {
			work()
		}
	}()
}

// leakyDecl spawns a same-package function with no signal in its body.
func leakyDecl() {
	go spin() // want "goroutine has no termination signal"
}

func spin() {
	for {
		work()
	}
}

// ctxArg hands a context at the spawn site: the lifetime is the caller's
// problem, and the rule trusts the hand-off even without seeing the body.
func ctxArg(ctx context.Context) {
	go runUntil(ctx)
}

func runUntil(ctx context.Context) {
	for ctx.Err() == nil {
		work()
	}
}

// ctxBody references a captured context inside the body.
func ctxBody(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

// channelOps: receive, send, select, and range-over-channel all count as
// coordination.
func channelOps(stop chan struct{}, in chan int, out chan int) {
	go func() {
		<-stop
	}()
	go func() {
		out <- 1
	}()
	go func() {
		select {
		case <-stop:
		case v := <-in:
			_ = v
		}
	}()
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// waitGroupJoin: a Done on a WaitGroup marks the goroutine awaited.
func waitGroupJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// condWait: a sync.Cond wait is this repo's updater-loop shape — a closer
// Broadcasts it awake.
func condWait(c *sync.Cond, done *bool) {
	go func() {
		c.L.Lock()
		for !*done {
			c.Wait()
		}
		c.L.Unlock()
	}()
}

// declJoin resolves a same-package FuncDecl whose body coordinates.
func declJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go worker(wg)
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// rangeSlice: ranging over a non-channel must NOT count as coordination.
func rangeSlice(items []int) {
	go func() { // want "goroutine has no termination signal"
		for _, v := range items {
			use(v)
		}
	}()
}

// unresolved spawns through a function value: out of analysis reach,
// flagged with the reach message — and waivable.
func unresolved(f func()) {
	go f() // want "out of analysis reach"
	//rocklint:allow goroutineleak -- fixture: fire-and-forget by design, bounded by the process
	go f()
}

func work()     {}
func use(v int) {}
