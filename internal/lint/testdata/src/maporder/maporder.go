// Package maporder seeds deliberate map-iteration-order leaks for the
// rocklint golden tests, next to the blessed collect-then-sort shapes
// that must stay diagnostic-free.
package maporder

import (
	"fmt"
	"sort"
)

// BadAppend collects keys and returns them unsorted.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "accumulates into keys in map iteration order"
	}
	return keys
}

// BadPrint emits output straight from the loop body.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside a map range"
	}
}

// BadConcat accumulates a string in iteration order.
func BadConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "accumulates into out in map iteration order"
	}
	return out
}

// GoodSorted is the Store.List pattern: collect, then sort, then return.
func GoodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodAggregate sums into a scalar — order-insensitive.
func GoodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodMapToMap builds another map — order-insensitive.
func GoodMapToMap(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// SuppressedDump waives a debug print whose order genuinely does not
// matter; the finding must come back Suppressed with this reason.
func SuppressedDump(m map[string]int) {
	for k := range m {
		fmt.Println(k) //rocklint:allow maporder -- fixture: debug dump, order genuinely irrelevant
	}
}
