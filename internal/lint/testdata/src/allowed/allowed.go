// Package allowed exists to prove package allowlists: the violation
// below is reported when the package is not allowlisted and vanishes —
// with no unused-directive noise — when Config.Allow waives the rule for
// the whole package. No `// want` comments here: the two runs expect
// different outcomes, so the test asserts counts directly.
package allowed

import "time"

// Violation reads the wall clock on purpose.
func Violation() time.Time { return time.Now() }
