package wallclock

import (
	"testing"
	"time"
)

// TestHarnessTiming reads real time with no directive: the wallclock rule
// skips _test.go files, so this file must stay diagnostic-free.
func TestHarnessTiming(t *testing.T) {
	if time.Since(time.Now()) > time.Minute {
		t.Fatal("impossible")
	}
}
