// Package wallclock seeds deliberate wall-clock violations for the
// rocklint golden tests. Every line carrying a `// want` comment must be
// reported; every other line must stay diagnostic-free.
package wallclock

import "time"

// Clock is a local stand-in for resilience.Clock: calling through an
// injected clock is the blessed pattern and must not be flagged.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Bad reads ambient time three ways.
func Bad() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)     // want "time.Since reads the wall clock"
}

// BadTimer arms a real timer.
func BadTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
}

// aliasedNow proves package-level references are caught too.
var aliasedNow = time.Now // want "time.Now reads the wall clock"

// Good consumes only the injected clock and time's pure values; no
// diagnostic may appear below.
func Good(c Clock) time.Time {
	c.Sleep(2 * time.Second)
	deadline := c.Now().Add(time.Minute)
	return deadline
}
