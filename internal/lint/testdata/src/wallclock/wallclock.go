// Package wallclock seeds deliberate wall-clock violations for the
// rocklint golden tests. Every line carrying a `// want` comment must be
// reported; every other line must stay diagnostic-free.
package wallclock

import "time"

// Clock is a local stand-in for resilience.Clock: calling through an
// injected clock is the blessed pattern and must not be flagged.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Bad reads ambient time three ways.
func Bad() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)     // want "time.Since reads the wall clock"
}

// BadTimer arms a real timer.
func BadTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
}

// aliasedNow proves package-level references are caught too.
var aliasedNow = time.Now // want "time.Now reads the wall clock"

// Good consumes only the injected clock and time's pure values; no
// diagnostic may appear below.
func Good(c Clock) time.Time {
	c.Sleep(2 * time.Second)
	deadline := c.Now().Add(time.Minute)
	return deadline
}

// realLike satisfies the full Clock contract, so its method values are the
// blessed injection pattern (the store.New default).
type realLike struct{}

func (realLike) Now() time.Time        { return time.Time{} }
func (realLike) Sleep(d time.Duration) {}

// sneakyClock offers a clock-shaped Now without the rest of the contract —
// the one-method wrapper that would smuggle ambient time past the
// time-package check.
type sneakyClock struct{}

func (sneakyClock) Now() time.Time { return time.Time{} }

// MethodValues pins the type-aware branch: a full-contract method value is
// blessed, a bare Now-provider is not.
func MethodValues() func() time.Time {
	blessed := realLike{}.Now
	_ = blessed
	viaContract := Clock(realLike{})
	_ = viaContract.Now()
	bad := sneakyClock{}.Now // want "sneakyClock.Now provides wall-clock time without the full Clock contract"
	return bad
}
