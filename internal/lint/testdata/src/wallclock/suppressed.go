package wallclock

import "time"

// Suppressed demonstrates both directive placements — standalone on the
// line above and trailing on the violating line. Both findings must come
// back with Suppressed=true and carry the directive's reason.
func Suppressed() time.Time {
	//rocklint:allow wallclock -- fixture: standalone directive above the call
	t := time.Now()
	time.Sleep(0) //rocklint:allow wallclock -- fixture: trailing directive on the violating line
	return t
}
