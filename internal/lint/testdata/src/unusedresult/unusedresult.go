// Package unusedresult seeds dropped-error calls for the unusedresult
// rule: watched methods, interface dispatch, and package-level functions
// whose error results vanish in statement position.
package unusedresult

type Store struct{}

func (*Store) Put(p string, data []byte) error { return nil }

func (*Store) Get(p string) ([]byte, error) { return nil, nil }

type Session struct{}

func (*Session) Complete(ok bool) error { return nil }

func Save(path string) error { return nil }

// Sink mirrors the backend's ObjectStore: the rule must see through
// interface dispatch, not just concrete receivers.
type Sink interface {
	Put(p string, data []byte) error
}

func drops(s *Store, sess *Session, sink Sink) {
	s.Put("a", nil)     // want "result of ..fixture/unusedresult.Store..Put is dropped"
	sess.Complete(true) // want "result of ..fixture/unusedresult.Session..Complete is dropped"
	Save("x")           // want "result of fixture/unusedresult.Save is dropped"
	sink.Put("b", nil)  // want "result of .fixture/unusedresult.Sink..Put is dropped"
	// defer and go discard call results by language rule — the drop is just
	// as silent there.
	defer s.Put("g", nil) // want "result of ..fixture/unusedresult.Store..Put is dropped"
	go sink.Put("h", nil) // want "result of .fixture/unusedresult.Sink..Put is dropped"
}

func handles(s *Store, sink Sink) error {
	// Explicit discard is a conscious decision: not flagged.
	_ = s.Put("c", nil)
	// Handled errors are the intended shape.
	if err := sink.Put("d", nil); err != nil {
		return err
	}
	// Unwatched callees with dropped results are someone else's problem.
	unwatched()
	//rocklint:allow unusedresult -- fixture: best-effort cache warm, failure falls back to a cold start
	s.Put("e", nil)
	return s.Put("f", nil)
}

func unwatched() {}
