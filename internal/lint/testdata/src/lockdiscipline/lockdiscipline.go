// Package lockdiscipline seeds deliberate lock-handling violations for
// the rocklint golden tests, next to the disciplined shapes the repo
// actually uses (defer-unlock, branch-local release).
package lockdiscipline

import "sync"

type box struct {
	mu sync.RWMutex
	n  int
}

// BadNoUnlock locks and never releases.
func (b *box) BadNoUnlock() {
	b.mu.Lock() // want "no matching Unlock"
	b.n++
}

// BadEarlyReturn releases on the fall-through path but leaks the lock on
// the early return.
func (b *box) BadEarlyReturn(cond bool) int {
	b.mu.Lock()
	if cond {
		return b.n // want "return while b.mu is still locked"
	}
	b.mu.Unlock()
	return 0
}

// BadMismatch pairs RLock with Unlock — not a release of the read lock.
func (b *box) BadMismatch() {
	b.mu.RLock() // want "no matching RUnlock"
	defer b.mu.Unlock()
}

// GoodDefer is the canonical shape.
func (b *box) GoodDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// GoodBranchRelease unlocks on every path without defer.
func (b *box) GoodBranchRelease(cond bool) int {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return b.n
	}
	b.mu.Unlock()
	return 0
}

// GoodRead pairs the read lock with its read unlock.
func (b *box) GoodRead() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

// SuppressedHandoff locks and hands ownership to the caller by contract;
// the directive documents the transfer.
func (b *box) SuppressedHandoff() {
	b.mu.Lock() //rocklint:allow lockdiscipline -- fixture: ownership handed to the caller, released in Finish
	b.n++
}

// Finish releases a lock acquired by SuppressedHandoff. The bare Unlock
// with no Lock in sight is fine: the rule only audits Lock sites.
func (b *box) Finish() {
	b.mu.Unlock()
}
