package lockdiscipline

import (
	"sync"
	"testing"
)

// TestHeldLock violates in a _test.go file: the lockdiscipline rule
// includes tests (a deadlocked test hangs the suite), so the line below
// must be reported.
func TestHeldLock(t *testing.T) {
	var mu sync.Mutex
	mu.Lock() // want "no matching Unlock"
	t.Log("lock intentionally leaked for the fixture")
}
