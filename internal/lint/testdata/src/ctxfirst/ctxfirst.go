// Package ctxfirst seeds deliberate context-plumbing violations for the
// rocklint golden tests. The rule is scoped by CtxFirst.Packages; the
// test harness points it at this fixture package.
package ctxfirst

import (
	"context"
	"net/http"
)

// Client is a thin wrapper so method calls exercise the Selections-based
// net/http method detection (h.Do below).
type Client struct{ h *http.Client }

// BadNoCtx does network I/O with no context parameter.
func (c *Client) BadNoCtx(url string) (*http.Response, error) { // want "does I/O but takes no context.Context"
	return http.Get(url)
}

// BadCtxSecond threads a context that is not the first parameter.
func BadCtxSecond(name string, ctx context.Context) error { // want "must be the first parameter"
	return ctx.Err()
}

// GoodCtxFirst is compliant: context first, deadline propagates.
func GoodCtxFirst(ctx context.Context, c *Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.h.Do(req)
}

// GoodHandler is exempt: the *http.Request carries its context.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
}

// goodUnexported is out of scope — the rule audits the exported surface.
func goodUnexported(url string) (*http.Response, error) {
	return http.Get(url)
}

// SuppressedIface is pinned by an interface signature that carries no
// context; the finding must come back Suppressed with this reason.
//
//rocklint:allow ctxfirst -- fixture: interface-pinned signature, deadline owned by the callee
func SuppressedIface(c *Client, url string) (*http.Response, error) {
	return c.h.Do(newReq(url))
}

func newReq(url string) *http.Request {
	r, _ := http.NewRequest(http.MethodGet, url, nil)
	return r
}
