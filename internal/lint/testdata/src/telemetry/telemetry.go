// Package telemetry is a minimal stub of the real registry's vector types
// so the metriccardinality fixture can exercise With-call provenance
// without importing the production module.
package telemetry

// Counter is a single labeled counter series.
type Counter struct{}

// Inc bumps the counter.
func (Counter) Inc() {}

// Gauge is a single labeled gauge series.
type Gauge struct{}

// Set sets the gauge.
func (Gauge) Set(float64) {}

// Histogram is a single labeled histogram series.
type Histogram struct{}

// Observe records one sample.
func (Histogram) Observe(float64) {}

// CounterVec fans a counter out over label values.
type CounterVec struct{}

// With resolves one child series.
func (*CounterVec) With(lvs ...string) Counter { return Counter{} }

// GaugeVec fans a gauge out over label values.
type GaugeVec struct{}

// With resolves one child series.
func (*GaugeVec) With(lvs ...string) Gauge { return Gauge{} }

// HistogramVec fans a histogram out over label values.
type HistogramVec struct{}

// With resolves one child series.
func (*HistogramVec) With(lvs ...string) Histogram { return Histogram{} }
