// Package deadlockcycle seeds lock-order cycles and blocking-under-lock
// patterns for the interprocedural deadlockcycle rule, plus the benign
// shapes it must accept: consistent nested ordering, local mutexes, and
// goroutine launches.
package deadlockcycle

import (
	"os"
	"sync"
)

type pair struct {
	a, b sync.Mutex // the ABBA pair
	c, d sync.Mutex // the interprocedural pair
	e, g sync.Mutex // always taken e-then-g: consistent, benign
	mu   sync.Mutex
	ch   chan int
	f    *os.File
}

// lockAB and lockBA take the same two locks in opposite orders — the
// classic ABBA deadlock the order graph exists to catch.
func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want "lock order cycle"
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want "lock order cycle"
	p.a.Unlock()
	p.b.Unlock()
}

// lockCD reaches d through a helper while holding c: the edge comes from
// takeD's summary, not this body. lockDC closes the cycle directly.
func (p *pair) lockCD() {
	p.c.Lock()
	defer p.c.Unlock()
	p.takeD() // want "lock order cycle"
}

func (p *pair) takeD() {
	p.d.Lock()
	p.d.Unlock()
}

func (p *pair) lockDC() {
	p.d.Lock()
	p.c.Lock() // want "lock order cycle"
	p.c.Unlock()
	p.d.Unlock()
}

// sendUnderLock parks the goroutine with mu held: any reader of ch that
// needs mu deadlocks the process.
func (p *pair) sendUnderLock(v int) {
	p.mu.Lock()
	p.ch <- v // want "held across channel send"
	p.mu.Unlock()
}

// syncUnderLock reaches an fsync transitively while holding mu.
func (p *pair) syncUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flush() // want "held across blocking call"
}

func (p *pair) flush() {
	p.f.Sync()
}

// eThenG1/eThenG2 nest locks in a consistent order on every path — one
// direct, one through a helper. No cycle, no finding.
func (p *pair) eThenG1() {
	p.e.Lock()
	p.g.Lock()
	p.g.Unlock()
	p.e.Unlock()
}

func (p *pair) eThenG2() {
	p.e.Lock()
	defer p.e.Unlock()
	p.takeG()
}

func (p *pair) takeG() {
	p.g.Lock()
	p.g.Unlock()
}

// localUnderGlobal: a function-local mutex cannot participate in
// cross-function lock ordering.
func localUnderGlobal(p *pair) {
	var m sync.Mutex
	p.e.Lock()
	m.Lock()
	m.Unlock()
	p.e.Unlock()
}

// spawnUnderLock: launching a goroutine is not a blocking operation, and
// the spawned body blocks on its own stack, not under mu.
func (p *pair) spawnUnderLock() {
	p.mu.Lock()
	go p.waitForWork()
	p.mu.Unlock()
}

func (p *pair) waitForWork() {
	<-p.ch
}

// ackPath blocks under mu deliberately; the waiver records the contract.
func (p *pair) ackPath(v int) {
	p.mu.Lock()
	//rocklint:allow deadlockcycle -- fixture: ack-before-unlock is the serialization point of this queue
	p.ch <- v
	p.mu.Unlock()
}
