package globalrand

import (
	"math/rand"
	"testing"
)

// TestSeeded violates in a _test.go file: unlike wallclock, the
// globalrand rule includes tests (a nondeterministic test is flaky by
// construction), so the line below must be reported.
func TestSeeded(t *testing.T) {
	if rand.Float64() < -1 { // want "rand.Float64 uses math/rand"
		t.Fatal("impossible")
	}
}
