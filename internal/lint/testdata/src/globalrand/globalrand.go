// Package globalrand seeds deliberate math/rand violations for the
// rocklint golden tests.
package globalrand

import "math/rand"

// Bad draws from the shared global generator.
func Bad() int {
	return rand.Intn(10) // want "rand.Intn uses math/rand"
}

// BadSource constructs a local generator — still math/rand, still not
// splittable, still flagged at both references.
func BadSource(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // want "rand.New uses math/rand" "rand.NewSource uses math/rand"
	return r.Float64()
}

// LegacyShuffle keeps byte-compatibility with a recorded trace; the
// directive documents why the historical generator must stay.
func LegacyShuffle(xs []int) {
	//rocklint:allow globalrand -- fixture: legacy trace replay requires the historical generator
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
