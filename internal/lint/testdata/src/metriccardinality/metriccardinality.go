// Package metriccardinality seeds bounded and unbounded label provenance
// for the metriccardinality rule: constants and closed enums pass, values
// that trace back to user input, struct fields, or exported parameters are
// flagged, and a capped mapping blessed via BoundedFuncs is accepted.
package metriccardinality

import "fixture/telemetry"

var (
	reqs = &telemetry.CounterVec{}
	lat  = &telemetry.HistogramVec{}
	best = &telemetry.GaugeVec{}
)

const kindPut = "put"

// constLabel: literals and constants are bounded.
func constLabel() {
	reqs.With("get", kindPut).Inc()
}

// enumLabel: outcome's all-literal returns form a closed enum.
func enumLabel(code int) {
	reqs.With(outcome(code)).Inc()
}

func outcome(code int) string {
	if code < 400 {
		return "ok"
	}
	return "error"
}

// record's kind parameter only ever receives literals from its module
// callers, so the obligation discharges interprocedurally.
func record(kind string) {
	lat.With(kind).Observe(1)
}

func recordAll() {
	record("scan")
	record("join")
}

// algoLabel: an interface call is bounded when every module implementation
// returns bounded values.
type namer interface{ Name() string }

type alpha struct{}

func (alpha) Name() string { return "alpha" }

type beta struct{}

func (beta) Name() string { return "beta" }

func algoLabel(n namer) {
	reqs.With(n.Name()).Inc()
}

// viaBoundedLocal: a local whose every assignment is bounded stays bounded.
func viaBoundedLocal(ok bool) {
	label := "hit"
	if !ok {
		label = "miss"
	}
	lat.With(label).Observe(1)
}

// tenant caps its output; the golden test blesses it via BoundedFuncs the
// way DefaultRules blesses backend.tenantLabel.
func tenant(user string) string {
	if len(user) > 3 {
		return "other"
	}
	return user
}

func tenantBounded(user string) {
	best.With(tenant(user)).Set(1)
}

// UserLabel is exported: unknown external callers could pass anything.
func UserLabel(user string) {
	reqs.With(user).Inc() // want "not provably bounded"
}

// jobLabel: struct-field provenance is unbounded.
type job struct{ id string }

func jobLabel(j job) {
	lat.With(j.id).Observe(1) // want "not provably bounded"
}

// viaLocal: the local inherits the unbounded parameter it copies.
func viaLocal(raw string) {
	label := raw
	reqs.With(label).Inc() // want "not provably bounded"
}

// spread: variadic forwarding defeats provenance entirely.
func spread(lvs []string) {
	reqs.With(lvs...).Inc() // want "spread"
}

// migration keeps a legacy series alive; the waiver records the debt.
func migration(legacy string) {
	//rocklint:allow metriccardinality -- fixture: legacy dashboard series, removal tracked
	reqs.With(legacy).Inc()
}
