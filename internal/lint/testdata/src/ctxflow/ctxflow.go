// Package ctxflow seeds severed-context patterns for the interprocedural
// ctxflow rule — fresh Background() roots below entry points, nil ctx
// arguments — plus the benign shapes: true entry points, the nil-guard
// defaulting idiom, and properly forwarded or derived contexts.
package ctxflow

import (
	"context"
	"time"
)

func query(ctx context.Context, q string) error {
	_ = ctx
	_ = q
	return nil
}

// fetch receives a ctx but mints a fresh root for its callee: the caller's
// deadline and cancellation stop here.
func fetch(ctx context.Context, q string) error {
	return query(context.Background(), q) // want "receives a context but calls context.Background"
}

// dropNil passes nil where the received ctx would do: query's nil-guard
// (if it has one) turns this into an uncancellable root.
func dropNil(ctx context.Context, q string) error {
	return query(nil, q) // want "without forwarding"
}

// helper sits below ctx-bearing fetchAll in the call graph: the context
// existed one frame up and should have been plumbed through.
func helper(q string) error {
	return query(context.Background(), q) // want "reachable from ctx-bearing"
}

func fetchAll(ctx context.Context) {
	_ = ctx
	_ = helper("x")
}

// forwarded passes the received ctx straight through: compliant.
func forwarded(ctx context.Context, q string) error {
	return query(ctx, q)
}

// derived narrows the received ctx with a deadline: still the caller's
// cancellation tree, compliant.
func derived(ctx context.Context, q string) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return query(c, q)
}

// entry is an entry point: nothing ctx-bearing reaches it, so the fresh
// root is exactly where it belongs.
func entry() {
	ctx := context.Background()
	_ = query(ctx, "boot")
}

// defaulted mirrors the client's nil-guard idiom, which the rule allows:
// the Background is a fallback, not a severed chain.
func defaulted(ctx context.Context, q string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return query(ctx, q)
}

// audit needs a span that outlives the request; the waiver records why.
func audit(ctx context.Context, q string) error {
	_ = ctx
	//rocklint:allow ctxflow -- fixture: audit span must outlive the request on purpose
	return query(context.Background(), q)
}
