// Package spanfinish seeds started-but-never-finished spans for the
// spanfinish rule: leaked spans, blank bindings, and the discharging shapes
// (direct, deferred, deferred closure, and ownership hand-offs) that must
// stay clean.
package spanfinish

type Ctx struct{}

type Span struct{}

func (*Span) Finish(status string)                        {}
func (*Span) Annotate(format string, args ...interface{}) {}
func (*Span) Context() Ctx                                { return Ctx{} }

type Tracer struct{}

func (*Tracer) Start(ctx Ctx, name, kind string) (Ctx, *Span) { return ctx, nil }
func (*Tracer) StartRemote(sc Ctx, name, kind string) *Span   { return nil }

// holder mirrors the replicator's peerWait: a struct that takes ownership of
// an in-flight span and finishes it later.
type holder struct {
	sp *Span
}

func leaks(tr *Tracer, ctx Ctx) {
	sp := tr.StartRemote(ctx, "wal_append", "store") // want "span sp started by ..fixture/spanfinish.Tracer..StartRemote is never finished"
	sp.Annotate("seq %d", 7)
	_, child := tr.Start(ctx, "hop", "client") // want "span child started by ..fixture/spanfinish.Tracer..Start is never finished"
	child.Annotate("leaked")
	_, _ = tr.Start(ctx, "blank", "client") // want "span from ..fixture/spanfinish.Tracer..Start is assigned to _ and can never be finished"
}

func finishes(tr *Tracer, ctx Ctx) {
	// Direct finish on the happy path.
	sp := tr.StartRemote(ctx, "wal_fsync", "store")
	sp.Finish("ok")

	// Deferred finish.
	_, root := tr.Start(ctx, "client_send", "client")
	defer root.Finish("ok")

	// The status-capturing closure idiom: Finish lives inside a deferred
	// function literal, not on the defer statement itself.
	late := tr.StartRemote(ctx, "replica_apply", "store")
	status := "ok"
	defer func() { late.Finish(status) }()

	// Reassignment into the same variable: both mints share the object, one
	// Finish use discharges it (the loop body finishes each iteration).
	var hop *Span
	_, hop = tr.Start(ctx, "hop:a", "client")
	hop.Finish("ok")
}

func handsOff(tr *Tracer, ctx Ctx, sink chan *Span) []holder {
	// Stored into a composite literal: the holder owns the Finish.
	kept := tr.StartRemote(ctx, "replication_wait", "fleet")
	hs := []holder{{sp: kept}}

	// Passed to a callee: ownership transfers with the argument.
	given := tr.StartRemote(ctx, "retrain", "backend")
	settle(given)

	// Sent on a channel: the receiver finishes it.
	shipped := tr.StartRemote(ctx, "ship", "fleet")
	sink <- shipped

	// Returned via a second variable: re-homing is a hand-off too.
	moved := tr.StartRemote(ctx, "promote_replay", "fleet")
	var out *Span
	out = moved
	_ = out
	return hs
}

func settle(sp *Span) { sp.Finish("ok") }

func waived(tr *Tracer, ctx Ctx) {
	//rocklint:allow spanfinish -- fixture: crash-path span deliberately left open so the flight recorder snapshots it mid-flight
	open := tr.StartRemote(ctx, "crash", "store")
	open.Annotate("left open on purpose")
}
