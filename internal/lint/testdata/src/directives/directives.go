// Package directives seeds the engine's own findings: a malformed
// suppression (missing the mandatory reason) and a stale waiver with
// nothing to suppress. Both are reported under the meta rule "rocklint".
package directives

import "time"

//rocklint:allow wallclock // want "malformed directive"

//rocklint:allow wallclock -- stale waiver kept for the golden test // want "unused"

// Good uses only time's pure values so the second directive above stays
// genuinely unused.
func Good() time.Duration { return time.Hour }
