// Package lint is rocklint: a stdlib-only static-analysis engine enforcing
// the determinism and concurrency invariants Rockhopper's correctness
// guarantees rest on. PR 1 proved byte-identical experiment output for any
// worker count and PR 2 proved identical convergence under injected faults;
// both proofs silently die the moment someone reintroduces a raw
// time.Now(), package-level math/rand, a map-iteration-order leak, or a
// lock held across an early return. rocklint is the ratchet that keeps
// those regressions out of the tree.
//
// The engine loads packages with go/parser + go/types (source importer, no
// external dependencies — the module stays zero-dep), runs each registered
// Rule over every package, and reports diagnostics as file:line:col. A
// finding can be waived two ways:
//
//   - a line-scoped directive, placed on the offending line or alone on
//     the line directly above it:
//
//     //rocklint:allow <rule>[,<rule>...] -- <reason>
//
//     The reason is mandatory; a directive without one is itself reported.
//     Directives that suppress nothing are reported as unused, so stale
//     waivers cannot accumulate.
//
//   - a package allowlist in Config.Allow, for packages whose whole job is
//     the exception (internal/resilience owns the wall clock, so banning
//     time.Now there would outlaw the one legitimate call site).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding at one position.
type Diagnostic struct {
	// Rule is the reporting rule's name ("wallclock", ...); the meta rule
	// name "rocklint" marks engine findings (malformed or unused
	// directives), which cannot be suppressed.
	Rule string
	// Pos locates the finding.
	Pos token.Position
	// Msg explains it.
	Msg string
	// Suppressed is true when a //rocklint:allow directive waived the
	// finding; SuppressReason carries the directive's justification.
	Suppressed     bool
	SuppressReason string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Msg)
}

// Rule is one analyzer. Rules are stateless with respect to a run: Check is
// called once per package with a fresh Pass.
type Rule interface {
	// Name is the identifier used in directives and output.
	Name() string
	// Doc is a one-line description for -list output and DESIGN.md.
	Doc() string
	// IncludeTests reports whether the rule also applies to _test.go
	// files. Determinism rules skip tests (harness mechanics legitimately
	// sleep and time things); safety rules include them.
	IncludeTests() bool
	// Check analyzes one package and reports through pass.Reportf.
	Check(pass *Pass)
}

// Pass is the per-(rule, package) analysis context handed to Rule.Check.
type Pass struct {
	// Fset resolves positions for every file in the package.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Files are the files the rule should inspect — test files are
	// already filtered out for rules that exclude them.
	Files []*ast.File
	// Module is the whole-program call graph with computed summaries. It is
	// non-nil only when at least one registered rule is a ModuleRule; such
	// rules run their module-wide analysis once (via Module.Memo) and
	// report the findings that land in Pkg.
	Module *Module

	rule    string
	reportf func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportf(Diagnostic{
		Rule: p.rule,
		Pos:  p.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// PkgQualifier resolves e as a package-qualified selector (alias- and
// shadowing-aware via the type checker's Uses map) and returns the imported
// package path and the selected name.
func (p *Pass) PkgQualifier(e ast.Expr) (pkgPath, name string, ok bool) {
	sel, okSel := e.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// TypeOf returns the checked type of e, or nil when type information is
// incomplete.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Config parameterizes a run.
type Config struct {
	// IncludeTests gates analysis of _test.go files globally; a rule's own
	// IncludeTests must also be true for tests to be inspected.
	IncludeTests bool
	// Allow maps a rule name to module-relative package paths the rule
	// skips entirely. An entry is either an exact path ("internal/stats")
	// or a prefix wildcard ("internal/resilience/...").
	Allow map[string][]string
}

// DefaultConfig is the repository's blessed exception set.
func DefaultConfig() Config {
	return Config{
		IncludeTests: true,
		Allow: map[string][]string{
			// internal/resilience owns the Clock abstraction: RealClock
			// must read the wall clock, and the package's tests exercise
			// real timers. Everyone else injects a Clock.
			"wallclock": {"internal/resilience"},
		},
	}
}

// allowed reports whether rule is exempt in the package at relPath.
func (c Config) allowed(rule, relPath string) bool {
	for _, pat := range c.Allow[rule] {
		if prefix, wild := strings.CutSuffix(pat, "/..."); wild {
			if relPath == prefix || strings.HasPrefix(relPath, prefix+"/") {
				return true
			}
		} else if relPath == pat {
			return true
		}
	}
	return false
}

// Run executes every rule over every package, applies suppression
// directives and allowlists, and returns all diagnostics (suppressed ones
// included, flagged) sorted by position. Engine findings — malformed and
// unused directives — are appended under the rule name "rocklint".
func Run(pkgs []*Package, rules []Rule, cfg Config) []Diagnostic {
	return run(pkgs, rules, cfg, moduleFor(pkgs, rules))
}

// RunParallel is Run with package checking fanned out over up to workers
// goroutines (GOMAXPROCS when workers <= 0). The module graph, when any
// rule needs it, is built serially up front; the module-wide analyses the
// rules memoize through Module.Memo run exactly once regardless of which
// worker gets there first. Each package's diagnostics land in a
// per-package slot and the slots are concatenated in package order before
// the same final sort Run uses, so the output is byte-identical to the
// serial engine for any worker count.
func RunParallel(pkgs []*Package, rules []Rule, cfg Config, workers int) []Diagnostic {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mod := moduleFor(pkgs, rules)
	slots := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			slots[i] = checkPackage(pkgs[i], rules, cfg, mod)
		}(i)
	}
	wg.Wait()
	var out []Diagnostic
	for _, s := range slots {
		out = append(out, s...)
	}
	sortDiagnostics(out)
	return out
}

// moduleFor builds the call graph iff some registered rule is a ModuleRule.
func moduleFor(pkgs []*Package, rules []Rule) *Module {
	for _, rule := range rules {
		if _, ok := rule.(ModuleRule); ok {
			return BuildModule(pkgs)
		}
	}
	return nil
}

// run is the serial engine body.
func run(pkgs []*Package, rules []Rule, cfg Config, mod *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, checkPackage(pkg, rules, cfg, mod)...)
	}
	sortDiagnostics(out)
	return out
}

// checkPackage runs every rule over one package and applies its
// suppression directives. It touches no state outside the package except
// the read-only module graph (whose memoized analyses are themselves
// concurrency-safe), so RunParallel may call it from many goroutines.
func checkPackage(pkg *Package, rules []Rule, cfg Config, mod *Module) []Diagnostic {
	dirs, malformed := collectDirectives(pkg)
	out := malformed

	executed := make(map[string]bool)
	var raw []Diagnostic
	for _, rule := range rules {
		if cfg.allowed(rule.Name(), pkg.RelPath) {
			continue
		}
		executed[rule.Name()] = true
		files := pkg.Files
		if !cfg.IncludeTests || !rule.IncludeTests() {
			files = pkg.NonTestFiles()
		}
		pass := &Pass{
			Fset:    pkg.Fset,
			Pkg:     pkg,
			Files:   files,
			Module:  mod,
			rule:    rule.Name(),
			reportf: func(d Diagnostic) { raw = append(raw, d) },
		}
		rule.Check(pass)
	}

	for i := range raw {
		if dir := dirs.match(raw[i].Rule, raw[i].Pos); dir != nil {
			raw[i].Suppressed = true
			raw[i].SuppressReason = dir.Reason
			dir.used = true
		}
	}
	out = append(out, raw...)
	out = append(out, dirs.unused(executed)...)
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, then rule.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
}
