package lint

import (
	"path/filepath"
	"reflect"
	"testing"
)

// These tests pin the parallel engine's contract: LoadAllParallel yields
// the same packages in the same order as LoadAll, and RunParallel yields
// byte-identical diagnostics to Run for any worker count. The fixture tree
// under testdata/src doubles as the corpus — every rule fires there, so
// ordering bugs have plenty of diagnostics to scramble.

// parallelRules is a fresh all-rules set targeting the fixture module.
func parallelRules() []Rule {
	return []Rule{
		WallClock{},
		GlobalRand{},
		MapOrder{},
		LockDiscipline{},
		CtxFirst{},
		GoroutineLeak{},
		UnusedResult{},
		DeadlockCycle{},
		CtxFlow{},
		MetricCardinality{BoundedFuncs: []string{"fixture/metriccardinality.tenant"}},
	}
}

func TestLoadAllParallelMatchesSerial(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewLoaderAt(root, "fixture").LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := NewLoaderAt(root, "fixture").LoadAllParallel(workers)
		if err != nil {
			t.Fatalf("LoadAllParallel(%d): %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("LoadAllParallel(%d): %d packages, serial loaded %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Path != serial[i].Path {
				t.Errorf("LoadAllParallel(%d): package %d is %s, serial has %s", workers, i, par[i].Path, serial[i].Path)
			}
			if len(par[i].Files) != len(serial[i].Files) {
				t.Errorf("LoadAllParallel(%d): %s has %d files, serial %d", workers, par[i].Path, len(par[i].Files), len(serial[i].Files))
			}
		}
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoaderAt(root, "fixture").LoadAllParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	cfg := Config{IncludeTests: true}
	serial := Run(pkgs, parallelRules(), cfg)
	if len(serial) == 0 {
		t.Fatal("fixture corpus produced no diagnostics; the comparison would be vacuous")
	}
	for _, workers := range []int{1, 2, 8} {
		par := RunParallel(pkgs, parallelRules(), cfg, workers)
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("RunParallel(workers=%d) diverged from Run:\nserial: %d diags\nparallel: %d diags", workers, len(serial), len(par))
		}
	}
}
