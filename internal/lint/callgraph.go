package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file builds rocklint's module-wide call graph: the substrate the
// interprocedural rules (deadlockcycle, ctxflow, metriccardinality) stand
// on. PR 3's rules were per-function AST walks; the admission races PR 7
// fixed were exactly the cross-function kind those walks cannot see
// (enqueue vs Close across helpers, check-then-act split over two methods).
// The call graph plus the per-function summaries in summary.go let a rule
// reason about what a callee does — locks it takes, operations it blocks
// on, contexts it needs — without re-walking its body at every call site.
//
// Identity. Functions are keyed by types.Func.FullName() rather than by
// object pointer: the loader type-checks every analysis unit independently
// (and re-checks imported module packages through its own importer), so the
// same declared function is represented by distinct types.Func objects in
// different units. FullName ("(*path/to/pkg.T).M") is stable across all of
// them. Function literals get synthetic file:line:col keys — they are real
// nodes (their bodies are analyzed), but only direct invocations
// (go/defer/immediate call) produce edges into them.
//
// Resolution. Static calls and concrete method calls resolve through
// types.Info. A call through an interface method resolves to every module
// type that implements the interface and declares a body for the method,
// capped at maxInterfaceImpls — past the cap (or for func values, external
// callees, and literals that escape) the call site is marked unresolved
// and the summaries treat it as a no-op. That is the deliberate soundness
// trade: unresolved callees produce silence, never noise; DESIGN.md §11
// documents the limit.

// maxInterfaceImpls bounds interface-call fan-out: an interface with more
// module implementations than this resolves to nothing (unresolved call).
const maxInterfaceImpls = 12

// FuncInfo is one node of the module call graph: a declared function,
// method, or function literal with a body in a non-test file.
type FuncInfo struct {
	// Key is the canonical identity: types.Func.FullName() for declared
	// functions, "λ <file>:<line>:<col>" for literals.
	Key string
	// Name is the display name used in diagnostics ("(*Server).observe",
	// "func literal").
	Name string
	// Pkg is the analysis unit the body lives in.
	Pkg *Package
	// Body is the function body.
	Body *ast.BlockStmt
	// Decl is the *ast.FuncDecl, nil for literals.
	Decl *ast.FuncDecl
	// Lit is the *ast.FuncLit, nil for declared functions.
	Lit *ast.FuncLit
	// Parent is the lexically enclosing function for literals (nil for
	// declared functions). A literal closes over its parent's scope, so
	// context availability flows down this link.
	Parent *FuncInfo
	// Sig is the checked signature (nil when type information failed).
	Sig *types.Signature
	// Exported reports whether the function's name is exported. An
	// unexported function or method is only callable from its own package
	// (or through interfaces/func values, which resolve separately), so
	// interprocedural obligations on its parameters can be discharged by
	// inspecting its module callers; an Exported function's cannot.
	Exported bool
	// Calls are the resolved call sites in body order.
	Calls []*CallSite
	// Callers are the call sites that resolve to this function.
	Callers []*CallSite

	summary Summary
}

// Pos returns the function's position (declaration name or literal start).
func (f *FuncInfo) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Name.Pos()
	}
	return f.Lit.Pos()
}

// CtxParamIndex returns the flattened index of the first context.Context
// parameter, or -1.
func (f *FuncInfo) CtxParamIndex() int {
	if f.Sig == nil {
		return -1
	}
	for i := 0; i < f.Sig.Params().Len(); i++ {
		if isContextParam(f.Sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isContextParam reports whether t is context.Context.
func isContextParam(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CallSite is one call expression inside a function, with the callees it
// resolves to.
type CallSite struct {
	// Caller owns the call site.
	Caller *FuncInfo
	// Call is the expression.
	Call *ast.CallExpr
	// Callees are the module functions the call may reach: one for a
	// static or concrete-method call, several for an interface call, the
	// literal itself for a direct literal invocation. Empty when
	// unresolved.
	Callees []*FuncInfo
	// External is the checked callee for calls that leave the module
	// (stdlib, blessed externals); nil when the callee is in-module or
	// unresolvable.
	External *types.Func
	// Interface is true when the callees were found by interface-
	// implementation search rather than direct resolution.
	Interface bool
	// Go marks `go f(...)`: the callee runs on another goroutine, so its
	// blocking and lock acquisitions do not happen on the caller's stack.
	Go bool
	// Defer marks `defer f(...)`: the callee runs at return, after the
	// function's own statements, so it does not block the body.
	Defer bool
}

// Module is the whole-program analysis context: every non-test function of
// every loaded package, with calls resolved and summaries computed to a
// fixed point. Interprocedural rules receive it via Pass.Module.
type Module struct {
	// Pkgs are the packages the module was built from.
	Pkgs []*Package
	// Funcs maps Key → node.
	Funcs map[string]*FuncInfo
	// Order holds the keys sorted, for deterministic iteration.
	Order []string

	implMu    sync.Mutex // guards implCache (queried from memoized analyses, which run concurrently under RunParallel)
	implCache map[string][]*FuncInfo
	memoMu    sync.Mutex
	memo      map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
}

// Memo computes fn at most once per module under the given key and returns
// the cached value thereafter — module rules run once per package, but
// their whole-module analysis must run once per module (and must be safe
// under RunParallel).
func (m *Module) Memo(key string, fn func() any) any {
	m.memoMu.Lock()
	e := m.memo[key]
	if e == nil {
		e = &memoEntry{}
		m.memo[key] = e
	}
	m.memoMu.Unlock()
	e.once.Do(func() { e.val = fn() })
	return e.val
}

// ModuleRule marks rules that need the whole-module call graph. Run builds
// the Module lazily, only when at least one registered rule asks for it.
type ModuleRule interface {
	Rule
	// NeedsModule is a marker; implementations are empty.
	NeedsModule()
}

// BuildModule constructs the call graph and summaries over the non-test
// files of pkgs. External test packages ("[xtest]" units) contribute
// nothing: their NonTestFiles are empty by construction.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Funcs:     make(map[string]*FuncInfo),
		Pkgs:      pkgs,
		implCache: make(map[string][]*FuncInfo),
		memo:      make(map[string]*memoEntry),
	}
	// Pass 1: register every function and literal.
	for _, pkg := range pkgs {
		for _, f := range pkg.NonTestFiles() {
			m.registerFile(pkg, f)
		}
	}
	m.Order = make([]string, 0, len(m.Funcs))
	for k := range m.Funcs {
		m.Order = append(m.Order, k)
	}
	sort.Strings(m.Order)
	// Pass 2: resolve call sites.
	for _, k := range m.Order {
		m.resolveCalls(m.Funcs[k])
	}
	// Pass 3: summaries to a fixed point (summary.go).
	m.computeSummaries()
	return m
}

// registerFile creates nodes for the declared functions and the literals
// nested in them, wiring Parent links.
func (m *Module) registerFile(pkg *Package, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue // type checking failed for this declaration
		}
		fi := &FuncInfo{
			Key:      obj.FullName(),
			Name:     displayName(obj),
			Pkg:      pkg,
			Body:     fd.Body,
			Decl:     fd,
			Sig:      obj.Type().(*types.Signature),
			Exported: isExportedFunc(obj, fd),
		}
		if prev, dup := m.Funcs[fi.Key]; dup {
			// Two units declaring the same FullName (should not happen for
			// non-test files); keep the first deterministically.
			_ = prev
			continue
		}
		m.Funcs[fi.Key] = fi
		m.registerLits(pkg, fi, fd.Body)
	}
}

// registerLits walks body creating nodes for directly nested function
// literals (recursively), without descending past literal boundaries twice.
func (m *Module) registerLits(pkg *Package, parent *FuncInfo, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := pkg.Fset.Position(lit.Pos())
		fi := &FuncInfo{
			Key:    fmt.Sprintf("λ %s:%d:%d", pos.Filename, pos.Line, pos.Column),
			Name:   "func literal",
			Pkg:    pkg,
			Body:   lit.Body,
			Lit:    lit,
			Parent: parent,
		}
		if sig, ok := pkg.Info.TypeOf(lit).(*types.Signature); ok {
			fi.Sig = sig
		}
		m.Funcs[fi.Key] = fi
		m.registerLits(pkg, fi, lit.Body)
		return false // registerLits recursed; don't double-visit
	})
	return
}

// displayName renders a types.Func compactly: "pkg.F" or "(*pkg.T).M" with
// only the last path element of the package.
func displayName(obj *types.Func) string {
	full := obj.FullName()
	if obj.Pkg() != nil {
		long := obj.Pkg().Path()
		short := long
		if i := strings.LastIndex(long, "/"); i >= 0 {
			short = long[i+1:]
		}
		full = strings.ReplaceAll(full, long+".", short+".")
	}
	return full
}

// isExportedFunc reports whether obj is callable from outside its package:
// Go visibility is purely name-based, for methods as much as for
// package-level functions ((*Client).do cannot be invoked from another
// package no matter how exported Client is).
func isExportedFunc(obj *types.Func, decl *ast.FuncDecl) bool {
	return obj.Exported()
}

// funcBodyOwned reports whether n is inside fn's body but not inside a
// nested literal (whose statements belong to the literal's own node).
// Implemented as a walk helper below instead; see walkOwn.

// walkOwn visits the nodes of fi's body that belong to fi itself, stopping
// at nested function literals.
func walkOwn(fi *FuncInfo, visit func(ast.Node) bool) {
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fi.Lit {
			return false
		}
		return visit(n)
	})
}

// resolveCalls populates fi.Calls (and the callees' Callers).
func (m *Module) resolveCalls(fi *FuncInfo) {
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	walkOwn(fi, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			goCalls[v.Call] = true
		case *ast.DeferStmt:
			deferCalls[v.Call] = true
		}
		return true
	})
	walkOwn(fi, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := m.resolveCall(fi, call)
		if cs != nil {
			cs.Go = goCalls[call]
			cs.Defer = deferCalls[call]
			fi.Calls = append(fi.Calls, cs)
			for _, callee := range cs.Callees {
				callee.Callers = append(callee.Callers, cs)
			}
		}
		return true
	})
}

// resolveCall classifies one call expression. Conversions and builtin calls
// return nil.
func (m *Module) resolveCall(fi *FuncInfo, call *ast.CallExpr) *CallSite {
	pkg := fi.Pkg
	// Direct literal invocation: func(){...}() — edge into the literal.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		pos := pkg.Fset.Position(lit.Pos())
		key := fmt.Sprintf("λ %s:%d:%d", pos.Filename, pos.Line, pos.Column)
		if target := m.Funcs[key]; target != nil {
			return &CallSite{Caller: fi, Call: call, Callees: []*FuncInfo{target}}
		}
		return &CallSite{Caller: fi, Call: call}
	}
	fn := calleeOf(pkg, call)
	if fn == nil {
		// Conversion, builtin, or func-value call: unresolved.
		if isConversionOrBuiltin(pkg, call) {
			return nil
		}
		return &CallSite{Caller: fi, Call: call}
	}
	// Interface method: resolve to module implementations.
	if recvIsInterface(fn) {
		impls := m.implementations(fn)
		return &CallSite{Caller: fi, Call: call, Callees: impls, Interface: true}
	}
	if target := m.Funcs[fn.FullName()]; target != nil {
		return &CallSite{Caller: fi, Call: call, Callees: []*FuncInfo{target}}
	}
	// External (stdlib or generated): keep the object so summaries can
	// pattern-match known blocking entry points.
	return &CallSite{Caller: fi, Call: call, External: fn}
}

// calleeOf resolves the called *types.Func for method and function calls.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[fun]; s != nil {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isConversionOrBuiltin distinguishes T(x) and len/cap/append/... from
// unresolvable func-value calls.
func isConversionOrBuiltin(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pkg.Info.Uses[fun].(type) {
		case *types.TypeName, *types.Builtin:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := pkg.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType, *ast.StarExpr, *ast.IndexExpr, *ast.IndexListExpr:
		return true
	}
	return false
}

// recvIsInterface reports whether fn is declared on an interface.
func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// implementations returns the module methods an interface-method call may
// dispatch to: for interface method I.M, the M declared (with a body, in a
// non-test file) on every module named type whose method set satisfies I.
// Results are deterministic (sorted by key) and cached per interface
// method; a fan-out past maxInterfaceImpls resolves to nothing.
func (m *Module) implementations(ifaceMethod *types.Func) []*FuncInfo {
	cacheKey := ifaceMethod.FullName()
	m.implMu.Lock()
	impls, ok := m.implCache[cacheKey]
	m.implMu.Unlock()
	if ok {
		return impls
	}
	sig := ifaceMethod.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	name := ifaceMethod.Name()
	impls = nil
	seen := make(map[string]bool)
	for _, key := range m.Order {
		fi := m.Funcs[key]
		if fi.Decl == nil || fi.Decl.Recv == nil || fi.Decl.Name.Name != name {
			continue
		}
		recv := fi.Sig.Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type()
		// The method is reachable through the interface if its receiver's
		// base type (value or pointer form) implements it. Each unit checks
		// against its own view of the interface; identical declarations
		// from different units structurally match through types.Implements.
		base := rt
		if p, ok := rt.(*types.Pointer); ok {
			base = p.Elem()
		}
		if types.Implements(base, iface) || types.Implements(types.NewPointer(base), iface) {
			if !seen[fi.Key] {
				seen[fi.Key] = true
				impls = append(impls, fi)
			}
		}
	}
	if len(impls) > maxInterfaceImpls {
		impls = nil // bounded treatment: too wide to reason about
	}
	m.implMu.Lock()
	m.implCache[cacheKey] = impls
	m.implMu.Unlock()
	return impls
}
