package lint

import "go/ast"

// GlobalRand flags any reference into math/rand or math/rand/v2. The
// repository's reproducibility story is built on stats.RNG: a splittable
// generator whose per-run and per-query streams are pure functions of one
// experiment seed (SplitIndexed/SplitNamed), which is what makes output
// byte-identical for any worker count. Package-level math/rand functions
// share hidden global state across goroutines, and even a locally
// constructed rand.Rand reintroduces a second, non-splittable seed
// discipline — inject a *stats.RNG instead.
//
// Unlike wallclock, this rule includes _test.go files: a test drawing from
// the global generator is exactly how flaky, unreproducible failures are
// born.
type GlobalRand struct{}

// Name implements Rule.
func (GlobalRand) Name() string { return "globalrand" }

// Doc implements Rule.
func (GlobalRand) Doc() string {
	return "no math/rand: randomness must come from an injected, splittable *stats.RNG"
}

// IncludeTests implements Rule.
func (GlobalRand) IncludeTests() bool { return true }

// Check implements Rule.
func (GlobalRand) Check(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pass.PkgQualifier(sel)
			if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
				return true
			}
			pass.Reportf(sel.Pos(), "rand.%s uses math/rand; derive randomness from an injected *stats.RNG (stats.NewRNG / Split) so every run replays from one seed", name)
			return true
		})
	}
}
