package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanFinish flags started trace spans that are never finished. A span that
// is minted but not finished never reaches the span ring, so the causal tree
// rockmon -trace assembles is silently missing a node — the cross-node drill
// in CI then reports an orphaned subtree with no hint of which hop dropped
// it. The rule binds the span variable assigned from a watched starter call
// (the last left-hand identifier, matching both the (ctx, span) and the
// span-only return shapes) and requires a discharging use somewhere in the
// enclosing file:
//
//   - a <span>.Finish(...) call — plain, deferred, or inside any function
//     literal (the `defer func() { sp.Finish(status) }()` idiom);
//   - an ownership hand-off: the span stored into a composite literal or
//     another variable, passed as a call argument, returned, or sent on a
//     channel. Whoever receives it owns the Finish.
//
// Receiver-position uses (sp.Annotate, sp.Context) do not discharge: they
// read the span without recording it. Assigning the result to the blank
// identifier is an immediate finding — that span can never be finished.
type SpanFinish struct {
	// Starters are the watched span-minting calls as types.Func.FullName
	// strings, e.g. "(*path/to/telemetry.Tracer).StartRemote". The span is
	// the call's last result.
	Starters []string
}

// Name implements Rule.
func (SpanFinish) Name() string { return "spanfinish" }

// Doc implements Rule.
func (SpanFinish) Doc() string {
	return "a started span must be finished on every path (defer or explicit) or handed off to an owner"
}

// IncludeTests implements Rule. A test that starts spans and never finishes
// them asserts against a ring the spans never reached.
func (SpanFinish) IncludeTests() bool { return true }

// Check implements Rule.
func (r SpanFinish) Check(pass *Pass) {
	watched := make(map[string]bool, len(r.Starters))
	for _, name := range r.Starters {
		watched[name] = true
	}
	for _, f := range pass.Files {
		r.checkFile(pass, f, watched)
	}
}

// spanVar is one tracked span binding: where the starter call minted it and
// which callee did so (for the diagnostic).
type spanVar struct {
	pos    token.Pos
	callee string
}

func (r SpanFinish) checkFile(pass *Pass, f *ast.File, watched map[string]bool) {
	// Pass 1: bind span variables from starter-call assignments. Blank
	// bindings are reported immediately — nothing can ever finish them.
	tracked := make(map[*types.Var]spanVar)
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !watched[fn.FullName()] {
			return true
		}
		// The span is the last result, so the last LHS identifier in both
		// the `ctx, sp :=` and the `sp :=` shapes.
		id, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span from %s is assigned to _ and can never be finished", fn.FullName())
			return true
		}
		v := identVar(pass, id)
		if v == nil {
			return true
		}
		if _, seen := tracked[v]; !seen {
			tracked[v] = spanVar{pos: call.Pos(), callee: fn.FullName()}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Pass 2: hunt discharging uses anywhere in the file — deferred closures
	// and helper literals live in the same file as the starter, so a
	// file-wide scan sees the `defer func() { sp.Finish(status) }()` idiom
	// without any closure-capture analysis.
	discharged := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v := identVar(pass, id); v != nil {
				if _, yes := tracked[v]; yes {
					discharged[v] = true
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// sp.Finish(...) discharges; any other method on sp does not.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Finish" {
				mark(sel.X)
			}
			// Passing the span (or its address) to a call hands it off.
			for _, arg := range x.Args {
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = u.X
				}
				mark(arg)
			}
		case *ast.CompositeLit:
			// Stored into a struct/slice/map literal: the holder owns it.
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				mark(el)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				mark(res)
			}
		case *ast.SendStmt:
			mark(x.Value)
		case *ast.AssignStmt:
			// Re-homing the span (field store, second variable) hands it
			// off — but the defining assignment itself is not a use.
			if call, ok := singleCall(x); ok {
				if fn := calleeFunc(pass, call); fn != nil && watched[fn.FullName()] {
					return true
				}
			}
			for _, rhs := range x.Rhs {
				mark(rhs)
			}
		}
		return true
	})

	for v, sv := range tracked {
		if !discharged[v] {
			pass.Reportf(sv.pos, "span %s started by %s is never finished; call %s.Finish on every path (defer works) or hand the span off to an owner", v.Name(), sv.callee, v.Name())
		}
	}
}

// identVar resolves an identifier to its variable object, whether the
// identifier defines it (`sp := ...`) or re-uses it (`sp = ...`).
func identVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.Pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// singleCall returns the assignment's sole RHS call expression, if that is
// its shape.
func singleCall(assign *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(assign.Rhs) != 1 {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	return call, ok
}
