package lint

import (
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The full grammar is
//
//	//rocklint:allow <rule>[,<rule>...] -- <reason>
//
// and the directive waives matching diagnostics on its own line (trailing
// comment) or on the line immediately below it (standalone comment above
// the offending statement).
const directivePrefix = "//rocklint:allow"

// directive is one parsed //rocklint:allow comment.
type directive struct {
	// Rules are the rule names the directive waives.
	Rules []string
	// Reason is the justification after "--".
	Reason string
	// Pos is the comment's position; File/Line locate its scope.
	Pos  token.Position
	File string
	// Line is the line the comment ends on: a diagnostic on Line or
	// Line+1 is in scope.
	Line int

	used bool
}

// directiveSet indexes one package's directives.
type directiveSet struct {
	all []*directive
}

// collectDirectives scans every file of pkg (test files included — a
// suppression in a test file must work even for rules that skip tests,
// because the engine findings about the directive itself still apply) and
// returns the parsed directives plus diagnostics for malformed ones.
func collectDirectives(pkg *Package) (*directiveSet, []Diagnostic) {
	set := &directiveSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //rocklint:allowance — not ours
				}
				pos := pkg.Fset.Position(c.Pos())
				d, errMsg := parseDirective(rest)
				if errMsg != "" {
					bad = append(bad, Diagnostic{
						Rule: MetaRule,
						Pos:  pos,
						Msg:  errMsg,
					})
					continue
				}
				d.Pos = pos
				d.File = pos.Filename
				d.Line = pkg.Fset.Position(c.End()).Line
				set.all = append(set.all, d)
			}
		}
	}
	return set, bad
}

// MetaRule names the engine's own findings (malformed or unused
// directives). They are not suppressible: a broken waiver must be fixed,
// not waived.
const MetaRule = "rocklint"

// parseDirective parses the text after the //rocklint:allow prefix.
func parseDirective(rest string) (*directive, string) {
	spec, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, `malformed directive: want "//rocklint:allow <rule>[,<rule>] -- <reason>" (the reason is mandatory)`
	}
	var rules []string
	for _, r := range strings.Split(spec, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil, "malformed directive: no rule names before --"
	}
	for _, r := range rules {
		if r == MetaRule {
			return nil, "malformed directive: engine findings (rule rocklint) cannot be suppressed"
		}
	}
	return &directive{Rules: rules, Reason: strings.TrimSpace(reason)}, ""
}

// match returns the directive waiving a diagnostic of rule at pos, if any.
func (s *directiveSet) match(rule string, pos token.Position) *directive {
	for _, d := range s.all {
		if d.File != pos.Filename {
			continue
		}
		if pos.Line != d.Line && pos.Line != d.Line+1 {
			continue
		}
		for _, r := range d.Rules {
			if r == rule {
				return d
			}
		}
	}
	return nil
}

// unused reports directives that waived nothing. Only directives whose
// every rule was actually executed for this package are eligible: a
// directive naming an allowlisted (skipped) rule is vacuously unused and
// stays silent.
func (s *directiveSet) unused(executed map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		if d.used {
			continue
		}
		eligible := true
		for _, r := range d.Rules {
			if !executed[r] {
				eligible = false
				break
			}
		}
		if eligible {
			out = append(out, Diagnostic{
				Rule: MetaRule,
				Pos:  d.Pos,
				Msg:  "unused //rocklint:allow directive (" + strings.Join(d.Rules, ",") + "): nothing to suppress here — delete it",
			})
		}
	}
	return out
}
