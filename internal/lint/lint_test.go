package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden tests load the fixture packages under testdata/src — each a
// tiny package seeding deliberate violations — and assert the analyzers'
// findings against `// want "regexp"` comments: every want must be
// matched by a diagnostic on its line, and every unsuppressed diagnostic
// must be claimed by a want. Suppression directives inside the fixtures
// double as the proof that //rocklint:allow works.

var (
	fixOnce sync.Once
	fixPkgs map[string]*Package
	fixErr  error
)

// fixture returns the named testdata/src package; all fixtures are
// loaded and type-checked once per test binary (the source importer's
// stdlib work dominates, so sharing one loader matters).
func fixture(t *testing.T, name string) *Package {
	t.Helper()
	fixOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("testdata", "src"))
		if err != nil {
			fixErr = err
			return
		}
		pkgs, err := NewLoaderAt(root, "fixture").LoadAll()
		if err != nil {
			fixErr = err
			return
		}
		fixPkgs = make(map[string]*Package, len(pkgs))
		for _, p := range pkgs {
			if len(p.TypeErrors) > 0 {
				fixErr = fmt.Errorf("fixture %s has type errors: %v", p.RelPath, p.TypeErrors)
				return
			}
			fixPkgs[p.RelPath] = p
		}
	})
	if fixErr != nil {
		t.Fatalf("loading fixtures: %v", fixErr)
	}
	p, ok := fixPkgs[name]
	if !ok {
		t.Fatalf("no fixture package %q under testdata/src", name)
	}
	return p
}

type wantKey struct {
	file string
	line int
}

var wantArgRe = regexp.MustCompile(`"([^"]*)"`)

// collectWants parses the `// want "re" ["re"...]` comments of a fixture.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, m := range wantArgRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

// checkWants asserts the two-way correspondence between want comments and
// unsuppressed diagnostics.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		ok := false
		for _, re := range wants[wantKey{d.Pos.Filename, d.Pos.Line}] {
			if re.MatchString(d.Msg) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule, d.Msg)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: no diagnostic matched want %q", filepath.Base(k.file), k.line, re.String())
			}
		}
	}
}

// suppressed filters the waived findings out of a run's diagnostics.
func suppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// runFixture analyzes one fixture with one rule, verifies the want
// correspondence, and returns the full diagnostic list.
func runFixture(t *testing.T, name string, rule Rule) []Diagnostic {
	t.Helper()
	pkg := fixture(t, name)
	diags := Run([]*Package{pkg}, []Rule{rule}, Config{IncludeTests: true})
	checkWants(t, pkg, diags)
	return diags
}

func TestWallClockFixture(t *testing.T) {
	diags := runFixture(t, "wallclock", WallClock{})
	sup := suppressed(diags)
	if len(sup) != 2 {
		t.Fatalf("want 2 suppressed wallclock findings (standalone + trailing directive), got %d", len(sup))
	}
	for _, d := range sup {
		if !strings.Contains(d.SuppressReason, "fixture:") {
			t.Errorf("suppressed finding lost its directive reason: %q", d.SuppressReason)
		}
	}
}

func TestGlobalRandFixture(t *testing.T) {
	diags := runFixture(t, "globalrand", GlobalRand{})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed globalrand finding, got %d", len(sup))
	}
	if want := "legacy trace replay"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
	// The want inside rand_test.go only matches because the rule opts into
	// test files; make the inclusion explicit too.
	found := false
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "rand_test.go") && !d.Suppressed {
			found = true
		}
	}
	if !found {
		t.Error("globalrand must report violations inside _test.go files")
	}
}

func TestMapOrderFixture(t *testing.T) {
	diags := runFixture(t, "maporder", MapOrder{})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed maporder finding, got %d", len(sup))
	}
	if want := "order genuinely irrelevant"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
}

func TestLockDisciplineFixture(t *testing.T) {
	diags := runFixture(t, "lockdiscipline", LockDiscipline{})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed lockdiscipline finding, got %d", len(sup))
	}
	if want := "ownership handed to the caller"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
	found := false
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "lock_test.go") && !d.Suppressed {
			found = true
		}
	}
	if !found {
		t.Error("lockdiscipline must report violations inside _test.go files")
	}
}

func TestCtxFirstFixture(t *testing.T) {
	diags := runFixture(t, "ctxfirst", CtxFirst{Packages: []string{"ctxfirst"}})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed ctxfirst finding, got %d", len(sup))
	}
	if want := "interface-pinned signature"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
}

// TestCtxFirstScoping proves the rule is inert outside its configured
// packages: the same fixture produces nothing when the scope excludes it.
func TestCtxFirstScoping(t *testing.T) {
	pkg := fixture(t, "ctxfirst")
	diags := Run([]*Package{pkg}, []Rule{CtxFirst{Packages: []string{"internal/client"}}}, Config{IncludeTests: true})
	for _, d := range diags {
		if d.Rule == "ctxfirst" {
			t.Errorf("ctxfirst fired outside its configured packages: %s", d)
		}
	}
}

// TestDirectiveFindings covers the engine's own diagnostics: a directive
// missing the mandatory reason and a stale directive with nothing to
// suppress, both reported under MetaRule and unsuppressible.
func TestDirectiveFindings(t *testing.T) {
	diags := runFixture(t, "directives", WallClock{})
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 engine findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != MetaRule {
			t.Errorf("engine finding reported under rule %q, want %q", d.Rule, MetaRule)
		}
		if d.Suppressed {
			t.Errorf("engine finding must not be suppressible: %s", d)
		}
	}
}

// TestUnusedDirectiveNeedsExecutedRule: a directive naming a rule that
// never ran (allowlisted) is vacuously unused and must stay silent —
// otherwise allowlisting a package would spray unused-directive noise.
func TestUnusedDirectiveNeedsExecutedRule(t *testing.T) {
	pkg := fixture(t, "directives")
	cfg := Config{Allow: map[string][]string{"wallclock": {"directives"}}}
	diags := Run([]*Package{pkg}, []Rule{WallClock{}}, cfg)
	for _, d := range diags {
		if strings.Contains(d.Msg, "unused") {
			t.Errorf("vacuously-unused directive reported while its rule was allowlisted: %s", d)
		}
	}
	// The malformed directive must still be reported: broken syntax is a
	// defect regardless of which rules run.
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "malformed") {
		t.Errorf("want exactly the malformed-directive finding, got %v", diags)
	}
}

func TestAllowlist(t *testing.T) {
	pkg := fixture(t, "allowed")
	base := Run([]*Package{pkg}, []Rule{WallClock{}}, Config{})
	if len(base) != 1 || base[0].Suppressed {
		t.Fatalf("unallowlisted run: want exactly 1 live finding, got %v", base)
	}
	for _, allow := range []string{"allowed", "allowed/..."} {
		cfg := Config{Allow: map[string][]string{"wallclock": {allow}}}
		if diags := Run([]*Package{pkg}, []Rule{WallClock{}}, cfg); len(diags) != 0 {
			t.Errorf("allowlist %q: want 0 diagnostics, got %v", allow, diags)
		}
	}
	// An allowlist for a different rule must not leak across rule names.
	cfg := Config{Allow: map[string][]string{"globalrand": {"allowed"}}}
	if diags := Run([]*Package{pkg}, []Rule{WallClock{}}, cfg); len(diags) != 1 {
		t.Errorf("allowlist for another rule suppressed wallclock: got %v", diags)
	}
}

// TestRuleTestFileGating: the engine must withhold _test.go files from
// rules that exclude them (wallclock) even when the run includes tests —
// skip_test.go reads real time with no directive and must stay silent.
func TestRuleTestFileGating(t *testing.T) {
	pkg := fixture(t, "wallclock")
	for _, d := range Run([]*Package{pkg}, []Rule{WallClock{}}, Config{IncludeTests: true}) {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Errorf("wallclock inspected a test file: %s", d)
		}
	}
	// Conversely, IncludeTests=false must gate even opt-in rules.
	grand := fixture(t, "globalrand")
	for _, d := range Run([]*Package{grand}, []Rule{GlobalRand{}}, Config{IncludeTests: false}) {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Errorf("globalrand inspected a test file with IncludeTests=false: %s", d)
		}
	}
}

// TestDiagnosticsSorted: output order is positional, so CI diffs are
// stable run to run.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := fixture(t, "wallclock")
	diags := Run([]*Package{pkg}, []Rule{WallClock{}}, Config{IncludeTests: true})
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

func TestGoroutineLeakFixture(t *testing.T) {
	diags := runFixture(t, "goroutineleak", GoroutineLeak{})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed goroutineleak finding, got %d", len(sup))
	}
	if want := "fire-and-forget by design"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
}

func TestDeadlockCycleFixture(t *testing.T) {
	diags := runFixture(t, "deadlockcycle", DeadlockCycle{})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed deadlockcycle finding, got %d", len(sup))
	}
	if want := "serialization point"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
	// The interprocedural edge must carry its callee witness: lockCD's
	// finding exists only because takeD's summary says it acquires d.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Msg, "lock order cycle") && strings.Contains(d.Msg, "via") {
			found = true
		}
	}
	if !found {
		t.Error("no cycle finding flowed through a callee summary (want a 'via' edge from lockCD → takeD)")
	}
}

func TestCtxFlowFixture(t *testing.T) {
	diags := runFixture(t, "ctxflow", CtxFlow{})
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed ctxflow finding, got %d", len(sup))
	}
	if want := "outlive the request"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
	// The below-entry-point finding must name its ctx-bearing witness.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Msg, "reachable from ctx-bearing") && strings.Contains(d.Msg, "fetchAll") {
			found = true
		}
	}
	if !found {
		t.Error("reachability finding does not name its witness caller fetchAll")
	}
}

func TestMetricCardinalityFixture(t *testing.T) {
	rule := MetricCardinality{BoundedFuncs: []string{"fixture/metriccardinality.tenant"}}
	diags := runFixture(t, "metriccardinality", rule)
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed metriccardinality finding, got %d", len(sup))
	}
	if want := "legacy dashboard"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
}

// TestMetricCardinalityBlessing proves BoundedFuncs is load-bearing: the
// same fixture without the blessing flags the capped mapping too.
func TestMetricCardinalityBlessing(t *testing.T) {
	pkg := fixture(t, "metriccardinality")
	diags := Run([]*Package{pkg}, []Rule{MetricCardinality{}}, Config{})
	found := false
	for _, d := range diags {
		if !d.Suppressed && strings.Contains(d.Msg, "label value tenant(") {
			found = true
		}
	}
	if !found {
		t.Error("without BoundedFuncs, tenant(user) must be flagged — blessing is doing the work")
	}
}

func TestSpanFinishFixture(t *testing.T) {
	rule := SpanFinish{Starters: []string{
		"(*fixture/spanfinish.Tracer).Start",
		"(*fixture/spanfinish.Tracer).StartRemote",
	}}
	diags := runFixture(t, "spanfinish", rule)
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed spanfinish finding, got %d", len(sup))
	}
	if want := "flight recorder snapshots it mid-flight"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
}

func TestUnusedResultFixture(t *testing.T) {
	rule := UnusedResult{Funcs: []string{
		"(*fixture/unusedresult.Store).Put",
		"(*fixture/unusedresult.Session).Complete",
		"(fixture/unusedresult.Sink).Put",
		"fixture/unusedresult.Save",
	}}
	diags := runFixture(t, "unusedresult", rule)
	sup := suppressed(diags)
	if len(sup) != 1 {
		t.Fatalf("want 1 suppressed unusedresult finding, got %d", len(sup))
	}
	if want := "best-effort cache warm"; !strings.Contains(sup[0].SuppressReason, want) {
		t.Errorf("suppress reason = %q, want it to contain %q", sup[0].SuppressReason, want)
	}
}
