package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MetricCardinality mechanically enforces DESIGN.md §8's cardinality
// rules: every label value passed to a telemetry vector's With(...) must
// be provably bounded, because an unbounded label (user input, job IDs,
// raw durations) grows one time series per distinct value until the
// registry — and every scrape — is the size of the traffic log.
//
// "Provably bounded" is a provenance lattice evaluated over the module
// call graph:
//
//   - constants and string literals are bounded;
//   - a call is bounded when every return path of every possible callee
//     (interface calls resolve to the module's implementations) is
//     bounded, or the callee is explicitly blessed in BoundedFuncs (the
//     tenant-capped label set of backend.tenantLabel is the canonical
//     entry: it maps arbitrary users into ≤64 values + "other");
//   - a parameter is bounded when every call site in the module passes a
//     bounded value — unless the function is exported, in which case
//     unknown external callers could pass anything and the obligation
//     surfaces as a finding at the With site;
//   - concatenation of bounded parts is bounded; everything else (fields,
//     map lookups, conversions of unbounded values) is not.
//
// Recursion resolves optimistically (a cycle is bounded unless something
// on it is not), i.e. the greatest fixed point.
type MetricCardinality struct {
	// BoundedFuncs lists types.Func full names whose results are blessed
	// as bounded with a justification the checker cannot see (e.g. a
	// capped tracking set). Each entry should say why in DefaultRules.
	BoundedFuncs []string
}

// vecTypeNames are the telemetry vector types whose With method takes
// label values.
var vecTypeNames = map[string]bool{
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// Name implements Rule.
func (MetricCardinality) Name() string { return "metriccardinality" }

// Doc implements Rule.
func (MetricCardinality) Doc() string {
	return "telemetry label values must be provably bounded (constants, bounded callees, tenant-capped sets)"
}

// IncludeTests implements Rule.
func (MetricCardinality) IncludeTests() bool { return false }

// NeedsModule marks the rule interprocedural.
func (MetricCardinality) NeedsModule() {}

// Check implements Rule.
func (r MetricCardinality) Check(pass *Pass) {
	if pass.Module == nil {
		return
	}
	findings := pass.Module.Memo("metriccardinality", func() any {
		c := &cardinality{
			m:         pass.Module,
			bless:     make(map[string]bool, len(r.BoundedFuncs)),
			funcMemo:  make(map[string]int8),
			paramMemo: make(map[string]int8),
		}
		for _, name := range r.BoundedFuncs {
			c.bless[name] = true
		}
		return c.analyze()
	}).([]modFinding)
	for _, f := range findings {
		if f.Pkg == pass.Pkg {
			pass.Reportf(f.Pos, "%s", f.Msg)
		}
	}
}

const (
	vUnknown int8 = iota // not yet computed (treated bounded while in progress)
	vBounded
	vUnbounded
)

type cardinality struct {
	m         *Module
	bless     map[string]bool
	funcMemo  map[string]int8 // func key → return-value boundedness
	paramMemo map[string]int8 // func key + "#i" → parameter boundedness
}

func (c *cardinality) analyze() []modFinding {
	var findings []modFinding
	for _, key := range c.m.Order {
		fi := c.m.Funcs[key]
		walkOwn(fi, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isVecWith(fi.Pkg, call) {
				return true
			}
			if call.Ellipsis != token.NoPos {
				findings = append(findings, modFinding{
					Pkg: fi.Pkg, Pos: call.Pos(),
					Msg: "label values spread with ... cannot be proven bounded (DESIGN.md §8)",
				})
				return true
			}
			for _, arg := range call.Args {
				if !c.boundedExpr(fi, arg, 0) {
					findings = append(findings, modFinding{
						Pkg: fi.Pkg, Pos: arg.Pos(),
						Msg: fmt.Sprintf("label value %s is not provably bounded; use a constant, a bounded mapping, or a capped set like tenantLabel (DESIGN.md §8)", exprString(arg)),
					})
				}
			}
			return true
		})
	}
	return findings
}

// isVecWith matches <telemetry vec>.With(...).
func isVecWith(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return false
	}
	s := pkg.Info.Selections[sel]
	if s == nil {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || !vecTypeNames[named.Obj().Name()] {
		return false
	}
	path := ""
	if named.Obj().Pkg() != nil {
		path = named.Obj().Pkg().Path()
	}
	return path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}

const maxProvenanceDepth = 24

// boundedExpr classifies the provenance of one expression in fi's scope.
func (c *cardinality) boundedExpr(fi *FuncInfo, e ast.Expr, depth int) bool {
	if depth > maxProvenanceDepth {
		return false
	}
	e = ast.Unparen(e)
	// Constants (literals, const idents, constant-folded concats).
	if tv, ok := fi.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return c.boundedExpr(fi, x.X, depth+1) && c.boundedExpr(fi, x.Y, depth+1)
		}
	case *ast.CallExpr:
		return c.boundedCall(fi, x, depth)
	case *ast.Ident:
		return c.boundedIdent(fi, x, depth)
	}
	return false
}

// boundedCall classifies a call used as a label value.
func (c *cardinality) boundedCall(fi *FuncInfo, call *ast.CallExpr, depth int) bool {
	fn := calleeOf(fi.Pkg, call)
	if fn == nil {
		return false // func value, literal, conversion: no provenance
	}
	if c.bless[fn.FullName()] {
		return true
	}
	if recvIsInterface(fn) {
		impls := c.m.implementations(fn)
		if len(impls) == 0 {
			return false
		}
		for _, impl := range impls {
			if !c.boundedReturns(impl, depth+1) {
				return false
			}
		}
		return true
	}
	if target := c.m.Funcs[fn.FullName()]; target != nil {
		return c.boundedReturns(target, depth+1)
	}
	return false // external callee: unknown value set
}

// boundedReturns reports whether every return path of fi yields a bounded
// value. In-progress recursion resolves bounded (greatest fixed point).
func (c *cardinality) boundedReturns(fi *FuncInfo, depth int) bool {
	if c.bless[fi.Key] {
		return true // Key is FullName for declared functions
	}
	switch c.funcMemo[fi.Key] {
	case vBounded:
		return true
	case vUnbounded:
		return false
	}
	c.funcMemo[fi.Key] = vBounded // optimistic while in progress
	bounded := true
	if fi.Sig == nil || fi.Sig.Results().Len() != 1 {
		bounded = false
	} else {
		sawReturn := false
		walkOwn(fi, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			sawReturn = true
			if len(ret.Results) != 1 || !c.boundedExpr(fi, ret.Results[0], depth+1) {
				bounded = false
			}
			return true
		})
		if !sawReturn {
			bounded = false // panic-only or naked-return shapes: give up
		}
	}
	if bounded {
		c.funcMemo[fi.Key] = vBounded
	} else {
		c.funcMemo[fi.Key] = vUnbounded
	}
	return bounded
}

// boundedIdent classifies a plain identifier: a parameter delegates to the
// call-site obligation; a single-assignment local follows its sources. A
// closure looks the identifier up through its lexical Parent chain —
// captured parameters keep their caller obligation, captured locals keep
// their assignment provenance.
func (c *cardinality) boundedIdent(fi *FuncInfo, id *ast.Ident, depth int) bool {
	obj, ok := fi.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	for owner := fi; owner != nil; owner = owner.Parent {
		if owner.Sig != nil {
			for i := 0; i < owner.Sig.Params().Len(); i++ {
				if owner.Sig.Params().At(i) == obj {
					return c.boundedParam(owner, i, depth)
				}
			}
		}
	}
	if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return false // mutable package-level var
	}
	if obj.IsField() {
		return false
	}
	for owner := fi; owner != nil; owner = owner.Parent {
		if assigned, bounded := c.boundedLocal(owner, obj, depth); assigned {
			return bounded
		}
	}
	return false
}

// boundedParam reports whether parameter i of fi only ever receives
// bounded values. Exported functions can be called from outside the
// module, so their parameters are never provably bounded.
func (c *cardinality) boundedParam(fi *FuncInfo, i int, depth int) bool {
	key := fmt.Sprintf("%s#%d", fi.Key, i)
	switch c.paramMemo[key] {
	case vBounded:
		return true
	case vUnbounded:
		return false
	}
	c.paramMemo[key] = vBounded // optimistic while in progress
	bounded := c.paramBoundedAtCallers(fi, i, depth)
	if bounded {
		c.paramMemo[key] = vBounded
	} else {
		c.paramMemo[key] = vUnbounded
	}
	return bounded
}

func (c *cardinality) paramBoundedAtCallers(fi *FuncInfo, i int, depth int) bool {
	if fi.Exported {
		return false
	}
	if fi.Sig.Variadic() && i >= fi.Sig.Params().Len()-1 {
		return false
	}
	if len(fi.Callers) == 0 {
		// Never called statically: reached through a func value or an
		// interface we did not resolve — unknown callers, unknown values.
		return false
	}
	for _, cs := range fi.Callers {
		call := cs.Call
		if call.Ellipsis != token.NoPos || i >= len(call.Args) {
			return false
		}
		if !c.boundedExpr(cs.Caller, call.Args[i], depth+1) {
			return false
		}
	}
	return true
}

// boundedLocal follows a local variable to its assignments in fi's own
// body: assigned reports whether any were found there (the caller then
// tries enclosing functions), bounded whether every assigned value is.
func (c *cardinality) boundedLocal(fi *FuncInfo, obj *types.Var, depth int) (assignedOut, boundedOut bool) {
	bounded := true
	assigned := false
	// The full body is searched, nested closures included: the variable
	// belongs to fi's scope, so an assignment anywhere in its lexical
	// extent is a source.
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for li, lhs := range asg.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			var lobj types.Object
			if d := fi.Pkg.Info.Defs[lid]; d != nil {
				lobj = d
			} else {
				lobj = fi.Pkg.Info.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			assigned = true
			// Only 1:1 assignments are followed; tuple unpacking (multi-value
			// call, map/type-assert comma-ok) has no single source expr.
			if len(asg.Rhs) != len(asg.Lhs) {
				bounded = false
				continue
			}
			if !c.boundedExpr(fi, asg.Rhs[li], depth+1) {
				bounded = false
			}
		}
		return true
	})
	// Range clauses etc. never mark assigned; an identifier with no
	// visible source is not provable.
	return assigned, bounded
}
