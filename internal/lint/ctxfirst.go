package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// I/O entry points by package for the does-I/O heuristic. Constructors and
// pure helpers (http.NewServeMux, os.Getenv) are deliberately absent.
var (
	httpIOFuncs = map[string]bool{
		"Get": true, "Head": true, "Post": true, "PostForm": true,
		"NewRequest": true, "NewRequestWithContext": true,
		"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true,
	}
	osIOFuncs = map[string]bool{
		"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "Remove": true, "RemoveAll": true, "Mkdir": true,
		"MkdirAll": true, "Rename": true, "Stat": true, "Lstat": true,
	}
	netIOFuncs = map[string]bool{
		"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
	}
	// httpIOMethods are methods defined in net/http that perform network
	// I/O when called. Deliberately narrow: registration and accessor
	// methods (HandleFunc, Header) and interface relay methods
	// (ResponseWriter.Write) are not evidence the caller owns an I/O
	// operation that needs a deadline.
	httpIOMethods = map[string]bool{
		"Do": true, "RoundTrip": true, "Serve": true, "ListenAndServe": true,
		"ListenAndServeTLS": true, "Shutdown": true,
	}
)

// CtxFirst enforces context plumbing in the packages that talk to the
// network: every exported function or method that does I/O — calls into
// net/http, net, or os, or threads a context.Context to a callee — must
// take a context.Context as its first parameter, so per-call deadlines and
// cancellation (PR 2's resilience contract: "ctx + per-call deadlines on
// every method") survive refactors. HTTP handlers are exempt: the request
// carries their context.
type CtxFirst struct {
	// Packages are the module-relative package paths the rule applies to
	// (exact, or prefix with "/...").
	Packages []string
}

// Name implements Rule.
func (CtxFirst) Name() string { return "ctxfirst" }

// Doc implements Rule.
func (CtxFirst) Doc() string {
	return "exported I/O functions in client/backend packages take context.Context first"
}

// IncludeTests implements Rule.
func (CtxFirst) IncludeTests() bool { return false }

// Check implements Rule.
func (r CtxFirst) Check(pass *Pass) {
	if !r.applies(pass.Pkg.RelPath) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkCtxFirst(pass, fn)
		}
	}
}

func (r CtxFirst) applies(relPath string) bool {
	for _, pat := range r.Packages {
		if prefix, wild := strings.CutSuffix(pat, "/..."); wild {
			if relPath == prefix || strings.HasPrefix(relPath, prefix+"/") {
				return true
			}
		} else if relPath == pat {
			return true
		}
	}
	return false
}

func checkCtxFirst(pass *Pass, fn *ast.FuncDecl) {
	pos := 0
	ctxAt := -1
	handler := false
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && ctxAt < 0 {
			ctxAt = pos
		}
		if isHTTPRequestPtr(pass, field.Type) {
			handler = true
		}
		pos += n
	}
	switch {
	case ctxAt == 0:
		return // compliant
	case ctxAt > 0:
		pass.Reportf(fn.Name.Pos(), "%s takes a context.Context at parameter %d; it must be the first parameter", fn.Name.Name, ctxAt)
		return
	case handler:
		return // the *http.Request carries the context
	}
	if doesIO(pass, fn.Body) {
		pass.Reportf(fn.Name.Pos(), "exported %s does I/O but takes no context.Context; accept one as the first parameter so deadlines and cancellation propagate", fn.Name.Name)
	}
}

func isContextType(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
		}
		return false
	}
	// Type info unavailable: fall back to the syntactic form.
	pkg, name, ok := pass.PkgQualifier(e)
	return ok && pkg == "context" && name == "Context"
}

func isHTTPRequestPtr(pass *Pass, e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	pkg, name, ok := pass.PkgQualifier(star.X)
	return ok && pkg == "net/http" && name == "Request"
}

// doesIO reports whether body performs I/O per the heuristic: a call to a
// known I/O entry point of net/http, os, or net; a method whose definition
// lives in net/http (Do, RoundTrip, ...); or any call passing a
// context.Context value (evidence the callee does deadline-bearing work).
func doesIO(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := pass.PkgQualifier(call.Fun); ok {
			switch {
			case pkg == "net/http" && httpIOFuncs[name],
				pkg == "os" && osIOFuncs[name],
				pkg == "net" && netIOFuncs[name]:
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && httpIOMethods[sel.Sel.Name] {
			if s := pass.Pkg.Info.Selections[sel]; s != nil {
				if obj := s.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if t := pass.TypeOf(arg); t != nil {
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// DefaultRules is the rule set cmd/rocklint runs: the invariants the
// repository's determinism, resilience, and durability guarantees rest on.
func DefaultRules() []Rule {
	const module = "github.com/rockhopper-db/rockhopper"
	return []Rule{
		WallClock{},
		GlobalRand{},
		MapOrder{},
		LockDiscipline{},
		GoroutineLeak{},
		CtxFirst{Packages: []string{"internal/client", "internal/backend"}},
		DeadlockCycle{},
		CtxFlow{},
		MetricCardinality{BoundedFuncs: []string{
			// tenantLabel caps its output at maxTenantLabelValues distinct
			// tenants plus "other" — the canonical tenant-capped set of
			// DESIGN.md §8.
			"(*" + module + "/internal/backend.Server).tenantLabel",
			// BO.name is only ever assigned the literals "bo"/"cbo" (the
			// field exists so one struct serves both algorithm variants);
			// the checker's field rule cannot see that closed set.
			"(*" + module + "/internal/tuners.BO).Name",
		}},
		// A started span that is never finished silently drops a node from
		// the cross-node causal tree — the fleet drill then fails with an
		// orphaned subtree and no hint of which hop lost it.
		SpanFinish{Starters: []string{
			"(*" + module + "/internal/telemetry.Tracer).Start",
			"(*" + module + "/internal/telemetry.Tracer).StartRoot",
			"(*" + module + "/internal/telemetry.Tracer).StartRemote",
			"(*" + module + "/internal/telemetry.Tracer).Adopt",
		}},
		// The durability contract (a nil return means the WAL record is on
		// disk) and the session upload path both turn a dropped error into
		// silently lost data.
		UnusedResult{Funcs: []string{
			"(*" + module + "/internal/store.Store).Put",
			"(*" + module + "/internal/store.Store).PutBatch",
			"(*" + module + "/internal/store.DurableStore).Put",
			"(*" + module + "/internal/store.DurableStore).PutBatch",
			"(*" + module + "/internal/store.DurableStore).Delete",
			"(*" + module + "/internal/store.DurableStore).Compact",
			"(" + module + "/internal/backend.ObjectStore).Put",
			"(*" + module + "/internal/client.Session).Complete",
			module + "/internal/client.FinishApp",
		}},
	}
}
