package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked analysis unit. In-package
// test files are merged into their package's unit; external test packages
// (package foo_test) form their own unit with " [xtest]" appended to Path.
type Package struct {
	// Name is the package name.
	Name string
	// Path is the import path (plus " [xtest]" for external test units).
	Path string
	// RelPath is the module-relative directory ("." for the root package);
	// allowlists match against it.
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Fset resolves positions.
	Fset *token.FileSet
	// Files are the parsed files of the unit, test files included.
	Files []*ast.File
	// Types and Info carry the type checker's results. Info is always
	// non-nil; its maps are best-effort when TypeErrors is non-empty.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems (the analyzers degrade
	// gracefully; callers may surface these as warnings).
	TypeErrors []error

	isTest map[*ast.File]bool
}

// NonTestFiles returns the unit's files excluding _test.go files.
func (p *Package) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.isTest[f] {
			out = append(out, f)
		}
	}
	return out
}

// Loader discovers, parses, and type-checks the packages of one module
// using only the standard library: go/build for file sets, go/parser for
// syntax, go/types with the source importer for semantics. Module-internal
// imports are resolved by the loader itself (the GOPATH-era source importer
// knows nothing about modules); everything else falls through to the
// stdlib source importer.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path from go.mod.
	ModulePath string
	// Fset is shared by every parsed file.
	Fset *token.FileSet

	std types.ImporterFrom
	// stdMu serializes the stdlib source importer, which mutates internal
	// caches and is not safe for concurrent use.
	stdMu sync.Mutex
	// mu guards the module-internal import caches below. Concurrency-safe
	// lookup is what LoadAllParallel needs; the maps stay correct for the
	// serial path too.
	mu       sync.Mutex
	imported map[string]*types.Package
	failed   map[string]error
	checking map[string]bool
}

// NewLoader locates the enclosing module of dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return NewLoaderAt(root, modPath), nil
}

// NewLoaderAt returns a loader rooted at root with the given module path.
// Tests use it to treat a fixture directory tree as a tiny module.
func NewLoaderAt(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		imported:   make(map[string]*types.Package),
		failed:     make(map[string]error),
		checking:   make(map[string]bool),
	}
}

// LoadAll loads every package under the module root, skipping testdata,
// vendor, hidden, and underscore-prefixed directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// moduleDirs walks the module tree and returns the candidate package
// directories in sorted order.
func (l *Loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadAllParallel loads the same package set as LoadAll, in the same order,
// using up to workers goroutines (GOMAXPROCS when workers <= 0).
//
// Directories are scheduled in waves over the module-internal import DAG: a
// directory's unit is checked only after every module-internal package its
// files (tests included) import has finished, and each wave's worker warms
// the import cache for its own package before type-checking the unit. By
// the time any unit asks the importer for a module-internal dependency the
// answer is already cached, so concurrent workers never race to build the
// same package. Stdlib imports go through the (serialized) source importer.
// Directories whose imports form a cycle at directory granularity — legal
// in Go when test files import a package that imports the package under
// test — fall back to serial loading after the parallel waves.
func (l *Loader) LoadAllParallel(workers int) ([]*Package, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}

	// Scan each directory's imports to build the DAG. A scan failure is not
	// an error here: LoadDir reports the authoritative result later.
	type node struct {
		imports []string // module-internal import paths, self excluded
		path    string   // this directory's import path ("" = no Go files)
		level   int
	}
	nodes := make([]node, len(dirs))
	byPath := make(map[string]int, len(dirs))
	for i, dir := range dirs {
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			continue
		}
		_, ip, err := l.relPath(dir)
		if err != nil {
			return nil, err
		}
		nodes[i].path = ip
		seen := map[string]bool{}
		for _, group := range [3][]string{bp.Imports, bp.TestImports, bp.XTestImports} {
			for _, imp := range group {
				if _, ok := l.moduleRel(imp); ok && imp != ip && !seen[imp] {
					seen[imp] = true
					nodes[i].imports = append(nodes[i].imports, imp)
				}
			}
		}
		byPath[ip] = i
	}

	// Stratify: level(n) = 1 + max(level(deps)); unresolved after len(dirs)
	// rounds means a directory-level cycle.
	const cyclic = -1
	for i := range nodes {
		nodes[i].level = cyclic
	}
	for changed, round := true, 0; changed && round <= len(dirs); round++ {
		changed = false
		for i := range nodes {
			if nodes[i].level != cyclic {
				continue
			}
			lvl := 0
			ready := true
			for _, imp := range nodes[i].imports {
				j, ok := byPath[imp]
				if !ok {
					continue // outside the walked tree; the importer handles it
				}
				if nodes[j].level == cyclic {
					ready = false
					break
				}
				if nodes[j].level+1 > lvl {
					lvl = nodes[j].level + 1
				}
			}
			if ready {
				nodes[i].level = lvl
				changed = true
			}
		}
	}

	maxLevel := 0
	var leftover []int
	for i := range nodes {
		if nodes[i].level == cyclic {
			leftover = append(leftover, i)
		} else if nodes[i].level > maxLevel {
			maxLevel = nodes[i].level
		}
	}

	results := make([][]*Package, len(dirs))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	process := func(i int) {
		if nodes[i].path != "" {
			// Warm the import cache with the library-only view of this
			// package; dependents in later waves then hit the cache instead
			// of racing to type-check it themselves. Errors are deferred to
			// LoadDir, which attaches them to the unit as TypeErrors.
			l.ImportFrom(nodes[i].path, l.ModuleRoot, 0)
		}
		got, err := l.LoadDir(dirs[i])
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		results[i] = got
	}
	for level := 0; level <= maxLevel; level++ {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range nodes {
			if nodes[i].level != level {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				process(i)
			}(i)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	for _, i := range leftover {
		process(i)
		if firstErr != nil {
			return nil, firstErr
		}
	}

	var pkgs []*Package
	for _, got := range results {
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// LoadDir loads the package in one directory: the base unit (library files
// plus in-package tests) and, when present, the external test package. A
// directory without Go files yields no packages and no error.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	rel, importPath, err := l.relPath(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	base, err := l.checkUnit(dir, importPath, rel, bp.GoFiles, bp.TestGoFiles)
	if err != nil {
		return nil, err
	}
	if base != nil {
		pkgs = append(pkgs, base)
	}
	if len(bp.XTestGoFiles) > 0 {
		xt, err := l.checkUnit(dir, importPath+" [xtest]", rel, nil, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		if xt != nil {
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

func (l *Loader) relPath(dir string) (rel, importPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	rel, err = filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return rel, l.ModulePath, nil
	}
	return rel, l.ModulePath + "/" + rel, nil
}

// checkUnit parses and type-checks one analysis unit. goFiles are library
// sources, testFiles are _test.go sources; either may be empty (but not
// both).
func (l *Loader) checkUnit(dir, path, rel string, goFiles, testFiles []string) (*Package, error) {
	if len(goFiles)+len(testFiles) == 0 {
		return nil, nil
	}
	pkg := &Package{
		Path:    path,
		RelPath: rel,
		Dir:     dir,
		Fset:    l.Fset,
		isTest:  make(map[*ast.File]bool),
	}
	for _, group := range [2][]string{goFiles, testFiles} {
		for _, name := range group {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			pkg.Files = append(pkg.Files, f)
		}
	}
	for _, f := range pkg.Files[len(goFiles):] {
		pkg.isTest[f] = true
	}
	if len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked by the loader (library files only, cached — failures too,
// so a broken package is diagnosed once, not once per dependent);
// everything else is delegated to the stdlib source importer.
//
// Concurrent imports of distinct paths are safe. A concurrent import of a
// path already being checked is reported as a cycle — LoadAllParallel's
// dependency-ordered warming guarantees that situation never arises there,
// and on a single goroutine re-entering a path genuinely is a cycle.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	rel, ok := l.moduleRel(path)
	if !ok {
		l.stdMu.Lock()
		defer l.stdMu.Unlock()
		return l.std.ImportFrom(path, dir, mode)
	}
	l.mu.Lock()
	if p, ok := l.imported[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if err, ok := l.failed[path]; ok {
		l.mu.Unlock()
		return nil, err
	}
	if l.checking[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	l.mu.Unlock()

	tpkg, err := l.checkImport(path, rel)

	l.mu.Lock()
	if err != nil {
		l.failed[path] = err
	} else {
		l.imported[path] = tpkg
	}
	delete(l.checking, path)
	l.mu.Unlock()
	return tpkg, err
}

// checkImport parses and type-checks the library files of one
// module-internal package.
func (l *Loader) checkImport(path, rel string) (*types.Package, error) {
	pdir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	bp, err := build.Default.ImportDir(pdir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(pdir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, err := conf.Check(path, l.Fset, files, newInfo())
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	return tpkg, nil
}

// moduleRel maps an import path inside the module to its module-relative
// directory.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}
