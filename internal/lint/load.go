package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked analysis unit. In-package
// test files are merged into their package's unit; external test packages
// (package foo_test) form their own unit with " [xtest]" appended to Path.
type Package struct {
	// Name is the package name.
	Name string
	// Path is the import path (plus " [xtest]" for external test units).
	Path string
	// RelPath is the module-relative directory ("." for the root package);
	// allowlists match against it.
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Fset resolves positions.
	Fset *token.FileSet
	// Files are the parsed files of the unit, test files included.
	Files []*ast.File
	// Types and Info carry the type checker's results. Info is always
	// non-nil; its maps are best-effort when TypeErrors is non-empty.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems (the analyzers degrade
	// gracefully; callers may surface these as warnings).
	TypeErrors []error

	isTest map[*ast.File]bool
}

// NonTestFiles returns the unit's files excluding _test.go files.
func (p *Package) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.isTest[f] {
			out = append(out, f)
		}
	}
	return out
}

// Loader discovers, parses, and type-checks the packages of one module
// using only the standard library: go/build for file sets, go/parser for
// syntax, go/types with the source importer for semantics. Module-internal
// imports are resolved by the loader itself (the GOPATH-era source importer
// knows nothing about modules); everything else falls through to the
// stdlib source importer.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path from go.mod.
	ModulePath string
	// Fset is shared by every parsed file.
	Fset *token.FileSet

	std      types.ImporterFrom
	imported map[string]*types.Package
	checking map[string]bool
}

// NewLoader locates the enclosing module of dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	return NewLoaderAt(root, modPath), nil
}

// NewLoaderAt returns a loader rooted at root with the given module path.
// Tests use it to treat a fixture directory tree as a tiny module.
func NewLoaderAt(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		imported:   make(map[string]*types.Package),
		checking:   make(map[string]bool),
	}
}

// LoadAll loads every package under the module root, skipping testdata,
// vendor, hidden, and underscore-prefixed directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// LoadDir loads the package in one directory: the base unit (library files
// plus in-package tests) and, when present, the external test package. A
// directory without Go files yields no packages and no error.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	rel, importPath, err := l.relPath(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	base, err := l.checkUnit(dir, importPath, rel, bp.GoFiles, bp.TestGoFiles)
	if err != nil {
		return nil, err
	}
	if base != nil {
		pkgs = append(pkgs, base)
	}
	if len(bp.XTestGoFiles) > 0 {
		xt, err := l.checkUnit(dir, importPath+" [xtest]", rel, nil, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		if xt != nil {
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

func (l *Loader) relPath(dir string) (rel, importPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	rel, err = filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return rel, l.ModulePath, nil
	}
	return rel, l.ModulePath + "/" + rel, nil
}

// checkUnit parses and type-checks one analysis unit. goFiles are library
// sources, testFiles are _test.go sources; either may be empty (but not
// both).
func (l *Loader) checkUnit(dir, path, rel string, goFiles, testFiles []string) (*Package, error) {
	if len(goFiles)+len(testFiles) == 0 {
		return nil, nil
	}
	pkg := &Package{
		Path:    path,
		RelPath: rel,
		Dir:     dir,
		Fset:    l.Fset,
		isTest:  make(map[*ast.File]bool),
	}
	for _, group := range [2][]string{goFiles, testFiles} {
		for _, name := range group {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			pkg.Files = append(pkg.Files, f)
		}
	}
	for _, f := range pkg.Files[len(goFiles):] {
		pkg.isTest[f] = true
	}
	if len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked by the loader (library files only, cached); everything else
// is delegated to the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	rel, ok := l.moduleRel(path)
	if !ok {
		return l.std.ImportFrom(path, dir, mode)
	}
	if p, ok := l.imported[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	pdir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	bp, err := build.Default.ImportDir(pdir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(pdir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, err := conf.Check(path, l.Fset, files, newInfo())
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	l.imported[path] = tpkg
	return tpkg, nil
}

// moduleRel maps an import path inside the module to its module-relative
// directory.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}
