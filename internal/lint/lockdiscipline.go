package lint

import (
	"go/ast"
)

// LockDiscipline flags mutex acquisitions that are not provably released:
// a Lock()/RLock() with no matching Unlock()/RUnlock() or deferred release
// later in the function, and early returns on paths where the lock is
// still held. The analysis is a per-statement-list state machine: a branch
// inherits the lock state at its entry, releases inside a branch cover
// only that branch, and re-acquiring resets the state — which accepts the
// repository's real patterns (lock/defer-unlock, lock/branch-unlock-return,
// lock/work/unlock) while catching the leak-on-error-path bugs that
// deadlock production under load.
//
// Mismatched pairs count as no release: an RLock() answered by Unlock()
// corrupts a sync.RWMutex and is exactly what this rule exists to catch.
type LockDiscipline struct{}

// Name implements Rule.
func (LockDiscipline) Name() string { return "lockdiscipline" }

// Doc implements Rule.
func (LockDiscipline) Doc() string {
	return "every Lock/RLock needs a matching (deferred) release on all paths; no early return with a held lock"
}

// IncludeTests implements Rule.
func (LockDiscipline) IncludeTests() bool { return true }

// Check implements Rule.
func (LockDiscipline) Check(pass *Pass) {
	for _, f := range pass.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			checkLockList(pass, body.List)
		})
	}
}

func checkLockList(pass *Pass, list []ast.Stmt) {
	for i, st := range list {
		for _, child := range childStmtLists(st) {
			checkLockList(pass, child)
		}
		recv, name, ok := stmtLockCall(st)
		if !ok || (name != "Lock" && name != "RLock") {
			continue
		}
		unlockName := "Unlock"
		if name == "RLock" {
			unlockName = "RUnlock"
		}
		scan := &lockScan{recv: recv, lockName: name, unlockName: unlockName}
		scan.walk(list[i+1:], false)
		lockLine := pass.Fset.Position(st.Pos()).Line
		if !scan.released {
			pass.Reportf(st.Pos(), "%s.%s() has no matching %s() or defer in this function; use lock/defer-unlock or release on every path", recv, name, unlockName)
			continue
		}
		for _, ret := range scan.unsafe {
			pass.Reportf(ret.Pos(), "return while %s is still locked (%s() at line %d, no %s() on this path)", recv, name, lockLine, unlockName)
		}
	}
}

// stmtLockCall matches an expression statement of the form recv.Name()
// where Name is a mutex verb, returning the rendered receiver.
func stmtLockCall(st ast.Stmt) (recv, name string, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	return mutexCall(call)
}

func mutexCall(call *ast.CallExpr) (recv, name string, ok bool) {
	if len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// lockScan is the release-tracking state machine run over the statements
// after one acquisition.
type lockScan struct {
	recv, lockName, unlockName string

	// released records whether any matching release was seen anywhere.
	released bool
	// unsafe collects returns reached with the lock provably held.
	unsafe []*ast.ReturnStmt
}

// walk processes one statement list. unlocked is the lock state at entry;
// state changes inside nested lists do not escape them (an unlock inside
// an if-branch covers only that branch).
func (s *lockScan) walk(list []ast.Stmt, unlocked bool) {
	u := unlocked
	for _, st := range list {
		switch x := st.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, name, ok := mutexCall(call); ok && recv == s.recv {
					switch name {
					case s.unlockName:
						u = true
						s.released = true
					case s.lockName:
						u = false
					}
				}
			}
		case *ast.DeferStmt:
			if recv, name, ok := mutexCall(x.Call); ok && recv == s.recv && name == s.unlockName {
				u = true
				s.released = true
			}
		case *ast.ReturnStmt:
			if !u {
				s.unsafe = append(s.unsafe, x)
			}
		default:
			for _, child := range childStmtLists(st) {
				s.walk(child, u)
			}
		}
	}
}
