package mat

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// FuzzCholeskyUpdate drives a Cholesky factor through an arbitrary sequence
// of rank-1 updates, downdates, appends, and shrinks derived from the fuzz
// input, mirroring every successful operation on a dense shadow matrix. The
// invariants: no operation panics (including on near-singular and non-finite
// inputs), a failed operation leaves the factor bit-usable, every entry of
// the factor stays finite, and the factor always reconstructs the shadow
// matrix within tolerance.
func FuzzCholeskyUpdate(f *testing.F) {
	f.Add([]byte{3, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{5, 0, 128, 63, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{2, 2, 255, 255, 255, 255, 1, 1, 1, 1, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 1 + int(data[0]%6)
		data = data[1:]
		// nextF64 derives a bounded float from the input; occasionally it
		// passes through a raw bit pattern so NaN/Inf payloads are exercised.
		next := func() float64 {
			if len(data) == 0 {
				return 0.5
			}
			b := data[0]
			data = data[1:]
			if b == 255 && len(data) >= 8 {
				raw := math.Float64frombits(binary.LittleEndian.Uint64(data))
				data = data[8:]
				return raw
			}
			return float64(int(b)-128) / 16
		}
		// Build a guaranteed-SPD seed matrix A = GᵀG + (n+1)·I. The seed uses
		// only bounded entries — NaN/Inf payloads are reserved for the op
		// vectors below, where rejection (not a seed failure) is the contract.
		g := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := next()
				if math.IsNaN(v) || math.Abs(v) > 1e6 {
					v = 1
				}
				g.Set(i, j, v)
			}
		}
		a := AtA(g)
		AddDiag(a, float64(n)+1)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("seed SPD matrix failed to factor: %v", err)
		}
		shadow := a.Clone()

		checkFinite := func(op string) {
			for i := 0; i < ch.Size(); i++ {
				for j := 0; j <= i; j++ {
					if v := ch.at(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s left non-finite L[%d][%d] = %g", op, i, j, v)
					}
				}
			}
		}
		checkReconstruct := func(op string) {
			if ch.Size() != shadow.Rows() {
				t.Fatalf("%s: factor order %d, shadow %d", op, ch.Size(), shadow.Rows())
			}
			rec := ch.Reconstruct()
			tol := 1e-6 * (1 + traceAbs(shadow))
			for i := 0; i < shadow.Rows(); i++ {
				for j := 0; j < shadow.Cols(); j++ {
					if d := math.Abs(rec.At(i, j) - shadow.At(i, j)); d > tol {
						t.Fatalf("%s: reconstruction off by %g at (%d,%d) (tol %g)", op, d, i, j, tol)
					}
				}
			}
		}

		for steps := 0; steps < 24 && len(data) > 0; steps++ {
			op := data[0] % 4
			data = data[1:]
			m := ch.Size()
			switch op {
			case 0, 1: // update (0) / downdate (1)
				x := make([]float64, m)
				finite := true
				for i := range x {
					x[i] = next()
					if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
						finite = false
					}
				}
				var err error
				if op == 0 {
					err = ch.Update(x)
				} else {
					err = ch.Downdate(x)
				}
				if err != nil {
					if !errors.Is(err, ErrNotPositiveDefinite) {
						t.Fatalf("rank-1 op returned unexpected error kind: %v", err)
					}
					checkFinite("failed rank-1 op")
					checkReconstruct("failed rank-1 op")
					continue
				}
				if !finite {
					t.Fatalf("rank-1 op accepted non-finite vector %v", x)
				}
				sign := 1.0
				if op == 1 {
					sign = -1
				}
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						shadow.Set(i, j, shadow.At(i, j)+sign*x[i]*x[j])
					}
				}
			case 2: // append one row
				a12 := make([]float64, m)
				for i := range a12 {
					a12[i] = next()
				}
				a22 := math.Abs(next()) + float64(m) + 1
				if err := ch.AppendRow(a12, a22); err != nil {
					if !errors.Is(err, ErrNotPositiveDefinite) {
						t.Fatalf("AppendRow returned unexpected error kind: %v", err)
					}
					checkFinite("failed append")
					checkReconstruct("failed append")
					continue
				}
				grown := NewDense(m+1, m+1)
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						grown.Set(i, j, shadow.At(i, j))
					}
				}
				for i := 0; i < m; i++ {
					grown.Set(m, i, a12[i])
					grown.Set(i, m, a12[i])
				}
				grown.Set(m, m, a22)
				shadow = grown
			case 3: // shrink
				if m <= 1 {
					continue
				}
				ch.Shrink()
				lead := NewDense(m-1, m-1)
				for i := 0; i < m-1; i++ {
					for j := 0; j < m-1; j++ {
						lead.Set(i, j, shadow.At(i, j))
					}
				}
				shadow = lead
			}
			checkFinite("op")
			checkReconstruct("op")
		}
	})
}
