package mat

import (
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDenseBasics(t *testing.T) {
	t.Parallel()
	m := NewDense(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d; want 2,3", r, c)
	}
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 {
		t.Fatalf("At/Set round trip failed: %v", m.Data())
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	t.Parallel()
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims = %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	t.Parallel()
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("Mul = %v; want %v", c.Data(), want)
		}
	}
	if _, err := Mul(a, a); err == nil {
		t.Fatal("Mul with mismatched dims should error")
	}
}

func TestMulVec(t *testing.T) {
	t.Parallel()
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y, err := MulVec(a, []float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v; want [-2 -2]", y)
	}
	if _, err := MulVec(a, []float64{1}); err == nil {
		t.Fatal("MulVec shape mismatch should error")
	}
}

func TestAtAMatchesExplicit(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(7)
	a := NewDense(5, 3)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	g := AtA(a)
	explicit, err := Mul(a.T(), a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data() {
		if !almostEq(g.Data()[i], explicit.Data()[i], 1e-12) {
			t.Fatalf("AtA mismatch at %d: %g vs %g", i, g.Data()[i], explicit.Data()[i])
		}
	}
}

func TestAtVec(t *testing.T) {
	t.Parallel()
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	v, err := AtVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("AtVec = %v; want [4 6]", v)
	}
}

func TestCholeskySolve(t *testing.T) {
	t.Parallel()
	// A = LLᵀ for a hand-built SPD matrix.
	a := NewDenseData(3, 3, []float64{
		4, 2, 0,
		2, 5, 1,
		0, 1, 3,
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3}
	b, _ := MulVec(a, want)
	x, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("solve = %v; want %v", x, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	t.Parallel()
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("Cholesky of indefinite matrix should fail")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	t.Parallel()
	a := NewDenseData(2, 2, []float64{4, 0, 0, 9})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch.LogDet(), math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %g; want %g", ch.LogDet(), math.Log(36))
	}
}

func TestLeastSquaresExact(t *testing.T) {
	t.Parallel()
	// Overdetermined but consistent system: recover exact coefficients.
	rng := stats.NewRNG(11)
	n, p := 40, 4
	x := NewDense(n, p)
	truth := []float64{2, -1, 0.5, 3}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = Dot(x.Row(i), truth)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if !almostEq(beta[j], truth[j], 1e-9) {
			t.Fatalf("beta = %v; want %v", beta, truth)
		}
	}
}

func TestSolveRidgeShrinks(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(3)
	n, p := 50, 3
	x := NewDense(n, p)
	truth := []float64{5, -3, 1}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = Dot(x.Row(i), truth)
	}
	b0, err := SolveRidge(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	bBig, err := SolveRidge(x, y, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(bBig) >= Norm2(b0) {
		t.Fatalf("ridge with huge lambda should shrink: ‖b0‖=%g ‖bBig‖=%g", Norm2(b0), Norm2(bBig))
	}
}

func TestSolveRidgeCollinear(t *testing.T) {
	t.Parallel()
	// Two identical columns: normal equations singular, but the automatic
	// jitter must still produce a finite solution.
	x := NewDenseData(4, 2, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	y := []float64{2, 4, 6, 8}
	b, err := SolveRidge(x, y, 0)
	if err != nil {
		t.Fatalf("collinear ridge solve failed: %v", err)
	}
	for _, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", b)
		}
	}
}

// Property: for random SPD systems, Cholesky solve reproduces the RHS.
func TestPropCholeskyResidual(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := stats.NewRNG(uint64(seed))
		n := 2 + rng.Intn(6)
		g := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, rng.NormFloat64())
			}
		}
		a := AtA(g)
		AddDiag(a, float64(n)) // ensure SPD
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := ch.SolveVec(b)
		if err != nil {
			return false
		}
		ax, _ := MulVec(a, x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestPropLeastSquaresOrthogonality(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := stats.NewRNG(uint64(seed))
		n := 8 + rng.Intn(8)
		p := 2 + rng.Intn(3)
		x := NewDense(n, p)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = rng.NormFloat64()
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return true // singular random draw: skip
		}
		pred, _ := MulVec(x, beta)
		res := make([]float64, n)
		for i := range res {
			res[i] = y[i] - pred[i]
		}
		ortho, _ := AtVec(x, res)
		for _, v := range ortho {
			if math.Abs(v) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotNorm(t *testing.T) {
	t.Parallel()
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}
