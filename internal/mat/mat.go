// Package mat implements the dense linear algebra needed by Rockhopper's
// machine-learning substrate: dense matrices and vectors, Cholesky and QR
// factorizations, triangular and symmetric positive-definite solves, and
// least-squares solvers.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement: every routine exists because a surrogate model in
// internal/ml needs it. Matrices are stored row-major in a single backing
// slice.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or not positive definite, for Cholesky) to working
// precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic("mat: data length does not match dimensions")
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (shared backing storage).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing slice (row-major, shared).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < 6; i++ {
		s += fmt.Sprintf("%v", m.Row(i))
		if i < m.rows-1 {
			s += "; "
		}
	}
	if m.rows > 6 {
		s += "..."
	}
	return s + "]"
}

// Mul returns a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out, nil
}

// AtA returns aᵀa, the (cols×cols) Gram matrix of a. Only the result's upper
// triangle is computed directly; the lower triangle is mirrored.
func AtA(a *Dense) *Dense {
	n := a.cols
	out := NewDense(n, n)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for p := 0; p < n; p++ {
			rp := row[p]
			if rp == 0 {
				continue
			}
			orow := out.Row(p)
			for q := p; q < n; q++ {
				orow[q] += rp * row[q]
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
	return out
}

// AtVec returns aᵀy.
func AtVec(a *Dense, y []float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ*vec(%d)", ErrShape, a.rows, a.cols, len(y))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += v * yi
		}
	}
	return out, nil
}

// Dot returns the inner product of x and y, which must be the same length.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// AddDiag adds v to every diagonal element of the square matrix m in place.
func AddDiag(m *Dense, v float64) {
	if m.rows != m.cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
}

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
type Cholesky struct {
	l *Dense
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrSingular if a is not positive
// definite to working precision.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		lrow := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrow[k] * lrow[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrSingular, j, d)
		}
		dj := math.Sqrt(d)
		lrow[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			irow := l.Row(i)
			for k := 0; k < j; k++ {
				s -= irow[k] * lrow[k]
			}
			irow[j] = s / dj
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (shared storage).
func (c *Cholesky) L() *Dense { return c.l }

// LogDet returns log det(A) = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	n := c.l.rows
	for i := 0; i < n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveVec solves A x = b in place of a fresh vector, using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %d with rhs %d", ErrShape, n, len(b))
	}
	x := make([]float64, n)
	copy(x, b)
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// SolveTriLower solves L y = b for lower-triangular L.
func (c *Cholesky) SolveTriLower(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %d with rhs %d", ErrShape, n, len(b))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	return y, nil
}

// SolveRidge solves (XᵀX + λI) β = Xᵀy, the ridge-regression normal
// equations. λ must be ≥ 0; with λ = 0 this is ordinary least squares via the
// normal equations, suitable for the small, well-conditioned systems used by
// Rockhopper's trend regressions. For rank-deficient systems a small ridge is
// added automatically, growing geometrically until the factorization
// succeeds.
func SolveRidge(x *Dense, y []float64, lambda float64) ([]float64, error) {
	if x.rows != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d, response %d", ErrShape, x.rows, x.cols, len(y))
	}
	g := AtA(x)
	rhs, err := AtVec(x, y)
	if err != nil {
		return nil, err
	}
	if lambda > 0 {
		AddDiag(g, lambda)
	}
	// Retry with growing jitter if not SPD (collinear features are common in
	// small tuning windows where a config dimension barely moves).
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		work := g
		if jitter > 0 {
			work = g.Clone()
			AddDiag(work, jitter)
		}
		ch, err := NewCholesky(work)
		if err == nil {
			return ch.SolveVec(rhs)
		}
		if jitter == 0 {
			jitter = 1e-10 * (1 + traceAbs(g))
		} else {
			jitter *= 100
		}
	}
	return nil, ErrSingular
}

func traceAbs(m *Dense) float64 {
	var s float64
	for i := 0; i < m.rows; i++ {
		s += math.Abs(m.At(i, i))
	}
	return s
}

// LeastSquares solves min ‖Xβ − y‖₂ by QR factorization with Householder
// reflections. X must have at least as many rows as columns.
func LeastSquares(x *Dense, y []float64) ([]float64, error) {
	m, n := x.rows, x.cols
	if m < n {
		return nil, fmt.Errorf("%w: underdetermined %dx%d", ErrShape, m, n)
	}
	if m != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d, response %d", ErrShape, m, n, len(y))
	}
	a := x.Clone()
	b := make([]float64, m)
	copy(b, y)
	// Householder QR, applying reflectors to b as we go.
	for k := 0; k < n; k++ {
		// Compute the norm of column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := a.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			return nil, ErrSingular
		}
		alpha := -math.Copysign(norm, a.At(k, k))
		// v = column − alpha*e_k, stored in the column itself.
		akk := a.At(k, k) - alpha
		a.Set(k, k, akk)
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			v := a.At(i, k)
			vnorm2 += v * v
		}
		if vnorm2 < 1e-300 {
			return nil, ErrSingular
		}
		// Apply H = I − 2 v vᵀ / ‖v‖² to remaining columns and to b.
		for j := k + 1; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += a.At(i, k) * a.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				a.Set(i, j, a.At(i, j)-f*a.At(i, k))
			}
		}
		var dotb float64
		for i := k; i < m; i++ {
			dotb += a.At(i, k) * b[i]
		}
		fb := 2 * dotb / vnorm2
		for i := k; i < m; i++ {
			b[i] -= fb * a.At(i, k)
		}
		// Store R's diagonal entry; zero below-diagonal is implicit.
		a.Set(k, k, alpha)
	}
	// Back-substitute R β = b[:n].
	beta := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * beta[j]
		}
		d := a.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		beta[i] = s / d
	}
	return beta, nil
}
