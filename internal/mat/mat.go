// Package mat implements the dense linear algebra needed by Rockhopper's
// machine-learning substrate: dense matrices and vectors, Cholesky and QR
// factorizations, triangular and symmetric positive-definite solves, and
// least-squares solvers.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement: every routine exists because a surrogate model in
// internal/ml needs it. Matrices are stored row-major in a single backing
// slice.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or not positive definite, for Cholesky) to working
// precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrNotPositiveDefinite is returned (wrapped in a *NotPDError) when a
// Cholesky factorization, downdate, or append encounters a matrix that is
// not positive definite to working precision. It is distinct from ErrShape:
// a dimension mismatch is a caller bug, while loss of positive definiteness
// is a numerical property of the data that callers may legitimately handle
// (e.g. by adding jitter and retrying).
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// NotPDError reports exactly where a Cholesky operation lost positive
// definiteness: the pivot index and the offending (non-positive or
// non-finite) pivot value. It matches both ErrNotPositiveDefinite and, for
// backward compatibility, ErrSingular under errors.Is.
type NotPDError struct {
	// Op is the operation that failed: "factor", "downdate", or "append".
	Op string
	// Pivot is the zero-based pivot index at which definiteness was lost.
	Pivot int
	// Value is the offending squared-pivot value (≤ 0 or NaN).
	Value float64
}

func (e *NotPDError) Error() string {
	return fmt.Sprintf("mat: %s: not positive definite at pivot %d (value %g)", e.Op, e.Pivot, e.Value)
}

// Unwrap lets errors.Is match both the specific and the legacy sentinel.
func (e *NotPDError) Unwrap() []error {
	return []error{ErrNotPositiveDefinite, ErrSingular}
}

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic("mat: data length does not match dimensions")
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (shared backing storage).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing slice (row-major, shared).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < 6; i++ {
		s += fmt.Sprintf("%v", m.Row(i))
		if i < m.rows-1 {
			s += "; "
		}
	}
	if m.rows > 6 {
		s += "..."
	}
	return s + "]"
}

// Mul returns a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out, nil
}

// AtA returns aᵀa, the (cols×cols) Gram matrix of a. Only the result's upper
// triangle is computed directly; the lower triangle is mirrored.
func AtA(a *Dense) *Dense {
	n := a.cols
	out := NewDense(n, n)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for p := 0; p < n; p++ {
			rp := row[p]
			if rp == 0 {
				continue
			}
			orow := out.Row(p)
			for q := p; q < n; q++ {
				orow[q] += rp * row[q]
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
	return out
}

// AtVec returns aᵀy.
func AtVec(a *Dense, y []float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ*vec(%d)", ErrShape, a.rows, a.cols, len(y))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += v * yi
		}
	}
	return out, nil
}

// Dot returns the inner product of x and y, which must be the same length.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// AddDiag adds v to every diagonal element of the square matrix m in place.
func AddDiag(m *Dense, v float64) {
	if m.rows != m.cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
}

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
//
// The factor is stored in a row-major block whose row stride may exceed the
// logical order n: AppendRow grows the factor by one observation in
// amortized O(n²) (doubling the backing capacity when exhausted) instead of
// refactorizing in O(n³), and Update/Downdate apply rank-1 modifications
// A ± x xᵀ in O(n²). This is the substrate of the incremental surrogate
// path in internal/ml.
type Cholesky struct {
	n       int       // logical order of the factor
	stride  int       // row stride of data; n ≤ stride
	data    []float64 // stride×stride backing; L occupies the leading n×n block
	scratch []float64 // reusable workspace for rank-1 ops (len ≥ n)
	backup  []float64 // snapshot buffer so a failed downdate leaves L intact
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns a *NotPDError (matching both
// ErrNotPositiveDefinite and ErrSingular) if a is not positive definite to
// working precision, and ErrShape if a is not square.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	c := &Cholesky{n: n, stride: n, data: make([]float64, n*n)}
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		lrow := c.data[j*c.stride : j*c.stride+j+1]
		for k := 0; k < j; k++ {
			d -= lrow[k] * lrow[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, &NotPDError{Op: "factor", Pivot: j, Value: d}
		}
		dj := math.Sqrt(d)
		lrow[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			irow := c.data[i*c.stride : i*c.stride+j+1]
			for k := 0; k < j; k++ {
				s -= irow[k] * lrow[k]
			}
			irow[j] = s / dj
		}
	}
	return c, nil
}

// Size returns the order n of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// at reads L[i][j] from the strided backing block.
func (c *Cholesky) at(i, j int) float64 { return c.data[i*c.stride+j] }

// L returns a copy of the lower-triangular factor as an n×n Dense.
func (c *Cholesky) L() *Dense {
	out := NewDense(c.n, c.n)
	for i := 0; i < c.n; i++ {
		copy(out.Row(i)[:i+1], c.data[i*c.stride:i*c.stride+i+1])
	}
	return out
}

// Reconstruct returns L Lᵀ, the matrix the factor currently represents.
// Intended for tests and diagnostics; it allocates a fresh n×n Dense.
func (c *Cholesky) Reconstruct() *Dense {
	out := NewDense(c.n, c.n)
	for i := 0; i < c.n; i++ {
		li := c.data[i*c.stride:]
		for j := 0; j <= i; j++ {
			lj := c.data[j*c.stride:]
			var s float64
			for k := 0; k <= j; k++ {
				s += li[k] * lj[k]
			}
			out.Set(i, j, s)
			out.Set(j, i, s)
		}
	}
	return out
}

// LogDet returns log det(A) = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.at(i, i))
	}
	return 2 * s
}

// SolveVec solves A x = b in place of a fresh vector, using the factorization.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.n
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %d with rhs %d", ErrShape, n, len(b))
	}
	x := make([]float64, n)
	copy(x, b)
	if err := c.SolveVecInPlace(x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecInPlace solves A x = b, overwriting b with the solution. It
// performs no allocation; the zero-allocation prediction path in internal/ml
// depends on that.
func (c *Cholesky) SolveVecInPlace(b []float64) error {
	n := c.n
	if len(b) != n {
		return fmt.Errorf("%w: solve %d with rhs %d", ErrShape, n, len(b))
	}
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride : i*c.stride+i+1]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= c.at(k, i) * b[k]
		}
		b[i] = s / c.at(i, i)
	}
	return nil
}

// SolveTriLower solves L y = b for lower-triangular L.
func (c *Cholesky) SolveTriLower(b []float64) ([]float64, error) {
	n := c.n
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %d with rhs %d", ErrShape, n, len(b))
	}
	y := make([]float64, n)
	copy(y, b)
	if err := c.SolveTriLowerInPlace(y); err != nil {
		return nil, err
	}
	return y, nil
}

// SolveTriLowerInPlace solves L y = b, overwriting b with y, without
// allocating.
func (c *Cholesky) SolveTriLowerInPlace(b []float64) error {
	n := c.n
	if len(b) != n {
		return fmt.Errorf("%w: solve %d with rhs %d", ErrShape, n, len(b))
	}
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride : i*c.stride+i+1]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	return nil
}

// grow ensures the backing block has room for order want, re-laying the
// factor at a doubled stride when the current capacity is exhausted.
func (c *Cholesky) grow(want int) {
	if want <= c.stride {
		return
	}
	stride := c.stride * 2
	if stride < want {
		stride = want
	}
	if stride < 4 {
		stride = 4
	}
	data := make([]float64, stride*stride)
	for i := 0; i < c.n; i++ {
		copy(data[i*stride:i*stride+i+1], c.data[i*c.stride:i*c.stride+i+1])
	}
	c.data, c.stride = data, stride
}

// ensureScratch returns the reusable workspace, at least n long.
func (c *Cholesky) ensureScratch(n int) []float64 {
	if cap(c.scratch) < n {
		c.scratch = make([]float64, n)
	}
	c.scratch = c.scratch[:n]
	return c.scratch
}

// AppendRow grows the factorization from order n to n+1, conditioning on one
// new observation: the represented matrix becomes
//
//	[ A    a12 ]
//	[ a12ᵀ a22 ]
//
// in O(n²) time via one triangular solve (the new off-diagonal row solves
// L l = a12 and the new pivot is √(a22 − lᵀl)). It returns ErrShape when
// len(a12) ≠ n and a *NotPDError when the bordered matrix is not positive
// definite; on error the factor is unchanged.
func (c *Cholesky) AppendRow(a12 []float64, a22 float64) error {
	n := c.n
	if len(a12) != n {
		return fmt.Errorf("%w: append row of %d to order %d", ErrShape, len(a12), n)
	}
	c.grow(n + 1)
	l := c.data[n*c.stride : n*c.stride+n+1]
	d := a22
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride : i*c.stride+i+1]
		s := a12[i]
		for k := 0; k < i; k++ {
			s -= row[k] * l[k]
		}
		li := s / row[i]
		l[i] = li
		d -= li * li
	}
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return &NotPDError{Op: "append", Pivot: n, Value: d}
	}
	l[n] = math.Sqrt(d)
	c.n = n + 1
	return nil
}

// Shrink drops the last row and column of the factor, inverting AppendRow:
// the factor of a leading principal submatrix is the leading block of L, so
// this is O(1). Shrinking an empty factor is a no-op.
func (c *Cholesky) Shrink() {
	if c.n > 0 {
		c.n--
	}
}

// Update applies the rank-1 update A ← A + x xᵀ to the factorization in
// O(n²) (LINPACK dchud via Givens rotations). x is not modified. A rank-1
// update of a positive definite matrix stays positive definite, so Update
// fails only on non-finite input, returning a *NotPDError with the factor
// restored.
func (c *Cholesky) Update(x []float64) error {
	n := c.n
	if len(x) != n {
		return fmt.Errorf("%w: update of order %d with vector %d", ErrShape, n, len(x))
	}
	c.snapshot()
	w := c.ensureScratch(n)
	copy(w, x)
	for k := 0; k < n; k++ {
		lkk := c.at(k, k)
		r := math.Hypot(lkk, w[k])
		if !(r > 0) || math.IsInf(r, 0) || math.IsNaN(r) {
			c.restore(n)
			return &NotPDError{Op: "update", Pivot: k, Value: r}
		}
		cth, sth := r/lkk, w[k]/lkk
		c.data[k*c.stride+k] = r
		for i := k + 1; i < n; i++ {
			v := (c.data[i*c.stride+k] + sth*w[i]) / cth
			w[i] = cth*w[i] - sth*v
			c.data[i*c.stride+k] = v
		}
	}
	// Overflow on extreme (finite) inputs can contaminate trailing columns
	// after the last pivot check; verify and roll back rather than keep a
	// poisoned factor.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if v := c.at(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				c.restore(n)
				return &NotPDError{Op: "update", Pivot: i, Value: v}
			}
		}
	}
	return nil
}

// Downdate applies the rank-1 downdate A ← A − x xᵀ in O(n²). x is not
// modified. If the downdated matrix is not positive definite to working
// precision the factor is left exactly as it was and a *NotPDError
// identifies the failing pivot.
func (c *Cholesky) Downdate(x []float64) error {
	n := c.n
	if len(x) != n {
		return fmt.Errorf("%w: downdate of order %d with vector %d", ErrShape, n, len(x))
	}
	c.snapshot()
	w := c.ensureScratch(n)
	copy(w, x)
	for k := 0; k < n; k++ {
		lkk := c.at(k, k)
		d := lkk*lkk - w[k]*w[k]
		if d <= 0 || math.IsNaN(d) {
			c.restore(n)
			return &NotPDError{Op: "downdate", Pivot: k, Value: d}
		}
		r := math.Sqrt(d)
		cth, sth := r/lkk, w[k]/lkk
		c.data[k*c.stride+k] = r
		for i := k + 1; i < n; i++ {
			v := (c.data[i*c.stride+k] - sth*w[i]) / cth
			w[i] = cth*w[i] - sth*v
			c.data[i*c.stride+k] = v
		}
	}
	// A successful downdate can still have contaminated later columns with
	// rounding-induced non-finite values on adversarial input; verify.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if v := c.at(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
				c.restore(n)
				return &NotPDError{Op: "downdate", Pivot: i, Value: v}
			}
		}
	}
	return nil
}

// snapshot saves the leading n columns of the factor so a failed rank-1
// operation can restore them. The buffer is reused across calls.
func (c *Cholesky) snapshot() {
	need := c.n * c.stride
	if cap(c.backup) < need {
		c.backup = make([]float64, need)
	}
	c.backup = c.backup[:need]
	copy(c.backup, c.data[:need])
}

// restore copies the first upTo rows back from the snapshot; failed rank-1
// operations restore every row they may have touched.
func (c *Cholesky) restore(upTo int) {
	if upTo > c.n {
		upTo = c.n
	}
	n := upTo * c.stride
	if n > len(c.backup) {
		n = len(c.backup)
	}
	copy(c.data[:n], c.backup[:n])
}

// SolveRidge solves (XᵀX + λI) β = Xᵀy, the ridge-regression normal
// equations. λ must be ≥ 0; with λ = 0 this is ordinary least squares via the
// normal equations, suitable for the small, well-conditioned systems used by
// Rockhopper's trend regressions. For rank-deficient systems a small ridge is
// added automatically, growing geometrically until the factorization
// succeeds.
func SolveRidge(x *Dense, y []float64, lambda float64) ([]float64, error) {
	if x.rows != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d, response %d", ErrShape, x.rows, x.cols, len(y))
	}
	g := AtA(x)
	rhs, err := AtVec(x, y)
	if err != nil {
		return nil, err
	}
	if lambda > 0 {
		AddDiag(g, lambda)
	}
	// Retry with growing jitter if not SPD (collinear features are common in
	// small tuning windows where a config dimension barely moves).
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		work := g
		if jitter > 0 {
			work = g.Clone()
			AddDiag(work, jitter)
		}
		ch, err := NewCholesky(work)
		if err == nil {
			return ch.SolveVec(rhs)
		}
		if jitter == 0 {
			jitter = 1e-10 * (1 + traceAbs(g))
		} else {
			jitter *= 100
		}
	}
	return nil, ErrSingular
}

func traceAbs(m *Dense) float64 {
	var s float64
	for i := 0; i < m.rows; i++ {
		s += math.Abs(m.At(i, i))
	}
	return s
}

// LeastSquares solves min ‖Xβ − y‖₂ by QR factorization with Householder
// reflections. X must have at least as many rows as columns.
func LeastSquares(x *Dense, y []float64) ([]float64, error) {
	m, n := x.rows, x.cols
	if m < n {
		return nil, fmt.Errorf("%w: underdetermined %dx%d", ErrShape, m, n)
	}
	if m != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d, response %d", ErrShape, m, n, len(y))
	}
	a := x.Clone()
	b := make([]float64, m)
	copy(b, y)
	// Householder QR, applying reflectors to b as we go.
	for k := 0; k < n; k++ {
		// Compute the norm of column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := a.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			return nil, ErrSingular
		}
		alpha := -math.Copysign(norm, a.At(k, k))
		// v = column − alpha*e_k, stored in the column itself.
		akk := a.At(k, k) - alpha
		a.Set(k, k, akk)
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			v := a.At(i, k)
			vnorm2 += v * v
		}
		if vnorm2 < 1e-300 {
			return nil, ErrSingular
		}
		// Apply H = I − 2 v vᵀ / ‖v‖² to remaining columns and to b.
		for j := k + 1; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += a.At(i, k) * a.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				a.Set(i, j, a.At(i, j)-f*a.At(i, k))
			}
		}
		var dotb float64
		for i := k; i < m; i++ {
			dotb += a.At(i, k) * b[i]
		}
		fb := 2 * dotb / vnorm2
		for i := k; i < m; i++ {
			b[i] -= fb * a.At(i, k)
		}
		// Store R's diagonal entry; zero below-diagonal is implicit.
		a.Set(k, k, alpha)
	}
	// Back-substitute R β = b[:n].
	beta := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * beta[j]
		}
		d := a.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		beta[i] = s / d
	}
	return beta, nil
}
