package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// randSPD builds a random symmetric positive definite n×n matrix with a
// diagonal boost that keeps it comfortably conditioned.
func randSPD(rng *stats.RNG, n int) *Dense {
	g := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	a := AtA(g)
	AddDiag(a, float64(n))
	return a
}

// maxAbsDiff returns the largest elementwise |a−b|.
func maxAbsDiff(a, b *Dense) float64 {
	var m float64
	for i, v := range a.Data() {
		if d := math.Abs(v - b.Data()[i]); d > m {
			m = d
		}
	}
	return m
}

func TestCholeskyTypedErrors(t *testing.T) {
	t.Parallel()
	// Dimension mismatch: non-square input is ErrShape, never a PD error.
	if _, err := NewCholesky(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square Cholesky: err = %v; want ErrShape", err)
	} else if errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("non-square Cholesky wrongly matched ErrNotPositiveDefinite: %v", err)
	}
	// Indefinite input: *NotPDError matching both the specific sentinel and,
	// for backward compatibility, ErrSingular — but not ErrShape.
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	_, err := NewCholesky(a)
	if err == nil {
		t.Fatal("Cholesky of indefinite matrix should fail")
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v; want ErrNotPositiveDefinite", err)
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v; want legacy ErrSingular match", err)
	}
	if errors.Is(err, ErrShape) {
		t.Fatalf("indefinite matrix wrongly matched ErrShape: %v", err)
	}
	var npd *NotPDError
	if !errors.As(err, &npd) {
		t.Fatalf("err = %T; want *NotPDError", err)
	}
	if npd.Pivot != 1 || npd.Op != "factor" {
		t.Fatalf("NotPDError = %+v; want pivot 1 in op factor", npd)
	}

	// Shape errors on the rank-1 operations.
	ch, errNew := NewCholesky(NewDenseData(2, 2, []float64{2, 0, 0, 2}))
	if errNew != nil {
		t.Fatal(errNew)
	}
	if err := ch.Update([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("Update wrong length: err = %v; want ErrShape", err)
	}
	if err := ch.Downdate([]float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("Downdate wrong length: err = %v; want ErrShape", err)
	}
	if err := ch.AppendRow([]float64{1, 2, 3}, 4); !errors.Is(err, ErrShape) {
		t.Fatalf("AppendRow wrong length: err = %v; want ErrShape", err)
	}
	// Downdating by a vector larger than the matrix loses definiteness and
	// must leave the factor untouched.
	before := ch.L()
	if err := ch.Downdate([]float64{10, 0}); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("oversized downdate: err = %v; want ErrNotPositiveDefinite", err)
	}
	if diff := maxAbsDiff(before, ch.L()); diff != 0 {
		t.Fatalf("failed downdate modified the factor (max diff %g)", diff)
	}
}

// Property: Update then Downdate with the same vector round-trips the
// factor, and each individually reconstructs A ± xxᵀ.
func TestPropCholeskyUpdateDowndate(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := stats.NewRNG(uint64(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if err := ch.Update(x); err != nil {
			return false
		}
		want := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want.Set(i, j, want.At(i, j)+x[i]*x[j])
			}
		}
		if maxAbsDiff(ch.Reconstruct(), want) > 1e-8*(1+traceAbs(want)) {
			return false
		}
		if err := ch.Downdate(x); err != nil {
			return false
		}
		return maxAbsDiff(ch.Reconstruct(), a) < 1e-8*(1+traceAbs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: growing a factor row by row with AppendRow matches factoring the
// full matrix at once, and Shrink inverts the growth.
func TestPropCholeskyAppendRow(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := stats.NewRNG(uint64(seed))
		n := 2 + rng.Intn(10)
		a := randSPD(rng, n)
		// Factor the 1×1 leading block, then append the rest.
		ch, err := NewCholesky(NewDenseData(1, 1, []float64{a.At(0, 0)}))
		if err != nil {
			return false
		}
		for k := 1; k < n; k++ {
			a12 := make([]float64, k)
			for i := 0; i < k; i++ {
				a12[i] = a.At(k, i)
			}
			if err := ch.AppendRow(a12, a.At(k, k)); err != nil {
				return false
			}
		}
		full, err := NewCholesky(a)
		if err != nil {
			return false
		}
		if ch.Size() != n || maxAbsDiff(ch.L(), full.L()) > 1e-9*(1+traceAbs(a)) {
			return false
		}
		// Solves through the grown factor agree with the batch factor.
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xg, err1 := ch.SolveVec(b)
		xf, err2 := full.SolveVec(b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range xg {
			if !almostEq(xg[i], xf[i], 1e-9) {
				return false
			}
		}
		// Shrink back to the leading block and compare against its factor.
		ch.Shrink()
		lead := NewDense(n-1, n-1)
		for i := 0; i < n-1; i++ {
			for j := 0; j < n-1; j++ {
				lead.Set(i, j, a.At(i, j))
			}
		}
		leadCh, err := NewCholesky(lead)
		if err != nil {
			return false
		}
		return maxAbsDiff(ch.L(), leadCh.L()) < 1e-9*(1+traceAbs(lead))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// AppendRow must reject a bordered matrix whose Schur complement is not
// positive, leaving the factor usable.
func TestCholeskyAppendRowRejectsNotPD(t *testing.T) {
	t.Parallel()
	ch, err := NewCholesky(NewDenseData(2, 2, []float64{4, 0, 0, 4}))
	if err != nil {
		t.Fatal(err)
	}
	// a22 too small: 1 − (2·2)/4 − (2·2)/4 < 0.
	err = ch.AppendRow([]float64{2, 2}, 1)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v; want ErrNotPositiveDefinite", err)
	}
	var npd *NotPDError
	if !errors.As(err, &npd) || npd.Op != "append" || npd.Pivot != 2 {
		t.Fatalf("NotPDError = %+v; want append at pivot 2", err)
	}
	if ch.Size() != 2 {
		t.Fatalf("failed append changed the order to %d", ch.Size())
	}
	// The factor still works.
	if _, err := ch.SolveVec([]float64{1, 1}); err != nil {
		t.Fatalf("factor unusable after failed append: %v", err)
	}
}

// The in-place solves must agree with the allocating ones (the GP's
// zero-allocation predict path relies on them).
func TestCholeskySolveInPlaceAgreement(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(7)
	a := randSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), b...)
	if err := ch.SolveVecInPlace(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SolveVecInPlace diverges at %d: %g != %g", i, got[i], want[i])
		}
	}
	wantL, err := ch.SolveTriLower(b)
	if err != nil {
		t.Fatal(err)
	}
	gotL := append([]float64(nil), b...)
	if err := ch.SolveTriLowerInPlace(gotL); err != nil {
		t.Fatal(err)
	}
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Fatalf("SolveTriLowerInPlace diverges at %d: %g != %g", i, gotL[i], wantL[i])
		}
	}
}
