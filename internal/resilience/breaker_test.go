package resilience

import (
	"errors"
	"testing"
	"time"
)

func newTestBreaker() (*Breaker, *FakeClock) {
	clock := NewFakeClock(time.Unix(0, 0))
	return &Breaker{Threshold: 3, Cooldown: time.Second, Clock: clock}, clock
}

func fail(b *Breaker) error {
	if err := b.Allow(); err != nil {
		return err
	}
	b.Record(errors.New("down"))
	return nil
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker()
	for i := 0; i < 3; i++ {
		if err := fail(b); err != nil {
			t.Fatalf("call %d should be admitted: %v", i, err)
		}
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker must fail fast, got %v", err)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker()
	for i := 0; i < 2; i++ {
		if err := fail(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	// Two more failures: the earlier streak must not count.
	for i := 0; i < 2; i++ {
		if err := fail(b); err != nil {
			t.Fatal(err)
		}
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed after streak reset", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker()
	for i := 0; i < 3; i++ {
		_ = fail(b)
	}
	// Cool-down not elapsed: still failing fast.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("breaker must stay open during cool-down")
	}
	clock.Advance(2 * time.Second)
	// One probe admitted, concurrent calls still rejected.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe should be admitted after cool-down: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("only one probe at a time")
	}
	// Probe succeeds: circuit closes.
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clock := newTestBreaker()
	for i := 0; i < 3; i++ {
		_ = fail(b)
	}
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errors.New("still down"))
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want re-opened after failed probe", b.State())
	}
	// And the cool-down restarted from the probe failure.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("cool-down must restart after a failed probe")
	}
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("next probe should be admitted: %v", err)
	}
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatal("recovery after second probe failed")
	}
}
