// Package resilience provides the production-hardening primitives shared by
// the Autotune client and backend: jittered exponential-backoff retries with
// an error classifier separating transient from terminal failures, per-call
// deadlines, and a consecutive-failure circuit breaker. Everything is driven
// by an injectable clock and stats.RNG so behaviour is deterministic under
// test — the same discipline the paper's production deployment applies to
// keep tuning robust when the serving path, not the query, misbehaves.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// HTTPError is a backend response with a non-success status. Carrying the
// status code lets the classifier separate retryable server-side failures
// (5xx, 429) from terminal caller mistakes (other 4xx), and lets callers
// distinguish a true not-found from any other degradation.
type HTTPError struct {
	// Op names the failed call, e.g. "get models/u/sig.model".
	Op string
	// Status is the HTTP status code.
	Status int
	// Msg is the (truncated) response body.
	Msg string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("%s: HTTP %d: %s", e.Op, e.Status, e.Msg)
}

// IsNotFound reports whether err is an HTTP 404 — the only signal callers
// may treat as "the object does not exist" rather than "something broke".
func IsNotFound(err error) bool {
	var he *HTTPError
	return errors.As(err, &he) && he.Status == 404
}

// StatusOf returns the HTTP status carried by err, or 0 when err carries
// none (transport failures, context errors, ...).
func StatusOf(err error) int {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status
	}
	return 0
}

// Class is the retry classification of an error.
type Class int

// Error classes.
const (
	// Retryable failures are transient: transport faults, 5xx, 429.
	Retryable Class = iota
	// Terminal failures will not be cured by retrying: other 4xx (auth,
	// token scope, malformed request), context expiry, an open circuit.
	Terminal
)

// Classify buckets an error for the retry loop. Unknown errors default to
// Retryable: a transport-level fault carries no status and is exactly the
// kind of blip retrying exists for.
func Classify(err error) Class {
	switch {
	case err == nil:
		return Terminal // nothing to retry
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Terminal // the caller's deadline is spent
	case errors.Is(err, ErrCircuitOpen):
		return Terminal // fail fast; the breaker owns the cool-down
	}
	if s := StatusOf(err); s != 0 {
		if s == 429 || s >= 500 {
			return Retryable
		}
		return Terminal
	}
	return Retryable
}

// Policy parameterizes Retry. The zero value means "use defaults".
type Policy struct {
	// MaxAttempts bounds total tries (first call included); default 4.
	MaxAttempts int
	// BaseDelay is the first backoff; default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps each (jittered) backoff; default 2s.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; default 2.
	Multiplier float64
	// Jitter is the ± fraction each delay is randomized by; default 0.5.
	Jitter float64
	// OnRetry, when set, observes each scheduled retry (attempt number of
	// the failed try, its error, and the jittered delay about to be slept).
	// Telemetry wiring hangs retry counters here so this package stays free
	// of metrics dependencies.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// Default policy values.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.5
)

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = DefaultJitter
	}
	return p
}

// Retry runs fn until it succeeds, fails terminally, exhausts p.MaxAttempts,
// or ctx expires. Between attempts it sleeps an exponentially growing,
// jittered delay on clock (nil = wall clock). rng drives the jitter; nil
// disables it. The last attempt's error is returned.
func Retry(ctx context.Context, p Policy, clock Clock, rng *stats.RNG, fn func(ctx context.Context) error) error {
	p = p.withDefaults()
	if clock == nil {
		clock = RealClock{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if Classify(err) == Terminal || attempt >= p.MaxAttempts || ctx.Err() != nil {
			return err
		}
		d := delay
		if rng != nil && p.Jitter > 0 {
			// Uniform in [1-jitter, 1+jitter) of the nominal delay.
			d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*rng.Float64()))
		}
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, d)
		}
		if serr := clock.Sleep(ctx, d); serr != nil {
			return err // interrupted mid-backoff: surface the call's error
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
