package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Breaker.Allow while the circuit is open: the
// backend has failed repeatedly and callers should use their fallback
// immediately instead of paying a full timeout per call.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// BreakerState is the circuit's current mode.
type BreakerState int

// Breaker states.
const (
	// StateClosed: calls flow normally; failures are counted.
	StateClosed BreakerState = iota
	// StateOpen: calls fail fast until the cool-down elapses.
	StateOpen
	// StateHalfOpen: one probe is in flight; its outcome decides the state.
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker default parameters.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Breaker is a consecutive-failure circuit breaker. It opens after Threshold
// consecutive failures; while open, Allow fails fast with ErrCircuitOpen.
// After Cooldown it admits exactly one probe (half-open): a successful probe
// closes the circuit, a failed one re-opens it for another cool-down. Safe
// for concurrent use.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the circuit;
	// <= 0 means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long the circuit stays open before probing; <= 0
	// means DefaultBreakerCooldown.
	Cooldown time.Duration
	// Clock is injectable for deterministic tests; nil means wall clock.
	Clock Clock
	// OnTransition, when set, observes every state change (from, to). It is
	// invoked outside the breaker's lock, so the callback may call State()
	// or other breaker methods — but it may therefore also observe a state
	// newer than `to` under concurrency.
	OnTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return DefaultBreakerThreshold
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return b.Cooldown
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock.Now()
	}
	return time.Now()
}

// Allow reports whether a call may proceed. Every admitted call must be
// followed by exactly one Record with its outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	var err error
	probeOpened := false
	switch b.state {
	case StateClosed:
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			err = ErrCircuitOpen
		} else {
			b.state = StateHalfOpen
			b.probing = true
			probeOpened = true
		}
	default: // half-open
		if b.probing {
			err = ErrCircuitOpen // one probe at a time
		} else {
			b.probing = true
		}
	}
	hook := b.OnTransition
	b.mu.Unlock()
	if probeOpened && hook != nil {
		hook(StateOpen, StateHalfOpen)
	}
	return err
}

// Record reports the outcome of an admitted call: nil closes/keeps the
// circuit closed and resets the failure count; non-nil counts toward the
// threshold (and re-opens immediately from half-open).
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	from := b.state
	b.probing = false
	if err == nil {
		b.state = StateClosed
		b.failures = 0
	} else {
		b.failures++
		if b.state == StateHalfOpen || b.failures >= b.threshold() {
			b.state = StateOpen
			b.openedAt = b.now()
		}
	}
	to := b.state
	hook := b.OnTransition
	b.mu.Unlock()
	if hook != nil && from != to {
		hook(from, to)
	}
}

// State returns the current state, accounting for an elapsed cool-down.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
