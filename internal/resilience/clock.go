package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts monotonic time so backoff and breaker cool-downs are
// deterministic in tests.
type Clock interface {
	Now() time.Time
	// Sleep waits for d or until ctx is done, returning ctx.Err() when
	// interrupted and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FakeClock advances instantly on Sleep and records every requested
// duration, so retry schedules can be asserted without real waiting.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewFakeClock returns a fake clock starting at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it advances the fake time by d without waiting.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.slept = append(c.slept, d)
	return nil
}

// Advance moves the fake time forward (e.g. past a breaker cool-down).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Slept returns a copy of the recorded sleep durations.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
