package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// TestOnRetryHook counts scheduled retries and checks the hook sees the
// failed attempt's error and a bounded delay.
func TestOnRetryHook(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	boom := errors.New("transient")
	var calls []int
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		OnRetry: func(attempt int, err error, delay time.Duration) {
			if !errors.Is(err, boom) {
				t.Errorf("hook error = %v, want %v", err, boom)
			}
			if delay <= 0 || delay > time.Second {
				t.Errorf("hook delay = %v out of range", delay)
			}
			calls = append(calls, attempt)
		},
	}
	err := Retry(context.Background(), p, clk, stats.NewRNG(1), func(ctx context.Context) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Retry err = %v", err)
	}
	// 3 attempts -> retries scheduled after attempts 1 and 2.
	if len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Errorf("OnRetry calls = %v, want [1 2]", calls)
	}
}

// TestOnRetryNotCalledOnTerminal: terminal failures schedule no retry, so
// the hook must stay silent.
func TestOnRetryNotCalledOnTerminal(t *testing.T) {
	fired := false
	p := Policy{OnRetry: func(int, error, time.Duration) { fired = true }}
	err := Retry(context.Background(), p, NewFakeClock(time.Unix(0, 0)), nil, func(ctx context.Context) error {
		return &HTTPError{Op: "x", Status: 403, Msg: "no"}
	})
	if err == nil || fired {
		t.Fatalf("terminal failure: err=%v hook fired=%v", err, fired)
	}
}

// TestBreakerTransitionHook walks the full closed → open → half-open →
// closed cycle and checks every edge is reported exactly once, outside the
// lock (the hook calls State() to prove no deadlock).
func TestBreakerTransitionHook(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	type edge struct{ from, to BreakerState }
	var edges []edge
	b := &Breaker{Threshold: 2, Cooldown: time.Second, Clock: clk}
	b.OnTransition = func(from, to BreakerState) {
		_ = b.State() // must not deadlock
		edges = append(edges, edge{from, to})
	}

	boom := errors.New("down")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow: %v", err)
		}
		b.Record(boom)
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	want := []edge{
		{StateClosed, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateClosed},
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

// TestBreakerHookFailedProbe: a failed probe re-opens and reports
// half-open → open.
func TestBreakerHookFailedProbe(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var last [2]BreakerState
	b := &Breaker{Threshold: 1, Cooldown: time.Second, Clock: clk,
		OnTransition: func(from, to BreakerState) { last = [2]BreakerState{from, to} }}
	_ = b.Allow()
	b.Record(errors.New("down"))
	clk.Advance(time.Second)
	_ = b.Allow()
	b.Record(errors.New("still down"))
	if last != [2]BreakerState{StateHalfOpen, StateOpen} {
		t.Errorf("last edge = %v, want half-open -> open", last)
	}
	if b.State() != StateOpen {
		t.Errorf("state = %v, want open", b.State())
	}
}
