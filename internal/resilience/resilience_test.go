package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{errors.New("dial tcp: connection refused"), Retryable},
		{&HTTPError{Status: 500}, Retryable},
		{&HTTPError{Status: 503}, Retryable},
		{&HTTPError{Status: 429}, Retryable},
		{&HTTPError{Status: 400}, Terminal},
		{&HTTPError{Status: 401}, Terminal},
		{&HTTPError{Status: 403}, Terminal},
		{&HTTPError{Status: 404}, Terminal},
		{context.Canceled, Terminal},
		{context.DeadlineExceeded, Terminal},
		{ErrCircuitOpen, Terminal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestIsNotFound(t *testing.T) {
	if !IsNotFound(&HTTPError{Status: 404}) {
		t.Fatal("404 should be not-found")
	}
	for _, err := range []error{&HTTPError{Status: 500}, &HTTPError{Status: 403}, errors.New("x"), nil} {
		if IsNotFound(err) {
			t.Fatalf("IsNotFound(%v) must be false", err)
		}
	}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 5}, clock, nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(clock.Slept()) != 2 {
		t.Fatalf("expected 2 backoff sleeps, got %v", clock.Slept())
	}
}

func TestRetryStopsOnTerminal(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	terminal := &HTTPError{Status: 403, Op: "t"}
	err := Retry(context.Background(), Policy{MaxAttempts: 5}, clock, nil, func(context.Context) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("terminal error must not be retried: err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 4}, clock, nil, func(context.Context) error {
		calls++
		return errors.New("always down")
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want 4 attempts", err, calls)
	}
}

func TestRetryBackoffGrowsAndClamps(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Multiplier: 2, Jitter: -1}
	// Jitter < 0 is normalized to the default; pass a nil rng to disable
	// randomization entirely so the schedule is exact.
	_ = Retry(context.Background(), p, clock, nil, func(context.Context) error {
		return errors.New("down")
	})
	want := []time.Duration{100, 200, 400, 400, 400}
	got := clock.Slept()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %d delays", got, len(want))
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
}

func TestRetryJitterBounds(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	rng := stats.NewRNG(7)
	p := Policy{MaxAttempts: 50, BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 1, Jitter: 0.5}
	_ = Retry(context.Background(), p, clock, rng, func(context.Context) error {
		return errors.New("down")
	})
	for i, d := range clock.Slept() {
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("delay %d = %v outside jitter bounds [50ms, 150ms]", i, d)
		}
	}
}

func TestRetryDeterministicWithSeed(t *testing.T) {
	run := func() []time.Duration {
		clock := NewFakeClock(time.Unix(0, 0))
		_ = Retry(context.Background(), Policy{MaxAttempts: 8}, clock, stats.NewRNG(42), func(context.Context) error {
			return errors.New("down")
		})
		return clock.Slept()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("schedules differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 10}, RealClock{}, nil, func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if err == nil || calls != 1 {
		t.Fatalf("cancelled context must stop the loop: err=%v calls=%d", err, calls)
	}
}

func TestRealClockSleepInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := (RealClock{}).Sleep(ctx, time.Minute); err == nil {
		t.Fatal("cancelled sleep must return an error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sleep blocked")
	}
}
