// Package faultinject provides composable, deterministic fault injection for
// resilience testing: a faulty http.RoundTripper and a faulty object-store
// wrapper, both driven by Plans (error rates from a seeded stats.RNG, latency
// injection, fail-N-then-recover scripts). The fault-matrix test suite uses
// these to prove the client/backend loop degrades gracefully instead of
// silently, mirroring the chaos-style validation production tuning services
// run before shipping.
package faultinject

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

// ErrInjected is the default injected fault.
var ErrInjected = errors.New("faultinject: injected fault")

// Decision is the fate of one operation.
type Decision struct {
	// Err, when non-nil, is returned instead of performing the operation.
	Err error
	// Delay is injected latency applied before the operation (or the fault).
	Delay time.Duration
}

// Plan decides the fate of each operation. op names the operation, e.g.
// "GET /api/object" or "store.Put"; plans may ignore it or filter on it.
type Plan interface {
	Decide(op string) Decision
}

// Rate fails a Bernoulli(P) fraction of operations, drawn deterministically
// from RNG, and optionally injects Delay on every operation.
type Rate struct {
	// P is the fault probability in [0, 1].
	P float64
	// RNG drives the coin flips; required when P > 0.
	RNG *stats.RNG
	// Err overrides ErrInjected.
	Err error
	// Delay is added to every operation, faulted or not.
	Delay time.Duration

	mu sync.Mutex
}

// Decide implements Plan.
func (r *Rate) Decide(string) Decision {
	d := Decision{Delay: r.Delay}
	if r.P <= 0 || r.RNG == nil {
		return d
	}
	r.mu.Lock()
	hit := r.RNG.Bernoulli(r.P)
	r.mu.Unlock()
	if hit {
		d.Err = r.Err
		if d.Err == nil {
			d.Err = ErrInjected
		}
	}
	return d
}

// FailN fails the first N operations and then recovers — the "transient
// outage heals" script.
type FailN struct {
	N   int64
	Err error

	calls atomic.Int64
}

// Decide implements Plan.
func (f *FailN) Decide(string) Decision {
	if f.calls.Add(1) <= f.N {
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		return Decision{Err: err}
	}
	return Decision{}
}

// Script plays a fixed fail/succeed sequence, then succeeds forever.
type Script struct {
	// Fail[i] faults the i-th operation.
	Fail []bool

	idx atomic.Int64
}

// Decide implements Plan.
func (s *Script) Decide(string) Decision {
	i := s.idx.Add(1) - 1
	if int(i) < len(s.Fail) && s.Fail[i] {
		return Decision{Err: ErrInjected}
	}
	return Decision{}
}

// ForOps restricts Plan to the named operations; everything else passes.
type ForOps struct {
	Plan Plan
	Ops  []string
}

// Decide implements Plan.
func (f *ForOps) Decide(op string) Decision {
	for _, o := range f.Ops {
		if o == op {
			return f.Plan.Decide(op)
		}
	}
	return Decision{}
}

// Transport is an http.RoundTripper that consults Plan before forwarding to
// Inner (nil = http.DefaultTransport). Operations are named
// "METHOD /path". Injected latency respects the request context.
type Transport struct {
	Inner http.RoundTripper
	Plan  Plan

	// Attempts counts every round trip offered; Forwarded only those that
	// reached the inner transport.
	Attempts  atomic.Int64
	Forwarded atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.Attempts.Add(1)
	d := Decision{}
	if t.Plan != nil {
		d = t.Plan.Decide(req.Method + " " + req.URL.Path)
	}
	if d.Delay > 0 {
		//rocklint:allow wallclock -- fault injection delays real round trips by design; tests bound it via the request context
		timer := time.NewTimer(d.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if d.Err != nil {
		return nil, d.Err
	}
	t.Forwarded.Add(1)
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// ObjectStore is the store surface the backend consumes; *store.Store
// satisfies it (it structurally matches backend.ObjectStore without
// importing the backend package).
type ObjectStore interface {
	Sign(prefix string, perm store.Permission, ttl time.Duration) string
	Verify(tok, p string, perm store.Permission) error
	Put(tok, p string, data []byte) error
	Get(tok, p string) ([]byte, error)
	PutInternal(p string, data []byte)
	GetInternal(p string) ([]byte, error)
	List(prefix string) []string
}

// Store wraps an ObjectStore with plan-driven faults on the fallible
// operations (Put, Get, GetInternal), named "store.Put" etc. Sign, Verify,
// List, and PutInternal pass through untouched.
type Store struct {
	Inner ObjectStore
	Plan  Plan
}

func (s *Store) decide(op string) error {
	if s.Plan == nil {
		return nil
	}
	d := s.Plan.Decide(op)
	if d.Delay > 0 {
		//rocklint:allow wallclock -- injected store latency is real wall time by design
		time.Sleep(d.Delay)
	}
	return d.Err
}

// Sign implements ObjectStore.
func (s *Store) Sign(prefix string, perm store.Permission, ttl time.Duration) string {
	return s.Inner.Sign(prefix, perm, ttl)
}

// Verify implements ObjectStore.
func (s *Store) Verify(tok, p string, perm store.Permission) error {
	return s.Inner.Verify(tok, p, perm)
}

// Put implements ObjectStore.
func (s *Store) Put(tok, p string, data []byte) error {
	if err := s.decide("store.Put"); err != nil {
		return err
	}
	return s.Inner.Put(tok, p, data)
}

// Get implements ObjectStore.
func (s *Store) Get(tok, p string) ([]byte, error) {
	if err := s.decide("store.Get"); err != nil {
		return nil, err
	}
	return s.Inner.Get(tok, p)
}

// PutInternal implements ObjectStore.
func (s *Store) PutInternal(p string, data []byte) { s.Inner.PutInternal(p, data) }

// GetInternal implements ObjectStore.
func (s *Store) GetInternal(p string) ([]byte, error) {
	if err := s.decide("store.GetInternal"); err != nil {
		return nil, err
	}
	return s.Inner.GetInternal(p)
}

// List implements ObjectStore.
func (s *Store) List(prefix string) []string { return s.Inner.List(prefix) }
