package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

func TestRateDeterministic(t *testing.T) {
	decide := func(seed uint64) []bool {
		r := &Rate{P: 0.3, RNG: stats.NewRNG(seed)}
		out := make([]bool, 100)
		for i := range out {
			out[i] = r.Decide("op").Err != nil
		}
		return out
	}
	a, b := decide(5), decide(5)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded plans", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("rate 0.3 produced %d/100 faults", faults)
	}
}

func TestFailNRecovers(t *testing.T) {
	f := &FailN{N: 3}
	for i := 0; i < 3; i++ {
		if f.Decide("op").Err == nil {
			t.Fatalf("op %d should fault", i)
		}
	}
	for i := 0; i < 5; i++ {
		if f.Decide("op").Err != nil {
			t.Fatalf("op %d after recovery should pass", i)
		}
	}
}

func TestScriptSequence(t *testing.T) {
	s := &Script{Fail: []bool{true, false, true}}
	want := []bool{true, false, true, false, false}
	for i, w := range want {
		if got := s.Decide("op").Err != nil; got != w {
			t.Fatalf("op %d fault = %v, want %v", i, got, w)
		}
	}
}

func TestForOpsFilters(t *testing.T) {
	p := &ForOps{Plan: &FailN{N: 100}, Ops: []string{"store.Get"}}
	if p.Decide("store.Put").Err != nil {
		t.Fatal("unlisted op must pass")
	}
	if p.Decide("store.Get").Err == nil {
		t.Fatal("listed op must fault")
	}
}

func TestTransportInjectsAndCounts(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer hs.Close()
	tr := &Transport{Plan: &Script{Fail: []bool{true, false}}}
	c := &http.Client{Transport: tr}
	if _, err := c.Get(hs.URL); err == nil {
		t.Fatal("first request should fault")
	}
	resp, err := c.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Attempts.Load() != 2 || tr.Forwarded.Load() != 1 {
		t.Fatalf("attempts=%d forwarded=%d", tr.Attempts.Load(), tr.Forwarded.Load())
	}
}

func TestStoreWrapperInjects(t *testing.T) {
	inner := store.New([]byte("k"))
	fs := &Store{Inner: inner, Plan: &ForOps{Plan: &FailN{N: 1}, Ops: []string{"store.Put"}}}
	tok := fs.Sign("a/", store.PermWrite, 1e12)
	if err := fs.Put(tok, "a/x", []byte("1")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first Put should fault, got %v", err)
	}
	if err := fs.Put(tok, "a/x", []byte("1")); err != nil {
		t.Fatalf("second Put should pass: %v", err)
	}
	if _, err := fs.GetInternal("a/x"); err != nil {
		t.Fatal(err)
	}
	if got := fs.List("a/"); len(got) != 1 {
		t.Fatalf("List = %v", got)
	}
}
