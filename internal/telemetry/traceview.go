package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceNode is one span plus its causal children in an assembled trace.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// TraceTree is the result of assembling one trace's span fragments,
// gathered from any number of node rings, into a causal tree.
type TraceTree struct {
	// Roots are the tree tops, normally exactly one: the client send.
	Roots []*TraceNode
	// Orphans are spans whose parent is neither present nor the shared
	// synthesized root — broken propagation, and a drill failure.
	Orphans []Span
	// Synthesized reports that the root was not among the gathered spans
	// (the client was outside the fleet — e.g. curl — so its send span was
	// never recorded) and a placeholder root was invented from the one
	// parent ID every top-level span agreed on.
	Synthesized bool
}

// Spans returns every span in the tree in depth-first render order.
func (t TraceTree) Spans() []Span {
	var out []Span
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// Connected reports whether the fragments assembled into a single tree with
// no orphans — the acceptance gate for the fleet drill.
func (t TraceTree) Connected() bool {
	return len(t.Roots) == 1 && len(t.Orphans) == 0
}

// AssembleTrace joins span fragments (from any mix of node rings) for one
// trace ID into a causal tree. Spans from other traces are ignored;
// duplicate span IDs keep the first occurrence (a gather may read the same
// ring twice). When no recorded root exists but every unparented span
// agrees on one remote parent ID, that ID is synthesized as the root — the
// client-send placeholder for traces initiated outside the fleet.
func AssembleTrace(traceID string, spans []Span) TraceTree {
	byID := make(map[string]*TraceNode)
	var ordered []*TraceNode
	for _, s := range spans {
		if s.TraceID != traceID || s.SpanID == "" {
			continue
		}
		if _, dup := byID[s.SpanID]; dup {
			continue
		}
		n := &TraceNode{Span: s}
		byID[s.SpanID] = n
		ordered = append(ordered, n)
	}

	var tree TraceTree
	var unresolved []*TraceNode // parented, but parent not gathered
	for _, n := range ordered {
		switch {
		case n.Span.ParentID == "":
			tree.Roots = append(tree.Roots, n)
		case byID[n.Span.ParentID] != nil:
			p := byID[n.Span.ParentID]
			p.Children = append(p.Children, n)
		default:
			unresolved = append(unresolved, n)
		}
	}

	// No recorded root: if every unresolved span names the same missing
	// parent, that parent is the unrecorded client send — synthesize it.
	if len(tree.Roots) == 0 && len(unresolved) > 0 {
		parent := unresolved[0].Span.ParentID
		same := true
		for _, n := range unresolved[1:] {
			if n.Span.ParentID != parent {
				same = false
				break
			}
		}
		if same {
			root := &TraceNode{Span: Span{
				TraceID: traceID,
				SpanID:  parent,
				Name:    "client_send",
				Kind:    "client",
				Status:  "remote",
			}}
			root.Children = unresolved
			tree.Roots = []*TraceNode{root}
			tree.Synthesized = true
			unresolved = nil
		}
	}
	for _, n := range unresolved {
		tree.Orphans = append(tree.Orphans, n.Span)
	}

	sortNodes(tree.Roots)
	for _, n := range ordered {
		sortNodes(n.Children)
	}
	return tree
}

// sortNodes orders siblings by start time, then name, then span ID — a
// total order, so renders are deterministic even for zero-duration spans
// stamped by a fake clock.
func sortNodes(ns []*TraceNode) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].Span, ns[j].Span
		if a.StartUnix != b.StartUnix {
			return a.StartUnix < b.StartUnix
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.SpanID < b.SpanID
	})
}

// RenderTree writes the assembled trace as an indented causal tree with
// timings — the rockmon -trace output.
func RenderTree(w io.Writer, tree TraceTree) {
	var walk func(n *TraceNode, prefix string, last bool)
	walk = func(n *TraceNode, prefix string, last bool) {
		branch, childPrefix := prefix+"├─ ", prefix+"│  "
		if last {
			branch, childPrefix = prefix+"└─ ", prefix+"   "
		}
		if prefix == "" && !last {
			branch, childPrefix = "", ""
		}
		fmt.Fprintf(w, "%s%s\n", branch, renderSpan(n.Span))
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	for _, r := range tree.Roots {
		walk(r, "", false)
	}
	for _, o := range tree.Orphans {
		fmt.Fprintf(w, "ORPHAN %s\n", renderSpan(o))
	}
}

func renderSpan(s Span) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.Kind != "" {
		fmt.Fprintf(&b, " [%s]", s.Kind)
	}
	if s.Node != "" {
		fmt.Fprintf(&b, " @%s", s.Node)
	}
	if s.Status == "remote" {
		b.WriteString(" (unrecorded remote parent)")
	} else {
		fmt.Fprintf(&b, " %.3fms status=%s", s.DurationMS, s.Status)
	}
	if len(s.Annotations) > 0 {
		fmt.Fprintf(&b, " {%s}", strings.Join(s.Annotations, "; "))
	}
	fmt.Fprintf(&b, " span=%s", s.SpanID)
	if s.ParentID != "" {
		fmt.Fprintf(&b, " parent=%s", s.ParentID)
	}
	return b.String()
}
