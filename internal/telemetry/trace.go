package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// TraceHeader is the HTTP header carrying the trace identity, formatted as
// "<trace_id>-<span_id>" (two 16-digit lowercase hex words). The client mints
// it, the backend middleware honors it, and both attach it to their
// structured log lines so one request can be followed across processes.
const TraceHeader = "X-Rockhopper-Trace"

// SpanContext is a trace/span identity. The zero value means "untraced".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// String renders the header wire form, "<trace_id>-<span_id>".
func (sc SpanContext) String() string {
	return sc.TraceHex() + "-" + sc.SpanHex()
}

// TraceHex renders the trace half of the identity as 16 lowercase hex digits.
func (sc SpanContext) TraceHex() string { return fmt.Sprintf("%016x", sc.TraceID) }

// SpanHex renders the span half of the identity as 16 lowercase hex digits.
func (sc SpanContext) SpanHex() string { return fmt.Sprintf("%016x", sc.SpanID) }

// ParseTraceHeader decodes the wire form. It returns ok=false (never an
// error) on malformed input: a bad header from an old client must degrade to
// "untraced", not fail the request.
func ParseTraceHeader(s string) (SpanContext, bool) {
	t, sp, found := strings.Cut(strings.TrimSpace(s), "-")
	if !found || len(t) != 16 || len(sp) != 16 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := fmt.Sscanf(t, "%016x", &sc.TraceID); err != nil {
		return SpanContext{}, false
	}
	if _, err := fmt.Sscanf(sp, "%016x", &sc.SpanID); err != nil {
		return SpanContext{}, false
	}
	return sc, sc.Valid()
}

// IDSource is any deterministic random stream (stats.RNG satisfies it).
// Trace identity is minted from injected randomness so tracing never
// introduces ambient nondeterminism into experiment paths.
type IDSource interface{ Uint64() uint64 }

// Mint creates a fresh root span identity from src. IDs are forced nonzero
// so a minted context is always Valid.
func Mint(src IDSource) SpanContext {
	return SpanContext{TraceID: nonzero(src), SpanID: nonzero(src)}
}

// Child derives a new span under sc's trace. Minting a child of an invalid
// context mints a root instead.
func (sc SpanContext) Child(src IDSource) SpanContext {
	if !sc.Valid() {
		return Mint(src)
	}
	return SpanContext{TraceID: sc.TraceID, SpanID: nonzero(src)}
}

func nonzero(src IDSource) uint64 {
	for {
		if v := src.Uint64(); v != 0 {
			return v
		}
	}
}

type spanCtxKey struct{}

// WithSpan returns a context carrying sc.
func WithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFrom extracts the span identity from ctx (zero value if untraced).
func SpanFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// Span is one finished unit of work recorded in a SpanRing. Timestamps come
// from the recorder's injected clock; the ring itself never reads time.
//
// ParentID links the span into its trace's causal tree: empty means a root
// (the client send), otherwise it names the span that caused this one — on
// the same node via context carriage, or on another node via the span half
// of the X-Rockhopper-Trace header (the propagation contract: the header's
// span ID IS the parent of every span the receiver mints for that request).
type Span struct {
	TraceID    string  `json:"trace_id"`
	SpanID     string  `json:"span_id"`
	ParentID   string  `json:"parent_id,omitempty"`
	Name       string  `json:"name"`
	Kind       string  `json:"kind,omitempty"`
	Node       string  `json:"node,omitempty"`
	StartUnix  int64   `json:"start_unix_nano"`
	DurationMS float64 `json:"duration_ms"`
	Status     string  `json:"status"`
	// Annotations are bounded free-text notes (seq numbers, byte counts,
	// peer IDs) — never metric labels, so cardinality rules don't apply.
	Annotations []string `json:"annotations,omitempty"`
}

// SpanRing is a bounded in-memory buffer of recently finished spans, served
// at /api/trace for correlation without external infrastructure. A nil ring
// discards records, so span capture is optional at every call site.
type SpanRing struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	onEvict func()
}

// NewSpanRing returns a ring retaining the last n spans (n <= 0 yields a
// discarding ring).
func NewSpanRing(n int) *SpanRing {
	if n <= 0 {
		return nil
	}
	return &SpanRing{buf: make([]Span, n)}
}

// OnEvict installs a callback invoked once per span overwritten before it
// was ever read — the hook behind rockhopper_trace_spans_evicted_total, so
// silent span loss at fleet load is visible on a scrape. Install before the
// ring sees traffic; the callback runs outside the ring lock.
func (r *SpanRing) OnEvict(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onEvict = fn
	r.mu.Unlock()
}

// Record appends one span, evicting the oldest when full.
func (r *SpanRing) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	evicted := r.full
	fn := r.onEvict
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
	if evicted && fn != nil {
		fn()
	}
}

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
