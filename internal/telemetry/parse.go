package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family.
type Family struct {
	Name   string
	Type   string
	Help   string
	Series []Series
}

// Series is one parsed sample line. Name keeps the full sample name
// (including any _bucket/_sum/_count suffix) so histogram invariants can be
// checked by consumers. Exemplar is non-nil when the line carried an
// OpenMetrics exemplar suffix.
type Series struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *Exemplar
}

// ParseText parses Prometheus text exposition format — the inverse of
// WritePrometheus, used by rockmon's scrape mode and the CI series
// assertions. Histogram child samples (_bucket/_sum/_count) attach to their
// parent family. Unknown or malformed lines are errors: the wire format is
// ours, so leniency would only mask renderer bugs.
func ParseText(r io.Reader) ([]Family, error) {
	byName := make(map[string]*Family)
	var order []string
	fam := func(name string) *Family {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &Family{Name: name}
		byName[name] = f
		order = append(order, name)
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // non-HELP/TYPE comments are legal and ignored
			}
			f := fam(name)
			if kind == "HELP" {
				f.Help = rest
			} else {
				f.Type = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: parse line %d: %w", lineNo, err)
		}
		f := fam(familyName(s.Name, byName))
		f.Series = append(f.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]Family, 0, len(order))
	sort.Strings(order)
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

// parseComment splits "# HELP name text" / "# TYPE name kind".
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// familyName maps a sample name to its family, stripping histogram suffixes
// when the base family is a known histogram.
func familyName(sample string, byName map[string]*Family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(sample, suffix)
		if !found {
			continue
		}
		if f, ok := byName[base]; ok && f.Type == KindHistogram {
			return base
		}
	}
	return sample
}

// parseSample decodes one "name{labels} value" line.
func parseSample(line string) (Series, error) {
	s := Series{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
	}
	valStr := strings.TrimSpace(rest)
	// An exemplar suffix (` # {...} value`) splits off before the
	// trailing-fields check — it is the one legal thing after the value.
	if i := strings.Index(valStr, "#"); i >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(valStr[i+1:]))
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Exemplar = ex
		valStr = strings.TrimSpace(valStr[:i])
	}
	// A trailing timestamp would appear as a second field; we never emit one.
	if strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	s.Value = v
	return s, nil
}

// parseExemplar decodes `{trace_id="...",span_id="..."} value`.
func parseExemplar(s string) (*Exemplar, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("malformed exemplar %q", s)
	}
	labels := map[string]string{}
	rest, err := parseLabels(s[1:], labels)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %v", err)
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value in %q", s)
	}
	return &Exemplar{TraceID: labels["trace_id"], SpanID: labels["span_id"], Value: v}, nil
}

// parseLabels consumes `name="value",...}` and returns the remainder after
// the closing brace. Values may contain the \\, \", and \n escapes.
func parseLabels(rest string, into map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, ", ")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", fmt.Errorf("malformed label pair")
		}
		name := rest[:eq]
		rest = rest[eq+2:]
		var b strings.Builder
		for {
			if rest == "" {
				return "", fmt.Errorf("unterminated label value")
			}
			ch := rest[0]
			rest = rest[1:]
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if rest == "" {
					return "", fmt.Errorf("dangling escape")
				}
				esc := rest[0]
				rest = rest[1:]
				switch esc {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return "", fmt.Errorf("unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		into[name] = b.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Find returns the family with the given name, if present.
func Find(fams []Family, name string) (Family, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}
