package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format: families sorted by name, series sorted by label values, histogram
// buckets cumulative and closed by the mandatory +Inf/_sum/_count triple.
// Output is byte-deterministic for a given registry state — the golden
// conformance test pins the format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r = r.target()
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	if fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
		return nil
	}

	for _, c := range f.sortedChildren() {
		switch f.kind {
		case KindHistogram:
			var cum uint64
			for i, ub := range f.buckets {
				cum += c.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d%s\n",
					f.name, labelString(f.labels, c.values, "le", formatFloat(ub)), cum,
					exemplarString(c.exemplars[i].Load()))
			}
			fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				f.name, labelString(f.labels, c.values, "le", "+Inf"), c.count.Load(),
				exemplarString(c.exemplars[len(f.buckets)].Load()))
			fmt.Fprintf(w, "%s_sum%s %s\n",
				f.name, labelString(f.labels, c.values, "", ""), formatFloat(math.Float64frombits(c.sumBits.Load())))
			fmt.Fprintf(w, "%s_count%s %d\n",
				f.name, labelString(f.labels, c.values, "", ""), c.count.Load())
		default:
			fmt.Fprintf(w, "%s%s %s\n",
				f.name, labelString(f.labels, c.values, "", ""), formatFloat(math.Float64frombits(c.bits.Load())))
		}
	}
	return nil
}

// exemplarString renders a bucket's exemplar suffix in the OpenMetrics
// form ` # {trace_id="...",span_id="..."} value`, or nothing when the
// bucket has no traced observation — untraced registries keep emitting the
// exact byte stream the golden conformance test pins.
func exemplarString(ex *Exemplar) string {
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%s",span_id="%s"} %s`,
		escapeLabel(ex.TraceID), escapeLabel(ex.SpanID), formatFloat(ex.Value))
}

// labelString renders {k="v",...}; extraK/extraV append a synthetic label
// (the histogram "le"). Empty label sets render as nothing.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatFloat renders a sample value: shortest round-trip representation,
// with the exposition format's spellings for the non-finite values.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
