package telemetry

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// maxAnnotations bounds the free-text notes one span may carry, so a hot
// loop annotating a long-lived span cannot grow memory without bound.
const maxAnnotations = 8

// Tracer mints child spans and records the finished results into a ring.
// It is the one component that joins the three ingredients tracing needs —
// a span buffer, a clock, and an ID stream — all injected, so tracing adds
// no ambient nondeterminism: the clock is the owner's (fake in tests) and
// the IDs come from a dedicated RNG split, never from the experiment or
// jitter streams whose draw sequences determinism tests pin.
//
// A nil *Tracer is valid everywhere and records nothing, so span capture
// stays optional at every call site, mirroring the nil-SpanRing contract.
type Tracer struct {
	ring *SpanRing
	node string
	now  func() time.Time

	mu  sync.Mutex
	ids IDSource
}

// NewTracer builds a tracer recording into ring (nil discards), stamping
// each span with the owning node's ID, reading time from now, and minting
// span IDs from ids. A nil now or ids yields a nil tracer: a tracer that
// cannot time or name spans is indistinguishable from one that is off.
func NewTracer(ring *SpanRing, node string, now func() time.Time, ids IDSource) *Tracer {
	if now == nil || ids == nil {
		return nil
	}
	return &Tracer{ring: ring, node: node, now: now, ids: ids}
}

// Ring exposes the tracer's span buffer (nil when discarding).
func (t *Tracer) Ring() *SpanRing {
	if t == nil {
		return nil
	}
	return t.ring
}

func (t *Tracer) child(parent SpanContext) SpanContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	return parent.Child(t.ids)
}

func (t *Tracer) mint() SpanContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Mint(t.ids)
}

// Start opens a child span of the context's span identity. An untraced
// context returns (ctx, nil): the tracer honors trace identity on request
// paths, it never invents it — untraced traffic stays untraced, and the
// nil ActiveSpan makes every downstream Annotate/Finish a no-op.
func (t *Tracer) Start(ctx context.Context, name, kind string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	parent := SpanFrom(ctx)
	if !parent.Valid() {
		return ctx, nil
	}
	sp := t.open(t.child(parent), parent.SpanID, name, kind)
	return WithSpan(ctx, sp.sc), sp
}

// StartRoot opens a fresh root span — a deliberate trace origin (promotion
// replay, background sweeps) rather than a propagated one.
func (t *Tracer) StartRoot(ctx context.Context, name, kind string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	sp := t.open(t.mint(), 0, name, kind)
	return WithSpan(ctx, sp.sc), sp
}

// StartRemote opens a server-side child of an identity received off the
// wire: the span gets a fresh ID under the inbound trace, and the inbound
// span ID becomes its parent — the cross-node half of the propagation
// contract. An invalid inbound identity returns nil.
func (t *Tracer) StartRemote(inbound SpanContext, name, kind string) *ActiveSpan {
	if t == nil || !inbound.Valid() {
		return nil
	}
	return t.open(t.child(inbound), inbound.SpanID, name, kind)
}

// Adopt opens a span whose identity was minted elsewhere — the client mints
// its root from the call's own jitter stream so enabling tracing never
// shifts the retry-jitter draw sequence — and records it under this tracer's
// ring and clock. parent is 0 for a root.
func (t *Tracer) Adopt(sc SpanContext, parent uint64, name, kind string) *ActiveSpan {
	if t == nil || !sc.Valid() {
		return nil
	}
	return t.open(sc, parent, name, kind)
}

func (t *Tracer) open(sc SpanContext, parent uint64, name, kind string) *ActiveSpan {
	return &ActiveSpan{t: t, sc: sc, parent: parent, name: name, kind: kind, start: t.now()}
}

// ActiveSpan is one in-flight unit of work. Finish records it into the
// tracer's ring exactly once; every method is nil-safe so call sites never
// branch on whether tracing is on.
type ActiveSpan struct {
	t      *Tracer
	sc     SpanContext
	parent uint64
	name   string
	kind   string
	start  time.Time

	mu     sync.Mutex
	status string
	notes  []string
	done   bool
}

// Context returns the span's identity (zero for a nil span) — what a caller
// puts on the wire so remote work parents under this span.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Annotate attaches one bounded free-text note to the span.
func (s *ActiveSpan) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done || len(s.notes) >= maxAnnotations {
		return
	}
	s.notes = append(s.notes, fmt.Sprintf(format, args...))
}

// Finish closes the span with the given status and records it. Idempotent:
// only the first call records, so "defer sp.Finish(...)" backstopping an
// explicit success-path Finish is safe.
func (s *ActiveSpan) Finish(status string) {
	if s == nil {
		return
	}
	end := s.t.now()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.status = status
	notes := s.notes
	s.mu.Unlock()
	span := Span{
		TraceID:     s.sc.TraceHex(),
		SpanID:      s.sc.SpanHex(),
		Name:        s.name,
		Kind:        s.kind,
		Node:        s.t.node,
		StartUnix:   s.start.UnixNano(),
		DurationMS:  float64(end.Sub(s.start)) / float64(time.Millisecond),
		Status:      status,
		Annotations: notes,
	}
	if s.parent != 0 {
		span.ParentID = SpanContext{SpanID: s.parent}.SpanHex()
	}
	s.t.ring.Record(span)
}
