package telemetry

import (
	"context"
	"fmt"
	"testing"
)

// seqSource is a deterministic IDSource for tests.
type seqSource struct{ next uint64 }

func (s *seqSource) Uint64() uint64 { v := s.next; s.next++; return v }

func TestMintAndHeaderRoundTrip(t *testing.T) {
	src := &seqSource{} // first value is 0: Mint must skip it
	sc := Mint(src)
	if !sc.Valid() {
		t.Fatal("minted context invalid")
	}
	if sc.TraceID != 1 || sc.SpanID != 2 {
		t.Fatalf("mint consumed unexpected stream values: %+v", sc)
	}
	got, ok := ParseTraceHeader(sc.String())
	if !ok || got != sc {
		t.Fatalf("round-trip %q -> %+v ok=%v, want %+v", sc.String(), got, ok, sc)
	}
	if want := fmt.Sprintf("%016x-%016x", sc.TraceID, sc.SpanID); sc.String() != want {
		t.Errorf("String() = %q, want %q", sc.String(), want)
	}
}

func TestParseTraceHeaderMalformed(t *testing.T) {
	for _, bad := range []string{
		"", "junk", "00000000000000010000000000000002", // no separator
		"1-2",                                 // not 16 digits
		"000000000000000z-0000000000000002",   // bad hex
		"0000000000000000-0000000000000002",   // zero trace id
		"00000000000000001-000000000000002",   // wrong widths
		"0000000000000001-0000000000000002-3", // extra segment
	} {
		if sc, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted -> %+v", bad, sc)
		}
	}
}

func TestChildKeepsTrace(t *testing.T) {
	src := &seqSource{next: 5}
	root := Mint(src)
	child := root.Child(src)
	if child.TraceID != root.TraceID {
		t.Errorf("child switched traces: %+v vs %+v", child, root)
	}
	if child.SpanID == root.SpanID {
		t.Error("child reused parent span id")
	}
	orphan := SpanContext{}.Child(src)
	if !orphan.Valid() {
		t.Error("child of invalid context must mint a root")
	}
}

func TestContextCarriage(t *testing.T) {
	if got := SpanFrom(context.Background()); got.Valid() {
		t.Errorf("empty context carries %+v", got)
	}
	sc := SpanContext{TraceID: 7, SpanID: 9}
	ctx := WithSpan(context.Background(), sc)
	if got := SpanFrom(ctx); got != sc {
		t.Errorf("SpanFrom = %+v, want %+v", got, sc)
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(Span{Name: fmt.Sprintf("s%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Name != "s3" || got[2].Name != "s5" {
		t.Errorf("Snapshot = %+v, want oldest-first [s3 s4 s5]", got)
	}
}

func TestSpanRingPartial(t *testing.T) {
	r := NewSpanRing(8)
	r.Record(Span{Name: "a"})
	r.Record(Span{Name: "b"})
	got := r.Snapshot()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Errorf("Snapshot = %+v, want [a b]", got)
	}
}

func TestSpanRingNil(t *testing.T) {
	var r *SpanRing
	r.Record(Span{Name: "x"}) // must not panic
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil ring snapshot = %+v", got)
	}
	if NewSpanRing(0) != nil {
		t.Error("NewSpanRing(0) must return the discarding nil ring")
	}
}
