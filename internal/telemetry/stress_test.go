package telemetry

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// counters, gauges, histograms, child creation, and scrapes all racing —
// and then demands exact final values. Run under -race in CI.
func TestRegistryConcurrency(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	r := NewRegistry()
	c := r.Counter("stress_total", "c", "worker")
	g := r.Gauge("stress_gauge", "g")
	h := r.Histogram("stress_seconds", "h", []float64{0.5, 1})

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			// Alternate between two label values so child get-or-create
			// races too.
			me := []string{"even", "odd"}[w%2]
			for i := 0; i < iters; i++ {
				c.With(me).Inc()
				g.With().Add(1)
				h.With().Observe(float64(i%3) * 0.5)
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	var scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 4; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Errorf("scrape during writes: %v", err)
						return
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	const perLabel = goroutines / 2 * iters
	if got := c.With("even").Value(); got != perLabel {
		t.Errorf("even counter = %v, want %d", got, perLabel)
	}
	if got := c.With("odd").Value(); got != perLabel {
		t.Errorf("odd counter = %v, want %d", got, perLabel)
	}
	if got := g.With().Value(); got != goroutines*iters {
		t.Errorf("gauge = %v, want %d", got, goroutines*iters)
	}
	if got := h.With().Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	// Each iteration observes (i%3)*0.5 ∈ {0, 0.5, 1}: all land within the
	// bounded buckets, so the final scrape's +Inf bucket must equal count.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("final parse: %v", err)
	}
	hist, ok := Find(fams, "stress_seconds")
	if !ok {
		t.Fatal("stress_seconds missing from scrape")
	}
	for _, s := range hist.Series {
		if s.Name == "stress_seconds_bucket" && s.Labels["le"] == "+Inf" {
			if s.Value != goroutines*iters {
				t.Errorf("+Inf bucket = %v, want %d", s.Value, goroutines*iters)
			}
		}
	}
}
