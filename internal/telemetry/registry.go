// Package telemetry is Rockhopper's stdlib-only observability layer: a
// race-safe metrics registry (counters, gauges, histograms — all
// label-supporting) rendered in the Prometheus text exposition format, plus
// lightweight trace propagation (a context-carried trace/span identity sent
// over the X-Rockhopper-Trace header and recorded in a bounded span ring).
//
// The paper deploys Rockhopper behind a production monitoring dashboard
// because "robust in production" is unverifiable without per-stage
// visibility; this package is the shared substrate every layer publishes
// into — the backend's request accounting, the durable store's WAL timings,
// the client's retry/breaker/fallback counters, and the tuners' convergence
// gauges all land in one scrapeable registry.
//
// Design constraints:
//
//   - No third-party dependencies: the module stays zero-dep, so the
//     exposition format and its parser are implemented here and pinned by a
//     golden conformance test.
//   - No ambient time: the registry itself never reads the wall clock.
//     Durations are observed by callers through their injected
//     resilience.Clock, so metrics recording cannot break the repository's
//     determinism invariants (and rocklint's wallclock rule holds here too).
//   - Bounded cardinality is the caller's contract: label values must come
//     from small closed sets (endpoint names, call kinds, outcome classes).
//     DESIGN.md §8 records the catalogue and the cardinality rules.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefBuckets are the default histogram buckets (seconds), matching the
// conventional Prometheus client defaults so dashboards transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry is a set of metric families. All methods are safe for concurrent
// use, including registration racing with scrapes. A nil *Registry is valid:
// it hands out fully functional instruments that are simply never rendered,
// so optional instrumentation needs no nil checks at every observation site.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-global registry components publish to when
// none is injected; discard absorbs instruments minted off a nil *Registry.
var (
	defaultRegistry = NewRegistry()
	discard         = NewRegistry()
)

// Default returns the process-global registry. Daemons serve it at /metrics;
// library users reach it through rockhopper.Metrics(). Components accept an
// injected registry so tests can assert on isolated instances.
func Default() *Registry { return defaultRegistry }

// target resolves the nil-receiver convention.
func (r *Registry) target() *Registry {
	if r == nil {
		return discard
	}
	return r
}

// family is one named metric family: a kind, a label schema, and a child per
// distinct label-value tuple.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing

	mu       sync.Mutex
	children map[string]*child
	fn       func() float64 // gauge callback; nil for plain families
}

// Exemplar links one histogram bucket to the trace that produced its most
// recent observation — the OpenMetrics exemplar mechanism, which lets a
// dashboard jump from a latency bucket straight to the span behind it.
type Exemplar struct {
	TraceID string
	SpanID  string
	Value   float64
}

// child is one series: a label-value tuple plus its value cells. Counters
// and gauges live in bits (math.Float64bits); histograms use per-bucket
// counts plus sumBits/count. All cells are atomics so observation never
// takes a lock.
type child struct {
	values  []string
	bits    atomic.Uint64
	counts  []atomic.Uint64 // one per bucket; +Inf is implicit in count
	sumBits atomic.Uint64
	count   atomic.Uint64
	// exemplars holds one slot per bucket plus the +Inf bucket (last),
	// each the most recent traced observation to land there.
	exemplars []atomic.Pointer[Exemplar]
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// register get-or-creates a family, panicking on an incompatible
// redefinition — metric shapes are program constants, and a silent rename
// would split one logical series across two names.
func (r *Registry) register(kind, name, help string, buckets []float64, labels []string) *family {
	r = r.target()
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) || (kind == KindHistogram && l == "le") {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l, name))
		}
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s buckets must be strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor get-or-creates the series for one label-value tuple.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			c.counts = make([]atomic.Uint64, len(f.buckets))
			c.exemplars = make([]atomic.Pointer[Exemplar], len(f.buckets)+1)
		}
		f.children[key] = c
	}
	return c
}

// sortedChildren snapshots the family's series in deterministic label order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Counter registers (or fetches) a monotonically increasing counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := r.register(KindCounter, name, help, nil, labels)
	v := &CounterVec{f: f}
	if len(labels) == 0 {
		v.With() // materialize the single series so it renders as 0
	}
	return v
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := r.register(KindGauge, name, help, nil, labels)
	v := &GaugeVec{f: f}
	if len(labels) == 0 {
		v.With()
	}
	return v
}

// Histogram registers (or fetches) a histogram family with the given upper
// bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(KindHistogram, name, help, buckets, labels)
	v := &HistogramVec{f: f}
	if len(labels) == 0 {
		v.With()
	}
	return v
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time —
// queue depths and store sizes stay truthful without a writer goroutine.
// Re-registering replaces the callback (a restarted component re-binds the
// gauge to its live state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(KindGauge, name, help, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label-value tuple, creating it at zero.
func (v *CounterVec) With(values ...string) Counter { return Counter{v.f.childFor(values)} }

// Series returns every materialized series, sorted by label values.
func (v *CounterVec) Series() []SeriesValue { return seriesOf(v.f) }

// Counter is one counter series.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative.
func (c Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decrease")
	}
	addFloat(&c.c.bits, v)
}

// Value returns the current count.
func (c Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value tuple, creating it at zero.
func (v *GaugeVec) With(values ...string) Gauge { return Gauge{v.f.childFor(values)} }

// Series returns every materialized series, sorted by label values.
func (v *GaugeVec) Series() []SeriesValue { return seriesOf(v.f) }

// Gauge is one gauge series.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds v (negative deltas allowed).
func (g Gauge) Add(v float64) { addFloat(&g.c.bits, v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) Histogram {
	return Histogram{f: v.f, c: v.f.childFor(values)}
}

// Histogram is one histogram series.
type Histogram struct {
	f *family
	c *child
}

// Observe records one sample.
func (h Histogram) Observe(v float64) { h.ObserveTraced(v, SpanContext{}) }

// ObserveTraced records one sample and, when sc is a valid span identity,
// pins it as the bucket's exemplar — the renderer emits it so a scrape can
// link the bucket to the exact request trace that landed there. An invalid
// sc degrades to a plain Observe.
func (h Histogram) ObserveTraced(v float64, sc SpanContext) {
	// First bucket whose upper bound admits v; beyond the last bound the
	// sample lands only in the implicit +Inf bucket (count).
	i := sort.SearchFloat64s(h.f.buckets, v)
	if i < len(h.f.buckets) {
		h.c.counts[i].Add(1)
	}
	addFloat(&h.c.sumBits, v)
	h.c.count.Add(1)
	if sc.Valid() {
		h.c.exemplars[i].Store(&Exemplar{TraceID: sc.TraceHex(), SpanID: sc.SpanHex(), Value: v})
	}
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.c.count.Load() }

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.c.sumBits.Load()) }

// SeriesValue is one materialized series' label values and current value
// (for histograms, the observation count).
type SeriesValue struct {
	Labels []string
	Value  float64
}

func seriesOf(f *family) []SeriesValue {
	var out []SeriesValue
	for _, c := range f.sortedChildren() {
		v := math.Float64frombits(c.bits.Load())
		if f.kind == KindHistogram {
			v = float64(c.count.Load())
		}
		out = append(out, SeriesValue{Labels: append([]string(nil), c.values...), Value: v})
	}
	return out
}
