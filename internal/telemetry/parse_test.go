package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestParseTextBasics(t *testing.T) {
	const in = `# some free-form comment
# HELP a_total things
# TYPE a_total counter
a_total{k="v,with=\"quotes\" and \\slash\n"} 3
a_total{k="plain"} +Inf
# TYPE b_gauge gauge
b_gauge 2.5
`
	fams, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	a, ok := Find(fams, "a_total")
	if !ok || a.Type != KindCounter || a.Help != "things" || len(a.Series) != 2 {
		t.Fatalf("a_total parsed wrong: %+v", a)
	}
	if got := a.Series[0].Labels["k"]; got != "v,with=\"quotes\" and \\slash\n" {
		t.Errorf("escape decode = %q", got)
	}
	if !math.IsInf(a.Series[1].Value, 1) {
		t.Errorf("+Inf value = %v", a.Series[1].Value)
	}
	b, _ := Find(fams, "b_gauge")
	if b.Series[0].Value != 2.5 {
		t.Errorf("b_gauge = %v", b.Series[0].Value)
	}
}

func TestParseTextHistogramAttachment(t *testing.T) {
	const in = `# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 1
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 3.5
h_seconds_count 2
`
	fams, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(fams) != 1 {
		t.Fatalf("histogram children must attach to one family, got %d: %+v", len(fams), fams)
	}
	if len(fams[0].Series) != 4 {
		t.Errorf("series = %d, want 4", len(fams[0].Series))
	}
}

func TestParseTextMalformed(t *testing.T) {
	for _, in := range []string{
		"a_total{k=\"unterminated} 1\n",
		"a_total{k=\"v\"} notanumber\n",
		"a_total{k=\"bad\\escape\"} 1\n",
		"novalue\n",
		"a_total 1 2 3\n",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", in)
		}
	}
}

func TestFindMissing(t *testing.T) {
	if _, ok := Find(nil, "nope"); ok {
		t.Error("Find on empty set returned ok")
	}
}
