package telemetry

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

// goldenRegistry builds the fixed registry state pinned by testdata/golden.prom.
func goldenRegistry() *Registry {
	r := NewRegistry()

	req := r.Counter("rh_requests_total", "Requests by endpoint and status code class.", "endpoint", "code")
	req.With("events", "2xx").Add(3)
	req.With("object", "4xx").Inc()
	req.With("object", "2xx").Add(2)

	r.Counter("rh_retrains_total", "Model retrains.")

	r.GaugeFunc("rh_queue_depth", "Updater queue depth.", func() float64 { return 7 })

	best := r.Gauge("rh_best_cost_ms", "Best observed cost per signature.", "signature")
	best.With("q7\"\\\nend").Set(12.5)

	lat := r.Histogram("rh_latency_seconds", "Request latency.", []float64{0.25, 0.5, 2}, "endpoint")
	h := lat.With("events")
	for _, v := range []float64{0.125, 0.5, 1, 4} {
		h.Observe(v)
	}
	return r
}

func render(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenConformance pins the exact exposition bytes: family ordering,
// label escaping, histogram +Inf/_sum/_count closure, deterministic series
// order.
func TestGoldenConformance(t *testing.T) {
	got := render(t, goldenRegistry())
	want, err := os.ReadFile("testdata/golden.prom")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderDeterministic renders the same state twice and demands identical
// bytes — map iteration order must never leak into the wire format.
func TestRenderDeterministic(t *testing.T) {
	r := goldenRegistry()
	for i := 0; i < 10; i++ {
		if a, b := render(t, r), render(t, r); !bytes.Equal(a, b) {
			t.Fatalf("render %d not deterministic:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestParseRoundTrip feeds the renderer's output back through ParseText and
// checks structure survives, including escaped label values.
func TestParseRoundTrip(t *testing.T) {
	fams, err := ParseText(bytes.NewReader(render(t, goldenRegistry())))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(fams) != 5 {
		t.Fatalf("got %d families, want 5", len(fams))
	}

	best, ok := Find(fams, "rh_best_cost_ms")
	if !ok || len(best.Series) != 1 {
		t.Fatalf("rh_best_cost_ms missing or wrong arity: %+v", best)
	}
	if got := best.Series[0].Labels["signature"]; got != "q7\"\\\nend" {
		t.Errorf("label escaping did not round-trip: %q", got)
	}
	if best.Series[0].Value != 12.5 {
		t.Errorf("value = %v, want 12.5", best.Series[0].Value)
	}

	lat, ok := Find(fams, "rh_latency_seconds")
	if !ok || lat.Type != KindHistogram {
		t.Fatalf("rh_latency_seconds missing or not histogram: %+v", lat)
	}
	// Histogram invariants: cumulative buckets, +Inf == _count, _sum present.
	var infCount, count, sum float64
	prev := -1.0
	for _, s := range lat.Series {
		switch s.Name {
		case "rh_latency_seconds_bucket":
			if s.Value < prev {
				t.Errorf("bucket counts not cumulative: %v after %v", s.Value, prev)
			}
			prev = s.Value
			if s.Labels["le"] == "+Inf" {
				infCount = s.Value
			}
		case "rh_latency_seconds_count":
			count = s.Value
		case "rh_latency_seconds_sum":
			sum = s.Value
		}
	}
	if infCount != 4 || count != 4 {
		t.Errorf("+Inf bucket %v and _count %v must both be 4", infCount, count)
	}
	if sum != 5.625 {
		t.Errorf("_sum = %v, want 5.625", sum)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "fine", "a")
	mustPanic(t, "kind mismatch", func() { r.Gauge("ok_total", "redefined", "a") })
	mustPanic(t, "label mismatch", func() { r.Counter("ok_total", "redefined", "b") })
	mustPanic(t, "bad metric name", func() { r.Counter("bad-name", "h") })
	mustPanic(t, "bad label name", func() { r.Counter("x_total", "h", "0bad") })
	mustPanic(t, "le on histogram", func() { r.Histogram("h_seconds", "h", nil, "le") })
	mustPanic(t, "non-increasing buckets", func() { r.Histogram("h2_seconds", "h", []float64{1, 1}) })
	mustPanic(t, "label arity", func() { r.Counter("y_total", "h", "a").With("1", "2") })
	mustPanic(t, "counter decrease", func() { r.Counter("z_total", "h").With().Add(-1) })
}

// TestNilRegistry verifies the discard convention: a nil *Registry hands out
// working instruments and renders nothing.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("nil_total", "absorbed")
	c.With().Inc()
	g := r.Gauge("nil_gauge", "absorbed")
	g.With().Set(3)
	h := r.Histogram("nil_seconds", "absorbed", nil)
	h.With().Observe(0.1)
	if got := c.With().Value(); got != 1 {
		t.Errorf("nil-registry counter = %v, want 1", got)
	}
	// The shared discard registry must never leak into real scrapes; only
	// check that rendering a nil registry does not crash.
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil render: %v", err)
	}
}

func TestGaugeFuncRebind(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "d", func() float64 { return 1 })
	r.GaugeFunc("depth", "d", func() float64 { return 2 })
	out := string(render(t, r))
	if !strings.Contains(out, "depth 2\n") {
		t.Errorf("GaugeFunc re-register did not replace callback:\n%s", out)
	}
}

func TestHistogramBeyondLastBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1}).With()
	h.Observe(100)
	if h.Count() != 1 || h.Sum() != 100 {
		t.Errorf("count=%d sum=%v, want 1/100", h.Count(), h.Sum())
	}
	out := string(render(t, r))
	if !strings.Contains(out, `h_seconds_bucket{le="1"} 0`) ||
		!strings.Contains(out, `h_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("out-of-range sample must land only in +Inf:\n%s", out)
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		3:            "3",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestSeriesAccessor(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s_total", "h", "k")
	c.With("b").Add(2)
	c.With("a").Inc()
	got := c.Series()
	if len(got) != 2 || got[0].Labels[0] != "a" || got[0].Value != 1 || got[1].Value != 2 {
		t.Errorf("Series() = %+v, want sorted [a=1 b=2]", got)
	}
}
