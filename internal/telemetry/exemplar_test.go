package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestExemplarRendersAndParsesBack(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_seconds", "Demo latency.", []float64{0.1, 1}, "endpoint").With("events")
	sc := SpanContext{TraceID: 0x0123456789abcdef, SpanID: 0xfedcba9876543210}
	h.ObserveTraced(0.05, sc) // first bucket
	h.ObserveTraced(42, sc)   // beyond the last bound: +Inf bucket
	h.Observe(0.5)            // untraced; must not grow an exemplar

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `# {trace_id="0123456789abcdef",span_id="fedcba9876543210"} 0.05`) {
		t.Fatalf("rendered text lacks the bucket exemplar:\n%s", text)
	}

	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText on exemplar output: %v", err)
	}
	fam, ok := Find(fams, "demo_seconds")
	if !ok {
		t.Fatal("demo_seconds family missing")
	}
	byLE := map[string]*Series{}
	for i := range fam.Series {
		s := &fam.Series[i]
		if strings.HasSuffix(s.Name, "_bucket") {
			byLE[s.Labels["le"]] = s
		}
	}
	first := byLE["0.1"]
	if first == nil || first.Exemplar == nil {
		t.Fatalf("first bucket lost its exemplar: %+v", first)
	}
	if first.Exemplar.TraceID != sc.TraceHex() || first.Exemplar.SpanID != sc.SpanHex() {
		t.Fatalf("exemplar identity = %+v, want trace %s span %s", first.Exemplar, sc.TraceHex(), sc.SpanHex())
	}
	if first.Exemplar.Value != 0.05 {
		t.Fatalf("exemplar value = %v, want 0.05", first.Exemplar.Value)
	}
	inf := byLE["+Inf"]
	if inf == nil || inf.Exemplar == nil || inf.Exemplar.Value != 42 {
		t.Fatalf("+Inf bucket exemplar = %+v, want value 42", inf)
	}
	mid := byLE["1"]
	if mid == nil || mid.Exemplar != nil {
		t.Fatalf("untraced bucket grew an exemplar: %+v", mid)
	}
	// The histogram's own accounting must be untouched by exemplar wiring.
	if inf.Value != 3 {
		t.Fatalf("+Inf cumulative count = %v, want 3", inf.Value)
	}
}

// TestExemplarSurvivesScrape drives the same path rockmon's scrape mode
// uses: GET the registry handler, parse the body, read the exemplar.
func TestExemplarSurvivesScrape(t *testing.T) {
	reg := NewRegistry()
	sc := SpanContext{TraceID: 0xaaaa, SpanID: 0xbbbb}
	reg.Histogram("scrape_seconds", "Scrape demo.", []float64{1}).With().ObserveTraced(0.2, sc)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape parse: %v", err)
	}
	fam, ok := Find(fams, "scrape_seconds")
	if !ok {
		t.Fatal("scrape_seconds family missing from scrape")
	}
	for _, s := range fam.Series {
		if s.Name == "scrape_seconds_bucket" && s.Labels["le"] == "1" {
			if s.Exemplar == nil {
				t.Fatal("scraped bucket lost its exemplar")
			}
			if s.Exemplar.TraceID != sc.TraceHex() || s.Exemplar.SpanID != sc.SpanHex() {
				t.Fatalf("scraped exemplar = %+v", s.Exemplar)
			}
			return
		}
	}
	t.Fatal("bucket series missing from scrape")
}

func TestExemplarAbsentKeepsPlainFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("plain_seconds", "No traces.", []float64{1}).With().Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#  {") || strings.Contains(buf.String(), "} 0.5 #") {
		t.Fatalf("untraced histogram emitted an exemplar:\n%s", buf.String())
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "plain_seconds_bucket") && strings.Contains(line, "#") {
			t.Fatalf("untraced bucket line carries an exemplar: %q", line)
		}
	}
}
