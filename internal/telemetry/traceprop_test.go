package telemetry

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// propRNG is a deterministic xorshift64* stream — the property trials need
// reproducible randomness without touching the global RNG.
type propRNG struct{ s uint64 }

func (r *propRNG) Uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

func (r *propRNG) intn(n int) int { return int(r.Uint64() % uint64(n)) }

// TestTraceHeaderRoundTripProperty: any valid span context must survive the
// wire (render → parse) exactly, and malformed headers must degrade to
// "untraced" rather than fail.
func TestTraceHeaderRoundTripProperty(t *testing.T) {
	rng := &propRNG{s: 1}
	for i := 0; i < 2000; i++ {
		sc := Mint(rng)
		got, ok := ParseTraceHeader(sc.String())
		if !ok || got != sc {
			t.Fatalf("round-trip %d: %v -> %q -> %v ok=%v", i, sc, sc.String(), got, ok)
		}
	}
	for _, bad := range []string{"", "-", "abc", "00000000000000ab", "00000000000000ab-xyz",
		"00000000000000ab-00000000000000", "0000000000000000-00000000000000cd"} {
		if sc, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) = %v, ok — want untraced", bad, sc)
		}
	}
}

// TestTraceTreeRoundTripProperty is the propagation-contract property test:
// random causal trees are built across three simulated nodes — every hop
// rendered through the X-Rockhopper-Trace wire form and re-parsed, exactly
// as an HTTP boundary would — then each node's ring is serialized through
// the /api/trace JSON shape, gathered in arbitrary order (with one fragment
// duplicated, as a double-scrape would), and reassembled. Every parent/child
// link must survive, and the result must be a single connected tree.
func TestTraceTreeRoundTripProperty(t *testing.T) {
	rng := &propRNG{s: 0xfeed}
	for trial := 0; trial < 40; trial++ {
		now := time.Unix(1700000000, 0)
		clock := func() time.Time { return now }
		nodes := []string{"a", "b", "c"}
		rings := make([]*SpanRing, len(nodes))
		tracers := make([]*Tracer, len(nodes))
		for i, id := range nodes {
			rings[i] = NewSpanRing(256)
			tracers[i] = NewTracer(rings[i], id, clock, &propRNG{s: rng.Uint64() | 1})
		}

		// Grow a random tree. Each non-root span crosses a simulated HTTP
		// boundary: the parent's identity is rendered to the header wire form,
		// re-parsed, and handed to a randomly-chosen node's StartRemote.
		type liveSpan struct {
			sc   SpanContext
			span *ActiveSpan
		}
		_, root := tracers[0].StartRoot(t.Context(), "client_send", "client")
		if root == nil {
			t.Fatal("StartRoot returned nil span")
		}
		live := []liveSpan{{root.Context(), root}}
		wantParent := map[string]string{root.Context().SpanHex(): ""}
		total := 1 + rng.intn(30)
		for i := 1; i < total; i++ {
			parent := live[rng.intn(len(live))]
			tr := tracers[rng.intn(len(tracers))]
			wire := parent.sc.String()
			sc, ok := ParseTraceHeader(wire)
			if !ok || sc != parent.sc {
				t.Fatalf("trial %d: header round-trip corrupted %v -> %q -> %v", trial, parent.sc, wire, sc)
			}
			sp := tr.StartRemote(sc, fmt.Sprintf("span%d", i), "server")
			if sp == nil {
				t.Fatalf("trial %d: StartRemote rejected a valid context", trial)
			}
			if rng.intn(2) == 0 {
				sp.Annotate("hop %d", i)
			}
			live = append(live, liveSpan{sp.Context(), sp})
			wantParent[sp.Context().SpanHex()] = parent.sc.SpanHex()
		}
		for _, ls := range live {
			now = now.Add(time.Duration(1+rng.intn(5)) * time.Millisecond)
			ls.span.Finish("ok")
		}

		// Gather: serialize each ring through the /api/trace JSON wire form,
		// concatenated in a rotated order with one fragment duplicated.
		var gathered []Span
		start := rng.intn(len(rings))
		for i := 0; i <= len(rings); i++ { // <= duplicates the first fragment
			snap := rings[(start+i)%len(rings)].Snapshot()
			blob, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var back []Span
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatalf("trial %d: /api/trace round-trip: %v", trial, err)
			}
			gathered = append(gathered, back...)
		}

		tree := AssembleTrace(root.Context().TraceHex(), gathered)
		if !tree.Connected() || tree.Synthesized {
			t.Fatalf("trial %d: tree not connected: roots=%d orphans=%d synthesized=%v",
				trial, len(tree.Roots), len(tree.Orphans), tree.Synthesized)
		}
		got := tree.Spans()
		if len(got) != total {
			t.Fatalf("trial %d: assembled %d spans, created %d", trial, len(got), total)
		}
		for _, s := range got {
			if want, ok := wantParent[s.SpanID]; !ok {
				t.Fatalf("trial %d: span %s was never created", trial, s.SpanID)
			} else if s.ParentID != want {
				t.Fatalf("trial %d: span %s parent = %q, want %q", trial, s.SpanID, s.ParentID, want)
			}
			if s.Status != "ok" || s.DurationMS <= 0 {
				t.Fatalf("trial %d: span %s lost status/duration: %+v", trial, s.SpanID, s)
			}
		}
	}
}

// TestAssembleSynthesizedRoot: a trace initiated outside the fleet (curl —
// no recorded client span) must still assemble: the shared missing parent
// becomes a synthesized client_send root, and disagreeing parents stay
// orphans so broken propagation cannot masquerade as a connected tree.
func TestAssembleSynthesizedRoot(t *testing.T) {
	spans := []Span{
		{TraceID: "t1", SpanID: "s1", ParentID: "p0", Name: "events"},
		{TraceID: "t1", SpanID: "s2", ParentID: "s1", Name: "wal_append"},
		{TraceID: "t1", SpanID: "s3", ParentID: "p0", Name: "hop"},
	}
	tree := AssembleTrace("t1", spans)
	if !tree.Connected() || !tree.Synthesized {
		t.Fatalf("connected=%v synthesized=%v, want both", tree.Connected(), tree.Synthesized)
	}
	if got := tree.Roots[0].Span; got.Name != "client_send" || got.SpanID != "p0" || got.Status != "remote" {
		t.Fatalf("synthesized root = %+v", got)
	}

	// Two distinct missing parents: no synthesis, orphans surface.
	broken := append(spans[:2:2], Span{TraceID: "t1", SpanID: "s4", ParentID: "px", Name: "stray"})
	tree = AssembleTrace("t1", broken)
	if tree.Connected() || tree.Synthesized {
		t.Fatalf("disagreeing parents assembled: %+v", tree)
	}
}
