package perfsuite

import (
	"encoding/json"
	"strings"
	"testing"
)

func report(results []Result, derived map[string]float64) *Report {
	r := &Report{Schema: Schema, Suite: SuiteName, Results: results, Derived: derived}
	if r.Derived == nil {
		r.Derived = map[string]float64{}
	}
	return r
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	oldRep := report([]Result{{Name: "eventlog_encode", NsPerOp: 100, AllocsPerOp: 0}}, nil)
	newRep := report([]Result{{Name: "eventlog_encode", NsPerOp: 100, AllocsPerOp: 2}}, nil)
	regs, _ := Compare(oldRep, newRep, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Metric, "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
	// The reverse direction (fewer allocations) is an improvement, not a
	// regression.
	regs, _ = Compare(newRep, oldRep, 0.25)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareDerivedRatioTolerance(t *testing.T) {
	oldRep := report(nil, map[string]float64{"gp_update_speedup_n1024": 40})
	within := report(nil, map[string]float64{"gp_update_speedup_n1024": 31})
	beyond := report(nil, map[string]float64{"gp_update_speedup_n1024": 29})
	if regs, _ := Compare(oldRep, within, 0.25); len(regs) != 0 {
		t.Fatalf("drop within tolerance flagged: %v", regs)
	}
	regs, _ := Compare(oldRep, beyond, 0.25)
	if len(regs) != 1 || regs[0].Metric != "gp_update_speedup_n1024" {
		t.Fatalf("want ratio regression, got %v", regs)
	}
	// A higher ratio is never a regression.
	if regs, _ := Compare(oldRep, report(nil, map[string]float64{"gp_update_speedup_n1024": 400}), 0.25); len(regs) != 0 {
		t.Fatalf("speedup flagged as regression: %v", regs)
	}
}

func TestCompareNsPerOpIsAdvisoryOnly(t *testing.T) {
	oldRep := report([]Result{{Name: "wal_append", NsPerOp: 100}}, nil)
	newRep := report([]Result{{Name: "wal_append", NsPerOp: 1000}}, nil)
	regs, notes := Compare(oldRep, newRep, 0.25)
	if len(regs) != 0 {
		t.Fatalf("raw ns/op must never fail a comparison, got %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "advisory") {
		t.Fatalf("want one advisory note, got %v", notes)
	}
}

func TestCheckFloors(t *testing.T) {
	good := report(
		[]Result{{Name: "eventlog_encode"}, {Name: "eventlog_decode"}},
		map[string]float64{"gp_update_speedup_n1024": 12},
	)
	if bad := CheckFloors(good); len(bad) != 0 {
		t.Fatalf("clean report failed floors: %v", bad)
	}
	slow := report(nil, map[string]float64{"gp_update_speedup_n1024": 3})
	if bad := CheckFloors(slow); len(bad) != 1 {
		t.Fatalf("want speedup floor violation, got %v", bad)
	}
	leaky := report(
		[]Result{{Name: "eventlog_decode", AllocsPerOp: 4}},
		map[string]float64{"gp_update_speedup_n1024": 12},
	)
	if bad := CheckFloors(leaky); len(bad) != 1 {
		t.Fatalf("want alloc floor violation, got %v", bad)
	}
	missing := report(nil, nil)
	if bad := CheckFloors(missing); len(bad) != 1 {
		t.Fatalf("full report without the n=1024 ratio must fail, got %v", bad)
	}
	missing.Short = true
	if bad := CheckFloors(missing); len(bad) != 0 {
		t.Fatalf("short report wrongly held to the n=1024 floor: %v", bad)
	}
}

// TestRunShortSuite executes the real short suite end to end: every spec
// must complete, the report must round-trip through JSON, and the floors
// that apply to short runs must hold. This is the same code path
// `rockbench -json -short` takes in CI.
func TestRunShortSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full short benchmark suite; skipped with -short")
	}
	rep, err := Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(Specs(true)) {
		t.Fatalf("got %d results for %d specs", len(rep.Results), len(Specs(true)))
	}
	for _, r := range rep.Results {
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}
	if v, ok := rep.Derived["gp_update_speedup_n256"]; !ok || v <= 1 {
		t.Fatalf("incremental update not faster than refit at n=256: %v (ok=%v)", v, ok)
	}
	if bad := CheckFloors(rep); len(bad) != 0 {
		t.Fatalf("short suite violates floors: %v", bad)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Suite != SuiteName || len(back.Results) != len(rep.Results) {
		t.Fatalf("report did not round-trip: %+v", back)
	}
}

// BenchmarkSuite exposes every pinned spec under `go test -bench` so
// individual entries can be profiled with the standard toolchain flags
// (-benchtime, -cpuprofile, ...).
func BenchmarkSuite(b *testing.B) {
	for _, s := range Specs(true) {
		b.Run(s.Name, s.Fn)
	}
}
