// Package perfsuite defines the pinned performance-trajectory suite behind
// `rockbench -json` and `rockbench -compare`: a fixed set of named
// micro/macro benchmarks over the hot paths the tuning loop actually pays
// for — GP fit/predict/incremental-update at several design sizes, the
// event-log codec, WAL append/replay, embedding computation, and one
// end-to-end tuner iteration.
//
// A run produces a schema-versioned Report. Reports are committed to the
// repository (BENCH_<n>.json) so the project carries its performance
// trajectory in-tree, and Compare diffs two reports with a noise threshold.
// Because committed baselines travel across machines, Compare is strict
// only about machine-independent metrics: allocation counts (deterministic)
// and derived ratios such as the incremental-GP speedup (both sides of the
// ratio move together with CPU speed). Raw ns/op is reported for trend
// reading but never fails a comparison — see DESIGN.md §9.
package perfsuite

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = 1

// SuiteName tags reports produced by this package.
const SuiteName = "rockhopper-perf"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// Report is the schema-versioned output of one suite run.
type Report struct {
	Schema    int    `json:"schema"`
	Suite     string `json:"suite"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Short     bool   `json:"short"`
	// Results holds the raw per-benchmark measurements in suite order.
	Results []Result `json:"results"`
	// Derived holds machine-independent ratio metrics computed from Results
	// (e.g. gp_update_speedup_n1024 = fit ns / incremental-update ns).
	// These, plus allocation counts, are what Compare enforces.
	Derived map[string]float64 `json:"derived"`
}

// Spec is one pinned benchmark: a stable name and a standard testing.B body.
type Spec struct {
	Name string
	Fn   func(b *testing.B)
}

// Run executes the pinned suite (Specs) and assembles the Report. short
// trims the most expensive entries (the n=1024 GP sizes and WAL replay
// stay, but fit repetitions are capped by testing.Benchmark's budget).
func Run(short bool) (*Report, error) {
	rep := &Report{
		Schema:    Schema,
		Suite:     SuiteName,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Short:     short,
		Derived:   map[string]float64{},
	}
	for _, s := range Specs(short) {
		br := testing.Benchmark(s.Fn)
		if br.N == 0 {
			return nil, fmt.Errorf("perfsuite: benchmark %s did not run", s.Name)
		}
		rep.Results = append(rep.Results, Result{
			Name:        s.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: uint64(br.AllocsPerOp()),
			BytesPerOp:  uint64(br.AllocedBytesPerOp()),
		})
	}
	deriveRatios(rep)
	return rep, nil
}

// deriveRatios computes the machine-independent metrics from raw results.
func deriveRatios(rep *Report) {
	ns := map[string]float64{}
	for _, r := range rep.Results {
		ns[r.Name] = r.NsPerOp
	}
	for _, n := range []int{64, 256, 1024} {
		fit, okF := ns[fmt.Sprintf("gp_fit_n%d", n)]
		upd, okU := ns[fmt.Sprintf("gp_update_n%d", n)]
		if okF && okU && upd > 0 {
			rep.Derived[fmt.Sprintf("gp_update_speedup_n%d", n)] = fit / upd
		}
	}
	// Group-commit amortization: how much cheaper 512 mutations are as one
	// batch (one WAL record, one fsync) than as 512 standalone synced
	// appends. Both sides pay real fsyncs, so this is the production win.
	single, okS := ns["wal_append_sync"]
	batch, okB := ns[fmt.Sprintf("wal_batch_append_%d", 512)]
	if okS && okB && batch > 0 {
		rep.Derived["wal_batch_amortization_512"] = single * 512 / batch
	}
	// The embedding memo's win is allocation-freeness, not ns/op (the
	// fingerprint guard walks the plan just as Embed does), so it gets no
	// derived ratio; its raw results carry the alloc counts Compare enforces.
}

// Regression is one comparison failure.
type Regression struct {
	Metric string
	Old    float64
	New    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.6g -> %.6g", r.Metric, r.Old, r.New)
}

// Compare diffs two reports over the metrics both contain. tol is the
// fractional noise threshold for derived ratios (0.25 = a ratio may degrade
// by up to 25% before it counts as a regression). Allocation counts are
// compared exactly: they are deterministic, so any increase is a
// regression. Raw ns/op differences are returned as advisory notes only.
func Compare(oldRep, newRep *Report, tol float64) (regs []Regression, notes []string) {
	oldRes := map[string]Result{}
	for _, r := range oldRep.Results {
		oldRes[r.Name] = r
	}
	for _, nr := range newRep.Results {
		or, ok := oldRes[nr.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new benchmark (no baseline)", nr.Name))
			continue
		}
		if nr.AllocsPerOp > or.AllocsPerOp {
			regs = append(regs, Regression{Metric: nr.Name + " allocs/op", Old: float64(or.AllocsPerOp), New: float64(nr.AllocsPerOp)})
		}
		if or.NsPerOp > 0 {
			ratio := nr.NsPerOp / or.NsPerOp
			if ratio > 1+tol || ratio < 1-tol {
				notes = append(notes, fmt.Sprintf("%s: ns/op %.4g -> %.4g (%.2fx, advisory: raw times are machine-dependent)", nr.Name, or.NsPerOp, nr.NsPerOp, ratio))
			}
		}
	}
	keys := make([]string, 0, len(newRep.Derived))
	for k := range newRep.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nv := newRep.Derived[k]
		ov, ok := oldRep.Derived[k]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new derived metric (no baseline)", k))
			continue
		}
		// Derived metrics are oriented so larger is better.
		if ov > 0 && nv < ov*(1-tol) {
			regs = append(regs, Regression{Metric: k, Old: ov, New: nv})
		}
	}
	return regs, notes
}

// Floors are the absolute acceptance bounds the suite must keep meeting
// regardless of baseline drift: the incremental GP update must stay at
// least MinGPUpdateSpeedup× faster than a full refit at n=1024, and the
// event-log codec must stay allocation-free per record.
const MinGPUpdateSpeedup = 5.0

// CheckFloors validates rep against the absolute floors and returns the
// violations (empty means the report is acceptable).
func CheckFloors(rep *Report) []string {
	var bad []string
	if v, ok := rep.Derived["gp_update_speedup_n1024"]; ok {
		if v < MinGPUpdateSpeedup {
			bad = append(bad, fmt.Sprintf("gp_update_speedup_n1024 = %.2f < %.1f", v, MinGPUpdateSpeedup))
		}
	} else if !rep.Short {
		bad = append(bad, "gp_update_speedup_n1024 missing from full report")
	}
	for _, r := range rep.Results {
		if (r.Name == "eventlog_encode" || r.Name == "eventlog_decode") && r.AllocsPerOp != 0 {
			bad = append(bad, fmt.Sprintf("%s allocates %d per record; must be 0", r.Name, r.AllocsPerOp))
		}
	}
	return bad
}
