package perfsuite

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	rockhopper "github.com/rockhopper-db/rockhopper"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/eventlog"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

// gpDim is the design dimensionality of the GP benchmarks: the seven
// production parameters plus the input-size covariate.
const gpDim = 8

// walReplayRecords is how many WAL records the replay benchmark recovers
// per operation.
const walReplayRecords = 512

// decodeStreamEvents is how many task events the decode benchmark parses
// per operation (plus the execution-end record).
const decodeStreamEvents = 64

// Specs returns the pinned suite in its canonical order. Benchmark names
// are part of the report contract — Compare matches on them — so never
// rename an entry; add a new one and retire the old name instead. short
// drops the n=1024 GP sizes (the full fit there is the slowest entry by an
// order of magnitude), which is why CheckFloors exempts short reports from
// the n=1024 floor.
func Specs(short bool) []Spec {
	sizes := []int{64, 256, 1024}
	if short {
		sizes = []int{64, 256}
	}
	var specs []Spec
	for _, n := range sizes {
		specs = append(specs,
			Spec{Name: fmt.Sprintf("gp_fit_n%d", n), Fn: gpFitBench(n)},
			Spec{Name: fmt.Sprintf("gp_update_n%d", n), Fn: gpUpdateBench(n)},
		)
	}
	predN := sizes[len(sizes)-1]
	specs = append(specs,
		Spec{Name: fmt.Sprintf("gp_predict_n%d", predN), Fn: gpPredictBench(predN)},
		Spec{Name: "eventlog_encode", Fn: benchEventlogEncode},
		Spec{Name: "eventlog_decode", Fn: benchEventlogDecode},
		Spec{Name: "wal_append", Fn: benchWALAppend},
		Spec{Name: "wal_append_sync", Fn: benchWALAppendSync},
		Spec{Name: fmt.Sprintf("wal_batch_append_%d", walBatchEntries), Fn: benchWALBatchAppend},
		Spec{Name: "wal_replay", Fn: benchWALReplay},
		Spec{Name: "embedding_compute", Fn: benchEmbeddingCompute},
		Spec{Name: "embedding_memoized", Fn: benchEmbeddingMemoized},
		Spec{Name: "tuner_iteration", Fn: benchTunerIteration},
	)
	return specs
}

// synthGPData generates a deterministic smooth-response design: points in
// the unit cube with a sinusoidal objective plus small noise, the same
// shape the surrogate sees from normalized Spark configurations.
func synthGPData(n int, seed uint64) (xs [][]float64, ys []float64) {
	rng := stats.NewRNG(seed)
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		x := make([]float64, gpDim)
		y := 0.0
		for j := range x {
			x[j] = rng.Float64()
			y += x[j] * float64(j+1)
		}
		xs[i] = x
		ys[i] = y + 0.01*rng.NormFloat64()
	}
	return xs, ys
}

// gpFitBench measures a full refit at size n: the O(n^3) baseline the
// incremental update is compared against.
func gpFitBench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		xs, ys := synthGPData(n, uint64(n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := ml.NewGP()
			if err := g.Fit(xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// gpUpdateBench measures one incremental Observe at size n. ForgetLast
// (also O(n^2)) keeps the model at a constant size so every iteration
// measures the same work.
func gpUpdateBench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		xs, ys := synthGPData(n, uint64(n))
		g := ml.NewGP()
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
		q, yq := probePoint(uint64(n) + 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.Observe(q, yq); err != nil {
				b.Fatal(err)
			}
			if err := g.ForgetLast(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func gpPredictBench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		xs, ys := synthGPData(n, uint64(n))
		g := ml.NewGP()
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
		q, _ := probePoint(uint64(n) + 1)
		g.PredictVar(q) // warm the scratch buffers
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, v := g.PredictVar(q)
			sink += m + v
		}
		if sink == 0 {
			b.Fatal("prediction produced nothing")
		}
	}
}

func probePoint(seed uint64) ([]float64, float64) {
	rng := stats.NewRNG(seed)
	x := make([]float64, gpDim)
	y := 0.0
	for j := range x {
		x[j] = rng.Float64()
		y += x[j] * float64(j+1)
	}
	return x, y
}

// benchEventlogEncode measures appending one task-end record to a reused
// buffer — the per-task cost of streaming a run to the collector. The
// floor pins AllocsPerOp at zero.
func benchEventlogEncode(b *testing.B) {
	task := eventlog.Event{Event: eventlog.EventTaskEnd, ExecutionID: 42, StageLabel: "shuffle-7", TaskMs: 12.5}
	buf := make([]byte, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = eventlog.AppendEvent(buf[:0], &task)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(buf) == 0 {
		b.Fatal("encode produced no bytes")
	}
}

// benchEventlogDecode measures parsing a stream of decodeStreamEvents task
// records plus the execution end. The decoder's intern table is warmed
// before the clock starts; steady state must be allocation-free.
func benchEventlogDecode(b *testing.B) {
	var data []byte
	for i := 0; i < decodeStreamEvents; i++ {
		ev := eventlog.Event{Event: eventlog.EventTaskEnd, ExecutionID: 7, StageLabel: fmt.Sprintf("stage-%d", i%8), TaskMs: 10 + float64(i)}
		var err error
		data, err = eventlog.AppendEvent(data, &ev)
		if err != nil {
			b.Fatal(err)
		}
		data = append(data, '\n')
	}
	end := eventlog.Event{Event: eventlog.EventExecutionEnd, ExecutionID: 7, DurationMs: 901.5}
	data, err := eventlog.AppendEvent(data, &end)
	if err != nil {
		b.Fatal(err)
	}
	data = append(data, '\n')

	d := eventlog.NewDecoder(data)
	var ev eventlog.Event
	for d.Next(&ev) == nil { // warm the intern table
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset(data)
		for {
			if err := d.Next(&ev); err != nil {
				break
			}
		}
	}
	if ev.DurationMs != 901.5 {
		b.Fatalf("decode drifted: %+v", ev)
	}
}

// benchWALAppend measures one acknowledged mutation on a durable store with
// fsync disabled, isolating the framing + write path from disk sync cost.
func benchWALAppend(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfsuite-wal-append-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenDurable(dir, nil, store.DurableOptions{NoSync: true, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.PutInternal("bench/blob", data)
	}
}

// walBatchEntries is the group-commit batch size benchmarked against
// per-record appends.
const walBatchEntries = 512

// benchWALAppendSync measures one acknowledged mutation with the per-record
// fsync ON — the production durability cost one solo Put actually pays, and
// the baseline the group-commit amortization ratio divides by.
func benchWALAppendSync(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfsuite-wal-append-sync-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenDurable(dir, nil, store.DurableOptions{CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.PutInternal("bench/blob", data)
	}
}

// benchWALBatchAppend measures one group commit of walBatchEntries entries
// with fsync ON — the store path behind POST /api/events/batch. One
// operation lands 512 mutations behind a single WAL record and a single
// fsync, so the dominant per-mutation cost (the sync) is amortized 512-way;
// the wal_batch_amortization_512 derived ratio pins that against
// wal_append_sync.
func benchWALBatchAppend(b *testing.B) {
	dir, err := os.MkdirTemp("", "perfsuite-wal-batch-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenDurable(dir, nil, store.DurableOptions{CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	entries := make([]store.BatchEntry, walBatchEntries)
	for i := range entries {
		entries[i] = store.BatchEntry{Path: fmt.Sprintf("bench/blob-%03d", i), Data: data}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.PutBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWALReplay measures cold recovery: each operation copies a prepared
// walReplayRecords-record log into a fresh directory, opens the store
// (replaying every record), and closes it.
func benchWALReplay(b *testing.B) {
	walBytes := prepareWAL(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayOnce(b, walBytes)
	}
}

// prepareWAL builds the log the replay benchmark recovers: open a store
// with compaction disabled, issue the mutations, and read the raw WAL
// back. The store is deliberately abandoned without Close — Close compacts,
// which would truncate the very log we want.
func prepareWAL(b *testing.B) []byte {
	dir, err := os.MkdirTemp("", "perfsuite-wal-prep-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenDurable(dir, nil, store.DurableOptions{NoSync: true, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 128)
	for i := 0; i < walReplayRecords; i++ {
		data[0] = byte(i)
		st.PutInternal(fmt.Sprintf("runs/%02d/model", i%16), data)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		b.Fatal(err)
	}
	if len(walBytes) == 0 {
		b.Fatal("prepared WAL is empty")
	}
	return walBytes
}

func replayOnce(b *testing.B, walBytes []byte) {
	dir, err := os.MkdirTemp("", "perfsuite-wal-replay-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), walBytes, 0o600); err != nil {
		b.Fatal(err)
	}
	st, err := store.OpenDurable(dir, nil, store.DurableOptions{NoSync: true, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.GetInternal("runs/00/model"); err != nil {
		b.Fatalf("replay lost data: %v", err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchEmbeddingCompute measures one full virtual-operator embedding of a
// benchmark plan — the cost EmbedSig's memo avoids on repeat signatures.
func benchEmbeddingCompute(b *testing.B) {
	q, err := rockhopper.NewBenchmarkQuery("tpcds", 7, 99)
	if err != nil {
		b.Fatal(err)
	}
	e := embedding.NewVirtual()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec := e.Embed(q.Plan)
		sink += vec[0]
	}
	_ = sink
}

// benchEmbeddingMemoized measures the per-run cost for a recurrent
// signature: a fingerprint check plus a map hit.
func benchEmbeddingMemoized(b *testing.B) {
	q, err := rockhopper.NewBenchmarkQuery("tpcds", 7, 99)
	if err != nil {
		b.Fatal(err)
	}
	e := embedding.NewVirtual()
	e.EmbedSig("tpcds-q7", q.Plan) // populate the memo
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec := e.EmbedSig("tpcds-q7", q.Plan)
		sink += vec[0]
	}
	_ = sink
}

// benchTunerIteration measures one end-to-end tuning step — Recommend, a
// simulated run, Report — the unit of work the service performs per
// recurring-query submission. Mirrors the library-level benchmark in the
// root package so CLI reports and `go test -bench` agree on what an
// iteration costs.
func benchTunerIteration(b *testing.B) {
	space := rockhopper.QuerySpace()
	engine := rockhopper.NewEngine(space)
	q, err := rockhopper.NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		b.Fatal(err)
	}
	tn, err := rockhopper.NewTuner(space, rockhopper.WithoutGuardrail())
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	size := q.Plan.LeafInputBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := tn.Recommend(i, size)
		o := engine.Run(q, cfg, 1, r, nil)
		if err := tn.Report(o); err != nil {
			b.Fatal(err)
		}
	}
}
