package ml

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// gpEquivTol is the agreement bound between the incremental and batch paths:
// the factor grown by AppendRow and the factor from a fresh O(n³)
// factorization must be the same linear map to well below solver noise.
const gpEquivTol = 1e-9

func synthPoint(rng *stats.RNG, dim int) ([]float64, float64) {
	x := make([]float64, dim)
	s := 0.0
	for j := range x {
		x[j] = rng.NormFloat64()
		s += math.Sin(x[j]) * float64(j+1)
	}
	return x, s + 0.1*rng.NormFloat64()
}

func closeWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// TestGPIncrementalMatchesBatch is the incremental-surrogate correctness
// property: a GP grown one Observe at a time — in a randomized order, and
// including a remove-then-readd round trip through ForgetLast — produces the
// same posterior means AND variances as a single batch Fit on the full set,
// within 1e-9, across multiple seeds. Standardization is off so both paths
// see the identical feature map (Observe freezes the scaler by contract;
// batch Fit re-estimates it).
func TestGPIncrementalMatchesBatch(t *testing.T) {
	t.Parallel()
	const dim, total, probes = 5, 40, 25
	for _, seed := range []uint64{3, 17, 91} {
		rng := stats.NewRNG(seed)
		xs := make([][]float64, total)
		ys := make([]float64, total)
		for i := range xs {
			xs[i], ys[i] = synthPoint(rng, dim)
		}
		// Randomize the observation order per seed.
		order := rng.Perm(total)
		px := make([][]float64, total)
		py := make([]float64, total)
		for i, o := range order {
			px[i], py[i] = xs[o], ys[o]
		}

		batch := NewGP()
		batch.Standardize = false
		if err := batch.Fit(px, py); err != nil {
			t.Fatalf("seed %d: batch fit: %v", seed, err)
		}

		inc := NewGP()
		inc.Standardize = false
		if err := inc.Observe(px[0], py[0]); err != ErrNotFitted {
			t.Fatalf("seed %d: Observe before Fit = %v; want ErrNotFitted", seed, err)
		}
		if err := inc.Fit(px[:2], py[:2]); err != nil {
			t.Fatalf("seed %d: seed fit: %v", seed, err)
		}
		for i := 2; i < total; i++ {
			if err := inc.Observe(px[i], py[i]); err != nil {
				t.Fatalf("seed %d: observe %d: %v", seed, i, err)
			}
		}
		// Remove-then-readd round trip: drop the newest observation and
		// condition on it again; the posterior must be unchanged.
		if err := inc.ForgetLast(); err != nil {
			t.Fatalf("seed %d: forget: %v", seed, err)
		}
		if inc.Len() != total-1 {
			t.Fatalf("seed %d: Len after forget = %d; want %d", seed, inc.Len(), total-1)
		}
		if err := inc.Observe(px[total-1], py[total-1]); err != nil {
			t.Fatalf("seed %d: readd: %v", seed, err)
		}
		if inc.Len() != total {
			t.Fatalf("seed %d: Len = %d; want %d", seed, inc.Len(), total)
		}

		for p := 0; p < probes; p++ {
			q, _ := synthPoint(rng, dim)
			bm, bv := batch.PredictVar(q)
			im, iv := inc.PredictVar(q)
			if !closeWithin(bm, im, gpEquivTol) {
				t.Fatalf("seed %d probe %d: mean %g (batch) vs %g (incremental)", seed, p, bm, im)
			}
			if !closeWithin(bv, iv, gpEquivTol) {
				t.Fatalf("seed %d probe %d: variance %g (batch) vs %g (incremental)", seed, p, bv, iv)
			}
			bei := batch.ExpectedImprovement(q, 0.5, 0.01)
			iei := inc.ExpectedImprovement(q, 0.5, 0.01)
			if !closeWithin(bei, iei, 1e-8) {
				t.Fatalf("seed %d probe %d: EI %g (batch) vs %g (incremental)", seed, p, bei, iei)
			}
		}
	}
}

// TestGPObserveStandardized covers the frozen-scaler contract: observing
// through a standardized GP keeps predictions finite and conditions on the
// new point (its residual shrinks), even though the scaler is not refitted.
func TestGPObserveStandardized(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(5)
	const dim = 4
	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng, dim)
	}
	g := NewGP()
	if err := g.Fit(xs[:8], ys[:8]); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		before := math.Abs(g.Predict(xs[i]) - ys[i])
		if err := g.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		after := math.Abs(g.Predict(xs[i]) - ys[i])
		if math.IsNaN(after) || math.IsInf(after, 0) {
			t.Fatalf("non-finite prediction after observe %d", i)
		}
		if after > before+1e-9 {
			t.Fatalf("observe %d did not condition on the point: residual %g -> %g", i, before, after)
		}
	}
	// The wrong feature width must be rejected, not absorbed.
	if err := g.Observe(make([]float64, dim+1), 0); err == nil {
		t.Fatal("Observe accepted a mis-sized feature vector")
	}
}

// TestGPForgetLastBounds pins the edge cases of ForgetLast.
func TestGPForgetLastBounds(t *testing.T) {
	t.Parallel()
	g := NewGP()
	if err := g.ForgetLast(); err != ErrNotFitted {
		t.Fatalf("ForgetLast unfitted = %v; want ErrNotFitted", err)
	}
	rng := stats.NewRNG(9)
	xs := make([][]float64, 2)
	ys := make([]float64, 2)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng, 3)
	}
	g.Standardize = false
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.ForgetLast(); err != nil {
		t.Fatal(err)
	}
	if err := g.ForgetLast(); err == nil {
		t.Fatal("ForgetLast emptied the model")
	}
}
