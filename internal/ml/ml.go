// Package ml is Rockhopper's from-scratch machine-learning substrate. The
// production system relies on scikit-learn, ONNX, and the
// bayesian-optimization package; since this reproduction is stdlib-only, the
// package implements the models the paper actually uses:
//
//   - linear / ridge regression (FIND_GRADIENT trend fitting, guardrail),
//   - kernel ridge regression with an RBF kernel (the noise-robust "SVR"
//     surrogate of Section 6.1),
//   - Gaussian-process regression with Expected Improvement (the Bayesian
//     Optimization surrogate of Sections 2.2, 4.1 and 6.2),
//   - k-nearest-neighbour regression (sanity baseline), and
//   - feature standardization and interaction/polynomial expansion
//     ("feature construction" from Section 3.1).
//
// All models implement Regressor and are serializable with encoding/gob so
// the model store (internal/store) can ship them between the autotune backend
// and clients, mirroring the ONNX round trip in the paper.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotFitted is returned by Predict when the model has not been fitted.
var ErrNotFitted = errors.New("ml: model is not fitted")

// ErrNoData is returned by Fit when given an empty training set.
var ErrNoData = errors.New("ml: empty training set")

// Regressor is the common contract for all surrogate models: fit on a design
// matrix (rows = observations) and predict a scalar response per input row.
type Regressor interface {
	// Fit trains the model. Implementations must copy any data they retain.
	Fit(x [][]float64, y []float64) error
	// Predict returns the point prediction for one feature vector. Calling
	// Predict before a successful Fit returns NaN.
	Predict(x []float64) float64
}

// UncertaintyRegressor is implemented by models that can quantify predictive
// uncertainty (the Gaussian process); acquisition functions require it.
type UncertaintyRegressor interface {
	Regressor
	// PredictVar returns the predictive mean and variance at x.
	PredictVar(x []float64) (mean, variance float64)
}

func checkXY(x [][]float64, y []float64) (cols int, err error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, ErrNoData
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d rows but %d responses", len(x), len(y))
	}
	cols = len(x[0])
	for i, row := range x {
		if len(row) != cols {
			return 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), cols)
		}
	}
	return cols, nil
}

// Scaler standardizes features to zero mean and unit variance. Constant
// columns are left centred but unscaled (scale 1) to avoid division by zero.
type Scaler struct {
	Mean  []float64
	Scale []float64
}

// FitScaler computes per-column statistics of x.
func FitScaler(x [][]float64) (*Scaler, error) {
	if len(x) == 0 {
		return nil, ErrNoData
	}
	p := len(x[0])
	s := &Scaler{Mean: make([]float64, p), Scale: make([]float64, p)}
	n := float64(len(x))
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Scale[j] += d * d
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] < 1e-12 {
			s.Scale[j] = 1
		}
	}
	return s, nil
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformTo(out, x)
	return out
}

// TransformTo standardizes x into dst (same length), without allocating.
func (s *Scaler) TransformTo(dst, x []float64) {
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Scale[j]
	}
}

// TransformAll standardizes every row of x into a new matrix.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}

// FeatureExpander augments raw features with pairwise interaction terms and
// squares, the "adding interactions and permutations to the feature set"
// step from the paper's Python pipeline. With Interactions and Squares both
// false it is the identity (plus optional bias).
type FeatureExpander struct {
	Interactions bool
	Squares      bool
	Bias         bool
}

// Expand maps a raw feature vector to the expanded representation.
func (e FeatureExpander) Expand(x []float64) []float64 {
	out := make([]float64, 0, e.width(len(x)))
	if e.Bias {
		out = append(out, 1)
	}
	out = append(out, x...)
	if e.Squares {
		for _, v := range x {
			out = append(out, v*v)
		}
	}
	if e.Interactions {
		for i := 0; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				out = append(out, x[i]*x[j])
			}
		}
	}
	return out
}

// ExpandAll expands every row of x.
func (e FeatureExpander) ExpandAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = e.Expand(row)
	}
	return out
}

func (e FeatureExpander) width(p int) int {
	w := p
	if e.Bias {
		w++
	}
	if e.Squares {
		w += p
	}
	if e.Interactions {
		w += p * (p - 1) / 2
	}
	return w
}

// MSE returns the mean squared error of predictions against truth.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of predictions against truth.
func R2(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		t := truth[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
