package ml

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func genLinearData(r *stats.RNG, n int, coef []float64, intercept, noise float64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(coef))
		v := intercept
		for j := range coef {
			row[j] = r.Uniform(-3, 3)
			v += coef[j] * row[j]
		}
		x[i] = row
		y[i] = v + r.Normal(0, noise)
	}
	return x, y
}

func TestLinearRecoversCoefficients(t *testing.T) {
	r := stats.NewRNG(1)
	truth := []float64{2, -1.5, 0.7}
	x, y := genLinearData(r, 200, truth, 4, 0)
	m := NewLinear(0)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if math.Abs(m.RawSlope(j)-truth[j]) > 1e-6 {
			t.Fatalf("slope %d = %g; want %g", j, m.RawSlope(j), truth[j])
		}
	}
	pred := m.Predict([]float64{1, 1, 1})
	want := 4 + 2 - 1.5 + 0.7
	if math.Abs(pred-want) > 1e-6 {
		t.Fatalf("predict = %g; want %g", pred, want)
	}
}

func TestLinearSlopeSignUnderNoise(t *testing.T) {
	// FIND_GRADIENT only needs the sign; with n=30 and moderate noise the
	// sign must be stable.
	r := stats.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		x, y := genLinearData(r.Split(), 30, []float64{3, -2}, 10, 1)
		m := NewLinear(1e-3)
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if m.RawSlope(0) <= 0 || m.RawSlope(1) >= 0 {
			t.Fatalf("trial %d: slope signs wrong: %g %g", trial, m.RawSlope(0), m.RawSlope(1))
		}
	}
}

func TestLinearUnfittedPredictNaN(t *testing.T) {
	m := NewLinear(0)
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict should be NaN")
	}
}

func TestLinearRejectsBadInput(t *testing.T) {
	m := NewLinear(0)
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestFeatureExpander(t *testing.T) {
	e := FeatureExpander{Interactions: true, Squares: true, Bias: true}
	out := e.Expand([]float64{2, 3})
	// bias, x1, x2, x1², x2², x1·x2
	want := []float64{1, 2, 3, 4, 9, 6}
	if len(out) != len(want) {
		t.Fatalf("expanded width = %d; want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("expand = %v; want %v", out, want)
		}
	}
	id := FeatureExpander{}
	if got := id.Expand([]float64{5}); len(got) != 1 || got[0] != 5 {
		t.Fatal("identity expander wrong")
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{0, 100}, {2, 100}, {4, 100}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	out := s.TransformAll(x)
	col := []float64{out[0][0], out[1][0], out[2][0]}
	if math.Abs(stats.Mean(col)) > 1e-12 {
		t.Fatalf("scaled mean = %g", stats.Mean(col))
	}
	// Constant column must not blow up.
	if out[0][1] != 0 || math.IsNaN(out[0][1]) {
		t.Fatalf("constant column mishandled: %v", out[0])
	}
}

func TestKernelRidgeFitsSmoothFunction(t *testing.T) {
	r := stats.NewRNG(3)
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	f := func(a, b float64) float64 { return math.Sin(a) + 0.5*b*b }
	for i := 0; i < n; i++ {
		a, b := r.Uniform(-2, 2), r.Uniform(-2, 2)
		x[i] = []float64{a, b}
		y[i] = f(a, b) + r.Normal(0, 0.05)
	}
	m := NewKernelRidge()
	m.Alpha = 0.05
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var preds, truths []float64
	for i := 0; i < 50; i++ {
		a, b := r.Uniform(-1.5, 1.5), r.Uniform(-1.5, 1.5)
		preds = append(preds, m.Predict([]float64{a, b}))
		truths = append(truths, f(a, b))
	}
	if r2 := R2(preds, truths); r2 < 0.9 {
		t.Fatalf("kernel ridge R² = %g; want > 0.9", r2)
	}
}

func TestGPInterpolatesAndQuantifiesUncertainty(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 4, 9}
	g := NewGP()
	g.Noise = 1e-6
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Near a training point: prediction close, variance small.
	m0, v0 := g.PredictVar([]float64{1})
	if math.Abs(m0-1) > 0.05 {
		t.Fatalf("GP mean at training point = %g; want ≈1", m0)
	}
	// Far from data: variance larger.
	_, vFar := g.PredictVar([]float64{10})
	if vFar <= v0 {
		t.Fatalf("GP variance should grow away from data: near=%g far=%g", v0, vFar)
	}
}

func TestGPExpectedImprovement(t *testing.T) {
	x := [][]float64{{0}, {2}}
	y := []float64{5, 1}
	g := NewGP()
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	best := 1.0
	// EI must be non-negative everywhere.
	for _, xv := range []float64{-1, 0, 1, 2, 3} {
		if ei := g.ExpectedImprovement([]float64{xv}, best, 0.01); ei < 0 {
			t.Fatalf("EI(%g) = %g < 0", xv, ei)
		}
	}
	// EI at the known-bad point should be smaller than at an uncertain
	// midpoint whose posterior mean is closer to the incumbent.
	eiBad := g.ExpectedImprovement([]float64{0}, best, 0.01)
	eiMid := g.ExpectedImprovement([]float64{1.5}, best, 0.01)
	if eiMid <= eiBad {
		t.Fatalf("EI should favour promising uncertain points: bad=%g mid=%g", eiBad, eiMid)
	}
}

func TestGPLCBOrdersByUncertainty(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{2, 2}
	g := NewGP()
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	nearLCB := g.LowerConfidenceBound([]float64{0.5}, 2)
	farLCB := g.LowerConfidenceBound([]float64{5}, 2)
	if farLCB >= nearLCB {
		t.Fatalf("LCB should be lower where uncertainty is high: near=%g far=%g", nearLCB, farLCB)
	}
}

func TestKNNExactAndAverage(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{10, 20, 30}
	m := NewKNN()
	m.K = 2
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{1}); p != 20 {
		t.Fatalf("exact match predict = %g; want 20", p)
	}
	p := m.Predict([]float64{0.5})
	if p < 10 || p > 20 {
		t.Fatalf("interpolated predict = %g; want within [10,20]", p)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := stats.NewRNG(4)
	x, y := genLinearData(r, 50, []float64{1, -2}, 3, 0.1)

	models := []Regressor{NewLinear(0.01), NewKernelRidge(), NewKNN()}
	for _, m := range models {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		blob, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T marshal: %v", m, err)
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%T unmarshal: %v", m, err)
		}
		probe := []float64{0.5, -0.5}
		a, b := m.Predict(probe), back.Predict(probe)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("%T round trip prediction drift: %g vs %g", m, a, b)
		}
	}
}

func TestMarshalRejectsGP(t *testing.T) {
	if _, err := Marshal(NewGP()); err == nil {
		t.Fatal("GP marshal should be rejected")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a model")); err == nil {
		t.Fatal("garbage unmarshal should error")
	}
}

func TestMetrics(t *testing.T) {
	if !math.IsNaN(MSE(nil, nil)) {
		t.Fatal("MSE of empty should be NaN")
	}
	if MSE([]float64{1, 2}, []float64{1, 4}) != 2 {
		t.Fatal("MSE wrong")
	}
	if r2 := R2([]float64{1, 2, 3}, []float64{1, 2, 3}); r2 != 1 {
		t.Fatalf("perfect R² = %g", r2)
	}
}

// Property: ridge predictions are finite for any non-degenerate data.
func TestPropLinearFinite(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 5 + r.Intn(30)
		p := 1 + r.Intn(4)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			row := make([]float64, p)
			for j := range row {
				row[j] = r.Normal(0, 5)
			}
			x[i] = row
			y[i] = r.Normal(0, 5)
		}
		m := NewLinear(1e-6)
		if err := m.Fit(x, y); err != nil {
			return true // singular draw is acceptable to reject
		}
		probe := make([]float64, p)
		for j := range probe {
			probe[j] = r.Normal(0, 5)
		}
		v := m.Predict(probe)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: GP posterior variance is within [0, kernel variance + eps].
func TestPropGPVarianceBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 3 + r.Intn(10)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{r.Normal(0, 2)}
			y[i] = r.Normal(0, 2)
		}
		g := NewGP()
		if err := g.Fit(x, y); err != nil {
			return true
		}
		for k := 0; k < 10; k++ {
			_, v := g.PredictVar([]float64{r.Normal(0, 4)})
			if v < 0 || v > g.Kernel.Variance+1e-6 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
