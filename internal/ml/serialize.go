package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The production system serializes models to ONNX so they can be trained in
// Python and loaded in Scala (Section 3.1). This reproduction uses
// encoding/gob as the interchange format between the autotune backend and
// clients; the snapshot types below expose the fitted state that gob needs
// (gob cannot see unexported fields).

// linearSnapshot mirrors Linear's fitted state.
type linearSnapshot struct {
	Lambda      float64
	Expand      FeatureExpander
	Standardize bool
	Coef        []float64
	Intercept   float64
	Scaler      *Scaler
	Fitted      bool
}

// kernelRidgeSnapshot mirrors KernelRidge's fitted state.
type kernelRidgeSnapshot struct {
	Kernel      RBFKernel
	Alpha       float64
	Standardize bool
	XTrain      [][]float64
	Dual        []float64
	YMean       float64
	Scaler      *Scaler
	Fitted      bool
}

// knnSnapshot mirrors KNN's fitted state.
type knnSnapshot struct {
	K           int
	Standardize bool
	XTrain      [][]float64
	YTrain      []float64
	Scaler      *Scaler
	Fitted      bool
}

// envelope tags the concrete model kind for decoding.
type envelope struct {
	Kind string
	Blob []byte
}

// Marshal serializes a fitted (or unfitted) model to bytes. Supported
// concrete types: *Linear, *KernelRidge, *KNN. The GP is intentionally not
// serialized: like the paper's system, GP surrogates are rebuilt from the
// observation log rather than shipped.
func Marshal(r Regressor) ([]byte, error) {
	var kind string
	var payload any
	switch m := r.(type) {
	case *Linear:
		kind = "linear"
		payload = linearSnapshot{
			Lambda: m.Lambda, Expand: m.Expand, Standardize: m.Standardize,
			Coef: m.Coef, Intercept: m.Intercept, Scaler: m.scaler, Fitted: m.fitted,
		}
	case *KernelRidge:
		kind = "kernelridge"
		payload = kernelRidgeSnapshot{
			Kernel: m.Kernel, Alpha: m.Alpha, Standardize: m.Standardize,
			XTrain: m.xTrain, Dual: m.dual, YMean: m.yMean, Scaler: m.scaler, Fitted: m.fitted,
		}
	case *KNN:
		kind = "knn"
		payload = knnSnapshot{
			K: m.K, Standardize: m.Standardize,
			XTrain: m.xTrain, YTrain: m.yTrain, Scaler: m.scaler, Fitted: m.fitted,
		}
	default:
		return nil, fmt.Errorf("ml: cannot marshal model of type %T", r)
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(payload); err != nil {
		return nil, fmt.Errorf("ml: encode %s: %w", kind, err)
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(envelope{Kind: kind, Blob: blob.Bytes()}); err != nil {
		return nil, fmt.Errorf("ml: encode envelope: %w", err)
	}
	return out.Bytes(), nil
}

// Unmarshal reconstructs a model serialized by Marshal.
func Unmarshal(data []byte) (Regressor, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decode envelope: %w", err)
	}
	dec := gob.NewDecoder(bytes.NewReader(env.Blob))
	switch env.Kind {
	case "linear":
		var s linearSnapshot
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("ml: decode linear: %w", err)
		}
		return &Linear{
			Lambda: s.Lambda, Expand: s.Expand, Standardize: s.Standardize,
			Coef: s.Coef, Intercept: s.Intercept, scaler: s.Scaler, fitted: s.Fitted,
		}, nil
	case "kernelridge":
		var s kernelRidgeSnapshot
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("ml: decode kernelridge: %w", err)
		}
		return &KernelRidge{
			Kernel: s.Kernel, Alpha: s.Alpha, Standardize: s.Standardize,
			xTrain: s.XTrain, dual: s.Dual, yMean: s.YMean, scaler: s.Scaler, fitted: s.Fitted,
		}, nil
	case "knn":
		var s knnSnapshot
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("ml: decode knn: %w", err)
		}
		return &KNN{
			K: s.K, Standardize: s.Standardize,
			xTrain: s.XTrain, yTrain: s.YTrain, scaler: s.Scaler, fitted: s.Fitted,
		}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}
