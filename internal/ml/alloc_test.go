package ml

import (
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/testutil"
)

// TestGPPredictAllocFree pins the surrogate's inference hot path: after the
// scratch buffers warm up, PredictVar (and therefore Predict and
// ExpectedImprovement) must not allocate. Acquisition evaluates hundreds of
// candidates per tuning iteration, so a single allocation here multiplies
// across the whole loop. Skipped under -race (detector instrumentation
// allocates).
func TestGPPredictAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	rng := stats.NewRNG(21)
	const dim, n = 6, 32
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = synthPoint(rng, dim)
	}
	g := NewGP()
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	q, _ := synthPoint(rng, dim)
	// Warm the scratch buffers once.
	g.PredictVar(q)
	var sink float64
	if a := testing.AllocsPerRun(1000, func() {
		m, v := g.PredictVar(q)
		sink += m + v
	}); a != 0 {
		t.Fatalf("PredictVar allocates %v times per call; budget is 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		sink += g.ExpectedImprovement(q, 0.5, 0.01)
	}); a != 0 {
		t.Fatalf("ExpectedImprovement allocates %v times per call; budget is 0", a)
	}
	if sink == 0 {
		t.Fatal("prediction produced nothing")
	}
}
