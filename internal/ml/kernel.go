package ml

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/mat"
)

// RBFKernel is a squared-exponential (Gaussian) kernel
// k(a, b) = Variance · exp(−‖a−b‖² / (2·LengthScale²)).
type RBFKernel struct {
	LengthScale float64
	Variance    float64
}

// Eval computes k(a, b).
func (k RBFKernel) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// KernelRidge is kernel ridge regression with an RBF kernel. It plays the
// role of the paper's SVR surrogate (scikit-learn's SVR with an RBF kernel):
// a smooth non-parametric fit whose ridge penalty absorbs observation noise,
// making it "moderately accurate" — Level 3–5 in the paper's terminology —
// which is precisely the regime Figure 10 evaluates.
type KernelRidge struct {
	Kernel RBFKernel
	// Alpha is the ridge regularization added to the kernel diagonal.
	Alpha float64
	// Standardize scales features before the kernel is applied; strongly
	// recommended because config dimensions have wildly different units.
	Standardize bool

	xTrain [][]float64
	dual   []float64
	yMean  float64
	scaler *Scaler
	fitted bool
}

// NewKernelRidge returns a kernel-ridge regressor with sensible defaults for
// standardized features: unit length scale, unit variance, Alpha = 0.5.
func NewKernelRidge() *KernelRidge {
	return &KernelRidge{
		Kernel:      RBFKernel{LengthScale: 1, Variance: 1},
		Alpha:       0.5,
		Standardize: true,
	}
}

// Fit solves (K + αI) a = y − ȳ and stores the dual coefficients.
func (k *KernelRidge) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	rows := x
	if k.Standardize {
		sc, err := FitScaler(x)
		if err != nil {
			return err
		}
		k.scaler = sc
		rows = sc.TransformAll(x)
	} else {
		k.scaler = nil
		rows = make([][]float64, len(x))
		for i, r := range x {
			rows[i] = append([]float64(nil), r...)
		}
	}
	n := len(rows)
	k.yMean = 0
	for _, v := range y {
		k.yMean += v
	}
	k.yMean /= float64(n)
	centred := make([]float64, n)
	for i, v := range y {
		centred[i] = v - k.yMean
	}
	gram := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Kernel.Eval(rows[i], rows[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	mat.AddDiag(gram, k.Alpha+1e-10)
	ch, err := mat.NewCholesky(gram)
	if err != nil {
		return err
	}
	dual, err := ch.SolveVec(centred)
	if err != nil {
		return err
	}
	k.xTrain = rows
	k.dual = dual
	k.fitted = true
	return nil
}

// Predict returns Σ aᵢ k(xᵢ, x) + ȳ.
func (k *KernelRidge) Predict(x []float64) float64 {
	if !k.fitted {
		return math.NaN()
	}
	row := x
	if k.scaler != nil {
		row = k.scaler.Transform(x)
	}
	var s float64
	for i, xi := range k.xTrain {
		s += k.dual[i] * k.Kernel.Eval(xi, row)
	}
	return s + k.yMean
}
