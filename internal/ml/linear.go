package ml

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/mat"
)

// Linear is an ordinary/ridge least-squares regressor with optional feature
// standardization and expansion. It is the workhorse behind Rockhopper's
// FIND_GRADIENT trend regression and the guardrail's iteration-vs-runtime
// model; both need robust coefficient signs from small, noisy windows of
// observations rather than maximal predictive accuracy.
type Linear struct {
	// Lambda is the ridge penalty; 0 gives ordinary least squares. Small
	// positive values stabilise the near-collinear designs that occur when a
	// tuning window barely moves a config dimension.
	Lambda float64
	// Expand configures optional interaction/square/bias features. A bias
	// term is always added internally regardless of Expand.Bias.
	Expand FeatureExpander
	// Standardize enables per-feature scaling before fitting.
	Standardize bool

	Coef      []float64 // coefficients in expanded feature space
	Intercept float64
	scaler    *Scaler
	fitted    bool
}

// NewLinear returns a ridge regressor with standardization enabled.
func NewLinear(lambda float64) *Linear {
	return &Linear{Lambda: lambda, Standardize: true}
}

// Fit trains the model on x (rows = observations) and responses y.
func (l *Linear) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	rows := x
	if l.Standardize {
		sc, err := FitScaler(x)
		if err != nil {
			return err
		}
		l.scaler = sc
		rows = sc.TransformAll(x)
	} else {
		l.scaler = nil
	}
	rows = l.Expand.ExpandAll(rows)
	p := len(rows[0])
	design := mat.NewDense(len(rows), p+1)
	for i, row := range rows {
		design.Set(i, 0, 1)
		for j, v := range row {
			design.Set(i, j+1, v)
		}
	}
	beta, err := mat.SolveRidge(design, y, l.Lambda)
	if err != nil {
		return err
	}
	l.Intercept = beta[0]
	l.Coef = beta[1:]
	l.fitted = true
	return nil
}

// Predict returns the fitted response at x, or NaN if unfitted.
func (l *Linear) Predict(x []float64) float64 {
	if !l.fitted {
		return math.NaN()
	}
	row := x
	if l.scaler != nil {
		row = l.scaler.Transform(x)
	}
	row = l.Expand.Expand(row)
	return l.Intercept + mat.Dot(l.Coef, row)
}

// RawSlope returns the sign-preserving slope of the fitted model with respect
// to raw input dimension j, evaluated at the scaler's centre. For a purely
// linear expansion this is coef_j / scale_j; with squares/interactions the
// derivative is evaluated at the training mean (where standardized features
// are zero), so cross terms vanish and the linear coefficient dominates.
// This is exactly what FIND_GRADIENT needs: a direction, not a magnitude.
func (l *Linear) RawSlope(j int) float64 {
	if !l.fitted || j < 0 {
		return math.NaN()
	}
	// Locate the linear coefficient for raw dimension j within the expanded
	// coefficient vector.
	idx := j
	if l.Expand.Bias {
		idx++
	}
	if idx >= len(l.Coef) {
		return math.NaN()
	}
	s := 1.0
	if l.scaler != nil {
		if j >= len(l.scaler.Scale) {
			return math.NaN()
		}
		s = l.scaler.Scale[j]
	}
	return l.Coef[idx] / s
}
