package ml

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/mat"
)

// GP is Gaussian-process regression with an RBF kernel and homoscedastic
// observation noise. It is the surrogate behind the vanilla and contextual
// Bayesian Optimization baselines (Sections 2.2, 4.1, 6.2): the posterior
// mean and variance feed the Expected Improvement acquisition function.
type GP struct {
	Kernel RBFKernel
	// Noise is the observation-noise variance added to the kernel diagonal.
	Noise float64
	// Standardize scales inputs to zero mean / unit variance before the
	// kernel is applied.
	Standardize bool

	xTrain [][]float64
	alpha  []float64 // (K+σ²I)⁻¹ (y−ȳ)
	chol   *mat.Cholesky
	yMean  float64
	scaler *Scaler
	fitted bool
}

// NewGP returns a GP with unit RBF kernel and noise 0.1, standardized inputs.
func NewGP() *GP {
	return &GP{
		Kernel:      RBFKernel{LengthScale: 1, Variance: 1},
		Noise:       0.1,
		Standardize: true,
	}
}

// Fit conditions the GP on observations (x, y).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	rows := x
	if g.Standardize {
		sc, err := FitScaler(x)
		if err != nil {
			return err
		}
		g.scaler = sc
		rows = sc.TransformAll(x)
	} else {
		g.scaler = nil
		rows = make([][]float64, len(x))
		for i, r := range x {
			rows[i] = append([]float64(nil), r...)
		}
	}
	n := len(rows)
	g.yMean = 0
	for _, v := range y {
		g.yMean += v
	}
	g.yMean /= float64(n)
	centred := make([]float64, n)
	for i, v := range y {
		centred[i] = v - g.yMean
	}
	gram := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kernel.Eval(rows[i], rows[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	mat.AddDiag(gram, g.Noise+1e-10)
	ch, err := mat.NewCholesky(gram)
	if err != nil {
		return err
	}
	alpha, err := ch.SolveVec(centred)
	if err != nil {
		return err
	}
	g.xTrain = rows
	g.alpha = alpha
	g.chol = ch
	g.fitted = true
	return nil
}

// Predict returns the posterior mean at x.
func (g *GP) Predict(x []float64) float64 {
	m, _ := g.PredictVar(x)
	return m
}

// PredictVar returns the posterior mean and variance at x.
func (g *GP) PredictVar(x []float64) (mean, variance float64) {
	if !g.fitted {
		return math.NaN(), math.NaN()
	}
	row := x
	if g.scaler != nil {
		row = g.scaler.Transform(x)
	}
	n := len(g.xTrain)
	kstar := make([]float64, n)
	for i, xi := range g.xTrain {
		kstar[i] = g.Kernel.Eval(xi, row)
	}
	mean = g.yMean + mat.Dot(kstar, g.alpha)
	// variance = k(x,x) − k*ᵀ (K+σ²I)⁻¹ k* computed via v = L⁻¹ k*.
	v, err := g.chol.SolveTriLower(kstar)
	if err != nil {
		return mean, math.NaN()
	}
	variance = g.Kernel.Eval(row, row) - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// normalPDF is the standard normal density.
func normalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// normalCDF is the standard normal distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ExpectedImprovement returns the EI acquisition value at x for a
// minimization problem with incumbent best observed value best. Larger is
// better. xi is the exploration margin (commonly 0.01 of the response scale).
func (g *GP) ExpectedImprovement(x []float64, best, xi float64) float64 {
	mean, variance := g.PredictVar(x)
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		if imp := best - xi - mean; imp > 0 {
			return imp
		}
		return 0
	}
	z := (best - xi - mean) / sd
	return (best-xi-mean)*normalCDF(z) + sd*normalPDF(z)
}

// LowerConfidenceBound returns mean − kappa·sd at x; for minimization the
// candidate with the smallest LCB is the most promising.
func (g *GP) LowerConfidenceBound(x []float64, kappa float64) float64 {
	mean, variance := g.PredictVar(x)
	return mean - kappa*math.Sqrt(variance)
}
