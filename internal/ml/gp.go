package ml

import (
	"fmt"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/mat"
)

// GP is Gaussian-process regression with an RBF kernel and homoscedastic
// observation noise. It is the surrogate behind the vanilla and contextual
// Bayesian Optimization baselines (Sections 2.2, 4.1, 6.2): the posterior
// mean and variance feed the Expected Improvement acquisition function.
//
// After a batch Fit, Observe conditions on one further observation in O(n²)
// by extending the existing Cholesky factor instead of refactorizing in
// O(n³) — the dominant per-iteration cost of every tuning loop — and
// ForgetLast removes the newest observation again. PredictVar reuses
// internal scratch buffers and performs no steady-state allocation; as a
// consequence a GP is NOT safe for concurrent use (production runs one
// surrogate per query signature, matching the Tuner contract).
type GP struct {
	Kernel RBFKernel
	// Noise is the observation-noise variance added to the kernel diagonal.
	Noise float64
	// Standardize scales inputs to zero mean / unit variance before the
	// kernel is applied. The scaler is fitted by Fit and then FROZEN: Observe
	// reuses it rather than re-estimating, which is what makes the
	// incremental update exact with respect to the frozen feature map.
	Standardize bool

	xTrain [][]float64
	yTrain []float64 // raw responses, so the centring can be recomputed
	alpha  []float64 // (K+σ²I)⁻¹ (y−ȳ)
	chol   *mat.Cholesky
	yMean  float64
	scaler *Scaler
	fitted bool

	kstar []float64 // scratch: k(x*, X) then L⁻¹k(x*, X)
	xbuf  []float64 // scratch: standardized query point
}

// NewGP returns a GP with unit RBF kernel and noise 0.1, standardized inputs.
func NewGP() *GP {
	return &GP{
		Kernel:      RBFKernel{LengthScale: 1, Variance: 1},
		Noise:       0.1,
		Standardize: true,
	}
}

// Fit conditions the GP on observations (x, y).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	rows := x
	if g.Standardize {
		sc, err := FitScaler(x)
		if err != nil {
			return err
		}
		g.scaler = sc
		rows = sc.TransformAll(x)
	} else {
		g.scaler = nil
		rows = make([][]float64, len(x))
		for i, r := range x {
			rows[i] = append([]float64(nil), r...)
		}
	}
	n := len(rows)
	g.yMean = 0
	for _, v := range y {
		g.yMean += v
	}
	g.yMean /= float64(n)
	centred := make([]float64, n)
	for i, v := range y {
		centred[i] = v - g.yMean
	}
	gram := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kernel.Eval(rows[i], rows[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	mat.AddDiag(gram, g.Noise+1e-10)
	ch, err := mat.NewCholesky(gram)
	if err != nil {
		return err
	}
	alpha, err := ch.SolveVec(centred)
	if err != nil {
		return err
	}
	g.xTrain = rows
	g.yTrain = append(g.yTrain[:0], y...)
	g.alpha = alpha
	g.chol = ch
	g.fitted = true
	return nil
}

// Len returns the number of observations the GP is conditioned on.
func (g *GP) Len() int { return len(g.xTrain) }

// Fitted reports whether the GP has been successfully fitted.
func (g *GP) Fitted() bool { return g.fitted }

// Observe conditions the fitted GP on one additional observation in O(n²):
// the Cholesky factor grows by one bordered row (one triangular solve) and
// the dual weights are refreshed through the existing factor, instead of the
// O(n³) refactorization a full Fit pays. With Standardize enabled the scaler
// fitted by the last Fit is reused unchanged. Returns ErrNotFitted before
// the first successful Fit; on error the model is unchanged.
func (g *GP) Observe(x []float64, y float64) error {
	if !g.fitted {
		return ErrNotFitted
	}
	if len(x) != len(g.xTrain[0]) {
		return fmt.Errorf("ml: observation has %d features, model has %d", len(x), len(g.xTrain[0]))
	}
	row := make([]float64, len(x))
	if g.scaler != nil {
		g.scaler.TransformTo(row, x)
	} else {
		copy(row, x)
	}
	n := len(g.xTrain)
	kstar := make([]float64, n)
	for i, xi := range g.xTrain {
		kstar[i] = g.Kernel.Eval(xi, row)
	}
	if err := g.chol.AppendRow(kstar, g.Kernel.Eval(row, row)+g.Noise+1e-10); err != nil {
		return err
	}
	g.xTrain = append(g.xTrain, row)
	g.yTrain = append(g.yTrain, y)
	return g.refreshAlpha()
}

// ForgetLast removes the most recently observed point (the inverse of
// Observe): the factor shrinks by one order and the dual weights are
// refreshed in O(n²). At least one observation must remain.
func (g *GP) ForgetLast() error {
	if !g.fitted {
		return ErrNotFitted
	}
	n := len(g.xTrain)
	if n <= 1 {
		return fmt.Errorf("ml: cannot forget the only remaining observation")
	}
	g.chol.Shrink()
	g.xTrain = g.xTrain[:n-1]
	g.yTrain = g.yTrain[:n-1]
	return g.refreshAlpha()
}

// refreshAlpha recomputes the response mean and dual weights
// α = (K+σ²I)⁻¹ (y−ȳ) through the current factor, reusing the α buffer.
func (g *GP) refreshAlpha() error {
	n := len(g.yTrain)
	g.yMean = 0
	for _, v := range g.yTrain {
		g.yMean += v
	}
	g.yMean /= float64(n)
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	for i, v := range g.yTrain {
		g.alpha[i] = v - g.yMean
	}
	return g.chol.SolveVecInPlace(g.alpha)
}

// Predict returns the posterior mean at x.
func (g *GP) Predict(x []float64) float64 {
	m, _ := g.PredictVar(x)
	return m
}

// PredictVar returns the posterior mean and variance at x. It reuses the
// GP's scratch buffers and performs no steady-state allocation, so it must
// not be called concurrently on one GP.
func (g *GP) PredictVar(x []float64) (mean, variance float64) {
	if !g.fitted {
		return math.NaN(), math.NaN()
	}
	row := x
	if g.scaler != nil {
		if cap(g.xbuf) < len(x) {
			g.xbuf = make([]float64, len(x))
		}
		g.xbuf = g.xbuf[:len(x)]
		g.scaler.TransformTo(g.xbuf, x)
		row = g.xbuf
	}
	n := len(g.xTrain)
	if cap(g.kstar) < n {
		g.kstar = make([]float64, n)
	}
	kstar := g.kstar[:n]
	for i, xi := range g.xTrain {
		kstar[i] = g.Kernel.Eval(xi, row)
	}
	mean = g.yMean + mat.Dot(kstar, g.alpha)
	// variance = k(x,x) − k*ᵀ (K+σ²I)⁻¹ k* computed via v = L⁻¹ k* in place.
	if err := g.chol.SolveTriLowerInPlace(kstar); err != nil {
		return mean, math.NaN()
	}
	variance = g.Kernel.Eval(row, row) - mat.Dot(kstar, kstar)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// normalPDF is the standard normal density.
func normalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// normalCDF is the standard normal distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ExpectedImprovement returns the EI acquisition value at x for a
// minimization problem with incumbent best observed value best. Larger is
// better. xi is the exploration margin (commonly 0.01 of the response scale).
func (g *GP) ExpectedImprovement(x []float64, best, xi float64) float64 {
	mean, variance := g.PredictVar(x)
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		if imp := best - xi - mean; imp > 0 {
			return imp
		}
		return 0
	}
	z := (best - xi - mean) / sd
	return (best-xi-mean)*normalCDF(z) + sd*normalPDF(z)
}

// LowerConfidenceBound returns mean − kappa·sd at x; for minimization the
// candidate with the smallest LCB is the most promising.
func (g *GP) LowerConfidenceBound(x []float64, kappa float64) float64 {
	mean, variance := g.PredictVar(x)
	return mean - kappa*math.Sqrt(variance)
}
