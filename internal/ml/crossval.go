package ml

import (
	"fmt"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// CrossValidate estimates a model family's out-of-sample MSE by k-fold
// cross-validation: build constructs a fresh model per fold. Folds are
// assigned by a deterministic shuffle of the provided RNG, so results are
// reproducible.
func CrossValidate(build func() Regressor, x [][]float64, y []float64, k int, r *stats.RNG) (float64, error) {
	if _, err := checkXY(x, y); err != nil {
		return 0, err
	}
	n := len(x)
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	var sse float64
	count := 0
	for fold := 0; fold < k; fold++ {
		var trX [][]float64
		var trY []float64
		var teX [][]float64
		var teY []float64
		for i, idx := range perm {
			if i%k == fold {
				teX = append(teX, x[idx])
				teY = append(teY, y[idx])
			} else {
				trX = append(trX, x[idx])
				trY = append(trY, y[idx])
			}
		}
		if len(trX) == 0 || len(teX) == 0 {
			continue
		}
		m := build()
		if err := m.Fit(trX, trY); err != nil {
			return 0, fmt.Errorf("ml: cross-validation fold %d: %w", fold, err)
		}
		for i, xv := range teX {
			p := m.Predict(xv)
			if math.IsNaN(p) {
				return 0, fmt.Errorf("ml: cross-validation fold %d produced NaN", fold)
			}
			d := p - teY[i]
			sse += d * d
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("ml: cross-validation had no test points")
	}
	return sse / float64(count), nil
}

// AutoKernelRidge fits a kernel-ridge regressor whose length scale and ridge
// penalty are chosen by k-fold cross-validation over a small grid — the
// surrogate "fine-tuning" step of the paper's training pipeline. The grid is
// deliberately small: surrogate refits sit on the job-submission critical
// path.
func AutoKernelRidge(x [][]float64, y []float64, r *stats.RNG) (*KernelRidge, error) {
	if _, err := checkXY(x, y); err != nil {
		return nil, err
	}
	lengthScales := []float64{0.5, 1, 2}
	alphas := []float64{0.05, 0.3, 1}
	bestMSE := math.Inf(1)
	var bestLS, bestAlpha float64
	for _, ls := range lengthScales {
		for _, a := range alphas {
			ls, a := ls, a
			mse, err := CrossValidate(func() Regressor {
				kr := NewKernelRidge()
				kr.Kernel.LengthScale = ls
				kr.Alpha = a
				return kr
			}, x, y, 4, r.Split())
			if err != nil {
				continue
			}
			if mse < bestMSE {
				bestMSE, bestLS, bestAlpha = mse, ls, a
			}
		}
	}
	if math.IsInf(bestMSE, 1) {
		return nil, fmt.Errorf("ml: no kernel-ridge configuration survived cross-validation")
	}
	kr := NewKernelRidge()
	kr.Kernel.LengthScale = bestLS
	kr.Alpha = bestAlpha
	if err := kr.Fit(x, y); err != nil {
		return nil, err
	}
	return kr, nil
}
