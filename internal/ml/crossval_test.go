package ml

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func smoothData(r *stats.RNG, n int, noiseSD float64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Uniform(-2, 2), r.Uniform(-2, 2)
		x[i] = []float64{a, b}
		y[i] = math.Sin(a) + 0.3*b*b + r.Normal(0, noiseSD)
	}
	return x, y
}

func TestCrossValidateRanksModels(t *testing.T) {
	r := stats.NewRNG(1)
	x, y := smoothData(r, 150, 0.05)
	// A sensible kernel ridge must beat an absurdly over-regularized one.
	good, err := CrossValidate(func() Regressor {
		kr := NewKernelRidge()
		kr.Alpha = 0.05
		return kr
	}, x, y, 4, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := CrossValidate(func() Regressor {
		kr := NewKernelRidge()
		kr.Alpha = 1e6
		return kr
	}, x, y, 4, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if good >= bad {
		t.Fatalf("CV failed to rank: good=%g bad=%g", good, bad)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	r := stats.NewRNG(3)
	x, y := smoothData(r, 80, 0.1)
	mk := func() Regressor { return NewKernelRidge() }
	a, err := CrossValidate(mk, x, y, 5, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(mk, x, y, 5, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("CV not deterministic: %g vs %g", a, b)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	mk := func() Regressor { return NewLinear(0) }
	if _, err := CrossValidate(mk, nil, nil, 4, stats.NewRNG(1)); err == nil {
		t.Fatal("empty data should error")
	}
}

func TestAutoKernelRidge(t *testing.T) {
	r := stats.NewRNG(4)
	x, y := smoothData(r, 180, 0.1)
	kr, err := AutoKernelRidge(x, y, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	// Held-out accuracy must be decent.
	var preds, truths []float64
	for i := 0; i < 60; i++ {
		a, b := r.Uniform(-1.5, 1.5), r.Uniform(-1.5, 1.5)
		preds = append(preds, kr.Predict([]float64{a, b}))
		truths = append(truths, math.Sin(a)+0.3*b*b)
	}
	if r2 := R2(preds, truths); r2 < 0.85 {
		t.Fatalf("auto kernel ridge R² = %g", r2)
	}
	// The tuned Alpha must not be the over-smoothed extreme for clean data.
	if kr.Alpha >= 1 {
		t.Fatalf("auto-tuning picked alpha=%g for low-noise data", kr.Alpha)
	}
}
