package ml

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func stepData(r *stats.RNG, n int) ([][]float64, []float64) {
	// Piecewise-constant target: trees should nail this, linear models not.
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Uniform(0, 1), r.Uniform(0, 1)
		x[i] = []float64{a, b}
		switch {
		case a < 0.5 && b < 0.5:
			y[i] = 10
		case a < 0.5:
			y[i] = 20
		case b < 0.5:
			y[i] = 30
		default:
			y[i] = 40
		}
	}
	return x, y
}

func TestTreeFitsPiecewiseConstant(t *testing.T) {
	r := stats.NewRNG(1)
	x, y := stepData(r, 300)
	tr := NewTree()
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	cases := [][3]float64{{0.2, 0.2, 10}, {0.2, 0.8, 20}, {0.8, 0.2, 30}, {0.8, 0.8, 40}}
	for _, c := range cases {
		if p := tr.Predict([]float64{c[0], c[1]}); math.Abs(p-c[2]) > 0.5 {
			t.Fatalf("tree(%g,%g) = %g; want %g", c[0], c[1], p, c[2])
		}
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	r := stats.NewRNG(2)
	x, y := stepData(r, 60)
	tr := NewTree()
	tr.MinLeaf = 30
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf = half the data, at most one split is possible.
	splits := 0
	for _, n := range tr.Nodes {
		if n.Feature >= 0 {
			splits++
		}
	}
	if splits > 1 {
		t.Fatalf("min-leaf violated: %d splits", splits)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tr := NewTree()
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := tr.Predict([]float64{2.5}); p != 7 {
		t.Fatalf("constant tree predicts %g", p)
	}
}

func TestTreeUnfitted(t *testing.T) {
	if !math.IsNaN(NewTree().Predict([]float64{1})) {
		t.Fatal("unfitted tree should be NaN")
	}
	if err := NewTree().Fit(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
}

func TestForestBeatsSingleNoisyTree(t *testing.T) {
	r := stats.NewRNG(3)
	mk := func(n int) ([][]float64, []float64) {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b, c := r.Uniform(-2, 2), r.Uniform(-2, 2), r.Uniform(-2, 2)
			x[i] = []float64{a, b, c}
			y[i] = a*a + math.Sin(b) + 0.5*c + r.Normal(0, 0.4)
		}
		return x, y
	}
	xTr, yTr := mk(400)
	xTe, yTe := mk(150)
	truth := func(v []float64) float64 { return v[0]*v[0] + math.Sin(v[1]) + 0.5*v[2] }

	tree := NewTree()
	if err := tree.Fit(xTr, yTr); err != nil {
		t.Fatal(err)
	}
	forest := NewForest(11)
	forest.FeatureFraction = 1 // all features: isolate bagging benefit
	if err := forest.Fit(xTr, yTr); err != nil {
		t.Fatal(err)
	}
	var mseTree, mseForest float64
	for i, v := range xTe {
		_ = yTe[i]
		dt := tree.Predict(v) - truth(v)
		df := forest.Predict(v) - truth(v)
		mseTree += dt * dt
		mseForest += df * df
	}
	if mseForest >= mseTree {
		t.Fatalf("bagging should reduce variance: forest %g vs tree %g", mseForest, mseTree)
	}
}

func TestForestDeterministicBySeed(t *testing.T) {
	r := stats.NewRNG(4)
	x, y := stepData(r, 150)
	f1 := NewForest(9)
	f2 := NewForest(9)
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.7}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("same seed should give identical forests")
	}
}

func TestForestUnfitted(t *testing.T) {
	if !math.IsNaN(NewForest(1).Predict([]float64{1})) {
		t.Fatal("unfitted forest should be NaN")
	}
}
