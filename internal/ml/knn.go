package ml

import (
	"math"
	"sort"
)

// KNN is a k-nearest-neighbour regressor with inverse-distance weighting on
// standardized features. It serves as a model-free sanity baseline when
// validating surrogate accuracy in the flighting pipeline.
type KNN struct {
	// K is the number of neighbours consulted; values ≤ 0 default to 5.
	K int
	// Standardize scales features before distances are computed.
	Standardize bool

	xTrain [][]float64
	yTrain []float64
	scaler *Scaler
	fitted bool
}

// NewKNN returns a 5-NN regressor with standardization enabled.
func NewKNN() *KNN { return &KNN{K: 5, Standardize: true} }

// Fit stores a copy of the training set.
func (k *KNN) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	rows := x
	if k.Standardize {
		sc, err := FitScaler(x)
		if err != nil {
			return err
		}
		k.scaler = sc
		rows = sc.TransformAll(x)
	} else {
		k.scaler = nil
		rows = make([][]float64, len(x))
		for i, r := range x {
			rows[i] = append([]float64(nil), r...)
		}
	}
	k.xTrain = rows
	k.yTrain = append([]float64(nil), y...)
	k.fitted = true
	return nil
}

// Predict returns the inverse-distance-weighted mean of the K nearest
// training responses. An exact feature match returns that response directly.
func (k *KNN) Predict(x []float64) float64 {
	if !k.fitted {
		return math.NaN()
	}
	row := x
	if k.scaler != nil {
		row = k.scaler.Transform(x)
	}
	type nd struct {
		d float64
		y float64
	}
	ds := make([]nd, len(k.xTrain))
	for i, xi := range k.xTrain {
		var d2 float64
		for j := range xi {
			d := xi[j] - row[j]
			d2 += d * d
		}
		ds[i] = nd{d: math.Sqrt(d2), y: k.yTrain[i]}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	if kk > len(ds) {
		kk = len(ds)
	}
	var wsum, ysum float64
	for _, n := range ds[:kk] {
		if n.d < 1e-12 {
			return n.y
		}
		w := 1 / n.d
		wsum += w
		ysum += w * n.y
	}
	return ysum / wsum
}
