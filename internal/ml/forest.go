package ml

import (
	"math"
	"sort"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// treeNode is one node of a regression tree, stored in a flat slice.
// Leaves have Feature = −1.
type treeNode struct {
	Feature     int // split feature, −1 for leaves
	Threshold   float64
	Left, Right int32 // child indices
	Value       float64
}

// Tree is a CART regression tree grown by variance reduction.
type Tree struct {
	Nodes []treeNode
	// MaxDepth bounds tree growth (≤ 0 means 12).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (≤ 0 means 2).
	MinLeaf int
	fitted  bool
}

// NewTree returns a tree with defaults suitable for small tuning datasets.
func NewTree() *Tree { return &Tree{MaxDepth: 12, MinLeaf: 2} }

func (t *Tree) maxDepth() int {
	if t.MaxDepth <= 0 {
		return 12
	}
	return t.MaxDepth
}

func (t *Tree) minLeaf() int {
	if t.MinLeaf <= 0 {
		return 2
	}
	return t.MinLeaf
}

// Fit grows the tree on x, y.
func (t *Tree) Fit(x [][]float64, y []float64) error {
	if _, err := checkXY(x, y); err != nil {
		return err
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.Nodes = t.Nodes[:0]
	t.grow(x, y, idx, 0, nil)
	t.fitted = true
	return nil
}

// grow builds the subtree over idx and returns its node index.
func (t *Tree) grow(x [][]float64, y []float64, idx []int, depth int, features []int) int32 {
	node := treeNode{Feature: -1, Value: meanAt(y, idx)}
	self := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, node)
	if depth >= t.maxDepth() || len(idx) < 2*t.minLeaf() {
		return self
	}
	feat, thr, ok := t.bestSplit(x, y, idx, features)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.minLeaf() || len(right) < t.minLeaf() {
		return self
	}
	l := t.grow(x, y, left, depth+1, features)
	r := t.grow(x, y, right, depth+1, features)
	t.Nodes[self].Feature = feat
	t.Nodes[self].Threshold = thr
	t.Nodes[self].Left = l
	t.Nodes[self].Right = r
	return self
}

// bestSplit finds the variance-minimizing split over the allowed features
// (nil = all).
func (t *Tree) bestSplit(x [][]float64, y []float64, idx []int, features []int) (feat int, thr float64, ok bool) {
	p := len(x[0])
	if features == nil {
		features = make([]int, p)
		for j := range features {
			features[j] = j
		}
	}
	bestScore := math.Inf(1)
	order := make([]int, len(idx))
	for _, j := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][j] < x[order[b]][j] })
		// Prefix sums enable O(1) variance of each split.
		var sumL, sumSqL float64
		sumR, sumSqR := 0.0, 0.0
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		n := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			yi := y[order[k]]
			sumL += yi
			sumSqL += yi * yi
			sumR -= yi
			sumSqR -= yi * yi
			if x[order[k]][j] == x[order[k+1]][j] {
				continue // cannot split between equal values
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < t.minLeaf() || int(nr) < t.minLeaf() {
				continue
			}
			// Total within-group sum of squares.
			score := (sumSqL - sumL*sumL/nl) + (sumSqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				feat = j
				thr = (x[order[k]][j] + x[order[k+1]][j]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// Predict descends the tree.
func (t *Tree) Predict(x []float64) float64 {
	if !t.fitted || len(t.Nodes) == 0 {
		return math.NaN()
	}
	i := int32(0)
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

func meanAt(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// Forest is a bagged ensemble of regression trees with per-tree bootstrap
// resampling and random feature subsets — the random-forest surrogate used
// by prior auto-tuning work (RFHOC) and a robust alternative to kernel
// methods on larger offline datasets.
type Forest struct {
	// Trees is the ensemble size (≤ 0 means 50).
	Trees int
	// MaxDepth and MinLeaf configure each tree.
	MaxDepth int
	MinLeaf  int
	// FeatureFraction is the share of features each tree may split on
	// (≤ 0 means 1/3, the regression default).
	FeatureFraction float64
	// Seed drives bootstrap and feature sampling.
	Seed uint64

	ensemble []*Tree
	fitted   bool
}

// NewForest returns a 50-tree forest.
func NewForest(seed uint64) *Forest {
	return &Forest{Trees: 50, MaxDepth: 12, MinLeaf: 2, Seed: seed}
}

// Fit trains the ensemble.
func (f *Forest) Fit(x [][]float64, y []float64) error {
	p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	nTrees := f.Trees
	if nTrees <= 0 {
		nTrees = 50
	}
	frac := f.FeatureFraction
	if frac <= 0 {
		frac = 1.0 / 3
	}
	nFeat := int(math.Ceil(frac * float64(p)))
	if nFeat < 1 {
		nFeat = 1
	}
	if nFeat > p {
		nFeat = p
	}
	r := stats.NewRNG(f.Seed)
	f.ensemble = make([]*Tree, 0, nTrees)
	n := len(x)
	for k := 0; k < nTrees; k++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		feats := r.Perm(p)[:nFeat]
		tree := &Tree{MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf}
		tree.Nodes = tree.Nodes[:0]
		tree.grow(x, y, idx, 0, feats)
		tree.fitted = true
		f.ensemble = append(f.ensemble, tree)
	}
	f.fitted = true
	return nil
}

// Predict averages the ensemble.
func (f *Forest) Predict(x []float64) float64 {
	if !f.fitted || len(f.ensemble) == 0 {
		return math.NaN()
	}
	var s float64
	for _, t := range f.ensemble {
		s += t.Predict(x)
	}
	return s / float64(len(f.ensemble))
}

var (
	_ Regressor = (*Tree)(nil)
	_ Regressor = (*Forest)(nil)
)
