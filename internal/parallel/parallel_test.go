package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	t.Parallel()
	if w := Workers(4, 100); w != 4 {
		t.Fatalf("Workers(4, 100) = %d", w)
	}
	if w := Workers(0, 100); w != runtime.NumCPU() && w != 100 {
		t.Fatalf("Workers(0, 100) = %d; want NumCPU (clamped)", w)
	}
	if w := Workers(16, 3); w != 3 {
		t.Fatalf("Workers(16, 3) = %d; want clamp to task count", w)
	}
	if w := Workers(-1, 0); w < 1 {
		t.Fatalf("Workers(-1, 0) = %d; want >= 1", w)
	}
}

func TestMapOrderedResults(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 8, 33} {
		out, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	t.Parallel()
	const workers = 3
	var cur, max atomic.Int64
	_, err := Map(context.Background(), 50, workers, func(_ context.Context, i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks; pool bound is %d", got, workers)
	}
}

func TestMapFirstErrorStopsPool(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	var ran atomic.Int64
	_, m, err := MapMetrics(context.Background(), 1000, 2, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		time.Sleep(50 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if m.Started == 1000 {
		t.Fatal("error should stop the pool before all tasks start")
	}
	if ran.Load() != m.Started {
		t.Fatalf("ran=%d started=%d", ran.Load(), m.Started)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	t.Parallel()
	_, err := Map(context.Background(), 10, 4, func(_ context.Context, i int) (int, error) {
		if i == 7 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v; want *PanicError", err)
	}
	if pe.Index != 7 || fmt.Sprint(pe.Value) != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured faithfully: %+v", pe)
	}
}

func TestMapHonorsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, m, err := MapMetrics(ctx, 10000, 2, func(ctx context.Context, i int) (struct{}, error) {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if m.Started == 10000 {
		t.Fatal("cancellation should prevent remaining tasks from starting")
	}
}

func TestMapEmptyAndMetrics(t *testing.T) {
	t.Parallel()
	out, m, err := MapMetrics(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 0 || m.Started != 0 {
		t.Fatalf("empty map: out=%v m=%+v err=%v", out, m, err)
	}

	before := GlobalCounters()
	_, m, err = MapMetrics(context.Background(), 20, 4, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Started != 20 || m.Finished != 20 || m.Tasks != 20 {
		t.Fatalf("metrics counters: %+v", m)
	}
	if m.Busy < 20*time.Millisecond || m.Wall <= 0 {
		t.Fatalf("timing counters implausible: %+v", m)
	}
	if m.Occupancy() <= 0 || m.Speedup() <= 0 {
		t.Fatalf("derived metrics: occupancy=%g speedup=%g", m.Occupancy(), m.Speedup())
	}
	delta := GlobalCounters().Sub(before)
	if delta.Finished < 20 || delta.Busy < 20*time.Millisecond {
		t.Fatalf("global counters did not accrue: %+v", delta)
	}
}

func TestEach(t *testing.T) {
	t.Parallel()
	var sum atomic.Int64
	if err := Each(context.Background(), 100, 8, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}
