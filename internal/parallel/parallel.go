// Package parallel provides the bounded worker pool that fans independent
// experiment runs, fleet signatures, and backend jobs out across CPUs.
//
// The pool is built for deterministic experiment harnesses: tasks are
// identified by index, results are collected in index order, and nothing in
// the pool itself draws randomness — callers derive each task's RNG from
// the task index (stats.RNG.SplitIndexed / SplitNamed) before or inside the
// task, so the output of a study is byte-identical for any worker count.
//
// Every pool also records utilization counters (tasks started/finished,
// busy vs. wall time, worker occupancy), both per call (MapMetrics) and as
// process-global aggregates (GlobalCounters) so cmd/rockbench can print a
// speedup line without threading metrics through every result type.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Workers normalizes a worker-count parameter: values <= 0 select
// runtime.NumCPU() (the production default for CPU-bound experiment runs),
// and the result is clamped to n so a small task set never spawns idle
// goroutines. n <= 0 leaves the count unclamped.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError wraps a panic captured inside a pool task so it can cross the
// goroutine boundary as an error without losing the stack.
type PanicError struct {
	// Index is the task that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Metrics are one pool invocation's utilization counters.
type Metrics struct {
	// Workers is the number of worker goroutines the pool ran.
	Workers int
	// Tasks is the number of tasks submitted.
	Tasks int
	// Started and Finished count tasks that began and completed execution;
	// they differ from Tasks when cancellation or an error stopped the pool
	// early.
	Started, Finished int64
	// Wall is the elapsed time of the whole pool invocation.
	Wall time.Duration
	// Busy is the summed execution time of all tasks — the CPU-time
	// analogue under compute-bound loads.
	Busy time.Duration
}

// Occupancy is the fraction of worker capacity spent executing tasks:
// Busy / (Wall × Workers). 1.0 means every worker was busy the whole time.
func (m Metrics) Occupancy() float64 {
	if m.Wall <= 0 || m.Workers == 0 {
		return 0
	}
	return float64(m.Busy) / (float64(m.Wall) * float64(m.Workers))
}

// Speedup estimates the wall-clock gain over a sequential execution:
// Busy / Wall. It is exact when per-task cost is unchanged by parallelism —
// i.e. with at most GOMAXPROCS workers. Oversubscribing the cores timeslices
// tasks, inflating their measured durations, and the estimate drifts toward
// the worker count instead of the core count.
func (m Metrics) Speedup() float64 {
	if m.Wall <= 0 {
		return 0
	}
	return float64(m.Busy) / float64(m.Wall)
}

// String renders the counters as the one-line summary rockbench prints.
func (m Metrics) String() string {
	return fmt.Sprintf("workers=%d tasks=%d busy=%v wall=%v speedup=%.2fx occupancy=%.0f%%",
		m.Workers, m.Tasks, m.Busy.Round(time.Millisecond), m.Wall.Round(time.Millisecond),
		m.Speedup(), 100*m.Occupancy())
}

// Counters is the process-wide aggregate over every pool invocation.
type Counters struct {
	Started, Finished int64
	Busy              time.Duration
}

var (
	globalStarted  atomic.Int64
	globalFinished atomic.Int64
	globalBusyNs   atomic.Int64
)

// poolNow timestamps the utilization counters (Wall/Busy/speedup). It is
// the pool's only wall-clock read: task results never depend on it, so the
// byte-identical-output guarantee is untouched.
//
//rocklint:allow wallclock -- pool utilization metrics only; task results never read this clock
var poolNow = time.Now

// GlobalCounters returns the cumulative counters across all pools in this
// process. Callers measuring one phase take a snapshot before and after and
// subtract.
func GlobalCounters() Counters {
	return Counters{
		Started:  globalStarted.Load(),
		Finished: globalFinished.Load(),
		Busy:     time.Duration(globalBusyNs.Load()),
	}
}

// Sub returns c - prev, the counters accrued between two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Started:  c.Started - prev.Started,
		Finished: c.Finished - prev.Finished,
		Busy:     c.Busy - prev.Busy,
	}
}

// Map runs fn(ctx, i) for every i in [0, n) across at most `workers`
// goroutines (Workers-normalized) and returns the results in index order.
//
// The first task error cancels the pool's context and is returned; tasks
// not yet started are skipped (their result is the zero value). A panic
// inside fn is captured as a *PanicError rather than crashing the process.
// Context cancellation stops new tasks from starting but lets in-flight
// ones finish.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out, _, err := MapMetrics(ctx, n, workers, fn)
	return out, err
}

// MapMetrics is Map plus the pool's utilization counters.
func MapMetrics[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, Metrics, error) {
	m := Metrics{Workers: Workers(workers, n), Tasks: n}
	out := make([]T, n)
	if n == 0 {
		return out, m, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		started  atomic.Int64
		finished atomic.Int64
		busyNs   atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	// runTask converts a panic into a *PanicError so one bad run reports
	// instead of killing the whole experiment suite.
	runTask := func(i int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		out[i], err = fn(ctx, i)
		return err
	}

	start := poolNow()
	wg.Add(m.Workers)
	for w := 0; w < m.Workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				started.Add(1)
				globalStarted.Add(1)
				t0 := poolNow()
				err := runTask(i)
				d := poolNow().Sub(t0)
				busyNs.Add(int64(d))
				globalBusyNs.Add(int64(d))
				finished.Add(1)
				globalFinished.Add(1)
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	m.Wall = poolNow().Sub(start)
	m.Started = started.Load()
	m.Finished = finished.Load()
	m.Busy = time.Duration(busyNs.Load())
	if firstErr != nil {
		return out, m, firstErr
	}
	return out, m, ctx.Err()
}

// Each runs fn(ctx, i) for every i in [0, n) across the pool, discarding
// results. Error and panic semantics match Map.
func Each(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, _, err := MapMetrics(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
