package client

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// persistedStack is one process lifetime of an autotuned daemon backed by a
// durable store: open the data directory, serve HTTP, and on stop drain the
// model updater before flushing the final snapshot — the same ordering
// cmd/autotuned uses on SIGTERM.
type persistedStack struct {
	ds  *store.DurableStore
	srv *backend.Server
	hs  *httptest.Server
	c   *Client
}

func openPersistedStack(t *testing.T, dir string, space *sparksim.Space) *persistedStack {
	t.Helper()
	ds, err := store.OpenDurable(dir, []byte("signing-key"), store.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := backend.New(space, ds, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	return &persistedStack{ds: ds, srv: srv, hs: hs, c: New(hs.URL, secret)}
}

func (ps *persistedStack) stop(t *testing.T) {
	t.Helper()
	ps.hs.Close()
	ps.srv.Close()
	if err := ps.ds.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendRestartServesPersistedModels is the end-to-end durability
// check: train a model through the public API, stop the whole stack, bring
// it back up on the same data directory, and the model must be served
// byte-identically without retraining — while never-trained signatures keep
// their clean-miss semantics.
func TestBackendRestartServesPersistedModels(t *testing.T) {
	space := sparksim.QuerySpace()
	dir := t.TempDir()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 3)
	modelPath := store.ModelPath("u1", q.ID)

	ps := openPersistedStack(t, dir, space)
	if err := ps.c.PostEvents(context.Background(), "u1", q.ID, "job-1", makeTraces(e, q, 60, 7)); err != nil {
		t.Fatal(err)
	}
	ps.srv.Flush()
	if m, err := ps.c.FetchModel(context.Background(), "u1", q.ID); err != nil || m == nil {
		t.Fatalf("model missing before restart: %v, %v", m, err)
	}
	blob1, err := ps.c.GetObject(context.Background(), modelPath)
	if err != nil {
		t.Fatal(err)
	}
	ps.stop(t)

	// "Restart": a fresh stack over the same directory, no events posted.
	ps2 := openPersistedStack(t, dir, space)
	defer ps2.stop(t)
	blob2, err := ps2.c.GetObject(context.Background(), modelPath)
	if err != nil {
		t.Fatalf("model blob lost across restart: %v", err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatalf("model blob changed across restart: %d vs %d bytes", len(blob1), len(blob2))
	}
	m, err := ps2.c.FetchModel(context.Background(), "u1", q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("restarted backend must serve the persisted model without retraining")
	}
	// A signature that was never trained still reports a clean miss (the
	// 404 contract), not an error, after recovery.
	if m, err := ps2.c.FetchModel(context.Background(), "u1", "never-trained"); err != nil || m != nil {
		t.Fatalf("expected clean miss after restart, got %v, %v", m, err)
	}
}
