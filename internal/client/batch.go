package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

// PostEventBatch ships traces spanning many query signatures in one call to
// POST /api/events/batch — each trace's queryId names its signature, and the
// backend commits the whole batch as a single store group commit. This is
// the amortized path for chatty listeners: one round trip and one fsync per
// flush instead of one per signature.
func (c *Client) PostEventBatch(ctx context.Context, user, jobID string, traces []flighting.Trace) (backend.BatchResponse, error) {
	var ack backend.BatchResponse
	if len(traces) == 0 {
		return ack, nil
	}
	for i, tr := range traces {
		if tr.QueryID == "" {
			return ack, fmt.Errorf("client: batch trace %d has no QueryID (the signature key)", i)
		}
	}
	tok, err := c.Token(ctx, "events/"+jobID+"/", store.PermWrite)
	if err != nil {
		return ack, err
	}
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		return ack, err
	}
	body := buf.Bytes()
	url := fmt.Sprintf("%s/api/events/batch?user=%s&job_id=%s", c.BaseURL, user, jobID)
	err = c.do(ctx, "post_events_batch", "post event batch "+jobID, http.StatusAccepted,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.SASTokenHeader, tok)
			return req, nil
		},
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&ack)
		})
	return ack, err
}

// Batcher default thresholds.
const (
	DefaultBatchMaxEvents     = 64
	DefaultBatchFlushInterval = 5 * time.Second
	// MinBatchFlushEvents floors the adaptive flush target: shedding can
	// shrink batches down to single-trace requests but never stop them.
	MinBatchFlushEvents = 1
)

// Batcher buffers traces client-side and flushes them through
// PostEventBatch when the buffer reaches the flush target or FlushInterval
// elapses — the query listener's answer to "don't fsync per query". It is
// safe for concurrent Add.
//
// The flush target is adaptive (AIMD): it starts at MaxEvents and reacts
// to backend shedding. A flush the backend rejects with 429 + Retry-After
// halves the target — multiplicative decrease sheds load as fast as the
// backend signals distress — and each accepted flush adds one back up to
// MaxEvents, probing for recovered capacity gently enough not to
// re-trigger the shed. Flush ships the buffer in target-sized requests, so
// the halved size applies to in-flight work too, not just the trigger.
type Batcher struct {
	client *Client
	user   string
	jobID  string

	// MaxEvents is the flush-target ceiling; <= 0 means
	// DefaultBatchMaxEvents.
	MaxEvents int
	// FlushInterval is the background flush cadence; <= 0 means
	// DefaultBatchFlushInterval.
	FlushInterval time.Duration
	// OnError observes failed background flushes (the failed traces are
	// re-buffered); nil logs through the client's Logger.
	OnError func(error)

	mu     sync.Mutex
	buf    []flighting.Trace
	target int // adaptive flush threshold; 0 until first use

	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
}

// NewBatcher returns a Batcher shipping to user/jobID through c. Start the
// background interval flusher with Start; without it the Batcher still
// flushes on size and on Close.
func (c *Client) NewBatcher(user, jobID string) *Batcher {
	return &Batcher{client: c, user: user, jobID: jobID}
}

// Start launches the interval flusher, bounded by ctx and by Close.
func (b *Batcher) Start(ctx context.Context) {
	b.once.Do(func() {
		ctx, cancel := context.WithCancel(ctx)
		b.cancel = cancel
		b.wg.Add(1)
		go b.loop(ctx)
	})
}

func (b *Batcher) loop(ctx context.Context) {
	defer b.wg.Done()
	interval := b.FlushInterval
	if interval <= 0 {
		interval = DefaultBatchFlushInterval
	}
	for {
		if err := b.client.clock().Sleep(ctx, interval); err != nil {
			return // Close cancelled the context
		}
		b.flush(ctx)
	}
}

// ceiling is the configured flush-target upper bound.
func (b *Batcher) ceiling() int {
	if b.MaxEvents > 0 {
		return b.MaxEvents
	}
	return DefaultBatchMaxEvents
}

// targetLocked returns the adaptive flush threshold, initializing it to
// the ceiling on first use. Callers hold b.mu.
func (b *Batcher) targetLocked() int {
	if b.target <= 0 {
		b.target = b.ceiling()
	}
	return b.target
}

// FlushTarget reports the current adaptive flush threshold — MaxEvents
// until the backend sheds, smaller while the Batcher is backing off.
func (b *Batcher) FlushTarget() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.targetLocked()
}

// Add buffers one trace, flushing synchronously when the buffer reaches
// the adaptive flush target. The flush error (if any) surfaces here so
// the caller's retry classifier sees it.
func (b *Batcher) Add(ctx context.Context, tr flighting.Trace) error {
	b.mu.Lock()
	b.buf = append(b.buf, tr)
	full := len(b.buf) >= b.targetLocked()
	b.mu.Unlock()
	if full {
		return b.Flush(ctx)
	}
	return nil
}

// Len reports the currently buffered trace count.
func (b *Batcher) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Flush ships everything buffered at the time of the call, in requests of
// at most the current flush target. On failure the unshipped traces are
// put back at the front of the buffer — nothing is dropped, nothing
// already acknowledged is re-sent — and a later flush retries them. A 429
// rejection halves the flush target; each accepted request adds one back.
func (b *Batcher) Flush(ctx context.Context) error {
	b.mu.Lock()
	batch := b.buf
	b.buf = nil
	b.mu.Unlock()
	for len(batch) > 0 {
		n := b.FlushTarget()
		if n > len(batch) {
			n = len(batch)
		}
		if _, err := b.client.PostEventBatch(ctx, b.user, b.jobID, batch[:n:n]); err != nil {
			b.mu.Lock()
			if resilience.StatusOf(err) == http.StatusTooManyRequests {
				// The backend said "too much, come back later": halve the
				// target so the retry (and the trigger) respect the shed.
				if b.target = b.targetLocked() / 2; b.target < MinBatchFlushEvents {
					b.target = MinBatchFlushEvents
				}
			}
			b.buf = append(batch, b.buf...)
			b.mu.Unlock()
			return err
		}
		b.mu.Lock()
		if t := b.targetLocked(); t < b.ceiling() {
			b.target = t + 1
		}
		b.mu.Unlock()
		batch = batch[n:]
	}
	return nil
}

// flush is the background loop's Flush: errors go to OnError (or the
// client's logger) instead of a caller.
func (b *Batcher) flush(ctx context.Context) {
	if err := b.Flush(ctx); err != nil {
		if b.OnError != nil {
			b.OnError(err)
			return
		}
		b.client.logf("client: background batch flush: %v", err)
	}
}

// Close stops the interval flusher (if started) and ships whatever is
// buffered. The final flush uses the caller's context, not the (cancelled)
// loop context.
func (b *Batcher) Close(ctx context.Context) error {
	if b.cancel != nil {
		b.cancel()
	}
	b.wg.Wait()
	return b.Flush(ctx)
}
