package client

import (
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// Fallback reasons for the rockhopper_client_fallbacks_total counter — a
// closed set (cardinality rule, DESIGN.md §8).
const (
	fallbackColdStart    = "cold_start"
	fallbackError        = "error"
	fallbackNoPrediction = "no_prediction"
)

// clientTelemetry is the client's bound instrument set. The `call` label is
// the bounded call kind ("get_object", "post_events", ...), never the raw op
// string, which embeds paths and job IDs.
type clientTelemetry struct {
	attempts    *telemetry.CounterVec   // {call}
	retries     *telemetry.CounterVec   // {call}
	calls       *telemetry.CounterVec   // {call, outcome}
	latency     *telemetry.HistogramVec // {call}
	transitions *telemetry.CounterVec   // {to}
	fallbacks   *telemetry.CounterVec   // {reason}
	trips       *telemetry.CounterVec   // {cause}
}

// tele lazily binds the instruments against c.Metrics on first use (set
// Metrics before the first call; later changes are ignored). A nil Metrics
// yields discarding instruments, so instrumentation never needs nil checks.
func (c *Client) tele() *clientTelemetry {
	c.teleOnce.Do(func() {
		reg := c.Metrics
		t := &clientTelemetry{
			attempts: reg.Counter("rockhopper_client_attempts_total",
				"Individual HTTP attempts by call kind (retries included).", "call"),
			retries: reg.Counter("rockhopper_client_retries_total",
				"Retries scheduled after a transient failure, by call kind.", "call"),
			calls: reg.Counter("rockhopper_client_calls_total",
				"Logical backend calls by kind and outcome (ok, error, circuit_open).", "call", "outcome"),
			latency: reg.Histogram("rockhopper_client_call_seconds",
				"Logical call latency in seconds (all attempts included).", nil, "call"),
			transitions: reg.Counter("rockhopper_client_breaker_transitions_total",
				"Circuit breaker state entries by target state.", "to"),
			fallbacks: reg.Counter("rockhopper_client_fallbacks_total",
				"RemoteSelector falls back to the local selector, by reason.", "reason"),
			trips: reg.Counter("rockhopper_guardrail_trips_attributed_total",
				"Guardrail reverts by attributed cause: drift (the signature's model had drifted off observed costs when the guardrail fired) or stationary.", "cause"),
		}
		// Count breaker transitions unless the caller claimed the hook.
		if c.Breaker != nil && c.Breaker.OnTransition == nil {
			c.Breaker.OnTransition = func(_, to resilience.BreakerState) {
				t.transitions.With(to.String()).Inc()
			}
		}
		c.teleBound = t
	})
	return c.teleBound
}
