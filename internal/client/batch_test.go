package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// batchTraces builds n traces round-robin across the given signatures.
func batchTraces(t *testing.T, space *sparksim.Space, sigs []string, n int) []flighting.Trace {
	t.Helper()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(7).Query(workloads.TPCDS, 2)
	out := makeTraces(e, q, n, 7)
	for i := range out {
		out[i].QueryID = sigs[i%len(sigs)]
	}
	return out
}

func TestPostEventBatch(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	traces := batchTraces(t, space, []string{"sigA", "sigB"}, 8)
	ack, err := c.PostEventBatch(context.Background(), "u", "job1", traces)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Signatures != 2 || ack.Events != 8 {
		t.Fatalf("ack = %+v, want 2 signatures / 8 events", ack)
	}
	srv.Flush()
	for _, sig := range []string{"sigA", "sigB"} {
		if _, err := srv.Store.GetInternal(store.ModelPath("u", sig)); err != nil {
			t.Errorf("no model for %s after batch ingest: %v", sig, err)
		}
	}

	// Unsigned traces are rejected client-side, before any network call.
	bad := batchTraces(t, space, []string{"s"}, 2)
	bad[1].QueryID = ""
	if _, err := c.PostEventBatch(context.Background(), "u", "job1", bad); err == nil {
		t.Error("batch with an unsigned trace should fail client-side")
	}
	// An empty batch is a no-op, not an error.
	if _, err := c.PostEventBatch(context.Background(), "u", "job1", nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestBatcherSizeFlush: Add flushes synchronously when the buffer hits
// MaxEvents, and Close ships the remainder.
func TestBatcherSizeFlush(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	b := c.NewBatcher("u", "job1")
	b.MaxEvents = 4
	traces := batchTraces(t, space, []string{"sigA", "sigB"}, 6)
	for _, tr := range traces {
		if err := b.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	// 6 adds with MaxEvents=4: one size flush at 4, two left buffered.
	if got := b.Len(); got != 2 {
		t.Fatalf("buffered after size flush = %d, want 2", got)
	}
	if got := len(srv.Store.List("events/job1/")); got != 2 {
		t.Fatalf("event files after size flush = %d, want 2 (sigA+sigB)", got)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.Len(); got != 0 {
		t.Errorf("buffered after Close = %d, want 0", got)
	}
	srv.Flush()
	if got := len(srv.Store.List("index/u/")); got != 4 {
		t.Errorf("index entries = %d, want 4 (2 sigs x 2 flushes)", got)
	}
}

// TestBatcherIntervalFlush: the background loop ships the buffer on its
// cadence without any size trigger.
func TestBatcherIntervalFlush(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	b := c.NewBatcher("u", "job1")
	b.FlushInterval = 10 * time.Millisecond
	b.Start(context.Background())
	defer b.Close(context.Background())
	if err := b.Add(context.Background(), batchTraces(t, space, []string{"sigA"}, 1)[0]); err != nil {
		t.Fatal(err)
	}
	// Wait for the flush to land in the store, not merely for the buffer to
	// drain: Flush snapshots (and empties) the buffer before the POST
	// completes, so Len()==0 races the actual ship.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Store.List("events/job1/")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never shipped the buffer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.Len(); got != 0 {
		t.Errorf("buffered after interval flush = %d, want 0", got)
	}
}

// TestBatcherRebuffersOnFailure: a failed flush keeps the traces (in order)
// for the next attempt instead of dropping acknowledged-to-caller data.
func TestBatcherRebuffersOnFailure(t *testing.T) {
	space := sparksim.QuerySpace()
	st := store.New([]byte("signing-key"))
	srv := backend.New(space, st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	c := New(hs.URL, secret)
	c.Retry.MaxAttempts = 1

	b := c.NewBatcher("u", "job1")
	traces := batchTraces(t, space, []string{"sigA"}, 3)
	for _, tr := range traces {
		if err := b.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the token cache, then kill the backend: the flush must fail and
	// re-buffer.
	if _, err := c.Token(context.Background(), "events/job1/", store.PermWrite); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := b.Flush(ctx); err == nil {
		t.Fatal("flush against a dead backend should fail")
	}
	if got := b.Len(); got != 3 {
		t.Errorf("buffered after failed flush = %d, want 3 (re-buffered)", got)
	}
	// A transport failure carries no status: the adaptive target must not
	// shrink — only the backend's own 429 shed signal does that.
	if got := b.FlushTarget(); got != DefaultBatchMaxEvents {
		t.Errorf("flush target after transport failure = %d, want %d (unchanged)", got, DefaultBatchMaxEvents)
	}
}

// TestBatcherAdaptiveFlushTarget drives the AIMD flush sizing on a fake
// clock: 429 + Retry-After halves the target down to the floor, accepted
// flushes add one back toward MaxEvents, and a recovered backlog drains in
// target-sized requests.
func TestBatcherAdaptiveFlushTarget(t *testing.T) {
	space := sparksim.QuerySpace()
	st := store.New([]byte("signing-key"))
	srv := backend.New(space, st, secret, 1)

	var shedding atomic.Bool
	var batchCalls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/events/batch" {
			batchCalls.Add(1)
			if shedding.Load() {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "shed", http.StatusTooManyRequests)
				return
			}
		}
		srv.Handler().ServeHTTP(w, r)
	})
	hs := httptest.NewServer(h)
	t.Cleanup(func() { hs.Close(); srv.Close() })

	c := New(hs.URL, secret)
	c.Clock = resilience.NewFakeClock(time.Unix(0, 0)) // no real sleeps, deterministic
	c.Retry.MaxAttempts = 1                            // surface each 429 to the Batcher

	b := c.NewBatcher("u", "job1")
	b.MaxEvents = 16
	if got := b.FlushTarget(); got != 16 {
		t.Fatalf("initial flush target = %d, want MaxEvents (16)", got)
	}

	ctx := context.Background()
	traces := batchTraces(t, space, []string{"sigA"}, 16)
	for _, tr := range traces[:15] {
		if err := b.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	shedding.Store(true)
	if err := b.Add(ctx, traces[15]); err == nil {
		t.Fatal("size flush during shed should surface the 429")
	}
	if got := b.FlushTarget(); got != 8 {
		t.Fatalf("target after one 429 = %d, want 8 (halved)", got)
	}
	if got := b.Len(); got != 16 {
		t.Fatalf("buffered after failed flush = %d, want 16 (re-buffered)", got)
	}

	// Repeated sheds keep halving but never go below the floor.
	for i := 0; i < 10; i++ {
		if err := b.Flush(ctx); err == nil {
			t.Fatal("flush during shed should fail")
		}
	}
	if got := b.FlushTarget(); got != MinBatchFlushEvents {
		t.Fatalf("target after sustained shedding = %d, want floor %d", got, MinBatchFlushEvents)
	}

	// Recovery: the backlog drains in target-sized requests, each accepted
	// one raising the target by one (1,2,3,4,5 then the final 1 = 6 calls).
	shedding.Store(false)
	batchCalls.Store(0)
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := b.Len(); got != 0 {
		t.Fatalf("buffered after recovered flush = %d, want 0", got)
	}
	if got := batchCalls.Load(); got != 6 {
		t.Fatalf("recovered drain used %d requests, want 6 (additive growth)", got)
	}
	if got := b.FlushTarget(); got != 7 {
		t.Fatalf("target after 6 accepted flushes = %d, want 7", got)
	}
}

// TestBatcherConcurrentAdd: concurrent Adds with size flushes race-free and
// lose nothing.
func TestBatcherConcurrentAdd(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	b := c.NewBatcher("u", "job1")
	b.MaxEvents = 8
	traces := batchTraces(t, space, []string{"sigA", "sigB"}, 48)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 12; i < (g+1)*12; i++ {
				if err := b.Add(context.Background(), traces[i]); err != nil && !errors.Is(err, context.Canceled) {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	total := 0
	for _, p := range srv.Store.List("events/job1/") {
		blob, err := srv.Store.GetInternal(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := flighting.ReadTraces(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	if total != 48 {
		t.Errorf("persisted traces = %d, want 48 (no loss, no duplication)", total)
	}
}
