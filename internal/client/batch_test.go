package client

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// batchTraces builds n traces round-robin across the given signatures.
func batchTraces(t *testing.T, space *sparksim.Space, sigs []string, n int) []flighting.Trace {
	t.Helper()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(7).Query(workloads.TPCDS, 2)
	out := makeTraces(e, q, n, 7)
	for i := range out {
		out[i].QueryID = sigs[i%len(sigs)]
	}
	return out
}

func TestPostEventBatch(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	traces := batchTraces(t, space, []string{"sigA", "sigB"}, 8)
	ack, err := c.PostEventBatch(context.Background(), "u", "job1", traces)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Signatures != 2 || ack.Events != 8 {
		t.Fatalf("ack = %+v, want 2 signatures / 8 events", ack)
	}
	srv.Flush()
	for _, sig := range []string{"sigA", "sigB"} {
		if _, err := srv.Store.GetInternal(store.ModelPath("u", sig)); err != nil {
			t.Errorf("no model for %s after batch ingest: %v", sig, err)
		}
	}

	// Unsigned traces are rejected client-side, before any network call.
	bad := batchTraces(t, space, []string{"s"}, 2)
	bad[1].QueryID = ""
	if _, err := c.PostEventBatch(context.Background(), "u", "job1", bad); err == nil {
		t.Error("batch with an unsigned trace should fail client-side")
	}
	// An empty batch is a no-op, not an error.
	if _, err := c.PostEventBatch(context.Background(), "u", "job1", nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestBatcherSizeFlush: Add flushes synchronously when the buffer hits
// MaxEvents, and Close ships the remainder.
func TestBatcherSizeFlush(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	b := c.NewBatcher("u", "job1")
	b.MaxEvents = 4
	traces := batchTraces(t, space, []string{"sigA", "sigB"}, 6)
	for _, tr := range traces {
		if err := b.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	// 6 adds with MaxEvents=4: one size flush at 4, two left buffered.
	if got := b.Len(); got != 2 {
		t.Fatalf("buffered after size flush = %d, want 2", got)
	}
	if got := len(srv.Store.List("events/job1/")); got != 2 {
		t.Fatalf("event files after size flush = %d, want 2 (sigA+sigB)", got)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.Len(); got != 0 {
		t.Errorf("buffered after Close = %d, want 0", got)
	}
	srv.Flush()
	if got := len(srv.Store.List("index/u/")); got != 4 {
		t.Errorf("index entries = %d, want 4 (2 sigs x 2 flushes)", got)
	}
}

// TestBatcherIntervalFlush: the background loop ships the buffer on its
// cadence without any size trigger.
func TestBatcherIntervalFlush(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	b := c.NewBatcher("u", "job1")
	b.FlushInterval = 10 * time.Millisecond
	b.Start(context.Background())
	defer b.Close(context.Background())
	if err := b.Add(context.Background(), batchTraces(t, space, []string{"sigA"}, 1)[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never shipped the buffer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(srv.Store.List("events/job1/")); got != 1 {
		t.Errorf("event files = %d, want 1", got)
	}
	_ = srv
}

// TestBatcherRebuffersOnFailure: a failed flush keeps the traces (in order)
// for the next attempt instead of dropping acknowledged-to-caller data.
func TestBatcherRebuffersOnFailure(t *testing.T) {
	space := sparksim.QuerySpace()
	st := store.New([]byte("signing-key"))
	srv := backend.New(space, st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	c := New(hs.URL, secret)
	c.Retry.MaxAttempts = 1

	b := c.NewBatcher("u", "job1")
	traces := batchTraces(t, space, []string{"sigA"}, 3)
	for _, tr := range traces {
		if err := b.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the token cache, then kill the backend: the flush must fail and
	// re-buffer.
	if _, err := c.Token(context.Background(), "events/job1/", store.PermWrite); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := b.Flush(ctx); err == nil {
		t.Fatal("flush against a dead backend should fail")
	}
	if got := b.Len(); got != 3 {
		t.Errorf("buffered after failed flush = %d, want 3 (re-buffered)", got)
	}
}

// TestBatcherConcurrentAdd: concurrent Adds with size flushes race-free and
// lose nothing.
func TestBatcherConcurrentAdd(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	b := c.NewBatcher("u", "job1")
	b.MaxEvents = 8
	traces := batchTraces(t, space, []string{"sigA", "sigB"}, 48)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 12; i < (g+1)*12; i++ {
				if err := b.Add(context.Background(), traces[i]); err != nil && !errors.Is(err, context.Canceled) {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	total := 0
	for _, p := range srv.Store.List("events/job1/") {
		blob, err := srv.Store.GetInternal(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := flighting.ReadTraces(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	if total != 48 {
		t.Errorf("persisted traces = %d, want 48 (no loss, no duplication)", total)
	}
}
