// Shard routing: the client-side half of the fleet (internal/fleet). A
// ShardRouter computes signature placement with the same deterministic
// ring every fleet node uses — no lookup service — keeps one resilient
// *Client per node, and layers fleet failover onto the existing
// degradation ladder:
//
//   - 421 Misdirected Request: the server's redirect wins over the local
//     view — the router re-aims at the named owner and retries (covers a
//     router whose topology parameters drifted from the fleet's).
//   - transport fault / 5xx / open circuit: the node is marked dead
//     locally and the call walks the promotion chain — the same cyclic
//     successor the fleet promotes, which is exactly the node holding the
//     replicated data.
//
// Batches are partitioned by owner before posting, because a fleet node
// bounces any batch it does not wholly own.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/fleet"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// ShardRouterOptions parameterizes NewShardRouter. Peers, Replicas,
// Vnodes, and Seed must match the fleet's own configuration — placement is
// computed, never negotiated.
type ShardRouterOptions struct {
	// Peers maps node ID to base URL for every fleet member.
	Peers map[string]string
	// Replicas is the fleet's replica-set size (failover walk depth).
	Replicas int
	// Vnodes and Seed are the ring parameters.
	Vnodes int
	Seed   uint64
	// ClusterSecret is passed to each per-node Client.
	ClusterSecret string
	// Configure customizes each lazily built per-node Client (HTTP
	// transport, clock, metrics, retry policy); nil keeps defaults.
	Configure func(id string, c *Client)
	// Tracer records the router's client_send root span and one child span
	// per fleet hop (owner attempt, 421 redirect follow, failover walk);
	// nil records nothing.
	Tracer *telemetry.Tracer
}

// ShardRouter routes per-signature calls to the owning fleet node.
// It is safe for concurrent use.
type ShardRouter struct {
	topo          *fleet.Topology
	urls          map[string]string // node ID -> base URL
	ids           map[string]string // base URL -> node ID
	clusterSecret string
	configure     func(id string, c *Client)
	tracer        *telemetry.Tracer

	mu      sync.Mutex
	clients map[string]*Client
}

// NewShardRouter builds a router over the given fleet.
func NewShardRouter(opts ShardRouterOptions) *ShardRouter {
	ids := make([]string, 0, len(opts.Peers))
	urls := make(map[string]string, len(opts.Peers))
	byURL := make(map[string]string, len(opts.Peers))
	for id, u := range opts.Peers {
		ids = append(ids, id)
		urls[id] = u
		byURL[u] = id
	}
	sort.Strings(ids)
	return &ShardRouter{
		topo:          fleet.NewTopology(ids, opts.Replicas, opts.Vnodes, opts.Seed),
		urls:          urls,
		ids:           byURL,
		clusterSecret: opts.ClusterSecret,
		configure:     opts.Configure,
		tracer:        opts.Tracer,
		clients:       make(map[string]*Client),
	}
}

// Owner returns the node ID the router currently believes owns signature.
func (r *ShardRouter) Owner(signature string) string { return r.topo.Owner(signature) }

// MarkLive readmits a node the router had written off (operator action
// after the node rejoins).
func (r *ShardRouter) MarkLive(id string) { r.topo.MarkLive(id) }

// client returns (building lazily) the per-node Client.
func (r *ShardRouter) client(id string) *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[id]; ok {
		return c
	}
	c := New(r.urls[id], r.clusterSecret)
	if r.configure != nil {
		r.configure(id, c)
	}
	r.clients[id] = c
	return c
}

// ClientFor returns the Client for the node currently owning signature.
func (r *ShardRouter) ClientFor(signature string) (*Client, string) {
	id := r.topo.Owner(signature)
	return r.client(id), id
}

// redirectTarget extracts the owner node from a 421 response, if err is one.
func (r *ShardRouter) redirectTarget(err error) (string, bool) {
	var he *resilience.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusMisdirectedRequest {
		return "", false
	}
	var mr backend.MisroutedResponse
	if json.Unmarshal([]byte(he.Msg), &mr) != nil {
		return "", false
	}
	id, ok := r.ids[mr.Owner]
	return id, ok
}

// transientFleet reports whether err looks like a dead node rather than a
// caller mistake: transport faults, 5xx, and an open circuit all mean "try
// the promotion chain"; any 4xx means the node is alive and the request is
// wrong.
func transientFleet(err error) bool {
	if errors.Is(err, resilience.ErrCircuitOpen) {
		return true
	}
	status := resilience.StatusOf(err)
	return status == 0 || status >= 500
}

// Do runs call against the node owning signature, following 421 redirects
// and failing over along the promotion chain when a node looks dead.
func (r *ShardRouter) Do(ctx context.Context, signature string, call func(ctx context.Context, c *Client) error) error {
	id := r.topo.Owner(signature)
	if id == "" {
		return fmt.Errorf("client: no live fleet node owns %q", signature)
	}
	// The router is the trace origin for fleet calls it starts itself: a
	// client_send root covers the whole routed call, and each hop (owner
	// attempt, redirect follow, failover walk) gets its own child span so
	// the assembled tree shows exactly which nodes the call touched.
	var root *telemetry.ActiveSpan
	if !telemetry.SpanFrom(ctx).Valid() {
		ctx, root = r.tracer.StartRoot(ctx, "client_send", "client")
	}
	finish := func(err error) error {
		if err == nil {
			root.Finish("ok")
		} else {
			root.Finish("error")
		}
		return err
	}
	tried := make(map[string]bool)
	var lastErr error
	for hops := 0; hops <= len(r.urls); hops++ {
		tried[id] = true
		hopCtx, hop := r.tracer.Start(ctx, "hop:"+id, "client")
		err := call(hopCtx, r.client(id))
		if err == nil {
			hop.Finish("ok")
			return finish(nil)
		}
		hop.Finish("error")
		lastErr = err
		if ctx.Err() != nil {
			return finish(err)
		}
		if next, ok := r.redirectTarget(err); ok {
			if next == id {
				// A node redirecting to itself is a routing disagreement
				// that following cannot fix.
				return finish(fmt.Errorf("client: self-redirect for %q: %w", signature, err))
			}
			// The server's redirect is authoritative: the fleet says next
			// is the live owner, so it overrides the local ring AND any
			// earlier transient-failure verdict on that node. The hop
			// budget still bounds a true redirect ping-pong.
			r.topo.MarkLive(next)
			id = next
			continue
		}
		if !transientFleet(err) {
			return finish(err)
		}
		r.topo.MarkDead(id)
		next := r.topo.Owner(signature)
		if next == "" || tried[next] {
			break
		}
		id = next
	}
	return finish(fmt.Errorf("client: fleet routes exhausted for %q: %w", signature, lastErr))
}

// PostEvents ingests traces for one signature at its owning node.
func (r *ShardRouter) PostEvents(ctx context.Context, user, signature, jobID string, traces []flighting.Trace) error {
	return r.Do(ctx, signature, func(ctx context.Context, c *Client) error {
		return c.PostEvents(ctx, user, signature, jobID, traces)
	})
}

// FetchModel fetches the trained model from the signature's owning node.
func (r *ShardRouter) FetchModel(ctx context.Context, user, signature string) (ml.Regressor, error) {
	var m ml.Regressor
	err := r.Do(ctx, signature, func(ctx context.Context, c *Client) error {
		var ferr error
		m, ferr = c.FetchModel(ctx, user, signature)
		return ferr
	})
	return m, err
}

// PostEventBatch partitions traces by their queryId's owning node and
// posts one wholly-owned batch per node — fleet nodes bounce mixed
// batches. The returned response aggregates all partitions; on error,
// partitions already posted stay posted (ingest is idempotent per trace
// file, so the caller simply retries the whole batch).
func (r *ShardRouter) PostEventBatch(ctx context.Context, user, jobID string, traces []flighting.Trace) (backend.BatchResponse, error) {
	parts := make(map[string][]flighting.Trace)
	for _, tr := range traces {
		parts[r.topo.Owner(tr.QueryID)] = append(parts[r.topo.Owner(tr.QueryID)], tr)
	}
	owners := make([]string, 0, len(parts))
	for id := range parts {
		owners = append(owners, id)
	}
	sort.Strings(owners)
	var total backend.BatchResponse
	for _, id := range owners {
		part := parts[id]
		// Route by the partition's first signature: all of them share an
		// owner, and Do re-partitions naturally via 421 if the view drifted.
		err := r.Do(ctx, part[0].QueryID, func(ctx context.Context, c *Client) error {
			resp, berr := c.PostEventBatch(ctx, user, jobID, part)
			if berr == nil {
				total.Signatures += resp.Signatures
				total.Events += resp.Events
			}
			return berr
		})
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Selector returns a RemoteSelector whose model fetch is fleet-routed:
// inference follows the shard owner, and on owner death the fetch fails
// over to the promoted replica before falling back to the local selector.
func (r *ShardRouter) Selector(space *sparksim.Space, user, signature string, fallback core.Selector) *RemoteSelector {
	c, _ := r.ClientFor(signature)
	return &RemoteSelector{
		Client:    c,
		Space:     space,
		User:      user,
		Signature: signature,
		Fallback:  fallback,
		Fetch:     r.FetchModel,
	}
}
