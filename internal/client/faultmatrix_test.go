package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/resilience/faultinject"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// runFlightingLoop executes the end-to-end tuning loop (client inference →
// simulated execution → event shipping → backend retraining) for two
// recurrent queries under an injected transport fault rate, and returns the
// full per-iteration sequence of recommended configurations. The loop is
// deterministic: the same seed must yield the same sequence at ANY fault
// rate, because retries replay failed calls against a deterministic backend.
func runFlightingLoop(t *testing.T, faultRate float64) [][]sparksim.Config {
	t.Helper()
	space := sparksim.QuerySpace()
	st := store.New([]byte("key"))
	srv := backend.New(space, st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	c := New(hs.URL, secret)
	ft := &faultinject.Transport{Plan: &faultinject.Rate{P: faultRate, RNG: stats.NewRNG(99)}}
	c.HTTP = &http.Client{Transport: ft}
	// Enough attempts that P(all fail) is negligible even at 30%, and a
	// breaker threshold a transient-fault streak cannot plausibly trip.
	c.Retry = resilience.Policy{MaxAttempts: 20}
	c.Breaker.Threshold = 1000
	harden(c)

	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(1)
	root := stats.NewRNG(17)
	var recommendations [][]sparksim.Config
	for _, qi := range []int{2, 5} {
		q := gen.Query(workloads.TPCDS, qi)
		sess, err := NewSession(c, space, "u1", "job-matrix", q.Plan, 7)
		if err != nil {
			t.Fatal(err)
		}
		rq := root.SplitNamed(q.ID)
		size := q.Plan.LeafInputBytes()
		var recs []sparksim.Config
		for i := 0; i < 12; i++ {
			start := time.Now()
			cfg := sess.Recommend(size)
			o := e.Run(q, cfg, 1, rq, noise.Low)
			if err := sess.Complete(context.Background(), o, nil); err != nil {
				t.Fatalf("rate %.0f%%: iteration %d did not survive injected faults: %v",
					faultRate*100, i, err)
			}
			// No call may block past its deadline: Recommend+Complete do a
			// handful of calls, each bounded by DefaultCallTimeout; backoff
			// runs on the fake clock, so wall time stays far below it.
			if el := time.Since(start); el > DefaultCallTimeout {
				t.Fatalf("iteration %d took %v, past the per-call deadline", i, el)
			}
			recs = append(recs, cfg)
			// Drain the Model Updater so model availability at each
			// iteration is deterministic across fault rates.
			srv.Flush()
		}
		recommendations = append(recommendations, recs)
	}
	if faultRate > 0 && ft.Attempts.Load() == ft.Forwarded.Load() {
		t.Fatalf("rate %.0f%%: fault injection never fired", faultRate*100)
	}
	return recommendations
}

// TestFaultMatrixFlightingLoop sweeps injected transient transport fault
// rates {0%, 10%, 30%} and asserts the flighting loop completes and
// converges to configurations IDENTICAL to the fault-free run — transient
// faults must cost retries, never behaviour.
func TestFaultMatrixFlightingLoop(t *testing.T) {
	baseline := runFlightingLoop(t, 0)
	for _, rate := range []float64{0.10, 0.30} {
		got := runFlightingLoop(t, rate)
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("rate %.0f%%: recommendation sequence diverged from fault-free run", rate*100)
		}
	}
}

// TestOpenCircuitFailsOverFast is the dead-backend half of the acceptance
// criteria: once the breaker opens, RemoteSelector must fail over to the
// local fallback in O(circuit-check) time — zero network round trips, not a
// full timeout per query — and probe the backend again after the cool-down.
func TestOpenCircuitFailsOverFast(t *testing.T) {
	space := sparksim.QuerySpace()
	c := New("http://127.0.0.1:1", secret) // nothing listens here
	ft := &faultinject.Transport{}         // pass-through, counts attempts
	c.HTTP = &http.Client{Transport: ft}
	clock := harden(c)
	c.Breaker = &resilience.Breaker{Threshold: 2, Cooldown: time.Minute, Clock: clock}

	rs := &RemoteSelector{
		Client: c, Space: space, User: "u", Signature: "s",
		Fallback: core.RandomSelector{RNG: stats.NewRNG(3)},
	}
	cands := []sparksim.Config{space.Default(), space.Default()}

	// First query: two dial failures trip the breaker mid-retry.
	if idx := rs.Select(cands, nil, 0); idx < 0 || idx >= len(cands) {
		t.Fatalf("fallback select out of range: %d", idx)
	}
	if got := ft.Attempts.Load(); got != 2 {
		t.Fatalf("expected exactly 2 dials before the breaker opened, got %d", got)
	}
	if !rs.Degraded() {
		t.Fatal("selector must report degradation")
	}

	// While open: many queries, ZERO additional network attempts, and the
	// whole batch completes orders of magnitude below one dial timeout.
	start := time.Now()
	for i := 0; i < 100; i++ {
		if idx := rs.Select(cands, nil, 0); idx < 0 || idx >= len(cands) {
			t.Fatalf("fallback select out of range: %d", idx)
		}
	}
	if got := ft.Attempts.Load(); got != 2 {
		t.Fatalf("open circuit leaked %d network attempts", got-2)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("100 open-circuit queries took %v; fail-over is not O(circuit-check)", el)
	}

	// After the cool-down the breaker admits exactly one probe: the backend
	// gets retried instead of being abandoned forever.
	clock.Advance(2 * time.Minute)
	rs.Select(cands, nil, 0)
	if got := ft.Attempts.Load(); got != 3 {
		t.Fatalf("expected exactly 1 post-cool-down probe, got %d total attempts", got)
	}
}
