package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// flakyTransport fails every request whose ordinal matches failEvery.
type flakyTransport struct {
	inner     http.RoundTripper
	counter   atomic.Int64
	failEvery int64
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.counter.Add(1)
	if f.failEvery > 0 && n%f.failEvery == 0 {
		return nil, errors.New("injected network fault")
	}
	return f.inner.RoundTrip(req)
}

func TestClientSurvivesTransientNetworkFaults(t *testing.T) {
	space := sparksim.QuerySpace()
	st := store.New([]byte("key"))
	srv := backend.New(space, st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	c := New(hs.URL, secret)
	c.HTTP = &http.Client{Transport: &flakyTransport{inner: http.DefaultTransport, failEvery: 3}}
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	r := stats.NewRNG(2)

	// Every third request dies at the transport. The caller's loop must see
	// plain errors (no panics, no corrupted token cache) and succeed on
	// other iterations.
	okCount, errCount := 0, 0
	for i := 0; i < 30; i++ {
		o := e.Run(q, space.Random(r), 1, r, nil)
		err := c.PostEvents("u1", q.ID, "job-flaky", []flighting.Trace{{
			QueryID: q.ID, Config: o.Config, DataSize: o.DataSize, TimeMs: o.Time,
		}})
		if err != nil {
			errCount++
		} else {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no request survived the flaky transport")
	}
	if errCount == 0 {
		t.Fatal("fault injection did not fire")
	}
	srv.Flush()
	if n := len(st.List("events/job-flaky/")); n != okCount {
		t.Fatalf("persisted %d event files, expected %d", n, okCount)
	}
}

func TestRemoteSelectorFallsBackOnNetworkFault(t *testing.T) {
	space := sparksim.QuerySpace()
	// A backend that is entirely unreachable.
	c := New("http://127.0.0.1:1", secret)
	c.HTTP = &http.Client{Transport: &flakyTransport{inner: http.DefaultTransport, failEvery: 1}}
	rs := &RemoteSelector{
		Client: c, Space: space, User: "u", Signature: "s",
		Fallback: core.RandomSelector{RNG: stats.NewRNG(1)},
	}
	cands := []sparksim.Config{space.Default(), space.Default()}
	if idx := rs.Select(cands, nil, 0); idx < 0 || idx >= len(cands) {
		t.Fatalf("selector must fall back when the backend is down, got %d", idx)
	}
}

func TestSessionCompleteSurfacesBackendErrors(t *testing.T) {
	space := sparksim.QuerySpace()
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	c := New("http://127.0.0.1:1", secret) // unreachable
	sess, err := NewSession(c, space, "u", "j", q.Plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sess.Recommend(1e9)
	err = sess.Complete(sparksim.Observation{Config: cfg, DataSize: 1e9, Time: 100}, nil)
	if err == nil {
		t.Fatal("Complete must surface the event-shipping failure")
	}
	// Local state still advanced: tuning continues even when the backend is
	// down (production clients degrade to local-only tuning).
	if sess.Iterations() != 1 || sess.Dashboard().Len() != 1 {
		t.Fatal("local state should advance despite backend failure")
	}
}
