package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/resilience/faultinject"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// harden configures a client for deterministic fault tests: fake clock (no
// real backoff sleeps), seeded jitter.
func harden(c *Client) *resilience.FakeClock {
	clock := resilience.NewFakeClock(time.Unix(0, 0))
	c.Clock = clock
	c.SeedJitter(1)
	return clock
}

func TestRetriesAbsorbTransientNetworkFaults(t *testing.T) {
	space := sparksim.QuerySpace()
	st := store.New([]byte("key"))
	srv := backend.New(space, st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	// Every third transport attempt dies. With retries, every logical call
	// must still succeed and every event file must land exactly once.
	ft := &faultinject.Transport{Plan: &faultinject.Script{Fail: alternating(90, 3)}}
	c := New(hs.URL, secret)
	c.HTTP = &http.Client{Transport: ft}
	harden(c)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	r := stats.NewRNG(2)

	for i := 0; i < 30; i++ {
		o := e.Run(q, space.Random(r), 1, r, nil)
		err := c.PostEvents(context.Background(), "u1", q.ID, "job-flaky", []flighting.Trace{{
			QueryID: q.ID, Config: o.Config, DataSize: o.DataSize, TimeMs: o.Time,
		}})
		if err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
	}
	if ft.Attempts.Load() <= ft.Forwarded.Load() {
		t.Fatal("fault injection did not fire")
	}
	srv.Flush()
	if n := len(st.List("events/job-flaky/")); n != 30 {
		t.Fatalf("persisted %d event files, expected 30", n)
	}
}

// alternating marks every k-th of n ops as a fault.
func alternating(n, k int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = (i+1)%k == 0
	}
	return out
}

func TestTerminalErrorsAreNotRetried(t *testing.T) {
	srv, _ := newStack(t, sparksim.QuerySpace())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	ft := &faultinject.Transport{}
	bad := New(hs.URL, "wrong-secret")
	bad.HTTP = &http.Client{Transport: ft}
	harden(bad)
	if _, err := bad.Token(context.Background(), "events/", store.PermRead); err == nil {
		t.Fatal("wrong cluster secret should be rejected")
	}
	if n := ft.Attempts.Load(); n != 1 {
		t.Fatalf("a 401 is terminal and must not be retried, saw %d attempts", n)
	}
}

func TestRemoteSelectorFallsBackOnNetworkFault(t *testing.T) {
	space := sparksim.QuerySpace()
	// A backend that is entirely unreachable.
	c := New("http://127.0.0.1:1", secret)
	harden(c)
	rs := &RemoteSelector{
		Client: c, Space: space, User: "u", Signature: "s",
		Fallback: core.RandomSelector{RNG: stats.NewRNG(1)},
	}
	cands := []sparksim.Config{space.Default(), space.Default()}
	if idx := rs.Select(cands, nil, 0); idx < 0 || idx >= len(cands) {
		t.Fatalf("selector must fall back when the backend is down, got %d", idx)
	}
	if !rs.Degraded() {
		t.Fatal("a transport failure is not a cold start; the selector must report degradation")
	}
}

func TestSessionCompleteSurfacesBackendErrors(t *testing.T) {
	space := sparksim.QuerySpace()
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	c := New("http://127.0.0.1:1", secret) // unreachable
	harden(c)
	sess, err := NewSession(c, space, "u", "j", q.Plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sess.Recommend(1e9)
	err = sess.Complete(context.Background(), sparksim.Observation{Config: cfg, DataSize: 1e9, Time: 100}, nil)
	if err == nil {
		t.Fatal("Complete must surface the event-shipping failure")
	}
	// Local state still advanced: tuning continues even when the backend is
	// down (production clients degrade to local-only tuning).
	if sess.Iterations() != 1 || sess.Dashboard().Len() != 1 {
		t.Fatal("local state should advance despite backend failure")
	}
}

// TestFetchModelDistinguishesMissingFromFailure is the regression test for
// the silent-degradation bug: a 404 (not trained yet) returns (nil, nil),
// while a backend store failure (500) must surface as a real error instead
// of being conflated with a cold start.
func TestFetchModelDistinguishesMissingFromFailure(t *testing.T) {
	space := sparksim.QuerySpace()
	st := store.New([]byte("key"))
	faulty := &faultinject.Store{Inner: st}
	srv := backend.New(space, st, secret, 1)
	srv.Store = faulty
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	c := New(hs.URL, secret)
	c.Retry.MaxAttempts = 2
	harden(c)

	// Healthy store, missing model: a clean cold-start miss.
	m, err := c.FetchModel(context.Background(), "u1", "never-trained")
	if err != nil || m != nil {
		t.Fatalf("missing model must be (nil, nil), got %v, %v", m, err)
	}

	// Broken store: every Get fails server-side. This must NOT look like a
	// cold start.
	faulty.Plan = &faultinject.ForOps{
		Plan: &faultinject.Rate{P: 1, RNG: stats.NewRNG(1)},
		Ops:  []string{"store.Get"},
	}
	m, err = c.FetchModel(context.Background(), "u1", "never-trained")
	if err == nil {
		t.Fatal("store failure was silently conflated with a missing model")
	}
	if m != nil {
		t.Fatal("no model should be returned on failure")
	}
	if resilience.StatusOf(err) != http.StatusInternalServerError {
		t.Fatalf("expected HTTP 500 in error chain, got %v", err)
	}

	// And an auth failure is equally loud: fresh client, bad secret. The
	// token fetch itself is rejected before the object is ever requested.
	bad := New(hs.URL, "wrong-secret")
	harden(bad)
	if _, err := bad.FetchModel(context.Background(), "u1", "never-trained"); err == nil {
		t.Fatal("auth rejection was silently conflated with a missing model")
	}
}
