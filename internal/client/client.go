// Package client implements the Autotune Client of Section 5: the
// components running on a customer's Spark cluster. The credential manager
// retrieves and caches scoped access tokens (SAS URLs) from the Autotune
// Manager, the model loader fetches per-signature surrogate models, the
// query listener writes execution event files back to the backend, and the
// config-inference module combines a remotely trained model with local
// Centroid Learning state to pick the configuration applied before the
// physical planning stage.
//
// Every backend call carries a context deadline, is retried with jittered
// exponential backoff on transient failures (transport faults, 5xx, 429),
// and flows through a circuit breaker so a dead backend costs one fast
// failing check per call instead of a full timeout (internal/resilience).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/applevel"
	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// Default deadlines. DefaultCallTimeout bounds one logical call (all retry
// attempts included) when the caller's context carries no deadline;
// DefaultHTTPTimeout bounds a single HTTP round trip when no custom
// http.Client is supplied — never the unbounded http.DefaultClient.
const (
	DefaultCallTimeout = 10 * time.Second
	DefaultHTTPTimeout = 30 * time.Second
)

// defaultHTTPClient replaces http.DefaultClient (which has no timeout).
var defaultHTTPClient = &http.Client{Timeout: DefaultHTTPTimeout}

// Client talks to the Autotune Backend. It is safe for concurrent use.
type Client struct {
	// BaseURL is the Autotune Manager endpoint, provided as a Spark
	// configuration at job submission.
	BaseURL string
	// ClusterSecret is the Fabric-token-service credential.
	ClusterSecret string
	// HTTP is the transport; nil means a shared client with
	// DefaultHTTPTimeout.
	HTTP *http.Client
	// Logger records inference rationale ("the suggested configurations
	// along with their rationale"); nil silences it.
	Logger *log.Logger
	// Retry is the per-call retry policy; the zero value uses the
	// resilience defaults.
	Retry resilience.Policy
	// CallTimeout bounds each logical call when the caller's context has no
	// deadline; 0 means DefaultCallTimeout, negative disables the bound.
	CallTimeout time.Duration
	// Breaker short-circuits calls while the backend is unhealthy; nil
	// disables circuit breaking. New installs a default breaker.
	Breaker *resilience.Breaker
	// Clock drives backoff sleeps and breaker cool-downs; nil means the
	// wall clock. Injectable for deterministic tests.
	Clock resilience.Clock
	// Metrics is the registry the client publishes its per-call counters
	// into; nil discards them. Set it before the first call — instruments
	// bind lazily once and later changes are ignored.
	Metrics *telemetry.Registry
	// Tracer records a root span per logical call the client originates
	// (callers that pass an already-traced context keep their own spans);
	// nil records nothing. The root identity is still minted from the
	// call's jitter stream, so enabling tracing never shifts the
	// retry-jitter draw sequence — the tracer only adopts it.
	Tracer *telemetry.Tracer

	mu       sync.Mutex
	tokens   map[string]cachedToken
	inflight map[string]*tokenFetch
	rng      *stats.RNG

	teleOnce  sync.Once
	teleBound *clientTelemetry
}

type cachedToken struct {
	token   string
	expires time.Time
}

// tokenFetch deduplicates concurrent refreshes of one cache key: the first
// caller fetches, later callers wait on done and share the result.
type tokenFetch struct {
	done  chan struct{}
	token string
	err   error
}

// New returns a client for the given backend endpoint with the default
// resilience stack (call deadlines, retries, circuit breaker).
func New(baseURL, clusterSecret string) *Client {
	return &Client{
		BaseURL:       baseURL,
		ClusterSecret: clusterSecret,
		Breaker:       &resilience.Breaker{},
		tokens:        make(map[string]cachedToken),
		inflight:      make(map[string]*tokenFetch),
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

func (c *Client) clock() resilience.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return resilience.RealClock{}
}

// splitRNG derives an independent jitter stream per call under the lock, so
// concurrent retry loops never race on one generator.
func (c *Client) splitRNG() *stats.RNG {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = stats.NewRNG(uint64(c.clock().Now().UnixNano()))
	}
	return c.rng.Split()
}

// SeedJitter makes backoff jitter deterministic (tests, simulations).
func (c *Client) SeedJitter(seed uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = stats.NewRNG(seed)
}

func (c *Client) logf(format string, args ...any) {
	if c.Logger != nil {
		c.Logger.Printf(format, args...)
	}
}

// callCtx applies the per-call deadline when the caller brought none.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	d := c.CallTimeout
	if d == 0 {
		d = DefaultCallTimeout
	}
	if d < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// do executes one backend call through the breaker and retry loop. kind is
// the bounded call class used as the metrics label; op is the human-readable
// operation (it may embed paths, so it never reaches a label). build
// constructs a fresh request per attempt (so bodies replay safely), want is
// the success status, and recv (optional) consumes the successful response.
func (c *Client) do(ctx context.Context, kind, op string, want int, build func(ctx context.Context) (*http.Request, error), recv func(*http.Response) error) error {
	tele := c.tele()
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	// The trace identity rides the jitter stream: a caller-provided span is
	// propagated, otherwise the client mints the root — either way every
	// attempt of this logical call shares one X-Rockhopper-Trace value.
	rng := c.splitRNG()
	sc := telemetry.SpanFrom(ctx)
	var sp *telemetry.ActiveSpan
	if !sc.Valid() {
		sc = telemetry.Mint(rng)
		sp = c.Tracer.Adopt(sc, 0, op, "client")
	}
	ctx = telemetry.WithSpan(ctx, sc)
	br := c.Breaker
	attempt := func(ctx context.Context) error {
		if br != nil {
			if err := br.Allow(); err != nil {
				return fmt.Errorf("client: %s: %w", op, err)
			}
		}
		tele.attempts.With(kind).Inc()
		err := c.attempt(ctx, op, want, sc, build, recv)
		if br != nil {
			// Any response — even a 4xx — proves the backend is alive;
			// only transport faults, timeouts, and 5xx count against it.
			if err == nil || (resilience.StatusOf(err) > 0 && resilience.StatusOf(err) < 500) {
				br.Record(nil)
			} else {
				br.Record(err)
			}
		}
		return err
	}
	p := c.Retry
	callerHook := p.OnRetry
	p.OnRetry = func(attempt int, err error, delay time.Duration) {
		tele.retries.With(kind).Inc()
		if callerHook != nil {
			callerHook(attempt, err, delay)
		}
	}
	start := c.clock().Now()
	err := resilience.Retry(ctx, p, c.clock(), rng, attempt)
	tele.latency.With(kind).Observe(c.clock().Now().Sub(start).Seconds())
	tele.calls.With(kind, callOutcome(err)).Inc()
	sp.Finish(callOutcome(err))
	return err
}

// callOutcome buckets a finished call for the calls counter.
func callOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, resilience.ErrCircuitOpen):
		return "circuit_open"
	default:
		return "error"
	}
}

// attempt performs a single HTTP round trip carrying the call's trace
// identity.
func (c *Client) attempt(ctx context.Context, op string, want int, sc telemetry.SpanContext, build func(ctx context.Context) (*http.Request, error), recv func(*http.Response) error) error {
	req, err := build(ctx)
	if err != nil {
		return err
	}
	if sc.Valid() {
		req.Header.Set(telemetry.TraceHeader, sc.String())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &resilience.HTTPError{Op: "client: " + op, Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	if recv != nil {
		return recv(resp)
	}
	return nil
}

// Token returns a (possibly cached) access token for prefix+perm — the
// AutotuneCredentialManager: "SAS URLs being cached and refreshed as
// needed".
func (c *Client) Token(ctx context.Context, prefix string, perm store.Permission) (string, error) {
	key := string(perm) + "|" + prefix
	c.mu.Lock()
	if t, ok := c.tokens[key]; ok && c.clock().Now().Before(t.expires) {
		c.mu.Unlock()
		return t.token, nil
	}
	// Expired or missing: dedupe the refresh so a burst of concurrent
	// requests issues one backend call instead of a thundering herd.
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.token, f.err
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	f := &tokenFetch{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	token, err := c.fetchToken(ctx, key, prefix, perm)
	f.token, f.err = token, err
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return token, err
}

// fetchToken performs the actual backend round trip and fills the cache.
func (c *Client) fetchToken(ctx context.Context, key, prefix string, perm store.Permission) (string, error) {
	body, _ := json.Marshal(backend.TokenRequest{Prefix: prefix, Perm: perm})
	var tr backend.TokenResponse
	err := c.do(ctx, "token", "token "+key, http.StatusOK,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/api/token", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.ClusterTokenHeader, c.ClusterSecret)
			return req, nil
		},
		func(resp *http.Response) error {
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				return fmt.Errorf("client: token decode: %w", err)
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	// Refresh two minutes before expiry (or at half-life for short TTLs).
	ttl := time.Duration(tr.TTLSeconds * float64(time.Second))
	margin := 2 * time.Minute
	if ttl <= 2*margin {
		margin = ttl / 2
	}
	c.mu.Lock()
	c.tokens[key] = cachedToken{token: tr.Token, expires: c.clock().Now().Add(ttl - margin)}
	c.mu.Unlock()
	return tr.Token, nil
}

// GetObject fetches a store object through a read token on its directory.
func (c *Client) GetObject(ctx context.Context, p string) ([]byte, error) {
	tok, err := c.Token(ctx, dirOf(p), store.PermRead)
	if err != nil {
		return nil, err
	}
	var blob []byte
	err = c.do(ctx, "get_object", "get "+p, http.StatusOK,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/object?path="+p, nil)
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.SASTokenHeader, tok)
			return req, nil
		},
		func(resp *http.Response) error {
			var rerr error
			blob, rerr = io.ReadAll(resp.Body)
			return rerr
		})
	if err != nil {
		return nil, err
	}
	return blob, nil
}

// PutObject writes a store object through a write token on its directory.
func (c *Client) PutObject(ctx context.Context, p string, data []byte) error {
	tok, err := c.Token(ctx, dirOf(p), store.PermWrite)
	if err != nil {
		return err
	}
	return c.do(ctx, "put_object", "put "+p, http.StatusNoContent,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.BaseURL+"/api/object?path="+p, bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.SASTokenHeader, tok)
			return req, nil
		}, nil)
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i+1]
		}
	}
	return p
}

// FetchModel loads and deserializes the surrogate for a query signature —
// the model loader. A model the backend has not trained yet (HTTP 404) is
// not an error: it returns (nil, nil) so callers fall back to the baseline.
// Every other failure — auth rejection, transport fault, corrupt blob — is
// surfaced, never conflated with a cold start.
func (c *Client) FetchModel(ctx context.Context, user, signature string) (ml.Regressor, error) {
	blob, err := c.GetObject(ctx, store.ModelPath(user, signature))
	if err != nil {
		if resilience.IsNotFound(err) {
			return nil, nil // true cold start: no model trained yet
		}
		return nil, fmt.Errorf("client: model %s/%s: %w", user, signature, err)
	}
	m, err := ml.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("client: model %s/%s: %w", user, signature, err)
	}
	return m, nil
}

// PostEvents ships a batch of execution traces to the backend — the query
// listener's event write (Step 6 of Figure 7).
func (c *Client) PostEvents(ctx context.Context, user, signature, jobID string, traces []flighting.Trace) error {
	tok, err := c.Token(ctx, "events/"+jobID+"/", store.PermWrite)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		return err
	}
	body := buf.Bytes()
	url := fmt.Sprintf("%s/api/events?user=%s&signature=%s&job_id=%s", c.BaseURL, user, signature, jobID)
	return c.do(ctx, "post_events", "post events "+jobID, http.StatusAccepted,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.SASTokenHeader, tok)
			return req, nil
		}, nil)
}

// PostEventLog ships a RAW Spark event log to the backend, which runs the
// Embedding ETL server-side and derives query signatures from the plans in
// the log. Use this when the client cannot (or should not) digest events
// itself.
func (c *Client) PostEventLog(ctx context.Context, user, jobID string, log []byte) error {
	tok, err := c.Token(ctx, "events/"+jobID+"/", store.PermWrite)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/eventlog?user=%s&job_id=%s", c.BaseURL, user, jobID)
	return c.do(ctx, "post_eventlog", "post event log "+jobID, http.StatusAccepted,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(log))
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.SASTokenHeader, tok)
			return req, nil
		}, nil)
}

// FetchAppCache retrieves the pre-computed app-level configuration for a
// recurrent artifact (Step 3 of Figure 7). ok is false when none exists.
func (c *Client) FetchAppCache(ctx context.Context, artifactID string) (applevel.CacheEntry, bool, error) {
	var e applevel.CacheEntry
	err := c.do(ctx, "get_appcache", "app cache "+artifactID, http.StatusOK,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/appcache?artifact_id="+artifactID, nil)
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.ClusterTokenHeader, c.ClusterSecret)
			return req, nil
		},
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&e)
		})
	if err != nil {
		if resilience.IsNotFound(err) {
			return applevel.CacheEntry{}, false, nil
		}
		return applevel.CacheEntry{}, false, err
	}
	return e, true, nil
}

// ComputeAppCache asks the backend's App Cache Generator to recompute the
// artifact's app-level configuration after an application run.
func (c *Client) ComputeAppCache(ctx context.Context, reqBody backend.AppCacheRequest) (applevel.CacheEntry, error) {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return applevel.CacheEntry{}, err
	}
	var e applevel.CacheEntry
	err = c.do(ctx, "compute_appcache", "compute app cache "+reqBody.ArtifactID, http.StatusOK,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/api/appcache", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set(backend.ClusterTokenHeader, c.ClusterSecret)
			return req, nil
		},
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&e)
		})
	if err != nil {
		return applevel.CacheEntry{}, err
	}
	return e, nil
}

// Health fetches the backend's health report.
func (c *Client) Health(ctx context.Context) (backend.HealthReport, error) {
	var h backend.HealthReport
	err := c.do(ctx, "health", "health", http.StatusOK,
		func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/health", nil)
		},
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&h)
		})
	return h, err
}

// RemoteSelector is a core.Selector that ranks candidates with the
// backend-trained model for this signature, falling back to the provided
// selector when no model exists yet — the Autotune Config Inference module.
//
// Degradation ladder: remote model → (on error or open circuit) local
// fallback. Non-cold-start failures are logged once per degradation episode
// rather than silently swallowed, and once the client's circuit breaker
// opens, each Select costs one fast-failing check until the cool-down
// admits a probe — the backend is never hammered while it is down.
type RemoteSelector struct {
	Client    *Client
	Space     *sparksim.Space
	User      string
	Signature string
	// Fallback handles the cold start; must be non-nil.
	Fallback core.Selector
	// Fetch overrides the model source; nil means Client.FetchModel. The
	// shard router injects its fleet-routed fetch here so inference
	// follows shard ownership across failover.
	Fetch func(ctx context.Context, user, signature string) (ml.Regressor, error)

	mu       sync.Mutex
	degraded bool
}

// Select implements core.Selector, whose signature carries no context: the
// remote fetch below is bounded by the client's own CallTimeout instead.
//
//rocklint:allow ctxfirst -- core.Selector interface signature is fixed; FetchModel is bounded by the client CallTimeout
func (rs *RemoteSelector) Select(cands []sparksim.Config, window []sparksim.Observation, dataSize float64) int {
	fetch := rs.Client.FetchModel
	if rs.Fetch != nil {
		fetch = rs.Fetch
	}
	model, err := fetch(context.Background(), rs.User, rs.Signature)
	if err != nil {
		rs.noteDegraded(err)
		rs.Client.tele().fallbacks.With(fallbackError).Inc()
		return rs.Fallback.Select(cands, window, dataSize)
	}
	rs.noteRecovered()
	if model == nil {
		// Cold start: the backend simply has not trained this signature.
		rs.Client.tele().fallbacks.With(fallbackColdStart).Inc()
		return rs.Fallback.Select(cands, window, dataSize)
	}
	bestIdx, bestPred := -1, math.Inf(1)
	for i, cand := range cands {
		p := model.Predict(tuners.ConfigFeatures(rs.Space, nil, cand, dataSize))
		if !math.IsNaN(p) && p < bestPred {
			bestIdx, bestPred = i, p
		}
	}
	if bestIdx < 0 {
		rs.Client.tele().fallbacks.With(fallbackNoPrediction).Inc()
		return rs.Fallback.Select(cands, window, dataSize)
	}
	rs.Client.logf("client: %s/%s selected candidate %d (predicted log-time %.3f) among %d",
		rs.User, rs.Signature, bestIdx, bestPred, len(cands))
	return bestIdx
}

// noteDegraded logs the first failure of a degradation episode; subsequent
// failures stay quiet until the remote path recovers.
func (rs *RemoteSelector) noteDegraded(err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.degraded {
		rs.degraded = true
		rs.Client.logf("client: %s/%s: remote inference degraded, using local fallback: %v",
			rs.User, rs.Signature, err)
	}
}

func (rs *RemoteSelector) noteRecovered() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.degraded {
		rs.degraded = false
		rs.Client.logf("client: %s/%s: remote inference recovered", rs.User, rs.Signature)
	}
}

// Degraded reports whether the last Select hit a non-cold-start failure.
func (rs *RemoteSelector) Degraded() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.degraded
}

var _ core.Selector = (*RemoteSelector)(nil)
