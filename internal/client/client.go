// Package client implements the Autotune Client of Section 5: the
// components running on a customer's Spark cluster. The credential manager
// retrieves and caches scoped access tokens (SAS URLs) from the Autotune
// Manager, the model loader fetches per-signature surrogate models, the
// query listener writes execution event files back to the backend, and the
// config-inference module combines a remotely trained model with local
// Centroid Learning state to pick the configuration applied before the
// physical planning stage.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/applevel"
	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// Client talks to the Autotune Backend. It is safe for concurrent use.
type Client struct {
	// BaseURL is the Autotune Manager endpoint, provided as a Spark
	// configuration at job submission.
	BaseURL string
	// ClusterSecret is the Fabric-token-service credential.
	ClusterSecret string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Logger records inference rationale ("the suggested configurations
	// along with their rationale"); nil silences it.
	Logger *log.Logger

	mu       sync.Mutex
	tokens   map[string]cachedToken
	inflight map[string]*tokenFetch
}

type cachedToken struct {
	token   string
	expires time.Time
}

// tokenFetch deduplicates concurrent refreshes of one cache key: the first
// caller fetches, later callers wait on done and share the result.
type tokenFetch struct {
	done  chan struct{}
	token string
	err   error
}

// New returns a client for the given backend endpoint.
func New(baseURL, clusterSecret string) *Client {
	return &Client{
		BaseURL:       baseURL,
		ClusterSecret: clusterSecret,
		tokens:        make(map[string]cachedToken),
		inflight:      make(map[string]*tokenFetch),
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) logf(format string, args ...any) {
	if c.Logger != nil {
		c.Logger.Printf(format, args...)
	}
}

// Token returns a (possibly cached) access token for prefix+perm — the
// AutotuneCredentialManager: "SAS URLs being cached and refreshed as
// needed".
func (c *Client) Token(prefix string, perm store.Permission) (string, error) {
	key := string(perm) + "|" + prefix
	c.mu.Lock()
	if t, ok := c.tokens[key]; ok && time.Now().Before(t.expires) {
		c.mu.Unlock()
		return t.token, nil
	}
	// Expired or missing: dedupe the refresh so a burst of concurrent
	// requests issues one backend call instead of a thundering herd.
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.token, f.err
	}
	f := &tokenFetch{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	token, err := c.fetchToken(key, prefix, perm)
	f.token, f.err = token, err
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return token, err
}

// fetchToken performs the actual backend round trip and fills the cache.
func (c *Client) fetchToken(key, prefix string, perm store.Permission) (string, error) {
	body, _ := json.Marshal(backend.TokenRequest{Prefix: prefix, Perm: perm})
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/api/token", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set(backend.ClusterTokenHeader, c.ClusterSecret)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("client: token request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return "", fmt.Errorf("client: token request: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var tr backend.TokenResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return "", fmt.Errorf("client: token decode: %w", err)
	}
	// Refresh two minutes before expiry (or at half-life for short TTLs).
	ttl := time.Duration(tr.TTLSeconds * float64(time.Second))
	margin := 2 * time.Minute
	if ttl <= 2*margin {
		margin = ttl / 2
	}
	c.mu.Lock()
	c.tokens[key] = cachedToken{token: tr.Token, expires: time.Now().Add(ttl - margin)}
	c.mu.Unlock()
	return tr.Token, nil
}

// GetObject fetches a store object through a read token on its directory.
func (c *Client) GetObject(p string) ([]byte, error) {
	tok, err := c.Token(dirOf(p), store.PermRead)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/api/object?path="+p, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: get %s: %w", p, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("client: get %s: %s: %s", p, resp.Status, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// PutObject writes a store object through a write token on its directory.
func (c *Client) PutObject(p string, data []byte) error {
	tok, err := c.Token(dirOf(p), store.PermWrite)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.BaseURL+"/api/object?path="+p, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: put %s: %w", p, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("client: put %s: %s: %s", p, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i+1]
		}
	}
	return p
}

// FetchModel loads and deserializes the surrogate for a query signature —
// the model loader. A missing model is not an error; it returns (nil, nil)
// so callers fall back to the baseline.
func (c *Client) FetchModel(user, signature string) (ml.Regressor, error) {
	blob, err := c.GetObject(store.ModelPath(user, signature))
	if err != nil {
		// Missing model: backend hasn't trained yet.
		return nil, nil
	}
	m, err := ml.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("client: model %s/%s: %w", user, signature, err)
	}
	return m, nil
}

// PostEvents ships a batch of execution traces to the backend — the query
// listener's event write (Step 6 of Figure 7).
func (c *Client) PostEvents(user, signature, jobID string, traces []flighting.Trace) error {
	tok, err := c.Token("events/"+jobID+"/", store.PermWrite)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/events?user=%s&signature=%s&job_id=%s", c.BaseURL, user, signature, jobID)
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		return err
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: post events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("client: post events: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// PostEventLog ships a RAW Spark event log to the backend, which runs the
// Embedding ETL server-side and derives query signatures from the plans in
// the log. Use this when the client cannot (or should not) digest events
// itself.
func (c *Client) PostEventLog(user, jobID string, log []byte) error {
	tok, err := c.Token("events/"+jobID+"/", store.PermWrite)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/eventlog?user=%s&job_id=%s", c.BaseURL, user, jobID)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(log))
	if err != nil {
		return err
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: post event log: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("client: post event log: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// FetchAppCache retrieves the pre-computed app-level configuration for a
// recurrent artifact (Step 3 of Figure 7). ok is false when none exists.
func (c *Client) FetchAppCache(artifactID string) (applevel.CacheEntry, bool, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/api/appcache?artifact_id="+artifactID, nil)
	if err != nil {
		return applevel.CacheEntry{}, false, err
	}
	req.Header.Set(backend.ClusterTokenHeader, c.ClusterSecret)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return applevel.CacheEntry{}, false, fmt.Errorf("client: app cache: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return applevel.CacheEntry{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return applevel.CacheEntry{}, false, fmt.Errorf("client: app cache: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var e applevel.CacheEntry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		return applevel.CacheEntry{}, false, err
	}
	return e, true, nil
}

// ComputeAppCache asks the backend's App Cache Generator to recompute the
// artifact's app-level configuration after an application run.
func (c *Client) ComputeAppCache(reqBody backend.AppCacheRequest) (applevel.CacheEntry, error) {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return applevel.CacheEntry{}, err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/api/appcache", bytes.NewReader(body))
	if err != nil {
		return applevel.CacheEntry{}, err
	}
	req.Header.Set(backend.ClusterTokenHeader, c.ClusterSecret)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return applevel.CacheEntry{}, fmt.Errorf("client: compute app cache: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return applevel.CacheEntry{}, fmt.Errorf("client: compute app cache: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var e applevel.CacheEntry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		return applevel.CacheEntry{}, err
	}
	return e, nil
}

// RemoteSelector is a core.Selector that ranks candidates with the
// backend-trained model for this signature, falling back to the provided
// selector when no model exists yet — the Autotune Config Inference module.
type RemoteSelector struct {
	Client    *Client
	Space     *sparksim.Space
	User      string
	Signature string
	// Fallback handles the cold start; must be non-nil.
	Fallback core.Selector
}

// Select implements core.Selector.
func (rs *RemoteSelector) Select(cands []sparksim.Config, window []sparksim.Observation, dataSize float64) int {
	model, err := rs.Client.FetchModel(rs.User, rs.Signature)
	if err != nil || model == nil {
		return rs.Fallback.Select(cands, window, dataSize)
	}
	bestIdx, bestPred := -1, math.Inf(1)
	for i, cand := range cands {
		p := model.Predict(tuners.ConfigFeatures(rs.Space, nil, cand, dataSize))
		if !math.IsNaN(p) && p < bestPred {
			bestIdx, bestPred = i, p
		}
	}
	if bestIdx < 0 {
		return rs.Fallback.Select(cands, window, dataSize)
	}
	rs.Client.logf("client: %s/%s selected candidate %d (predicted log-time %.3f) among %d",
		rs.User, rs.Signature, bestIdx, bestPred, len(cands))
	return bestIdx
}

var _ core.Selector = (*RemoteSelector)(nil)
