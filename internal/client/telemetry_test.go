package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// TestClientCallMetrics asserts the per-call counters against an isolated
// registry: attempts, latency, and ok/error outcomes with bounded kinds.
func TestClientCallMetrics(t *testing.T) {
	_, c := newStack(t, sparksim.QuerySpace())
	reg := telemetry.NewRegistry()
	c.Metrics = reg
	c.SeedJitter(7)

	if _, err := c.Token(context.Background(), "events/j/", store.PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A miss on a model path: 404 is terminal -> one failed get_object call.
	if _, err := c.GetObject(context.Background(), "models/u/none.model"); err == nil {
		t.Fatal("expected 404 error")
	}

	calls := c.tele().calls
	// Two token fetches: the explicit one plus GetObject's read token.
	if got := calls.With("token", "ok").Value(); got != 2 {
		t.Errorf("token ok calls = %v, want 2", got)
	}
	if got := calls.With("health", "ok").Value(); got != 1 {
		t.Errorf("health ok calls = %v, want 1", got)
	}
	if got := calls.With("get_object", "error").Value(); got != 1 {
		t.Errorf("get_object error calls = %v, want 1", got)
	}
	if got := c.tele().attempts.With("get_object").Value(); got != 1 {
		t.Errorf("404 is terminal: attempts = %v, want 1 (no retries)", got)
	}
	if got := c.tele().retries.With("get_object").Value(); got != 0 {
		t.Errorf("retries = %v, want 0", got)
	}
}

// TestClientRetryAndBreakerMetrics drives a dead backend and checks retries,
// breaker transitions, and circuit_open outcomes are counted.
func TestClientRetryAndBreakerMetrics(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(hs.Close)

	c := New(hs.URL, secret)
	reg := telemetry.NewRegistry()
	c.Metrics = reg
	c.SeedJitter(3)
	c.Clock = resilience.NewFakeClock(time.Unix(0, 0))
	c.Breaker.Clock = c.Clock
	c.Breaker.Threshold = 3
	c.Retry = resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}

	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("dead backend must fail")
	}
	tele := c.tele()
	if got := tele.attempts.With("health").Value(); got != 3 {
		t.Errorf("attempts = %v, want 3", got)
	}
	if got := tele.retries.With("health").Value(); got != 2 {
		t.Errorf("retries = %v, want 2", got)
	}
	if got := tele.calls.With("health", "error").Value(); got != 1 {
		t.Errorf("error calls = %v, want 1", got)
	}
	// Third failure tripped the breaker (threshold 3): closed -> open.
	if got := tele.transitions.With("open").Value(); got != 1 {
		t.Errorf("open transitions = %v, want 1", got)
	}
	// Next call fails fast without an HTTP attempt.
	before := hits.Load()
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("open circuit must fail")
	}
	if hits.Load() != before {
		t.Error("open circuit still reached the backend")
	}
	if got := tele.calls.With("health", "circuit_open").Value(); got != 1 {
		t.Errorf("circuit_open calls = %v, want 1", got)
	}
}

// TestClientTraceReachesBackend: the client-minted identity must land in the
// backend's span ring — the end-to-end trace propagation contract.
func TestClientTraceReachesBackend(t *testing.T) {
	_, c := newStack(t, sparksim.QuerySpace())
	c.SeedJitter(11)
	if _, err := c.Token(context.Background(), "events/j/", store.PermWrite); err != nil {
		t.Fatal(err)
	}
	spans := traceRing(t, c.BaseURL)
	if len(spans) == 0 {
		t.Fatal("client call left no span in the backend ring")
	}
	if spans[0].Name != "token" || spans[0].TraceID == "" {
		t.Errorf("span = %+v, want token span with non-empty trace id", spans[0])
	}

	// A caller-provided span must propagate instead of being re-minted.
	// (/api/appcache is instrumented; /api/health intentionally is not.)
	sc := telemetry.SpanContext{TraceID: 0xfeed, SpanID: 0xbeef}
	ctx := telemetry.WithSpan(context.Background(), sc)
	if _, _, err := c.FetchAppCache(ctx, "artifact-x"); err != nil {
		t.Fatal(err)
	}
	spans = traceRing(t, c.BaseURL)
	found := false
	for _, sp := range spans {
		if sp.TraceID == sc.TraceHex() && sp.Name == "get_appcache" {
			found = true
		}
	}
	if !found {
		t.Errorf("caller-provided trace id %s missing from ring: %+v", sc.TraceHex(), spans)
	}
}

func traceRing(t *testing.T, baseURL string) []telemetry.Span {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []telemetry.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	return spans
}
