package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

// TestTokenRefreshSingleFlight checks the credential manager's stampede
// protection: a burst of goroutines hitting one expired cache entry must
// produce exactly one backend round trip, with every caller sharing its
// result. Distinct prefixes still fetch independently.
func TestTokenRefreshSingleFlight(t *testing.T) {
	t.Parallel()
	st := store.New([]byte("signing-key"))
	srv := backend.New(sparksim.QuerySpace(), st, secret, 1)

	var tokenCalls atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/token" {
			tokenCalls.Add(1)
			// Hold the response long enough for the whole burst to pile up
			// on the in-flight fetch.
			time.Sleep(20 * time.Millisecond)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	hs := httptest.NewServer(counting)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	c := New(hs.URL, secret)

	const goroutines = 16
	tokens := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tokens[g], errs[g] = c.Token(context.Background(), "events/j/", store.PermWrite)
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if tokens[g] != tokens[0] {
			t.Fatalf("goroutine %d got a different token", g)
		}
	}
	if n := tokenCalls.Load(); n != 1 {
		t.Fatalf("token endpoint hit %d times, want 1 (stampede)", n)
	}

	// A different scope is a different cache key and fetches on its own.
	if _, err := c.Token(context.Background(), "models/u/", store.PermRead); err != nil {
		t.Fatal(err)
	}
	if n := tokenCalls.Load(); n != 2 {
		t.Fatalf("token endpoint hit %d times after second scope, want 2", n)
	}
}
