package client

import (
	"context"
	"fmt"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Session is the complete client-side tuning loop for one recurrent query
// signature inside one Spark application: it combines local Centroid
// Learning state, remote model-guided candidate selection, the monitoring
// dashboard, and event shipping to the backend — everything the Autotune
// Client does between job submission and completion (Figure 7).
type Session struct {
	Client    *Client
	Space     *sparksim.Space
	User      string
	JobID     string
	Signature string

	learner *core.CentroidLearner
	dash    *monitor.Dashboard
	embed   []float64
	iter    int
	tripped bool
}

// NewSession opens a tuning session. plan supplies the query signature and
// workload embedding; seed derives the session's random streams.
func NewSession(cli *Client, space *sparksim.Space, user, jobID string, plan *sparksim.Plan, seed uint64) (*Session, error) {
	if cli == nil || space == nil || plan == nil {
		return nil, fmt.Errorf("client: session requires a client, space, and plan")
	}
	if user == "" || jobID == "" {
		return nil, fmt.Errorf("client: session requires user and job id")
	}
	sig := sparksim.Signature(plan)
	root := stats.NewRNG(seed)
	sel := &RemoteSelector{
		Client: cli, Space: space, User: user, Signature: sig,
		Fallback: core.NewSurrogateSelector(space, nil, nil, root.Split()),
	}
	return &Session{
		Client:    cli,
		Space:     space,
		User:      user,
		JobID:     jobID,
		Signature: sig,
		learner:   core.New(space, sel, root.Split()),
		dash:      monitor.New(space, sig),
		embed:     embedding.NewVirtual().Embed(plan),
	}, nil
}

// Recommend returns the configuration for the next run of this query —
// the Autotune Config Inference step "before the physical planning stage".
func (s *Session) Recommend(expectedInputBytes float64) sparksim.Config {
	return s.learner.Propose(s.iter, expectedInputBytes)
}

// Complete reports one execution: it updates local tuning state, records
// the dashboard metrics, and ships the event file to the backend so the
// streaming Model Updater can retrain. ctx bounds the event upload; the
// local state updates always happen.
func (s *Session) Complete(ctx context.Context, o sparksim.Observation, stages []sparksim.StageStat) error {
	o.Iteration = s.iter
	s.iter++
	s.learner.Observe(o)
	s.dash.Record(o, stages)
	// Guardrail-trip attribution: on the revert edge, record whether the
	// signature's drift detector had already flagged the model — a tripped
	// guardrail under drift is the model's fault, one without is workload
	// variance the tuner mis-stepped into.
	if !s.tripped && s.learner.Disabled() {
		s.tripped = true
		cause := "stationary"
		if s.dash.Drifting() {
			cause = "drift"
		}
		s.Client.tele().trips.With(cause).Inc()
	}
	return s.Client.PostEvents(ctx, s.User, s.Signature, s.JobID, []flighting.Trace{{
		QueryID:   s.Signature,
		Embedding: s.embed,
		Config:    o.Config,
		DataSize:  o.DataSize,
		TimeMs:    o.Time,
	}})
}

// Disabled reports whether the guardrail reverted this query to defaults.
func (s *Session) Disabled() bool { return s.learner.Disabled() }

// Iterations returns the number of completed runs.
func (s *Session) Iterations() int { return s.iter }

// Dashboard exposes the session's monitoring state.
func (s *Session) Dashboard() *monitor.Dashboard { return s.dash }

// History returns the query's observation log (for app-level optimization).
func (s *Session) History() []sparksim.Observation {
	return s.learner.Snapshot().History
}

// QueryHistory packages the session state for the backend's App Cache
// Generator.
func (s *Session) QueryHistory() backend.QueryHistory {
	return backend.QueryHistory{
		ID:           s.Signature,
		Centroid:     s.learner.Centroid(),
		Observations: s.History(),
	}
}

// FinishApp runs when the surrounding Spark application completes: it asks
// the backend to recompute the artifact's app-level configuration from this
// session's (and its sibling sessions') query histories. ctx bounds the
// backend call.
func FinishApp(ctx context.Context, cli *Client, artifactID string, current sparksim.Config, sessions ...*Session) error {
	if len(sessions) == 0 {
		return fmt.Errorf("client: FinishApp requires at least one session")
	}
	req := backend.AppCacheRequest{ArtifactID: artifactID, Current: current.Clone()}
	for _, s := range sessions {
		req.Queries = append(req.Queries, s.QueryHistory())
	}
	_, err := cli.ComputeAppCache(ctx, req)
	return err
}
