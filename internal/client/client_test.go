package client

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/eventlog"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

const secret = "cluster-secret"

func newStack(t *testing.T, space *sparksim.Space) (*backend.Server, *Client) {
	t.Helper()
	st := store.New([]byte("signing-key"))
	srv := backend.New(space, st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, New(hs.URL, secret)
}

func makeTraces(e *sparksim.Engine, q *sparksim.Query, n int, seed uint64) []flighting.Trace {
	r := stats.NewRNG(seed)
	emb := embedding.NewVirtual().Embed(q.Plan)
	out := make([]flighting.Trace, 0, n)
	for i := 0; i < n; i++ {
		cfg := e.Space.Random(r)
		o := e.Run(q, cfg, 1, r, noise.Low)
		out = append(out, flighting.Trace{
			QueryID: q.ID, Embedding: emb, Config: o.Config,
			DataSize: o.DataSize, TimeMs: o.Time,
		})
	}
	return out
}

func TestTokenCaching(t *testing.T) {
	_, c := newStack(t, sparksim.QuerySpace())
	t1, err := c.Token(context.Background(), "events/j/", store.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Token(context.Background(), "events/j/", store.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("token should be cached")
	}
	t3, err := c.Token(context.Background(), "events/j/", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Fatal("different permissions must use different tokens")
	}
}

func TestAuthRejected(t *testing.T) {
	srv, _ := newStack(t, sparksim.QuerySpace())
	_ = srv
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	bad := New(hs.URL, "wrong-secret")
	if _, err := bad.Token(context.Background(), "events/", store.PermRead); err == nil {
		t.Fatal("wrong cluster secret should be rejected")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	_, c := newStack(t, sparksim.QuerySpace())
	if err := c.PutObject(context.Background(), "artifacts/a1/notes.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetObject(context.Background(), "artifacts/a1/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
}

func TestEventsTrainModelEndToEnd(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)

	// No model yet: FetchModel reports a clean miss.
	m, err := c.FetchModel(context.Background(), "u1", q.ID)
	if err != nil || m != nil {
		t.Fatalf("expected clean miss, got %v, %v", m, err)
	}

	traces := makeTraces(e, q, 60, 7)
	if err := c.PostEvents(context.Background(), "u1", q.ID, "job-1", traces); err != nil {
		t.Fatal(err)
	}
	srv.Flush()

	m, err = c.FetchModel(context.Background(), "u1", q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("model should exist after event ingestion")
	}
	// The trained model must rank a terrible config above a good one.
	good, _ := e.OptimalConfig(q, 1, 10)
	bad := space.With(space.Default(), sparksim.ShufflePartitions, 8)
	bad = space.With(bad, sparksim.MaxPartitionBytes, 1<<20)
	size := q.Plan.LeafInputBytes()
	gp := m.Predict(featuresFor(space, good, size))
	bp := m.Predict(featuresFor(space, bad, size))
	if gp >= bp {
		t.Fatalf("backend-trained model cannot rank configs: good=%g bad=%g", gp, bp)
	}
}

func TestModelPrivacyPerUser(t *testing.T) {
	// Models are namespaced by user: u2 must not see u1's model.
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 3)
	if err := c.PostEvents(context.Background(), "u1", q.ID, "job-9", makeTraces(e, q, 30, 9)); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if m, _ := c.FetchModel(context.Background(), "u2", q.ID); m != nil {
		t.Fatal("cross-user model leak")
	}
	if m, _ := c.FetchModel(context.Background(), "u1", q.ID); m == nil {
		t.Fatal("owner cannot load model")
	}
}

func TestAppCacheFlow(t *testing.T) {
	space := sparksim.FullSpace()
	_, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(2).Query(workloads.TPCDS, 5)

	if _, ok, err := c.FetchAppCache(context.Background(), "artifact-x"); err != nil || ok {
		t.Fatalf("empty cache should miss cleanly: %v %v", ok, err)
	}

	r := stats.NewRNG(11)
	var obs []sparksim.Observation
	for i := 0; i < 30; i++ {
		obs = append(obs, e.Run(q, space.Random(r), 1, r, nil))
	}
	entry, err := c.ComputeAppCache(context.Background(), backend.AppCacheRequest{
		ArtifactID: "artifact-x",
		Current:    space.Default(),
		Queries:    []backend.QueryHistory{{ID: q.ID, Centroid: space.Default(), Observations: obs}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Config) != space.Dim() {
		t.Fatalf("cache entry config dim %d", len(entry.Config))
	}
	got, ok, err := c.FetchAppCache(context.Background(), "artifact-x")
	if err != nil || !ok {
		t.Fatalf("cache should hit: %v %v", ok, err)
	}
	if got.Runs != 1 {
		t.Fatalf("runs = %d", got.Runs)
	}
}

func TestRemoteSelectorFallsBack(t *testing.T) {
	space := sparksim.QuerySpace()
	_, c := newStack(t, space)
	rs := &RemoteSelector{
		Client: c, Space: space, User: "u1", Signature: "never-trained",
		Fallback: core.RandomSelector{RNG: stats.NewRNG(5)},
	}
	cands := []sparksim.Config{space.Default(), space.Default()}
	if idx := rs.Select(cands, nil, 0); idx < 0 || idx > 1 {
		t.Fatalf("fallback select out of range: %d", idx)
	}
}

func TestRemoteSelectorUsesModel(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	if err := c.PostEvents(context.Background(), "u1", q.ID, "job-2", makeTraces(e, q, 60, 13)); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	rs := &RemoteSelector{
		Client: c, Space: space, User: "u1", Signature: q.ID,
		Fallback: core.RandomSelector{RNG: stats.NewRNG(5)},
	}
	good, _ := e.OptimalConfig(q, 1, 10)
	bad := space.With(space.Default(), sparksim.ShufflePartitions, 8)
	bad = space.With(bad, sparksim.MaxPartitionBytes, 1<<20)
	hits := 0
	for i := 0; i < 5; i++ {
		if rs.Select([]sparksim.Config{bad, good}, nil, q.Plan.LeafInputBytes()) == 1 {
			hits++
		}
	}
	if hits != 5 {
		t.Fatalf("model-backed selector should deterministically pick the good config, got %d/5", hits)
	}
}

func featuresFor(space *sparksim.Space, cfg sparksim.Config, size float64) []float64 {
	return tuners.ConfigFeatures(space, nil, cfg, size)
}

func TestPostEventLogEndToEnd(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	sig := sparksim.Signature(q.Plan)

	var buf bytes.Buffer
	r := stats.NewRNG(21)
	for i := 0; i < 30; i++ {
		cfg := space.Random(r)
		o := e.Run(q, cfg, 1, r, noise.Low)
		o.Iteration = i
		stages, _ := e.Explain(q, cfg, 1)
		if err := eventlog.WriteRun(&buf, int64(i), space, q, o, stages, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PostEventLog(context.Background(), "u1", "job-raw", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	// The backend must have derived the signature from the plans and
	// trained a model under it.
	m, err := c.FetchModel(context.Background(), "u1", sig)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("raw event-log ingestion did not train a model")
	}
	if err := c.PostEventLog(context.Background(), "u1", "job-raw", []byte("garbage")); err == nil {
		t.Fatal("garbage event log should be rejected")
	}
}
