package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/fleet"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

const (
	shardSecret = "shard-cluster-secret"
	shardSeed   = 42
	shardVnodes = 16
)

// swapHandler lets an httptest server start before its node exists.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// shardFleet is a real two-node fleet for router tests.
type shardFleet struct {
	nodes   map[string]*fleet.Node
	servers map[string]*httptest.Server
	peers   map[string]string
}

func newShardFleet(t *testing.T, ids []string) *shardFleet {
	t.Helper()
	f := &shardFleet{
		nodes:   make(map[string]*fleet.Node),
		servers: make(map[string]*httptest.Server),
		peers:   make(map[string]string),
	}
	swaps := make(map[string]*swapHandler)
	for _, id := range ids {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		swaps[id] = sw
		f.servers[id] = srv
		f.peers[id] = srv.URL
	}
	ctx, cancel := context.WithCancel(context.Background())
	for _, id := range ids {
		n, err := fleet.NewNode(fleet.NodeOptions{
			ID:            id,
			Peers:         f.peers,
			Replicas:      len(ids),
			Vnodes:        shardVnodes,
			Seed:          shardSeed,
			Space:         sparksim.QuerySpace(),
			DataDir:       t.TempDir(),
			StoreSecret:   []byte("shard-test-secret"),
			ClusterSecret: shardSecret,
			NoSync:        true,
			RetryDelay:    2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		f.nodes[id] = n
		swaps[id].set(n.Handler())
	}
	for _, n := range f.nodes {
		n.Start(ctx)
	}
	t.Cleanup(func() {
		cancel()
		for _, srv := range f.servers {
			srv.Close()
		}
		for _, n := range f.nodes {
			n.Close()
		}
	})
	return f
}

func (f *shardFleet) router(t *testing.T, vnodes int) *ShardRouter {
	t.Helper()
	return NewShardRouter(ShardRouterOptions{
		Peers:         f.peers,
		Replicas:      len(f.peers),
		Vnodes:        vnodes,
		Seed:          shardSeed,
		ClusterSecret: shardSecret,
		Configure: func(id string, c *Client) {
			// Dead-node probes should fail fast in tests.
			c.Retry = resilience.Policy{MaxAttempts: 1}
			c.Breaker = nil
		},
	})
}

func shardTrace(sig string) []flighting.Trace {
	space := sparksim.QuerySpace()
	return []flighting.Trace{{QueryID: sig, Config: space.Default(), DataSize: 1, TimeMs: 100}}
}

// fleetSigOwnedBy finds a signature the fleet places on the given node.
func fleetSigOwnedBy(t *testing.T, f *shardFleet, node string) string {
	t.Helper()
	topo := f.nodes[node].Topology()
	for i := 0; i < 10000; i++ {
		sig := fmt.Sprintf("sig-%04d", i)
		if topo.Owner(sig) == node {
			return sig
		}
	}
	t.Fatalf("no signature owned by %s", node)
	return ""
}

func TestShardRouterRoutesToOwner(t *testing.T) {
	f := newShardFleet(t, []string{"a", "b"})
	r := f.router(t, shardVnodes)
	sig := fleetSigOwnedBy(t, f, "a")
	if got := r.Owner(sig); got != "a" {
		t.Fatalf("router owner(%s) = %q, want a (client and fleet placement must agree)", sig, got)
	}
	if err := r.PostEvents(context.Background(), "u", sig, "job-1", shardTrace(sig)); err != nil {
		t.Fatalf("PostEvents: %v", err)
	}
	if n := len(f.nodes["a"].Store().List("events/")); n != 1 {
		t.Fatalf("owner holds %d event files, want 1", n)
	}
	if n := len(f.nodes["b"].Store().List("events/")); n != 0 {
		t.Fatalf("non-owner holds %d event files, want 0", n)
	}
}

func TestShardRouterFollows421Redirect(t *testing.T) {
	f := newShardFleet(t, []string{"a", "b"})
	// A router with drifted ring parameters misroutes some signatures; the
	// server's 421 redirect must win over the stale local view.
	stale := f.router(t, shardVnodes*4)
	var sig, owner string
	for i := 0; i < 10000 && sig == ""; i++ {
		cand := fmt.Sprintf("sig-%04d", i)
		fleetOwner := f.nodes["a"].Topology().Owner(cand)
		if stale.Owner(cand) != fleetOwner {
			sig, owner = cand, fleetOwner
		}
	}
	if sig == "" {
		t.Skip("drifted view agrees on 10000 signatures; nothing to redirect")
	}
	if err := stale.PostEvents(context.Background(), "u", sig, "job-1", shardTrace(sig)); err != nil {
		t.Fatalf("PostEvents through stale router: %v", err)
	}
	if n := len(f.nodes[owner].Store().List("events/")); n != 1 {
		t.Fatalf("true owner %s holds %d event files, want 1", owner, n)
	}
}

func TestShardRouterFailsOverToPromotedReplica(t *testing.T) {
	f := newShardFleet(t, []string{"a", "b"})
	r := f.router(t, shardVnodes)
	sig := fleetSigOwnedBy(t, f, "a")
	if err := r.PostEvents(context.Background(), "u", sig, "job-1", shardTrace(sig)); err != nil {
		t.Fatalf("PostEvents: %v", err)
	}

	// Owner dies; the fleet promotes b. The router discovers the death on
	// its next call and walks to the same node the fleet promoted.
	f.servers["a"].Close()
	f.nodes["b"].Promote("a")
	if err := r.PostEvents(context.Background(), "u", sig, "job-2", shardTrace(sig)); err != nil {
		t.Fatalf("PostEvents after owner death: %v", err)
	}
	if got := r.Owner(sig); got != "b" {
		t.Fatalf("router owner after failover = %q, want b", got)
	}
	// b absorbed job-1's replicated event and ingested job-2 directly.
	if n := len(f.nodes["b"].Store().List("events/")); n != 2 {
		t.Fatalf("promoted node holds %d event files, want 2", n)
	}
}

// indexSelector is a trivial local fallback.
type indexSelector struct{ idx int }

func (s indexSelector) Select([]sparksim.Config, []sparksim.Observation, float64) int { return s.idx }

func TestShardSelectorColdStartFallsBack(t *testing.T) {
	f := newShardFleet(t, []string{"a", "b"})
	r := f.router(t, shardVnodes)
	sig := fleetSigOwnedBy(t, f, "a")
	space := sparksim.QuerySpace()
	sel := r.Selector(space, "u", sig, indexSelector{idx: 2})
	cands := []sparksim.Config{space.Default(), space.Default(), space.Default()}
	if got := sel.Select(cands, nil, 1); got != 2 {
		t.Fatalf("cold-start Select = %d, want fallback index 2", got)
	}
	if sel.Degraded() {
		t.Fatal("cold start must not count as degradation")
	}
}

func TestShardRouterPartitionsBatchesByOwner(t *testing.T) {
	f := newShardFleet(t, []string{"a", "b"})
	r := f.router(t, shardVnodes)
	sigA, sigB := fleetSigOwnedBy(t, f, "a"), fleetSigOwnedBy(t, f, "b")
	traces := append(shardTrace(sigA), shardTrace(sigB)...)
	resp, err := r.PostEventBatch(context.Background(), "u", "job-1", traces)
	if err != nil {
		t.Fatalf("PostEventBatch: %v", err)
	}
	if resp.Signatures != 2 || resp.Events != 2 {
		t.Fatalf("batch response = %+v, want 2 signatures / 2 events", resp)
	}
	if n := len(f.nodes["a"].Store().List("events/")); n != 1 {
		t.Fatalf("node a holds %d event files, want 1", n)
	}
	if n := len(f.nodes["b"].Store().List("events/")); n != 1 {
		t.Fatalf("node b holds %d event files, want 1", n)
	}
}
