package client

import (
	"context"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func TestSessionValidation(t *testing.T) {
	space := sparksim.QuerySpace()
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	_, c := newStack(t, space)
	if _, err := NewSession(nil, space, "u", "j", q.Plan, 1); err == nil {
		t.Fatal("nil client should error")
	}
	if _, err := NewSession(c, space, "", "j", q.Plan, 1); err == nil {
		t.Fatal("empty user should error")
	}
	if _, err := NewSession(c, space, "u", "", q.Plan, 1); err == nil {
		t.Fatal("empty job should error")
	}
	s, err := NewSession(c, space, "u", "j", q.Plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Signature != sparksim.Signature(q.Plan) {
		t.Fatal("signature mismatch")
	}
}

func TestSessionEndToEnd(t *testing.T) {
	space := sparksim.QuerySpace()
	srv, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)

	sess, err := NewSession(c, space, "u1", "job-sess", q.Plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(8)
	size := q.Plan.LeafInputBytes()
	for i := 0; i < 20; i++ {
		cfg := sess.Recommend(size)
		o := e.Run(q, cfg, 1, r, noise.Low)
		stages, _ := e.Explain(q, cfg, 1)
		if err := sess.Complete(context.Background(), o, stages); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Iterations() != 20 {
		t.Fatalf("iterations = %d", sess.Iterations())
	}
	if sess.Dashboard().Len() != 20 {
		t.Fatalf("dashboard events = %d", sess.Dashboard().Len())
	}
	srv.Flush()
	// The backend must have received every event file and trained a model
	// under the session's signature.
	if n := len(srv.Store.List("events/job-sess/")); n != 20 {
		t.Fatalf("event files = %d", n)
	}
	if _, err := srv.Store.GetInternal(store.ModelPath("u1", sess.Signature)); err != nil {
		t.Fatal("backend did not train the per-signature model")
	}
	if len(sess.History()) != 20 {
		t.Fatalf("history = %d", len(sess.History()))
	}
}

func TestFinishAppPopulatesCache(t *testing.T) {
	space := sparksim.FullSpace()
	_, c := newStack(t, space)
	e := sparksim.NewEngine(space)
	nb := workloads.NewGenerator(2).Notebook(4, 2)
	r := stats.NewRNG(9)

	var sessions []*Session
	for _, q := range nb.Queries {
		sess, err := NewSession(c, space, "u1", "job-app", q.Plan, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			cfg := sess.Recommend(q.Plan.LeafInputBytes())
			if err := sess.Complete(context.Background(), e.Run(q, cfg, 1, r, noise.Low), nil); err != nil {
				t.Fatal(err)
			}
		}
		sessions = append(sessions, sess)
	}
	if err := FinishApp(context.Background(), c, nb.ArtifactID, space.Default(), sessions...); err != nil {
		t.Fatal(err)
	}
	entry, ok, err := c.FetchAppCache(context.Background(), nb.ArtifactID)
	if err != nil || !ok {
		t.Fatalf("app cache miss after FinishApp: %v %v", ok, err)
	}
	if len(entry.Config) != space.Dim() {
		t.Fatal("cached config malformed")
	}
	if err := FinishApp(context.Background(), c, "x", space.Default()); err == nil {
		t.Fatal("FinishApp without sessions should error")
	}
}
