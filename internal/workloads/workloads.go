// Package workloads generates the benchmark query populations used by the
// experiments: a TPC-DS-like suite of 99 query signatures and a TPC-H-like
// suite of 22, plus the recurrent-workload data-size processes (constant,
// linearly growing, periodic) from Section 6.1.
//
// The real paper runs the actual TPC-DS/TPC-H SQL on Spark. What the tuning
// experiments consume, however, is only (a) a physical plan per query for
// the workload embedding and (b) a response surface mapping (config, data
// size) → execution time. This package synthesizes both: deterministic plan
// generators produce operator trees with realistic shapes (star joins over a
// large fact table, multi-way joins with aggregation, window analytics), and
// per-query cost tweaks give every signature its own optimum — the property
// Figure 1 demonstrates and every experiment depends on.
package workloads

import (
	"fmt"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Suite identifies a benchmark family.
type Suite string

// Supported benchmark suites.
const (
	TPCDS Suite = "tpcds"
	TPCH  Suite = "tpch"
)

// QueryCount returns the number of queries in the suite (99 for TPC-DS, 22
// for TPC-H).
func (s Suite) QueryCount() int {
	if s == TPCH {
		return 22
	}
	return 99
}

// Generator builds deterministic query populations. The same (seed, suite,
// scale) always produces identical queries, so offline-trained models remain
// valid across process restarts — the property the flighting pipeline needs.
type Generator struct {
	// Seed namespaces the whole population.
	Seed uint64
	// ScaleFactor multiplies base table sizes; 1 corresponds to roughly
	// 1–30 GB of scan input per query, mirroring SF≈100 behaviour of the
	// simulated cluster.
	ScaleFactor float64
}

// NewGenerator returns a generator with scale factor 1.
func NewGenerator(seed uint64) *Generator {
	return &Generator{Seed: seed, ScaleFactor: 1}
}

// Query builds query number idx (1-based) of the suite.
func (g *Generator) Query(suite Suite, idx int) *sparksim.Query {
	if idx < 1 || idx > suite.QueryCount() {
		panic(fmt.Sprintf("workloads: %s has no query %d", suite, idx))
	}
	r := stats.NewRNG(g.Seed).SplitNamed(fmt.Sprintf("%s-q%d", suite, idx))
	sf := g.ScaleFactor
	if sf <= 0 {
		sf = 1
	}

	// Query archetypes: the mix loosely follows the benchmark families.
	// TPC-H skews to large scans with few joins; TPC-DS has deeper trees,
	// more joins, and window analytics.
	var archetype int
	if suite == TPCH {
		archetype = []int{0, 0, 1, 1, 2, 0, 1, 2, 1, 0}[idx%10]
	} else {
		archetype = []int{0, 1, 1, 2, 2, 3, 1, 2, 3, 1}[idx%10]
	}

	plan := g.buildPlan(r, archetype, sf)
	tweak := sparksim.CostTweak{
		CPU:      r.LogNormal(0, 0.35),
		IO:       r.LogNormal(0, 0.35),
		Overhead: r.LogNormal(0, 0.4),
		Skew:     r.Exponential(4), // mean 0.25, occasionally heavy
	}
	return &sparksim.Query{
		ID:    fmt.Sprintf("%s-q%d", suite, idx),
		Plan:  plan,
		Tweak: tweak,
	}
}

// Queries builds the full suite.
func (g *Generator) Queries(suite Suite) []*sparksim.Query {
	out := make([]*sparksim.Query, 0, suite.QueryCount())
	for i := 1; i <= suite.QueryCount(); i++ {
		out = append(out, g.Query(suite, i))
	}
	return out
}

// buildPlan assembles one of four archetypes:
//
//	0: scan → filter → exchange → aggregate            (reporting scan)
//	1: star join: fact ⋈ 2–4 dimensions → aggregate    (classic DS/H join)
//	2: two large tables sort-merge joined → sort/limit (heavy shuffle)
//	3: windowed analytics over a joined stream         (DS analytics)
func (g *Generator) buildPlan(r *stats.RNG, archetype int, sf float64) *sparksim.Plan {
	factRows := r.Uniform(30e6, 150e6) * sf
	factWidth := r.Uniform(80, 240)
	fact := sparksim.Scan(factRows, factWidth)

	dim := func() *sparksim.Node {
		rows := r.Uniform(50e3, 5e6) * sf
		return sparksim.Scan(rows, r.Uniform(40, 160))
	}

	switch archetype {
	case 0:
		sel := r.Uniform(0.05, 0.6)
		filtered := sparksim.Unary(sparksim.OpFilter, fact, sel)
		ex := sparksim.Unary(sparksim.OpExchange, filtered, 1)
		agg := sparksim.Unary(sparksim.OpHashAggregate, ex, r.Uniform(0.001, 0.05))
		return &sparksim.Plan{Root: sparksim.Unary(sparksim.OpProject, agg, 1)}

	case 1:
		node := sparksim.Unary(sparksim.OpFilter, fact, r.Uniform(0.1, 0.8))
		nDims := 2 + r.Intn(3)
		for d := 0; d < nDims; d++ {
			node = sparksim.Join(sparksim.OpSortMergeJoin,
				sparksim.Unary(sparksim.OpExchange, node, 1),
				sparksim.Unary(sparksim.OpExchange, dim(), 1),
				r.Uniform(0.6, 1.1))
		}
		agg := sparksim.Unary(sparksim.OpHashAggregate,
			sparksim.Unary(sparksim.OpExchange, node, 1), r.Uniform(0.0005, 0.02))
		return &sparksim.Plan{Root: sparksim.Unary(sparksim.OpSort, agg, 1)}

	case 2:
		other := sparksim.Scan(r.Uniform(20e6, 80e6)*sf, r.Uniform(60, 180))
		j := sparksim.Join(sparksim.OpSortMergeJoin,
			sparksim.Unary(sparksim.OpExchange, sparksim.Unary(sparksim.OpFilter, fact, r.Uniform(0.2, 0.9)), 1),
			sparksim.Unary(sparksim.OpExchange, other, 1),
			r.Uniform(0.3, 1.0))
		s := sparksim.Unary(sparksim.OpSort, sparksim.Unary(sparksim.OpExchange, j, 1), 1)
		return &sparksim.Plan{Root: sparksim.Unary(sparksim.OpLimit, s, r.Uniform(1e-6, 1e-4))}

	default: // 3
		j := sparksim.Join(sparksim.OpSortMergeJoin,
			sparksim.Unary(sparksim.OpExchange, fact, 1),
			sparksim.Unary(sparksim.OpExchange, dim(), 1),
			r.Uniform(0.7, 1.0))
		w := sparksim.Unary(sparksim.OpWindow, sparksim.Unary(sparksim.OpExchange, j, 1), 1)
		agg := sparksim.Unary(sparksim.OpHashAggregate, w, r.Uniform(0.001, 0.1))
		return &sparksim.Plan{Root: agg}
	}
}

// Notebook builds a synthetic customer application: 1–6 queries whose plans
// are drawn from the same archetypes, used by the fleet-deployment
// experiments (Figures 15–16).
func (g *Generator) Notebook(id int, nQueries int) *sparksim.App {
	r := stats.NewRNG(g.Seed).SplitNamed(fmt.Sprintf("notebook-%d", id))
	if nQueries <= 0 {
		nQueries = 1 + r.Intn(6)
	}
	qs := make([]*sparksim.Query, nQueries)
	for i := range qs {
		arch := r.Intn(4)
		plan := g.buildPlan(r.Split(), arch, g.scaleOr1())
		qs[i] = &sparksim.Query{
			ID:   fmt.Sprintf("nb%d-q%d", id, i+1),
			Plan: plan,
			Tweak: sparksim.CostTweak{
				CPU: r.LogNormal(0, 0.3), IO: r.LogNormal(0, 0.3),
				Overhead: r.LogNormal(0, 0.3), Skew: r.Exponential(4),
			},
		}
	}
	return &sparksim.App{ArtifactID: fmt.Sprintf("artifact-%08x", stats.NewRNG(uint64(id)).Uint64()), Queries: qs}
}

func (g *Generator) scaleOr1() float64 {
	if g.ScaleFactor <= 0 {
		return 1
	}
	return g.ScaleFactor
}

// SizeProcess yields the data-size multiplier for iteration t of a recurrent
// workload. The three shapes come from Section 6.1's dynamic-workload
// experiments.
type SizeProcess interface {
	// Scale returns the multiplier applied to the query's nominal size at
	// iteration t (t starts at 0).
	Scale(t int) float64
	fmt.Stringer
}

// Constant holds the data size fixed.
type Constant struct {
	// Value is the multiplier; 0 means 1.
	Value float64
}

// Scale implements SizeProcess.
func (c Constant) Scale(int) float64 {
	if c.Value == 0 {
		return 1
	}
	return c.Value
}

func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.Scale(0)) }

// Linear grows the data size linearly: scale(t) = Base + Slope·t.
type Linear struct {
	Base  float64
	Slope float64
}

// Scale implements SizeProcess.
func (l Linear) Scale(t int) float64 {
	base := l.Base
	if base == 0 {
		base = 1
	}
	return base + l.Slope*float64(t)
}

func (l Linear) String() string { return fmt.Sprintf("linear(base=%g, slope=%g)", l.Base, l.Slope) }

// Periodic cycles the data size with period K: scale(t) = Base·(1 +
// Amplitude·(t mod K)/K), the f(t) = t %% K process of Section 6.1.
type Periodic struct {
	Base      float64
	Amplitude float64
	K         int
}

// Scale implements SizeProcess.
func (p Periodic) Scale(t int) float64 {
	base := p.Base
	if base == 0 {
		base = 1
	}
	k := p.K
	if k <= 0 {
		k = 10
	}
	return base * (1 + p.Amplitude*float64(t%k)/float64(k))
}

func (p Periodic) String() string {
	return fmt.Sprintf("periodic(base=%g, amp=%g, K=%d)", p.Base, p.Amplitude, p.K)
}

// Jittered wraps a SizeProcess with multiplicative log-normal jitter,
// modelling the run-to-run input variation of production recurrent jobs.
type Jittered struct {
	Inner SizeProcess
	Sigma float64
	// RNG supplies the jitter stream; it must be non-nil.
	RNG *stats.RNG
}

// Scale implements SizeProcess.
func (j Jittered) Scale(t int) float64 {
	s := j.Inner.Scale(t)
	return s * math.Exp(j.RNG.Normal(0, j.Sigma))
}

func (j Jittered) String() string { return fmt.Sprintf("jittered(%v, σ=%g)", j.Inner, j.Sigma) }

var (
	_ SizeProcess = Constant{}
	_ SizeProcess = Linear{}
	_ SizeProcess = Periodic{}
	_ SizeProcess = Jittered{}
)
