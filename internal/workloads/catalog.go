package workloads

import (
	"fmt"
	"math"
	"sort"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Table is one benchmark base table with its published statistics at scale
// factor 1: cardinality and average row width. TPC table cardinalities are
// defined by the specifications (lineitem = 6,001,215 rows at SF 1 etc.);
// widths approximate the schemas' average tuple sizes in bytes.
type Table struct {
	Name string
	// Rows is the cardinality at SF 1.
	Rows float64
	// RowBytes is the average tuple width.
	RowBytes float64
	// Fact marks large scaling tables (facts scale linearly with SF; most
	// dimensions scale sublinearly, which Scan approximates by scaling
	// facts fully and dimensions by √SF, mirroring TPC-DS's scaling model).
	Fact bool
}

// Catalog is a named set of benchmark tables.
type Catalog struct {
	Name   string
	tables map[string]Table
}

// TPCHCatalog returns the 8-table TPC-H schema with SF-1 cardinalities from
// the specification.
func TPCHCatalog() *Catalog {
	return newCatalog("tpch",
		Table{Name: "lineitem", Rows: 6_001_215, RowBytes: 112, Fact: true},
		Table{Name: "orders", Rows: 1_500_000, RowBytes: 104, Fact: true},
		Table{Name: "partsupp", Rows: 800_000, RowBytes: 144, Fact: true},
		Table{Name: "part", Rows: 200_000, RowBytes: 128},
		Table{Name: "customer", Rows: 150_000, RowBytes: 160},
		Table{Name: "supplier", Rows: 10_000, RowBytes: 144},
		Table{Name: "nation", Rows: 25, RowBytes: 112},
		Table{Name: "region", Rows: 5, RowBytes: 120},
	)
}

// TPCDSCatalog returns the core TPC-DS schema (the 7 fact tables and the
// dimensions the query set touches most) with SF-1 cardinalities from the
// specification.
func TPCDSCatalog() *Catalog {
	return newCatalog("tpcds",
		Table{Name: "store_sales", Rows: 2_880_404, RowBytes: 164, Fact: true},
		Table{Name: "catalog_sales", Rows: 1_441_548, RowBytes: 226, Fact: true},
		Table{Name: "web_sales", Rows: 719_384, RowBytes: 226, Fact: true},
		Table{Name: "store_returns", Rows: 287_514, RowBytes: 134, Fact: true},
		Table{Name: "catalog_returns", Rows: 144_067, RowBytes: 166, Fact: true},
		Table{Name: "web_returns", Rows: 71_763, RowBytes: 162, Fact: true},
		Table{Name: "inventory", Rows: 11_745_000, RowBytes: 16, Fact: true},
		Table{Name: "item", Rows: 18_000, RowBytes: 281},
		Table{Name: "customer", Rows: 100_000, RowBytes: 132},
		Table{Name: "customer_address", Rows: 50_000, RowBytes: 110},
		Table{Name: "customer_demographics", Rows: 1_920_800, RowBytes: 42},
		Table{Name: "date_dim", Rows: 73_049, RowBytes: 141},
		Table{Name: "time_dim", Rows: 86_400, RowBytes: 59},
		Table{Name: "store", Rows: 12, RowBytes: 263},
		Table{Name: "warehouse", Rows: 5, RowBytes: 117},
		Table{Name: "web_site", Rows: 30, RowBytes: 292},
		Table{Name: "household_demographics", Rows: 7_200, RowBytes: 21},
		Table{Name: "promotion", Rows: 300, RowBytes: 124},
	)
}

func newCatalog(name string, tables ...Table) *Catalog {
	c := &Catalog{Name: name, tables: make(map[string]Table, len(tables))}
	for _, t := range tables {
		c.tables[t.Name] = t
	}
	return c
}

// Table returns a table by name.
func (c *Catalog) Table(name string) (Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns every table, sorted by name.
func (c *Catalog) Tables() []Table {
	out := make([]Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Facts returns the fact tables, sorted by descending cardinality.
func (c *Catalog) Facts() []Table {
	var out []Table
	for _, t := range c.tables {
		if t.Fact {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rows > out[j].Rows })
	return out
}

// Dimensions returns the non-fact tables, sorted by descending cardinality.
func (c *Catalog) Dimensions() []Table {
	var out []Table
	for _, t := range c.tables {
		if !t.Fact {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rows > out[j].Rows })
	return out
}

// Scan builds a scan node over the named table at the given scale factor,
// applying TPC-style scaling: fact tables scale linearly, dimensions by
// √SF (TPC-DS scales most dimensions sublinearly; √SF is the conventional
// approximation).
func (c *Catalog) Scan(name string, sf float64) (*sparksim.Node, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("workloads: catalog %s has no table %q", c.Name, name)
	}
	if sf <= 0 {
		sf = 1
	}
	rows := t.Rows * sf
	if !t.Fact {
		rows = t.Rows * math.Sqrt(sf)
	}
	return sparksim.Scan(rows, t.RowBytes), nil
}

// CatalogQuery builds query idx over the catalog's real schema: a star join
// of one fact table with 1–4 dimension tables, filtered and aggregated, at
// the given scale factor. It complements the synthetic Generator with
// workloads whose table names, cardinalities, and join shapes match the
// published benchmarks. Deterministic in (catalog, idx, seed).
func (c *Catalog) CatalogQuery(idx int, sf float64, seed uint64) (*sparksim.Query, error) {
	if idx < 1 {
		return nil, fmt.Errorf("workloads: catalog query index must be ≥ 1, got %d", idx)
	}
	facts := c.Facts()
	dims := c.Dimensions()
	if len(facts) == 0 || len(dims) == 0 {
		return nil, fmt.Errorf("workloads: catalog %s lacks facts or dimensions", c.Name)
	}
	r := stats.NewRNG(seed).SplitNamed(fmt.Sprintf("%s-cat-q%d", c.Name, idx))
	fact := facts[idx%len(facts)]
	factScan, err := c.Scan(fact.Name, sf)
	if err != nil {
		return nil, err
	}
	node := sparksim.Unary(sparksim.OpFilter, factScan, r.Uniform(0.1, 0.8))
	nDims := 1 + r.Intn(4)
	used := map[string]bool{}
	for d := 0; d < nDims; d++ {
		dim := dims[r.Intn(len(dims))]
		if used[dim.Name] {
			continue
		}
		used[dim.Name] = true
		dimScan, err := c.Scan(dim.Name, sf)
		if err != nil {
			return nil, err
		}
		node = sparksim.Join(sparksim.OpSortMergeJoin,
			sparksim.Unary(sparksim.OpExchange, node, 1),
			sparksim.Unary(sparksim.OpExchange, dimScan, 1),
			r.Uniform(0.7, 1.05))
	}
	agg := sparksim.Unary(sparksim.OpHashAggregate,
		sparksim.Unary(sparksim.OpExchange, node, 1), r.Uniform(0.001, 0.05))
	plan := &sparksim.Plan{Root: sparksim.Unary(sparksim.OpSort, agg, 1)}
	return &sparksim.Query{
		ID:   fmt.Sprintf("%s-cat-q%d-%s", c.Name, idx, fact.Name),
		Plan: plan,
		Tweak: sparksim.CostTweak{
			CPU: r.LogNormal(0, 0.3), IO: r.LogNormal(0, 0.3),
			Overhead: r.LogNormal(0, 0.3), Skew: r.Exponential(4),
		},
	}, nil
}
