package workloads

import (
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

func TestCatalogSpecCardinalities(t *testing.T) {
	t.Parallel()
	h := TPCHCatalog()
	li, ok := h.Table("lineitem")
	if !ok || li.Rows != 6_001_215 || !li.Fact {
		t.Fatalf("lineitem stats wrong: %+v", li)
	}
	if _, ok := h.Table("store_sales"); ok {
		t.Fatal("TPC-H catalog must not contain DS tables")
	}
	ds := TPCDSCatalog()
	ss, ok := ds.Table("store_sales")
	if !ok || ss.Rows != 2_880_404 {
		t.Fatalf("store_sales stats wrong: %+v", ss)
	}
	if len(h.Tables()) != 8 {
		t.Fatalf("TPC-H has %d tables", len(h.Tables()))
	}
}

func TestCatalogFactsAndDimensions(t *testing.T) {
	t.Parallel()
	h := TPCHCatalog()
	facts := h.Facts()
	if len(facts) != 3 || facts[0].Name != "lineitem" {
		t.Fatalf("facts = %v", facts)
	}
	dims := h.Dimensions()
	if len(dims) != 5 {
		t.Fatalf("dims = %d", len(dims))
	}
	for _, d := range dims {
		if d.Fact {
			t.Fatal("dimension marked as fact")
		}
	}
}

func TestCatalogScanScaling(t *testing.T) {
	t.Parallel()
	h := TPCHCatalog()
	li1, err := h.Scan("lineitem", 1)
	if err != nil {
		t.Fatal(err)
	}
	li100, _ := h.Scan("lineitem", 100)
	if li100.InRows != li1.InRows*100 {
		t.Fatal("fact tables must scale linearly")
	}
	cust1, _ := h.Scan("customer", 1)
	cust100, _ := h.Scan("customer", 100)
	ratio := cust100.InRows / cust1.InRows
	if ratio < 9.9 || ratio > 10.1 {
		t.Fatalf("dimensions should scale by sqrt(SF): ratio = %g", ratio)
	}
	if _, err := h.Scan("nope", 1); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestCatalogQuery(t *testing.T) {
	t.Parallel()
	for _, cat := range []*Catalog{TPCHCatalog(), TPCDSCatalog()} {
		for idx := 1; idx <= 6; idx++ {
			q, err := cat.CatalogQuery(idx, 10, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Plan.Validate(); err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			again, _ := cat.CatalogQuery(idx, 10, 7)
			if again.ID != q.ID || again.Plan.LeafInputCardinality() != q.Plan.LeafInputCardinality() {
				t.Fatalf("%s: not deterministic", q.ID)
			}
		}
	}
	if _, err := TPCHCatalog().CatalogQuery(0, 1, 1); err == nil {
		t.Fatal("index 0 should error")
	}
}

func TestCatalogQueriesTunable(t *testing.T) {
	t.Parallel()
	// Catalog queries must present the same kind of tunable surfaces as the
	// synthetic generator: interior optimum in shuffle partitions.
	e := sparksim.NewEngine(sparksim.QuerySpace())
	q, err := TPCHCatalog().CatalogQuery(1, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	at := func(p float64) float64 {
		return e.TrueTime(q, e.Space.With(e.Space.Default(), sparksim.ShufflePartitions, p), 1)
	}
	lo, mid, hi := at(8), at(128), at(2000)
	if !(mid < lo && mid < hi) {
		t.Fatalf("no interior optimum: %g %g %g", lo, mid, hi)
	}
}
