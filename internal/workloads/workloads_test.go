package workloads

import (
	"math"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func TestSuiteCounts(t *testing.T) {
	t.Parallel()
	if TPCDS.QueryCount() != 99 || TPCH.QueryCount() != 22 {
		t.Fatal("suite counts drifted from the benchmarks")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	t.Parallel()
	g1 := NewGenerator(42)
	g2 := NewGenerator(42)
	for _, idx := range []int{1, 17, 99} {
		a := g1.Query(TPCDS, idx)
		b := g2.Query(TPCDS, idx)
		if a.ID != b.ID || a.Plan.NodeCount() != b.Plan.NodeCount() {
			t.Fatalf("q%d not deterministic", idx)
		}
		if a.Plan.LeafInputCardinality() != b.Plan.LeafInputCardinality() {
			t.Fatalf("q%d cardinalities differ", idx)
		}
		if a.Tweak != b.Tweak {
			t.Fatalf("q%d tweaks differ", idx)
		}
	}
}

func TestGeneratorSeedMatters(t *testing.T) {
	t.Parallel()
	a := NewGenerator(1).Query(TPCH, 5)
	b := NewGenerator(2).Query(TPCH, 5)
	if a.Plan.LeafInputCardinality() == b.Plan.LeafInputCardinality() {
		t.Fatal("different seeds should produce different populations")
	}
}

func TestQueriesValidateAndDiffer(t *testing.T) {
	t.Parallel()
	g := NewGenerator(7)
	for _, suite := range []Suite{TPCDS, TPCH} {
		qs := g.Queries(suite)
		if len(qs) != suite.QueryCount() {
			t.Fatalf("%s: %d queries", suite, len(qs))
		}
		seen := map[float64]int{}
		for _, q := range qs {
			if err := q.Plan.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", q.ID, err)
			}
			seen[q.Plan.LeafInputCardinality()]++
		}
		if len(seen) < len(qs)*9/10 {
			t.Fatalf("%s: queries insufficiently diverse (%d distinct sizes)", suite, len(seen))
		}
	}
}

func TestQueryOptimaDiffer(t *testing.T) {
	t.Parallel()
	// The Figure 1 property: different queries peak at different
	// shuffle.partitions values.
	g := NewGenerator(11)
	e := sparksim.NewEngine(sparksim.QuerySpace())
	optima := map[float64]bool{}
	for _, idx := range []int{1, 2, 3, 4, 5, 6} {
		q := g.Query(TPCDS, idx)
		best, _ := e.OptimalConfig(q, 1, 12)
		optima[e.Space.Get(best, sparksim.ShufflePartitions)] = true
	}
	if len(optima) < 3 {
		t.Fatalf("per-query optima too uniform: %v", optima)
	}
}

func TestQueryPanicsOutOfRange(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for query 0")
		}
	}()
	NewGenerator(1).Query(TPCH, 0)
}

func TestScaleFactorGrowsInput(t *testing.T) {
	t.Parallel()
	g1 := NewGenerator(3)
	g10 := NewGenerator(3)
	g10.ScaleFactor = 10
	a := g1.Query(TPCDS, 10)
	b := g10.Query(TPCDS, 10)
	ratio := b.Plan.LeafInputBytes() / a.Plan.LeafInputBytes()
	if math.Abs(ratio-10) > 1e-6 {
		t.Fatalf("scale factor ratio = %g; want 10", ratio)
	}
}

func TestNotebook(t *testing.T) {
	t.Parallel()
	g := NewGenerator(5)
	nb := g.Notebook(3, 0)
	if len(nb.Queries) < 1 || len(nb.Queries) > 6 {
		t.Fatalf("notebook has %d queries", len(nb.Queries))
	}
	if nb.ArtifactID == "" {
		t.Fatal("artifact id empty")
	}
	for _, q := range nb.Queries {
		if err := q.Plan.Validate(); err != nil {
			t.Fatalf("notebook query invalid: %v", err)
		}
	}
	nb2 := g.Notebook(3, 0)
	if nb2.ArtifactID != nb.ArtifactID || len(nb2.Queries) != len(nb.Queries) {
		t.Fatal("notebooks not deterministic")
	}
	fixed := g.Notebook(4, 3)
	if len(fixed.Queries) != 3 {
		t.Fatalf("explicit query count ignored: %d", len(fixed.Queries))
	}
}

func TestSizeProcesses(t *testing.T) {
	t.Parallel()
	if (Constant{}).Scale(99) != 1 {
		t.Fatal("zero-value Constant should be 1")
	}
	if (Constant{Value: 2.5}).Scale(0) != 2.5 {
		t.Fatal("Constant value ignored")
	}
	l := Linear{Base: 1, Slope: 0.1}
	if l.Scale(0) != 1 || math.Abs(l.Scale(10)-2) > 1e-12 {
		t.Fatalf("Linear wrong: %g, %g", l.Scale(0), l.Scale(10))
	}
	p := Periodic{Base: 1, Amplitude: 1, K: 4}
	if p.Scale(0) != 1 || p.Scale(2) != 1.5 || p.Scale(4) != 1 {
		t.Fatalf("Periodic wrong: %g %g %g", p.Scale(0), p.Scale(2), p.Scale(4))
	}
	j := Jittered{Inner: Constant{}, Sigma: 0.2, RNG: stats.NewRNG(1)}
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		v := j.Scale(i)
		if v <= 0 {
			t.Fatalf("jittered scale non-positive: %g", v)
		}
		sum += math.Log(v)
	}
	if math.Abs(sum/float64(n)) > 0.02 {
		t.Fatalf("jitter not centred: mean log = %g", sum/float64(n))
	}
}
