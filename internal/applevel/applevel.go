// Package applevel implements Section 4.4: application-level configuration
// optimization. App-level parameters (executor count, executor memory,
// off-heap settings) are fixed at Spark application startup, before any
// query — and therefore any workload embedding — exists. Rockhopper solves
// this with (1) a pre-computed app_cache keyed by artifact_id, filled in
// after each application run when all query information is available, and
// (2) the joint optimization of Algorithm 2, which scores app-level
// candidates by the best query-level completion they admit.
package applevel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// ArtifactID derives the stable identifier of a recurrent Spark application
// from its artifact — "a hash of a PySpark notebook or a Spark job
// description in JSON format".
func ArtifactID(artifact []byte) string {
	sum := sha256.Sum256(artifact)
	return "artifact-" + hex.EncodeToString(sum[:8])
}

// QueryState is the per-query information Algorithm 2 consumes: the query's
// current centroid (anchor for query-level candidates) and a predictor of
// execution time as a function of the full configuration and input size.
type QueryState struct {
	// ID is the query signature.
	ID string
	// Centroid anchors query-level candidate generation.
	Centroid sparksim.Config
	// DataSize is the query's expected input bytes.
	DataSize float64
	// Predict estimates execution time (ms) for a full configuration;
	// lower is better. This is the per-query surrogate model f_q.
	Predict func(cfg sparksim.Config, dataSize float64) float64
}

// FitQueryState builds a QueryState from a query's observation history by
// fitting the H(c, p) window model. It returns an error when the history is
// too small for a stable fit.
func FitQueryState(space *sparksim.Space, id string, centroid sparksim.Config, obs []sparksim.Observation) (QueryState, error) {
	if len(obs) < 4 {
		return QueryState{}, fmt.Errorf("applevel: %d observations for %q, need ≥ 4", len(obs), id)
	}
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		x[i] = tuners.ConfigFeatures(space, nil, o.Config, o.DataSize)
		y[i] = math.Log1p(o.Time)
	}
	kr := ml.NewKernelRidge()
	kr.Alpha = 0.3
	if err := kr.Fit(x, y); err != nil {
		return QueryState{}, fmt.Errorf("applevel: fit %q: %w", id, err)
	}
	size := obs[len(obs)-1].DataSize
	return QueryState{
		ID:       id,
		Centroid: centroid.Clone(),
		DataSize: size,
		Predict: func(cfg sparksim.Config, p float64) float64 {
			return math.Expm1(kr.Predict(tuners.ConfigFeatures(space, nil, cfg, p)))
		},
	}, nil
}

// JointOptimizer is Algorithm 2: generate M app-level candidates, complete
// each with the best query-level candidates per query, and return the
// app-level candidate with the best total predicted performance.
type JointOptimizer struct {
	Space *sparksim.Space
	// M is the number of app-level candidates.
	M int
	// N is the number of query-level candidates per query.
	N int
	// Beta bounds candidate neighbourhoods, like Centroid Learning's β.
	Beta float64
	RNG  *stats.RNG
}

// NewJointOptimizer returns an optimizer with production-like budgets.
func NewJointOptimizer(space *sparksim.Space, rng *stats.RNG) *JointOptimizer {
	return &JointOptimizer{Space: space, M: 16, N: 12, Beta: 0.08, RNG: rng}
}

// combine overlays w's query-level values onto v's app-level values.
func (jo *JointOptimizer) combine(v, w sparksim.Config) sparksim.Config {
	out := v.Clone()
	for _, i := range jo.Space.QueryParams() {
		out[i] = w[i]
	}
	return out
}

// Optimize runs Algorithm 2 starting from the current app-level setting and
// returns the best app-level configuration (query-level dimensions carry the
// current values of `current` and are ignored by callers). It returns an
// error when there are no queries or the space has no app-level parameters.
func (jo *JointOptimizer) Optimize(current sparksim.Config, queries []QueryState) (sparksim.Config, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("applevel: no queries to optimize over")
	}
	appDims := jo.Space.AppParams()
	if len(appDims) == 0 {
		return nil, fmt.Errorf("applevel: space has no app-level parameters")
	}
	// V ← M app-level candidates around the current setting. Neighborhood
	// perturbs every dimension; we then restore query-level dims so only
	// app-level values vary across V.
	raw := jo.Space.Neighborhood(current, jo.Beta, jo.M, jo.RNG)
	v := make([]sparksim.Config, 0, jo.M+1)
	v = append(v, current.Clone())
	for _, cand := range raw {
		c := current.Clone()
		for _, i := range appDims {
			c[i] = cand[i]
		}
		v = append(v, c)
	}
	// W_q ← N query-level candidates around each query's centroid.
	wq := make([][]sparksim.Config, len(queries))
	for qi, q := range queries {
		wq[qi] = append(jo.Space.Neighborhood(q.Centroid, jo.Beta, jo.N, jo.RNG), q.Centroid.Clone())
	}
	bestIdx, bestScore := -1, math.Inf(1)
	for vi, app := range v {
		var total float64
		for qi, q := range queries {
			// c*_q(v): the best query-level completion under this app config.
			best := math.Inf(1)
			for _, w := range wq[qi] {
				cfg := jo.combine(app, w)
				if t := q.Predict(cfg, q.DataSize); t < best {
					best = t
				}
			}
			total += best
		}
		if total < bestScore {
			bestIdx, bestScore = vi, total
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("applevel: all candidates scored non-finite")
	}
	return v[bestIdx], nil
}

// CacheEntry is one pre-computed app-level configuration.
type CacheEntry struct {
	ArtifactID string          `json:"artifact_id"`
	Config     sparksim.Config `json:"config"`
	// Score is the total predicted time that selected this entry.
	Score float64 `json:"score"`
	// Runs counts how many application completions contributed.
	Runs int `json:"runs"`
}

// Cache is the app_cache: pre-computed app-level configurations keyed by
// artifact_id, retrieved at job submission to bypass joint optimization on
// the critical path (Section 4.4 "Pre-compute app cache"). It is safe for
// concurrent use; the backend's App Cache Generator writes while job
// submissions read.
type Cache struct {
	mu sync.RWMutex
	m  map[string]CacheEntry
}

// NewCache returns an empty app cache.
func NewCache() *Cache { return &Cache{m: make(map[string]CacheEntry)} }

// Get returns the cached entry for an artifact, if present.
func (c *Cache) Get(artifactID string) (CacheEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.m[artifactID]
	return e, ok
}

// Put stores the optimal app-level configuration computed after an
// application run, incrementing the run counter.
func (c *Cache) Put(artifactID string, cfg sparksim.Config, score float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.m[artifactID]
	c.m[artifactID] = CacheEntry{
		ArtifactID: artifactID,
		Config:     cfg.Clone(),
		Score:      score,
		Runs:       prev.Runs + 1,
	}
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// MarshalJSON serializes the cache for persistence in the backend store.
func (c *Cache) MarshalJSON() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return json.Marshal(c.m)
}

// UnmarshalJSON restores a serialized cache.
func (c *Cache) UnmarshalJSON(data []byte) error {
	m := make(map[string]CacheEntry)
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = m
	return nil
}
