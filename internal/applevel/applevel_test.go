package applevel

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func TestArtifactIDStable(t *testing.T) {
	a := ArtifactID([]byte("notebook-v1"))
	b := ArtifactID([]byte("notebook-v1"))
	c := ArtifactID([]byte("notebook-v2"))
	if a != b {
		t.Fatal("artifact id not deterministic")
	}
	if a == c {
		t.Fatal("different artifacts must not collide")
	}
	if !strings.HasPrefix(a, "artifact-") || len(a) != len("artifact-")+16 {
		t.Fatalf("unexpected id shape %q", a)
	}
}

func TestFitQueryStateRequiresData(t *testing.T) {
	space := sparksim.FullSpace()
	if _, err := FitQueryState(space, "q", space.Default(), nil); err == nil {
		t.Fatal("empty history should error")
	}
}

func TestFitQueryStatePredicts(t *testing.T) {
	space := sparksim.FullSpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(1).Query(workloads.TPCDS, 2)
	r := stats.NewRNG(2)
	var obs []sparksim.Observation
	for i := 0; i < 40; i++ {
		cfg := space.Random(r)
		obs = append(obs, e.Run(q, cfg, 1, r, nil))
	}
	qs, err := FitQueryState(space, q.ID, space.Default(), obs)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must rank a clearly bad configuration above a good one.
	good, _ := e.OptimalConfig(q, 1, 10)
	bad := space.With(space.Default(), sparksim.ShufflePartitions, 8)
	bad = space.With(bad, sparksim.MaxPartitionBytes, 1<<20)
	bad = space.With(bad, sparksim.ExecutorInstances, 1)
	if qs.Predict(good, qs.DataSize) >= qs.Predict(bad, qs.DataSize) {
		t.Fatal("query-state surrogate cannot rank good vs bad config")
	}
}

func TestJointOptimizerImprovesAppConfig(t *testing.T) {
	space := sparksim.FullSpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(3)
	app := gen.Notebook(1, 3)
	r := stats.NewRNG(4)

	// Start from an under-provisioned app config.
	start := space.With(space.Default(), sparksim.ExecutorInstances, 2)

	// Build query states from random exploration history (true times, so
	// the test isolates Algorithm 2 from surrogate noise).
	states := make([]QueryState, len(app.Queries))
	for i, q := range app.Queries {
		q := q
		states[i] = QueryState{
			ID:       q.ID,
			Centroid: start.Clone(),
			DataSize: q.Plan.LeafInputBytes(),
			Predict: func(cfg sparksim.Config, _ float64) float64 {
				return e.TrueTime(q, cfg, 1)
			},
		}
	}
	jo := NewJointOptimizer(space, r)
	jo.Beta = 0.25 // allow reaching better executor counts in one call
	best, err := jo.Optimize(start, states)
	if err != nil {
		t.Fatal(err)
	}
	// Query-level dims of the result must equal the anchor's (only app dims vary).
	for _, i := range space.QueryParams() {
		if best[i] != start[i] {
			t.Fatalf("query-level dim %d changed at app level", i)
		}
	}
	totalAt := func(cfg sparksim.Config) float64 {
		var s float64
		for _, q := range app.Queries {
			s += e.TrueTime(q, cfg, 1)
		}
		return s
	}
	if totalAt(best) > totalAt(start) {
		t.Fatalf("joint optimization regressed: %g vs %g", totalAt(best), totalAt(start))
	}
}

func TestJointOptimizerErrors(t *testing.T) {
	full := sparksim.FullSpace()
	jo := NewJointOptimizer(full, stats.NewRNG(1))
	if _, err := jo.Optimize(full.Default(), nil); err == nil {
		t.Fatal("no queries should error")
	}
	qOnly := sparksim.QuerySpace()
	jo2 := NewJointOptimizer(qOnly, stats.NewRNG(1))
	qs := QueryState{Centroid: qOnly.Default(), Predict: func(sparksim.Config, float64) float64 { return 1 }}
	if _, err := jo2.Optimize(qOnly.Default(), []QueryState{qs}); err == nil {
		t.Fatal("space without app params should error")
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache should miss")
	}
	cfg := sparksim.FullSpace().Default()
	c.Put("a1", cfg, 123)
	c.Put("a1", cfg, 120)
	e, ok := c.Get("a1")
	if !ok || e.Score != 120 || e.Runs != 2 {
		t.Fatalf("cache entry wrong: %+v", e)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	// Stored config must be a copy.
	cfg[0] = -1
	e, _ = c.Get("a1")
	if e.Config[0] == -1 {
		t.Fatal("cache must own its config copy")
	}
}

func TestCacheJSONRoundTrip(t *testing.T) {
	c := NewCache()
	c.Put("a1", sparksim.FullSpace().Default(), 99)
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back := NewCache()
	if err := json.Unmarshal(blob, back); err != nil {
		t.Fatal(err)
	}
	e, ok := back.Get("a1")
	if !ok || e.Score != 99 {
		t.Fatalf("round trip lost entry: %+v", e)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	cfg := sparksim.FullSpace().Default()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Put("shared", cfg, float64(j))
				c.Get("shared")
				c.Len()
			}
		}(i)
	}
	wg.Wait()
	if e, ok := c.Get("shared"); !ok || e.Runs != 1600 {
		t.Fatalf("concurrent puts lost updates: %+v", e)
	}
}
