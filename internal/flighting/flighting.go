// Package flighting implements Rockhopper's offline phase (Section 4.2): the
// "flighting pipeline" that executes open-source benchmark workloads under
// varying Spark configurations to collect training data, the ETL that turns
// execution traces into surrogate training points, and the baseline-model
// samplers used for transfer learning (Figure 12's leave-one-query-out
// protocol).
//
// It also provides the V0 evaluation platform of Section 6.2: a cached
// candidate set of pre-recorded configuration/performance pairs per query, so
// tuning algorithms can be evaluated against recorded results without live
// execution.
package flighting

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// Config is the flighting pipeline's configuration file (Section 4.2): the
// benchmark database, query selection, scaling factor, number of runs, the
// pool (cluster shape), and the configuration-generation algorithm.
type Config struct {
	// Suite is the benchmark database (TPC-DS or TPC-H).
	Suite workloads.Suite `json:"suite"`
	// Queries selects 1-based query numbers; empty means the whole suite.
	Queries []int `json:"queries,omitempty"`
	// ScaleFactor multiplies benchmark table sizes.
	ScaleFactor float64 `json:"scale_factor"`
	// RunsPerQuery is the number of configuration samples per query.
	RunsPerQuery int `json:"runs_per_query"`
	// Algorithm selects configuration generation: "random" (the production
	// setting) or "lhs" (Latin hypercube sampling, the coverage-guaranteeing
	// design from prior work that the paper lists as future work for the
	// pipeline). Empty means random.
	Algorithm string `json:"algorithm"`
	// Seed drives both configuration sampling and simulated noise.
	Seed uint64 `json:"seed"`
	// Noise perturbs recorded times; offline experiments on a quiet pool
	// use low noise.
	Noise noise.Model `json:"noise"`
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Suite != workloads.TPCDS && c.Suite != workloads.TPCH {
		return fmt.Errorf("flighting: unknown suite %q", c.Suite)
	}
	if c.ScaleFactor <= 0 {
		return fmt.Errorf("flighting: scale factor must be positive, got %g", c.ScaleFactor)
	}
	if c.RunsPerQuery <= 0 {
		return fmt.Errorf("flighting: runs per query must be positive, got %d", c.RunsPerQuery)
	}
	if c.Algorithm != "" && c.Algorithm != "random" && c.Algorithm != "lhs" {
		return fmt.Errorf("flighting: unsupported config generation algorithm %q", c.Algorithm)
	}
	for _, q := range c.Queries {
		if q < 1 || q > c.Suite.QueryCount() {
			return fmt.Errorf("flighting: %s has no query %d", c.Suite, q)
		}
	}
	return nil
}

// Trace is one recorded benchmark execution: the event-log row the ETL
// produces (Figure 7's Embedding ETL output).
type Trace struct {
	QueryID   string          `json:"query_id"`
	Embedding []float64       `json:"embedding"`
	Config    sparksim.Config `json:"config"`
	DataSize  float64         `json:"data_size"`
	TimeMs    float64         `json:"time_ms"`
}

// Pipeline executes flighting runs against the simulated engine.
type Pipeline struct {
	Engine   *sparksim.Engine
	Embedder *embedding.Embedder
}

// NewPipeline returns a pipeline with the virtual-operator embedder.
func NewPipeline(e *sparksim.Engine) *Pipeline {
	return &Pipeline{Engine: e, Embedder: embedding.NewVirtual()}
}

// Run executes the configured benchmark sweep and returns the traces.
func (p *Pipeline) Run(cfg Config) ([]Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen := workloads.NewGenerator(cfg.Seed)
	gen.ScaleFactor = cfg.ScaleFactor
	ids := cfg.Queries
	if len(ids) == 0 {
		ids = make([]int, cfg.Suite.QueryCount())
		for i := range ids {
			ids[i] = i + 1
		}
	}
	root := stats.NewRNG(cfg.Seed)
	traces := make([]Trace, 0, len(ids)*cfg.RunsPerQuery)
	for _, idx := range ids {
		q := gen.Query(cfg.Suite, idx)
		emb := p.Embedder.Embed(q.Plan)
		r := root.SplitNamed(q.ID)
		var plan []sparksim.Config
		if cfg.Algorithm == "lhs" {
			plan = p.Engine.Space.LatinHypercube(cfg.RunsPerQuery, r)
		}
		for run := 0; run < cfg.RunsPerQuery; run++ {
			var c sparksim.Config
			if plan != nil {
				c = plan[run]
			} else {
				c = p.Engine.Space.Random(r)
			}
			o := p.Engine.Run(q, c, 1, r, cfg.Noise)
			traces = append(traces, Trace{
				QueryID:   q.ID,
				Embedding: emb,
				Config:    o.Config,
				DataSize:  o.DataSize,
				TimeMs:    o.Time,
			})
		}
	}
	return traces, nil
}

// WriteTraces streams traces as JSON lines, the event-file format the
// backend's storage manager persists.
func WriteTraces(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	for i := range traces {
		if err := enc.Encode(&traces[i]); err != nil {
			return fmt.Errorf("flighting: write trace %d: %w", i, err)
		}
	}
	return nil
}

// ReadTraces parses a JSON-lines trace stream.
func ReadTraces(r io.Reader) ([]Trace, error) {
	dec := json.NewDecoder(r)
	var out []Trace
	for {
		var t Trace
		if err := dec.Decode(&t); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("flighting: read trace %d: %w", len(out), err)
		}
		out = append(out, t)
	}
}

// ToBaseline converts traces into surrogate warm-start points.
func ToBaseline(traces []Trace) []tuners.BaselinePoint {
	out := make([]tuners.BaselinePoint, len(traces))
	for i, t := range traces {
		out[i] = tuners.BaselinePoint{
			Context:  t.Embedding,
			Config:   t.Config,
			DataSize: t.DataSize,
			Time:     t.TimeMs,
		}
	}
	return out
}

// LeaveOneOut samples n baseline points from all traces except those of the
// target query — the transfer-learning protocol of Figure 12 ("trained on
// data sampled from all queries except the optimization target"). n ≤ 0
// keeps everything.
func LeaveOneOut(traces []Trace, excludeQueryID string, n int, r *stats.RNG) []tuners.BaselinePoint {
	var pool []Trace
	for _, t := range traces {
		if t.QueryID != excludeQueryID {
			pool = append(pool, t)
		}
	}
	if n > 0 && n < len(pool) {
		idx := r.Perm(len(pool))[:n]
		sub := make([]Trace, 0, n)
		for _, i := range idx {
			sub = append(sub, pool[i])
		}
		pool = sub
	}
	return ToBaseline(pool)
}

// CachedPlatform is the V0 evaluation platform (Section 6.2): a fixed
// candidate set of pre-recorded configurations with cached performance, used
// for inference without live query execution. Production used over 275
// configuration combinations per query.
type CachedPlatform struct {
	Query   *sparksim.Query
	Configs []sparksim.Config
	// Times are the recorded noiseless execution times at the platform's
	// scale, indexed like Configs.
	Times []float64
	scale float64
}

// NewCachedPlatform records nConfigs random configurations of q.
func NewCachedPlatform(e *sparksim.Engine, q *sparksim.Query, nConfigs int, scale float64, seed uint64) *CachedPlatform {
	r := stats.NewRNG(seed).SplitNamed("v0-" + q.ID)
	cp := &CachedPlatform{Query: q, scale: scale}
	cp.Configs = append(cp.Configs, e.Space.Default())
	for i := 1; i < nConfigs; i++ {
		cp.Configs = append(cp.Configs, e.Space.Random(r))
	}
	cp.Times = make([]float64, len(cp.Configs))
	for i, c := range cp.Configs {
		cp.Times[i] = e.TrueTime(q, c, scale)
	}
	return cp
}

// Lookup snaps an arbitrary configuration to the nearest recorded candidate
// (normalized Euclidean distance) and returns its index and cached time —
// "we restrict the candidate set to these pre-recorded configurations and
// use cached results without live query execution".
func (cp *CachedPlatform) Lookup(space *sparksim.Space, cfg sparksim.Config) (int, float64) {
	u := space.Normalize(cfg)
	bestIdx, bestDist := 0, math.Inf(1)
	for i, c := range cp.Configs {
		v := space.Normalize(c)
		var d float64
		for j := range u {
			dd := u[j] - v[j]
			d += dd * dd
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	return bestIdx, cp.Times[bestIdx]
}

// BestTime returns the minimum cached time (the platform's oracle optimum).
func (cp *CachedPlatform) BestTime() float64 { return stats.Min(cp.Times) }

// Scale returns the data-size scale the platform recorded at.
func (cp *CachedPlatform) Scale() float64 { return cp.scale }
