package flighting

import (
	"bytes"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func pipeline() *Pipeline {
	return NewPipeline(sparksim.NewEngine(sparksim.QuerySpace()))
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{Suite: "oops", ScaleFactor: 1, RunsPerQuery: 1},
		{Suite: workloads.TPCH, ScaleFactor: 0, RunsPerQuery: 1},
		{Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 0},
		{Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 1, Algorithm: "genetic"},
		{Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 1, Queries: []int{23}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	good := Config{Suite: workloads.TPCDS, ScaleFactor: 1, RunsPerQuery: 3, Algorithm: "random", Queries: []int{1, 99}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunProducesTraces(t *testing.T) {
	t.Parallel()
	p := pipeline()
	traces, err := p.Run(Config{
		Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 5,
		Queries: []int{1, 2, 3}, Seed: 7, Noise: noise.Low,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 15 {
		t.Fatalf("traces = %d; want 15", len(traces))
	}
	byQuery := map[string]int{}
	for _, tr := range traces {
		byQuery[tr.QueryID]++
		if tr.TimeMs <= 0 || tr.DataSize <= 0 {
			t.Fatalf("degenerate trace %+v", tr)
		}
		if len(tr.Embedding) != p.Embedder.Dim() {
			t.Fatalf("embedding width %d", len(tr.Embedding))
		}
	}
	for q, n := range byQuery {
		if n != 5 {
			t.Fatalf("query %s has %d runs", q, n)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	t.Parallel()
	cfg := Config{Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 3, Queries: []int{5}, Seed: 11}
	a, err := pipeline().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TimeMs != b[i].TimeMs {
			t.Fatalf("trace %d differs across runs", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	t.Parallel()
	traces, err := pipeline().Run(Config{
		Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 2, Queries: []int{1}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(traces) {
		t.Fatalf("round trip count %d vs %d", len(back), len(traces))
	}
	for i := range back {
		if back[i].QueryID != traces[i].QueryID || back[i].TimeMs != traces[i].TimeMs {
			t.Fatalf("trace %d round trip mismatch", i)
		}
	}
	if _, err := ReadTraces(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("corrupt stream should error")
	}
}

func TestLeaveOneOut(t *testing.T) {
	t.Parallel()
	traces, err := pipeline().Run(Config{
		Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 4, Queries: []int{1, 2, 3}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9)
	pts := LeaveOneOut(traces, "tpch-q2", 6, r)
	if len(pts) != 6 {
		t.Fatalf("sampled %d; want 6", len(pts))
	}
	all := LeaveOneOut(traces, "tpch-q2", 0, r)
	if len(all) != 8 {
		t.Fatalf("exclusion kept %d; want 8", len(all))
	}
	// No point may carry the excluded query's embedding + config pair; we
	// verify via count only since embeddings repeat per query.
	if len(LeaveOneOut(traces, "nonexistent", 0, r)) != 12 {
		t.Fatal("excluding an unknown query should keep everything")
	}
}

func TestToBaseline(t *testing.T) {
	t.Parallel()
	tr := Trace{QueryID: "x", Embedding: []float64{1}, Config: sparksim.Config{2}, DataSize: 3, TimeMs: 4}
	pts := ToBaseline([]Trace{tr})
	if pts[0].Time != 4 || pts[0].DataSize != 3 || pts[0].Context[0] != 1 {
		t.Fatalf("baseline point wrong: %+v", pts[0])
	}
}

func TestCachedPlatform(t *testing.T) {
	t.Parallel()
	e := sparksim.NewEngine(sparksim.QuerySpace())
	q := workloads.NewGenerator(1).Query(workloads.TPCH, 2)
	cp := NewCachedPlatform(e, q, 275, 1, 42)
	if len(cp.Configs) != 275 || len(cp.Times) != 275 {
		t.Fatalf("platform size %d/%d", len(cp.Configs), len(cp.Times))
	}
	// The default config is always recorded, and looking it up must return
	// its exact cached time.
	idx, time := cp.Lookup(e.Space, e.Space.Default())
	if idx != 0 {
		t.Fatalf("default lookup idx = %d", idx)
	}
	if time != e.TrueTime(q, e.Space.Default(), 1) {
		t.Fatal("cached default time mismatch")
	}
	if cp.BestTime() > time {
		t.Fatal("best cached time cannot exceed the default's")
	}
	if cp.Scale() != 1 {
		t.Fatal("scale accessor wrong")
	}
	// Lookup of an arbitrary config returns some recorded candidate.
	r := stats.NewRNG(3)
	for i := 0; i < 20; i++ {
		idx, tm := cp.Lookup(e.Space, e.Space.Random(r))
		if idx < 0 || idx >= 275 || tm != cp.Times[idx] {
			t.Fatal("lookup out of range")
		}
	}
}

func TestLHSAlgorithm(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Suite: workloads.TPCH, ScaleFactor: 1, RunsPerQuery: 10,
		Queries: []int{1}, Seed: 21, Algorithm: "lhs",
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	traces, err := pipeline().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 10 {
		t.Fatalf("traces = %d", len(traces))
	}
	// LHS must hit both halves of every dimension's range with 10 samples.
	space := sparksim.QuerySpace()
	for j := 0; j < space.Dim(); j++ {
		lo, hi := false, false
		for _, tr := range traces {
			if u := space.Normalize(tr.Config)[j]; u < 0.5 {
				lo = true
			} else {
				hi = true
			}
		}
		if !lo || !hi {
			t.Fatalf("dim %d not stratified", j)
		}
	}
}
