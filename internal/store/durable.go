// DurableStore persists the in-memory object store to disk: every mutation
// is appended to a CRC-framed write-ahead log before it is acknowledged,
// and the log is periodically compacted into an atomic snapshot. Opening a
// directory replays snapshot + WAL suffix back to byte-identical state —
// object bytes and creation timestamps included — so an autotuned restart
// keeps every trained model and every retention clock.
//
// Durability contract: a mutation is acknowledged (returns nil) only after
// its WAL record is on disk (fsync unless NoSync). Recovery after a crash
// yields a prefix-consistent state: every acknowledged mutation is present,
// no unacknowledged mutation is, and a torn final record is discarded.
//
// The CrashPoint hooks exist for the recovery test harness: they let tests
// kill the store at the exact filesystem states a real crash could produce
// (before a WAL write, mid-record, before and after the snapshot rename)
// and then prove that reopening the directory recovers correctly.
package store

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// CrashPoint identifies a fault-injection site inside the durability layer.
// The recovery test matrix drives one injected crash per point and asserts
// the reopened store matches the in-memory reference up to the last
// acknowledged mutation.
type CrashPoint int

// The injector's crash sites, in the order an operation reaches them.
const (
	// CrashPreWrite fires before any byte of a WAL record is written: the
	// mutation must be wholly absent after recovery.
	CrashPreWrite CrashPoint = iota
	// CrashMidRecord fires after half of a WAL record reached the disk — a
	// torn write. Recovery must drop the partial record.
	CrashMidRecord
	// CrashPreRename fires after the snapshot temp file is fully written
	// but before the atomic rename: recovery must use the old snapshot
	// plus the intact WAL.
	CrashPreRename
	// CrashPostRename fires after the rename but before the WAL is
	// truncated: recovery must use the new snapshot and skip the stale
	// WAL records it already covers.
	CrashPostRename
)

// String names the crash point for test output.
func (p CrashPoint) String() string {
	switch p {
	case CrashPreWrite:
		return "pre-write"
	case CrashMidRecord:
		return "mid-record"
	case CrashPreRename:
		return "pre-rename"
	case CrashPostRename:
		return "post-rename"
	}
	return fmt.Sprintf("CrashPoint(%d)", int(p))
}

// Errors reported by the durability layer.
var (
	// ErrCrashed marks a store killed by an injected fault or a WAL write
	// failure; it refuses further mutations so no acknowledgement can
	// outrun the log.
	ErrCrashed = errors.New("store: durable store is down")
	// ErrClosed marks a store after Close.
	ErrClosed = errors.New("store: durable store is closed")
)

// DurableOptions parameterizes OpenDurable. The zero value is production
// defaults: real clock, fsync on every append, compaction every
// DefaultCompactEvery records.
type DurableOptions struct {
	// Clock drives creation timestamps, retention sweeps, and the
	// time-based compaction schedule; nil means the wall clock.
	Clock resilience.Clock
	// SnapshotInterval is the cadence MaybeCompact honors; <= 0 disables
	// time-based compaction (record-count compaction still applies).
	SnapshotInterval time.Duration
	// CompactEvery snapshots after this many WAL records; 0 means
	// DefaultCompactEvery, negative disables record-count compaction.
	CompactEvery int
	// NoSync skips the per-record fsync. Tests use it; production should
	// not (an OS crash may then lose acknowledged records).
	NoSync bool
	// Logger receives durability diagnostics; nil silences them.
	Logger *log.Logger
	// Hooks is the crash-point injector: a non-nil error return kills the
	// store at that point, simulating process death. Nil disables
	// injection.
	Hooks func(CrashPoint) error
	// Metrics receives the durability instruments (WAL appends, fsync and
	// snapshot latencies, replayed record counts); nil discards them.
	Metrics *telemetry.Registry
	// OnAppend observes every durably appended WAL frame — the log-shipping
	// tap the fleet replicator hangs off. It is called under the store lock
	// immediately after the frame is on disk; the frame slice (trailing
	// newline included) is only valid for the duration of the call, so the
	// observer must copy it and must not call back into the store. sc is
	// the trace identity of the request that caused the frame (zero for
	// untraced work), so log shipping can carry causal parentage to the
	// followers. Nil disables the tap.
	OnAppend func(seq uint64, frame []byte, sc telemetry.SpanContext)
	// OnDown observes the transition into the latched-down state with its
	// cause — the flight recorder's crash-latch trigger. It is called once,
	// under the store lock (it must not call back into the store), and not
	// on a clean Close. Nil disables it.
	OnDown func(err error)
}

// DefaultCompactEvery is the record-count compaction threshold.
const DefaultCompactEvery = 4096

// DurableStore is an object store with snapshot + WAL persistence. It
// satisfies the backend's ObjectStore interface; reads are served from the
// in-memory image, mutations are logged before they are applied. All
// methods are safe for concurrent use.
type DurableStore struct {
	mem      *Store
	dir      string
	clock    resilience.Clock
	logger   *log.Logger
	hooks    func(CrashPoint) error
	onAppend func(seq uint64, frame []byte, sc telemetry.SpanContext)
	onDown   func(err error)

	// tracer mints the wal_append/wal_fsync spans of the commit path (nil
	// records nothing). Installed by SetTracer before traffic; it shares
	// the daemon's span ring so the WAL work shows up under the request's
	// causal tree at /api/trace.
	tracer *telemetry.Tracer

	interval     time.Duration
	compactEvery int
	noSync       bool

	walAppends      telemetry.Counter
	walReplayed     telemetry.Counter
	fsyncSeconds    telemetry.Histogram
	snapshotSeconds telemetry.Histogram

	mu       sync.Mutex
	wal      *os.File
	seq      uint64 // last sequence number durably assigned
	snapSeq  uint64 // sequence number the on-disk snapshot covers
	walCount int    // records appended since the last snapshot
	lastSnap time.Time
	down     error  // non-nil once the store refuses mutations (crash/close)
	lineBuf  []byte // reusable WAL line buffer (guarded by mu)
}

// OpenDurable opens (creating if needed) the durable store rooted at dir,
// replaying snapshot and WAL back to the last acknowledged state.
func OpenDurable(dir string, secret []byte, opts DurableOptions) (*DurableStore, error) {
	clock := opts.Clock
	if clock == nil {
		clock = resilience.RealClock{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open durable: %w", err)
	}
	mem := New(secret)
	mem.SetClock(clock.Now)
	d := &DurableStore{
		mem:          mem,
		dir:          dir,
		clock:        clock,
		logger:       opts.Logger,
		hooks:        opts.Hooks,
		onAppend:     opts.OnAppend,
		onDown:       opts.OnDown,
		interval:     opts.SnapshotInterval,
		compactEvery: opts.CompactEvery,
		noSync:       opts.NoSync,
	}
	if d.compactEvery == 0 {
		d.compactEvery = DefaultCompactEvery
	}
	// Bind instruments before replay so recovery itself is measured. The
	// nil-registry convention makes these discards when Metrics is unset.
	d.walAppends = opts.Metrics.Counter("rockhopper_wal_appends_total",
		"WAL records durably appended (acknowledged mutations).").With()
	d.walReplayed = opts.Metrics.Counter("rockhopper_wal_replayed_records_total",
		"WAL records replayed on open (crash-recovery work).").With()
	d.fsyncSeconds = opts.Metrics.Histogram("rockhopper_wal_fsync_seconds",
		"Per-record WAL fsync latency in seconds.", nil).With()
	d.snapshotSeconds = opts.Metrics.Histogram("rockhopper_wal_snapshot_seconds",
		"Snapshot (compaction) duration in seconds.", nil).With()
	// A leftover temp file is a snapshot that never committed (pre-rename
	// crash); the live snapshot is still authoritative.
	if err := os.Remove(filepath.Join(dir, snapshotTemp)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: open durable: %w", err)
	}
	if err := d.replay(); err != nil {
		return nil, err
	}
	d.lastSnap = clock.Now()
	return d, nil
}

// replay loads the snapshot, applies the WAL suffix, and truncates the log
// to its valid prefix so future appends extend a clean file.
func (d *DurableStore) replay() error {
	if data, err := os.ReadFile(filepath.Join(d.dir, snapshotFile)); err == nil {
		snap, err := decodeSnapshot(data)
		if err != nil {
			return err
		}
		for _, e := range snap.Entries {
			d.mem.putAt(e.Path, e.Data, time.Unix(0, e.Created))
		}
		d.seq, d.snapSeq = snap.WALSeq, snap.WALSeq
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: read snapshot: %w", err)
	}

	walPath := filepath.Join(d.dir, walFile)
	image, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: read WAL: %w", err)
	}
	recs, lastSeq, validLen, err := scanWAL(image, d.snapSeq)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		d.applyLocked(rec)
	}
	d.seq = lastSeq
	d.walCount = len(recs)
	d.walReplayed.Add(float64(len(recs)))

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open WAL: %w", err)
	}
	if int64(len(image)) > validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
		d.logf("store: recovery dropped %d invalid WAL byte(s) after offset %d", int64(len(image))-validLen, validLen)
	}
	d.wal = f
	return nil
}

func (d *DurableStore) logf(format string, args ...any) {
	if d.logger != nil {
		d.logger.Printf(format, args...)
	}
}

// Err reports why the store refuses mutations: nil while healthy,
// ErrCrashed (wrapped with the cause) after a durability failure,
// ErrClosed after Close. Reads keep working either way.
func (d *DurableStore) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down
}

// SetTracer installs the span tracer for the WAL commit path. Call before
// the store sees traced traffic (the daemon wires the backend's tracer in
// right after constructing both).
func (d *DurableStore) SetTracer(tr *telemetry.Tracer) {
	d.mu.Lock()
	d.tracer = tr
	d.mu.Unlock()
}

// latchLocked records why the store now refuses mutations and fires the
// OnDown observer exactly once. Callers hold d.mu.
func (d *DurableStore) latchLocked(err error) error {
	d.down = err
	if d.onDown != nil {
		fn := d.onDown
		d.onDown = nil
		fn(err)
	}
	return d.down
}

// crashLocked consults the injector at one crash point; a non-nil hook
// error kills the store.
func (d *DurableStore) crashLocked(p CrashPoint) error {
	if d.hooks == nil {
		return nil
	}
	if err := d.hooks(p); err != nil {
		return d.latchLocked(fmt.Errorf("%w: injected crash at %s: %v", ErrCrashed, p, err))
	}
	return nil
}

// appendLocked writes one record to the WAL. On success the record is
// durable and the sequence counter advances; on any failure the store goes
// down, because a half-written log must not accept further appends. sc is
// the causing request's trace identity (zero for untraced work): it parents
// the wal_append/wal_fsync spans and rides the OnAppend tap so log shipping
// stays inside the same causal tree.
func (d *DurableStore) appendLocked(rec walRecord, sc telemetry.SpanContext) error {
	// Render into the store-owned buffer (mu is held): after warmup the
	// append path allocates nothing for framing.
	d.lineBuf = appendWALRecord(d.lineBuf[:0], rec)
	line := d.lineBuf
	if cap(line) > 1<<20 {
		// A huge put (model blob) inflated the buffer; let it go after this
		// write rather than pinning megabytes for the common tiny records.
		d.lineBuf = nil
	}
	sp := d.tracer.StartRemote(sc, "wal_append", "store")
	sp.Annotate("seq %d (%d bytes)", rec.Seq, len(line))
	status := "ok"
	defer func() { sp.Finish(status) }()
	if err := d.crashLocked(CrashPreWrite); err != nil {
		status = "error"
		return err
	}
	if d.hooks != nil {
		if herr := d.hooks(CrashMidRecord); herr != nil {
			// Simulate the torn write: half the frame reaches the disk
			// before the process dies.
			if _, werr := d.wal.Write(line[:len(line)/2]); werr == nil {
				d.wal.Sync()
			}
			status = "error"
			return d.latchLocked(fmt.Errorf("%w: injected crash at %s: %v", ErrCrashed, CrashMidRecord, herr))
		}
	}
	if _, err := d.wal.Write(line); err != nil {
		status = "error"
		return d.latchLocked(fmt.Errorf("%w: WAL append: %v", ErrCrashed, err))
	}
	if !d.noSync {
		fsp := d.tracer.StartRemote(sp.Context(), "wal_fsync", "store")
		start := d.clock.Now()
		if err := d.wal.Sync(); err != nil {
			fsp.Finish("error")
			status = "error"
			return d.latchLocked(fmt.Errorf("%w: WAL sync: %v", ErrCrashed, err))
		}
		d.fsyncSeconds.Observe(d.clock.Now().Sub(start).Seconds())
		fsp.Finish("ok")
	}
	d.seq = rec.Seq
	d.walCount++
	d.walAppends.Inc()
	if d.onAppend != nil {
		d.onAppend(rec.Seq, line, sc)
	}
	return nil
}

// put logs and applies one write under the caller's trace identity.
func (d *DurableStore) put(p string, data []byte, sc telemetry.SpanContext) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.down
	}
	rec := walRecord{Seq: d.seq + 1, Op: opPut, Path: p, Data: data, Created: d.clock.Now().UnixNano()}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	if err := d.appendLocked(rec, sc); err != nil {
		return err
	}
	d.mem.putAt(p, data, time.Unix(0, rec.Created))
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	d.maybeCompactCountLocked()
	return nil
}

// Sign issues a scoped access token; tokens are stateless, so this is the
// in-memory implementation verbatim.
func (d *DurableStore) Sign(prefix string, perm Permission, ttl time.Duration) string {
	return d.mem.Sign(prefix, perm, ttl)
}

// Verify checks a token against a path and permission.
func (d *DurableStore) Verify(tok, p string, perm Permission) error {
	return d.mem.Verify(tok, p, perm)
}

// Put writes an object after verifying the write token. It acknowledges
// only after the mutation is in the WAL.
func (d *DurableStore) Put(tok, p string, data []byte) error {
	if err := d.mem.Verify(tok, p, PermWrite); err != nil {
		return err
	}
	return d.put(p, data, telemetry.SpanContext{})
}

// PutCtx is Put carrying the request's trace identity, so the WAL append
// and fsync surface as child spans of the caller's span.
func (d *DurableStore) PutCtx(ctx context.Context, tok, p string, data []byte) error {
	if err := d.mem.Verify(tok, p, PermWrite); err != nil {
		return err
	}
	return d.put(p, data, telemetry.SpanFrom(ctx))
}

// Get reads an object after verifying the read token.
func (d *DurableStore) Get(tok, p string) ([]byte, error) { return d.mem.Get(tok, p) }

// PutInternal writes without a token. The ObjectStore interface gives it
// no error slot, so a durability failure is logged and latched: Err
// reports it and every later mutation fails fast rather than silently
// diverging from the log.
func (d *DurableStore) PutInternal(p string, data []byte) {
	if err := d.put(p, data, telemetry.SpanContext{}); err != nil {
		d.logf("store: durable PutInternal %s: %v", p, err)
	}
}

// PutInternalCtx is PutInternal carrying the request's trace identity.
func (d *DurableStore) PutInternalCtx(ctx context.Context, p string, data []byte) {
	if err := d.put(p, data, telemetry.SpanFrom(ctx)); err != nil {
		d.logf("store: durable PutInternal %s: %v", p, err)
	}
}

// GetInternal reads without a token.
func (d *DurableStore) GetInternal(p string) ([]byte, error) { return d.mem.GetInternal(p) }

// PutBatch is the group-commit primitive: it logs a whole batch of internal
// writes as ONE WAL record — one append and one fsync no matter how many
// entries — then applies them to the in-memory image. Replay applies the
// record all-or-nothing, so a crash can never surface a partial batch: the
// batched ingest endpoint relies on this for event-file + index atomicity.
func (d *DurableStore) PutBatch(entries []BatchEntry) error {
	return d.putBatch(entries, telemetry.SpanContext{})
}

// PutBatchCtx is PutBatch carrying the request's trace identity: the batch
// ingest's single WAL append + fsync land in the request's causal tree.
func (d *DurableStore) PutBatchCtx(ctx context.Context, entries []BatchEntry) error {
	return d.putBatch(entries, telemetry.SpanFrom(ctx))
}

func (d *DurableStore) putBatch(entries []BatchEntry, sc telemetry.SpanContext) error {
	if len(entries) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.down
	}
	created := d.clock.Now().UnixNano()
	es := make([]snapEntry, len(entries))
	for i, e := range entries {
		if e.Path == "" {
			return fmt.Errorf("store: batch entry %d has an empty path", i)
		}
		es[i] = snapEntry{Path: e.Path, Data: e.Data, Created: created}
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	if err := d.appendLocked(walRecord{Seq: d.seq + 1, Op: opBatch, Entries: es}, sc); err != nil {
		return err
	}
	for _, e := range es {
		d.mem.putAt(e.Path, e.Data, time.Unix(0, e.Created))
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	d.maybeCompactCountLocked()
	return nil
}

// List returns the paths under prefix, sorted.
func (d *DurableStore) List(prefix string) []string { return d.mem.List(prefix) }

// Len returns the number of stored objects.
func (d *DurableStore) Len() int { return d.mem.Len() }

// Delete removes an object; deleting a missing object is logged as a
// mutation all the same, keeping replay a pure function of the log.
func (d *DurableStore) Delete(p string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.down
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	if err := d.appendLocked(walRecord{Seq: d.seq + 1, Op: opDel, Path: p}, telemetry.SpanContext{}); err != nil {
		return err
	}
	d.mem.Delete(p)
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	d.maybeCompactCountLocked()
	return nil
}

// CleanupOlderThan runs the retention sweep (expired event files plus
// orphans of a failed two-phase ingest) and returns how many objects were
// reaped. The whole batch is one WAL record — one append + fsync no matter
// how many files expired, so a large sweep does not stall Put/Delete
// behind a per-file fsync loop — logged before any removal is applied, so
// the sweep is all-or-nothing across a crash.
func (d *DurableStore) CleanupOlderThan(retention time.Duration) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return 0
	}
	reaped := d.mem.expiredEvents(retention)
	if len(reaped) == 0 {
		return 0
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	if err := d.appendLocked(walRecord{Seq: d.seq + 1, Op: opSweep, Paths: reaped}, telemetry.SpanContext{}); err != nil {
		d.logf("store: retention sweep of %d file(s) not logged: %v", len(reaped), err)
		return 0
	}
	for _, p := range reaped {
		d.mem.Delete(p)
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	d.maybeCompactCountLocked()
	return len(reaped)
}

// maybeCompactCountLocked compacts when the WAL has grown past the
// record-count threshold.
func (d *DurableStore) maybeCompactCountLocked() {
	if d.compactEvery <= 0 || d.walCount < d.compactEvery {
		return
	}
	if err := d.compactLocked(); err != nil {
		d.logf("store: compaction failed (WAL keeps growing): %v", err)
	}
}

// MaybeCompact takes a snapshot when SnapshotInterval has elapsed since
// the last one and there is anything to fold in. The daemon calls it from
// its housekeeping ticker.
func (d *DurableStore) MaybeCompact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.down
	}
	if d.interval <= 0 || d.walCount == 0 || d.clock.Now().Sub(d.lastSnap) < d.interval {
		return nil
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	return d.compactLocked()
}

// Compact forces a snapshot now.
func (d *DurableStore) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.down
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	return d.compactLocked()
}

// compactLocked folds the full store state into a new snapshot via
// write-temp + rename, then resets the WAL. A crash before the rename
// leaves the old snapshot + full WAL authoritative; a crash after it
// leaves stale WAL records that replay skips by sequence number — both
// recover to the identical state.
func (d *DurableStore) compactLocked() error {
	started := d.clock.Now()
	snap := snapshot{Version: snapshotVersion, WALSeq: d.seq, Entries: d.mem.export()}
	image, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	tmp := filepath.Join(d.dir, snapshotTemp)
	if err := writeFileSync(tmp, image); err != nil {
		return fmt.Errorf("store: write snapshot temp: %w", err)
	}
	if err := d.crashLocked(CrashPreRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: commit snapshot: %w", err)
	}
	syncDir(d.dir)
	// The snapshot is committed from here on: state-tracking updates must
	// happen even if truncation fails, because replay trusts the rename.
	d.snapSeq = snap.WALSeq
	d.lastSnap = d.clock.Now()
	d.walCount = 0
	d.snapshotSeconds.Observe(d.lastSnap.Sub(started).Seconds())
	if err := d.crashLocked(CrashPostRename); err != nil {
		return err
	}
	if err := d.wal.Truncate(0); err != nil {
		// Safe to continue: replay skips records at or below snapSeq.
		d.logf("store: WAL truncate after snapshot: %v", err)
	}
	return nil
}

// Close takes a final snapshot (the graceful-shutdown flush) and releases
// the WAL handle. The store refuses all mutations afterwards.
func (d *DurableStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	if d.down == nil && d.walCount > 0 {
		//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
		first = d.compactLocked()
	}
	if err := d.wal.Close(); err != nil && first == nil {
		first = err
	}
	if d.down == nil {
		d.down = ErrClosed
	}
	return first
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename survives power loss. Best effort:
// some platforms refuse directory syncs, and the rename itself is already
// atomic with respect to process crashes.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
