package store

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/stats"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// TestPropertyReplayEquivalence is the replay-equivalence property: for a
// random operation trace, three executions — an in-memory reference, a
// durable store that only ever appends to its WAL, and a durable store that
// compacts aggressively mid-trace — must agree on final state, and both
// durable flavors must still agree after an unclean reopen (pure WAL replay
// versus snapshot + WAL-suffix replay). Trials split deterministically from
// per-seed root RNGs, so any failure reproduces from its seed and index.
func TestPropertyReplayEquivalence(t *testing.T) {
	t.Parallel()
	trials := 334
	if testing.Short() {
		trials = 25
	}
	for _, seed := range []uint64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			root := stats.NewRNG(seed)
			for trial := 0; trial < trials; trial++ {
				r := root.SplitIndexed(uint64(trial))
				runEquivalenceTrial(t, r, seed, trial)
				if t.Failed() {
					return
				}
			}
		})
	}
}

func runEquivalenceTrial(t *testing.T, r *stats.RNG, seed uint64, trial int) {
	t.Helper()
	clock := resilience.NewFakeClock(time.Unix(int64(60000+trial), 0))
	ref := New([]byte("k"))
	ref.SetClock(clock.Now)
	walDir, mixDir := t.TempDir(), t.TempDir()
	walOnly := mustOpen(t, walDir, DurableOptions{Clock: clock, CompactEvery: -1})
	mixed := mustOpen(t, mixDir, DurableOptions{Clock: clock, CompactEvery: 3})

	paths := []string{
		EventPath("job-a", 0), EventPath("job-b", 0),
		ModelPath("u1", "sig-1"), ModelPath("u1", "sig-2"),
		ArtifactPath("art", "blob.bin"), AppCachePath,
		"index/u1/sig-1/job-a-000000",
	}
	label := func(op string, i int) string {
		return fmt.Sprintf("seed %d trial %d op %d (%s)", seed, trial, i, op)
	}
	nops := 5 + r.Intn(21)
	for i := 0; i < nops; i++ {
		clock.Advance(time.Duration(1+r.Intn(900)) * time.Second)
		p := paths[r.Intn(len(paths))]
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			data := []byte(fmt.Sprintf("v-%d-%d", i, r.Uint64()))
			for _, err := range []error{walOnly.put(p, data, telemetry.SpanContext{}), mixed.put(p, data, telemetry.SpanContext{})} {
				if err != nil {
					t.Fatalf("%s: %v", label("put", i), err)
				}
			}
			ref.PutInternal(p, data)
		case 6, 7:
			for _, err := range []error{walOnly.Delete(p), mixed.Delete(p)} {
				if err != nil {
					t.Fatalf("%s: %v", label("del", i), err)
				}
			}
			ref.Delete(p)
		case 8:
			ret := time.Duration(1+r.Intn(48)) * time.Hour
			nr, nw, nm := ref.CleanupOlderThan(ret), walOnly.CleanupOlderThan(ret), mixed.CleanupOlderThan(ret)
			if nr != nw || nr != nm {
				t.Fatalf("%s: reaped %d/%d/%d (ref/wal/mixed)", label("sweep", i), nr, nw, nm)
			}
		default:
			if err := mixed.Compact(); err != nil {
				t.Fatalf("%s: %v", label("compact", i), err)
			}
		}
	}
	wantSameState(t, label("final wal-only", nops), ref, walOnly)
	wantSameState(t, label("final mixed", nops), ref, mixed)

	// Unclean reopen: walOnly recovers from a pure log, mixed from a
	// snapshot plus WAL suffix. Both must reconstruct the reference.
	walOnly.abandon()
	mixed.abandon()
	reWAL := mustOpen(t, walDir, DurableOptions{Clock: clock, CompactEvery: -1})
	reMix := mustOpen(t, mixDir, DurableOptions{Clock: clock, CompactEvery: 3})
	wantSameState(t, label("reopen wal-only", nops), ref, reWAL)
	wantSameState(t, label("reopen mixed", nops), ref, reMix)

	// The recovered stores must keep accepting and agreeing on mutations.
	clock.Advance(time.Minute)
	post := []byte(fmt.Sprintf("post-%d-%d", seed, trial))
	for _, err := range []error{reWAL.put(paths[0], post, telemetry.SpanContext{}), reMix.put(paths[0], post, telemetry.SpanContext{})} {
		if err != nil {
			t.Fatalf("%s: %v", label("post-reopen put", nops), err)
		}
	}
	ref.PutInternal(paths[0], post)
	if !reflect.DeepEqual(exportOf(reWAL), exportOf(reMix)) {
		t.Fatalf("%s: recovered stores diverged from each other", label("post-reopen", nops))
	}
	wantSameState(t, label("post-reopen", nops), ref, reWAL)
	if err := reWAL.Close(); err != nil {
		t.Fatal(err)
	}
	if err := reMix.Close(); err != nil {
		t.Fatal(err)
	}
}
