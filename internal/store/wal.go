// Write-ahead log encoding for the durable store. Every mutation is one
// framed JSONL record:
//
//	<8 lowercase hex digits: IEEE CRC32 of payload> <payload JSON>\n
//
// Records carry a strictly increasing sequence number, so replay can both
// detect corruption (CRC, framing, sequence gaps) and skip records already
// covered by a snapshot. Recovery keeps the longest valid prefix: the
// first torn, corrupt, or out-of-sequence record ends replay, and
// everything after it — valid-looking or not — is discarded, because a
// record is only trustworthy if every record before it is. One exception
// is not recoverable: a log whose FIRST record skips past the snapshot has
// lost acknowledged history from the head, which no crash produces, and
// opening fails with ErrWALGap instead of truncating the evidence.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"

	"github.com/rockhopper-db/rockhopper/internal/jsonz"
)

// WAL operation codes.
const (
	opPut   = "put"
	opDel   = "del"
	opSweep = "sweep"
	opBatch = "batch"
)

// ErrWALGap marks a log whose first record skips past the snapshot's
// sequence number: acknowledged mutations are missing, so the store refuses
// to open rather than silently discarding the evidence of the loss.
var ErrWALGap = errors.New("store: WAL begins past the snapshot sequence (acknowledged records lost)")

// walRecord is one durable mutation.
type walRecord struct {
	// Seq is the strictly increasing record number.
	Seq uint64 `json:"seq"`
	// Op is opPut, opDel, opSweep, or opBatch.
	Op string `json:"op"`
	// Path is the object path a put or del targets.
	Path string `json:"path,omitempty"`
	// Paths is the batch of paths one retention sweep reaps — a single
	// record (one append + fsync) no matter how many files expired.
	Paths []string `json:"paths,omitempty"`
	// Data is the put payload (base64 on the wire via encoding/json).
	Data []byte `json:"data,omitempty"`
	// Created is the put's creation timestamp, Unix nanoseconds, so replay
	// reconstructs retention state exactly.
	Created int64 `json:"created,omitempty"`
	// Entries is the group commit one batch op applies — many object writes
	// behind a single record (one append + fsync), and atomically on replay:
	// either the whole batch survives a crash or none of it does.
	Entries []snapEntry `json:"entries,omitempty"`
}

// snapEntry is one object in a snapshot; it shares the walRecord field
// conventions.
type snapEntry struct {
	Path    string `json:"path"`
	Data    []byte `json:"data,omitempty"`
	Created int64  `json:"created"`
}

// frame wraps a payload in the CRC32 line format.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = fmt.Appendf(out, "%08x ", crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return append(out, '\n')
}

// unframe validates one line (without its trailing newline) and returns the
// payload.
func unframe(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("store: malformed frame of %d bytes", len(line))
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("store: malformed frame checksum: %v", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return nil, fmt.Errorf("store: frame checksum mismatch: %08x != %08x", got, want)
	}
	return payload, nil
}

// encodeWALRecord renders one record as a framed line.
func encodeWALRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode WAL record: %w", err)
	}
	return frame(payload), nil
}

// appendWALRecord appends rec as a framed line to dst, byte-identical to
// encodeWALRecord but without allocating beyond dst's growth: the payload is
// rendered in place after a reserved checksum prefix, then the CRC is
// written back into it. Record fields (strings, integers, byte blobs) have
// no failure mode, so unlike the json.Marshal path there is no error to
// return. The append/fsync hot path passes a store-owned reusable buffer.
func appendWALRecord(dst []byte, rec walRecord) []byte {
	head := len(dst)
	dst = append(dst, "00000000 "...)
	body := len(dst)
	dst = append(dst, `{"seq":`...)
	dst = jsonz.AppendUint(dst, rec.Seq)
	dst = append(dst, `,"op":`...)
	dst = jsonz.AppendString(dst, rec.Op)
	if rec.Path != "" {
		dst = append(dst, `,"path":`...)
		dst = jsonz.AppendString(dst, rec.Path)
	}
	if len(rec.Paths) > 0 {
		dst = append(dst, `,"paths":[`...)
		for i, p := range rec.Paths {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonz.AppendString(dst, p)
		}
		dst = append(dst, ']')
	}
	if len(rec.Data) > 0 {
		dst = append(dst, `,"data":`...)
		dst = jsonz.AppendBase64(dst, rec.Data)
	}
	if rec.Created != 0 {
		dst = append(dst, `,"created":`...)
		dst = jsonz.AppendInt(dst, rec.Created)
	}
	if len(rec.Entries) > 0 {
		dst = append(dst, `,"entries":[`...)
		for i, e := range rec.Entries {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"path":`...)
			dst = jsonz.AppendString(dst, e.Path)
			if len(e.Data) > 0 {
				dst = append(dst, `,"data":`...)
				dst = jsonz.AppendBase64(dst, e.Data)
			}
			// snapEntry's created has no omitempty: always emitted.
			dst = append(dst, `,"created":`...)
			dst = jsonz.AppendInt(dst, e.Created)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}')
	sum := crc32.ChecksumIEEE(dst[body:])
	const hexDigits = "0123456789abcdef"
	for i := 7; i >= 0; i-- {
		dst[head+i] = hexDigits[sum&0xF]
		sum >>= 4
	}
	return append(dst, '\n')
}

// decodeWALRecord parses and validates one framed line (without newline).
func decodeWALRecord(line []byte) (walRecord, error) {
	payload, err := unframe(line)
	if err != nil {
		return walRecord{}, err
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, fmt.Errorf("store: decode WAL record: %v", err)
	}
	if rec.Seq == 0 || !validWALOp(rec) {
		return walRecord{}, fmt.Errorf("store: invalid WAL record seq=%d op=%q path=%q", rec.Seq, rec.Op, rec.Path)
	}
	return rec, nil
}

// validWALOp checks the op-specific shape of a decoded record: puts and
// dels target exactly one path, sweeps carry a non-empty path batch, and
// group commits carry a non-empty entry batch with per-entry paths.
func validWALOp(rec walRecord) bool {
	switch rec.Op {
	case opPut, opDel:
		return rec.Path != ""
	case opSweep:
		return rec.Path == "" && len(rec.Paths) > 0
	case opBatch:
		if rec.Path != "" || len(rec.Paths) > 0 || len(rec.Entries) == 0 {
			return false
		}
		for _, e := range rec.Entries {
			if e.Path == "" {
				return false
			}
		}
		return true
	}
	return false
}

// scanWAL decodes the longest valid prefix of a WAL image. afterSeq is the
// sequence number the on-disk snapshot already covers: records at or below
// it are scanned (they must still frame and chain correctly) but not
// returned. validLen is the byte length of the valid prefix — the caller
// truncates the log there so new appends extend a clean file.
//
// A log whose first record skips past afterSeq+1 has lost acknowledged
// mutations; that is not crash damage (a crash tears the TAIL) and no
// automatic recovery is safe, so the scan fails with ErrWALGap — the
// caller refuses to open rather than truncating away the evidence.
func scanWAL(data []byte, afterSeq uint64) (applied []walRecord, lastSeq uint64, validLen int64, err error) {
	lastSeq = afterSeq
	var prev uint64
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the final write never completed
		}
		rec, derr := decodeWALRecord(data[off : off+nl])
		if derr != nil {
			break // corruption: drop this record and everything after it
		}
		if prev == 0 {
			if rec.Seq > afterSeq+1 {
				return nil, afterSeq, 0, fmt.Errorf("%w: first record seq=%d, snapshot covers seq=%d", ErrWALGap, rec.Seq, afterSeq)
			}
		} else if rec.Seq != prev+1 {
			break // sequence break: the suffix is not a continuation
		}
		prev = rec.Seq
		off += nl + 1
		validLen = int64(off)
		if rec.Seq <= afterSeq {
			continue // already folded into the snapshot
		}
		applied = append(applied, rec)
		lastSeq = rec.Seq
	}
	return applied, lastSeq, validLen, nil
}
