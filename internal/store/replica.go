// Replication surface of the durable store. A shard owner ships every WAL
// frame, verbatim, to follower stores; a follower applies frames through
// ApplyReplicated, which enforces the same strict sequence continuity the
// recovery scan does. Because frames are shipped byte-for-byte — CRC prefix
// and creation timestamps included — the follower's applied record stream
// is identical to the owner's log, and its replayed state is byte-identical
// to the owner's durable state at the same sequence number.
//
// Catch-up uses the snapshot format: a follower that detects a sequence gap
// (it was down, or the owner's shipping buffer overflowed) installs a full
// SnapshotImage from the owner and resumes frame application from the
// snapshot's sequence number. On promote, the surviving node absorbs the
// follower store's Export into its own primary via PutBatchAt, which
// preserves creation timestamps so retention clocks survive failover.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// ErrReplicaGap marks a replicated frame batch that skips past the
// follower's next expected sequence number. The follower cannot apply it —
// records in between are missing — and must catch up from a snapshot.
var ErrReplicaGap = errors.New("store: replicated frames skip past the next expected sequence")

// Entry is one exported object: the public shape of a snapshot entry, used
// by the fleet layer to ship and absorb store state across nodes.
type Entry struct {
	// Path is the object path.
	Path string
	// Data is the object payload.
	Data []byte
	// Created is the object's creation timestamp; preserving it across
	// replication and promote keeps retention behavior identical on every
	// replica.
	Created time.Time
}

// Seq returns the last durably applied WAL sequence number.
func (d *DurableStore) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Export returns a deep copy of the full store state, sorted by path. Two
// stores are byte-identical exactly when their Exports are equal.
func (d *DurableStore) Export() []Entry {
	es := d.mem.export()
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = Entry{Path: e.Path, Data: e.Data, Created: time.Unix(0, e.Created)}
	}
	return out
}

// ApplyReplicated appends a batch of verbatim WAL frames shipped from a
// shard owner and applies them to the in-memory image. Frames are newline-
// terminated lines in the owner's on-disk format; they are validated (CRC,
// shape, sequence) before a single byte reaches the follower's log.
//
// Continuity rules mirror recovery: frames at or below the current sequence
// are skipped (idempotent redelivery), the first frame above it must be
// exactly seq+1 — otherwise nothing is applied and ErrReplicaGap is
// returned so the caller can fall back to snapshot catch-up — and the
// accepted run must chain without gaps. The whole accepted run is written
// with one Write and one fsync, amortizing the way group commit does.
//
// The returned sequence is the follower's post-apply sequence number; it is
// valid even when an error is returned.
func (d *DurableStore) ApplyReplicated(frames []byte) (uint64, error) {
	return d.applyReplicated(frames, telemetry.SpanContext{})
}

// ApplyReplicatedCtx is ApplyReplicated carrying the shipping request's
// trace identity, so the follower's apply + fsync surface as child spans of
// the owner's replicate span in the cross-node tree.
func (d *DurableStore) ApplyReplicatedCtx(ctx context.Context, frames []byte) (uint64, error) {
	return d.applyReplicated(frames, telemetry.SpanFrom(ctx))
}

func (d *DurableStore) applyReplicated(frames []byte, sc telemetry.SpanContext) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.seq, d.down
	}
	var (
		accepted []walRecord
		buf      []byte
	)
	off := 0
	for off < len(frames) {
		nl := bytes.IndexByte(frames[off:], '\n')
		if nl < 0 {
			return d.seq, fmt.Errorf("store: replicated frame batch has a torn tail at offset %d", off)
		}
		line := frames[off : off+nl]
		rec, err := decodeWALRecord(line)
		if err != nil {
			return d.seq, fmt.Errorf("store: replicated frame at offset %d: %w", off, err)
		}
		next := d.seq + uint64(len(accepted)) + 1
		switch {
		case rec.Seq <= d.seq:
			// Redelivered prefix: already durable here, skip silently.
		case rec.Seq == next:
			accepted = append(accepted, rec)
			buf = append(buf, frames[off:off+nl+1]...)
		default:
			return d.seq, fmt.Errorf("%w: got seq=%d, want seq=%d", ErrReplicaGap, rec.Seq, next)
		}
		off += nl + 1
	}
	if len(accepted) == 0 {
		return d.seq, nil
	}
	sp := d.tracer.StartRemote(sc, "replica_apply", "store")
	sp.Annotate("%d frame(s) through seq %d", len(accepted), accepted[len(accepted)-1].Seq)
	status := "ok"
	defer func() { sp.Finish(status) }()
	if _, err := d.wal.Write(buf); err != nil {
		status = "error"
		return d.seq, d.latchLocked(fmt.Errorf("%w: replicated WAL append: %v", ErrCrashed, err))
	}
	if !d.noSync {
		fsp := d.tracer.StartRemote(sp.Context(), "wal_fsync", "store")
		start := d.clock.Now()
		//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
		if err := d.wal.Sync(); err != nil {
			fsp.Finish("error")
			status = "error"
			return d.seq, d.latchLocked(fmt.Errorf("%w: replicated WAL sync: %v", ErrCrashed, err))
		}
		d.fsyncSeconds.Observe(d.clock.Now().Sub(start).Seconds())
		fsp.Finish("ok")
	}
	for _, rec := range accepted {
		d.applyLocked(rec)
	}
	d.seq = accepted[len(accepted)-1].Seq
	d.walCount += len(accepted)
	d.walAppends.Add(float64(len(accepted)))
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	d.maybeCompactCountLocked()
	return d.seq, nil
}

// applyLocked applies one decoded WAL record to the in-memory image — the
// shared interpretation used by recovery replay and follower apply.
func (d *DurableStore) applyLocked(rec walRecord) {
	switch rec.Op {
	case opPut:
		d.mem.putAt(rec.Path, rec.Data, time.Unix(0, rec.Created))
	case opDel:
		d.mem.Delete(rec.Path)
	case opSweep:
		for _, p := range rec.Paths {
			d.mem.Delete(p)
		}
	case opBatch:
		for _, e := range rec.Entries {
			d.mem.putAt(e.Path, e.Data, time.Unix(0, e.Created))
		}
	}
}

// SnapshotImage renders the full store state as a snapshot image in the
// on-disk format, without touching the disk, plus the sequence number it
// covers. Owners serve it to followers that fell behind the frame stream.
func (d *DurableStore) SnapshotImage() ([]byte, uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return nil, d.seq, d.down
	}
	image, err := encodeSnapshot(snapshot{Version: snapshotVersion, WALSeq: d.seq, Entries: d.mem.export()})
	if err != nil {
		return nil, d.seq, err
	}
	return image, d.seq, nil
}

// InstallSnapshot replaces the store's entire state with a shipped snapshot
// image — the follower catch-up path after a sequence gap. The image is
// committed with the same temp + rename + dir-sync discipline compaction
// uses, then the WAL is reset so subsequent replicated frames extend a
// clean log. Installing an image older than the current state is refused:
// replication never rewinds acknowledged history.
func (d *DurableStore) InstallSnapshot(image []byte) (uint64, error) {
	snap, err := decodeSnapshot(image)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.seq, d.down
	}
	if snap.WALSeq < d.seq {
		return d.seq, fmt.Errorf("store: refusing snapshot rewind from seq=%d to seq=%d", d.seq, snap.WALSeq)
	}
	tmp := filepath.Join(d.dir, snapshotTemp)
	//rocklint:allow deadlockcycle -- snapshot install under d.mu IS the catch-up serialization point: the follower may not apply frames while the image is half-written, so the sync blocks by design
	if err := writeFileSync(tmp, image); err != nil {
		return d.seq, fmt.Errorf("store: write shipped snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFile)); err != nil {
		return d.seq, fmt.Errorf("store: commit shipped snapshot: %w", err)
	}
	//rocklint:allow deadlockcycle -- snapshot install under d.mu IS the catch-up serialization point: the follower may not apply frames while the image is half-written, so the sync blocks by design
	syncDir(d.dir)
	d.mem.resetTo(snap.Entries)
	d.seq, d.snapSeq = snap.WALSeq, snap.WALSeq
	d.walCount = 0
	d.lastSnap = d.clock.Now()
	if err := d.wal.Truncate(0); err != nil {
		// Safe to continue: replay skips records at or below snapSeq.
		d.logf("store: WAL truncate after shipped snapshot: %v", err)
	}
	return d.seq, nil
}

// PutBatchAt is PutBatch with caller-supplied creation timestamps: one WAL
// record, one fsync, timestamps preserved. The promote path uses it to
// absorb a follower store's Export into the survivor's primary without
// resetting retention clocks; re-absorbing the same entries is idempotent.
func (d *DurableStore) PutBatchAt(entries []Entry) error {
	return d.putBatchAt(entries, telemetry.SpanContext{})
}

// PutBatchAtCtx is PutBatchAt carrying the caller's trace identity — the
// promote path passes its promote_replay root span so each absorb chunk's
// WAL append lands in the promotion's causal tree.
func (d *DurableStore) PutBatchAtCtx(ctx context.Context, entries []Entry) error {
	return d.putBatchAt(entries, telemetry.SpanFrom(ctx))
}

func (d *DurableStore) putBatchAt(entries []Entry, sc telemetry.SpanContext) error {
	if len(entries) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down != nil {
		return d.down
	}
	es := make([]snapEntry, len(entries))
	for i, e := range entries {
		if e.Path == "" {
			return fmt.Errorf("store: batch entry %d has an empty path", i)
		}
		es[i] = snapEntry{Path: e.Path, Data: e.Data, Created: e.Created.UnixNano()}
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	if err := d.appendLocked(walRecord{Seq: d.seq + 1, Op: opBatch, Entries: es}, sc); err != nil {
		return err
	}
	for _, e := range es {
		d.mem.putAt(e.Path, e.Data, time.Unix(0, e.Created))
	}
	//rocklint:allow deadlockcycle -- fsync-before-ack under d.mu IS the §7 WAL serialization point: the ack may not outrun the disk, so the write path blocks by design
	d.maybeCompactCountLocked()
	return nil
}

// resetTo replaces the in-memory object set with the given entries — the
// apply side of InstallSnapshot.
func (s *Store) resetTo(entries []snapEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[string]object, len(entries))
	for _, e := range entries {
		s.objects[e.Path] = object{data: append([]byte(nil), e.Data...), created: time.Unix(0, e.Created)}
	}
}
