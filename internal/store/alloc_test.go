package store

import (
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/testutil"
)

// TestAppendWALRecordAllocFree pins the WAL framing hot path to zero
// allocations once the line buffer has grown: every fsynced mutation pays
// encode cost, so regressions here tax the whole durability path. Skipped
// under -race (detector instrumentation allocates).
func TestAppendWALRecordAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	put := walRecord{Seq: 9, Op: opPut, Path: "models/sig-17.gob", Data: make([]byte, 256), Created: 171717}
	del := walRecord{Seq: 10, Op: opDel, Path: "models/sig-17.gob"}
	buf := make([]byte, 0, 1024)
	var sink int
	if n := testing.AllocsPerRun(1000, func() {
		b := appendWALRecord(buf[:0], put)
		b = appendWALRecord(b, del)
		sink += len(b)
	}); n != 0 {
		t.Fatalf("appendWALRecord allocates %v times per put+del pair; budget is 0", n)
	}
	if sink == 0 {
		t.Fatal("framing produced no bytes")
	}
}
