package store

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/stats"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// frameTap collects OnAppend frames the way the fleet replicator does:
// copied immediately, in order.
type frameTap struct {
	frames [][]byte
}

func (ft *frameTap) observe(seq uint64, frame []byte, sc telemetry.SpanContext) {
	ft.frames = append(ft.frames, append([]byte(nil), frame...))
}

// batch concatenates a run of captured frames into one shippable payload.
func (ft *frameTap) batch(from, to int) []byte {
	var out []byte
	for _, f := range ft.frames[from:to] {
		out = append(out, f...)
	}
	return out
}

// wantExportsEqual asserts two durable stores hold byte-identical state via
// the exported replication surface.
func wantExportsEqual(t *testing.T, label string, owner, follower *DurableStore) {
	t.Helper()
	if a, b := owner.Export(), follower.Export(); !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: exports diverge:\n owner=%+v\n follower=%+v", label, a, b)
	}
}

func TestReplicaApplyFramesAndRedelivery(t *testing.T) {
	t.Parallel()
	clock := resilience.NewFakeClock(time.Unix(70000, 0))
	tap := &frameTap{}
	owner := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1, OnAppend: tap.observe})
	follower := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1})
	defer owner.Close()
	defer follower.Close()

	owner.PutInternal(ModelPath("u", "s1"), []byte("m1"))
	clock.Advance(time.Second)
	owner.PutInternal(EventPath("j", 0), []byte("e0"))
	if err := owner.Delete(EventPath("j", 0)); err != nil {
		t.Fatal(err)
	}
	if len(tap.frames) != 3 {
		t.Fatalf("captured %d frames, want 3", len(tap.frames))
	}

	seq, err := follower.ApplyReplicated(tap.batch(0, 2))
	if err != nil || seq != 2 {
		t.Fatalf("apply [0,2): seq=%d err=%v", seq, err)
	}
	// Redelivered prefix plus the new suffix: dups are skipped, tail applies.
	seq, err = follower.ApplyReplicated(tap.batch(0, 3))
	if err != nil || seq != 3 {
		t.Fatalf("apply redelivered [0,3): seq=%d err=%v", seq, err)
	}
	wantExportsEqual(t, "after redelivery", owner, follower)
	if got := follower.Seq(); got != owner.Seq() {
		t.Fatalf("follower seq %d, owner seq %d", got, owner.Seq())
	}
}

func TestReplicaGapDetectedAndSnapshotCatchUp(t *testing.T) {
	t.Parallel()
	clock := resilience.NewFakeClock(time.Unix(70100, 0))
	tap := &frameTap{}
	owner := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1, OnAppend: tap.observe})
	followerDir := t.TempDir()
	follower := mustOpen(t, followerDir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer owner.Close()

	for i := 0; i < 6; i++ {
		clock.Advance(time.Second)
		owner.PutInternal(EventPath("j", i), []byte(fmt.Sprintf("e%d", i)))
	}
	// Ship only the tail: the follower must refuse it, nothing applied.
	if seq, err := follower.ApplyReplicated(tap.batch(4, 6)); !errors.Is(err, ErrReplicaGap) || seq != 0 {
		t.Fatalf("gap apply: seq=%d err=%v, want seq=0 ErrReplicaGap", seq, err)
	}
	if follower.Len() != 0 {
		t.Fatalf("gap apply leaked %d object(s) into the follower", follower.Len())
	}

	image, snapSeq, err := owner.SnapshotImage()
	if err != nil || snapSeq != 6 {
		t.Fatalf("snapshot image: seq=%d err=%v", snapSeq, err)
	}
	if seq, err := follower.InstallSnapshot(image); err != nil || seq != 6 {
		t.Fatalf("install snapshot: seq=%d err=%v", seq, err)
	}
	wantExportsEqual(t, "after catch-up", owner, follower)

	// Frame shipping resumes from the snapshot's sequence number.
	clock.Advance(time.Second)
	owner.PutInternal(ModelPath("u", "s"), []byte("post-snap"))
	if seq, err := follower.ApplyReplicated(tap.batch(6, 7)); err != nil || seq != 7 {
		t.Fatalf("post-snapshot apply: seq=%d err=%v", seq, err)
	}
	wantExportsEqual(t, "post-snapshot", owner, follower)

	// The installed snapshot plus applied frames survive an unclean reopen.
	follower.abandon()
	re := mustOpen(t, followerDir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	wantExportsEqual(t, "follower reopen", owner, re)
}

func TestReplicaSnapshotRewindRefused(t *testing.T) {
	t.Parallel()
	clock := resilience.NewFakeClock(time.Unix(70200, 0))
	d := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1})
	defer d.Close()
	d.PutInternal("a", []byte("1"))
	stale, _, err := d.SnapshotImage()
	if err != nil {
		t.Fatal(err)
	}
	d.PutInternal("b", []byte("2"))
	if _, err := d.InstallSnapshot(stale); err == nil {
		t.Fatal("installing a stale snapshot succeeded; replication must never rewind")
	}
	if _, err := d.GetInternal("b"); err != nil {
		t.Fatalf("state damaged by refused rewind: %v", err)
	}
}

func TestPutBatchAtPreservesTimestampsIdempotently(t *testing.T) {
	t.Parallel()
	clock := resilience.NewFakeClock(time.Unix(70300, 0))
	src := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1})
	dst := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1})
	defer src.Close()
	defer dst.Close()

	src.PutInternal(EventPath("j", 0), []byte("old"))
	clock.Advance(48 * time.Hour)
	src.PutInternal(ModelPath("u", "s"), []byte("new"))

	for range [2]int{} { // absorbing twice must be a no-op the second time
		if err := dst.PutBatchAt(src.Export()); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := src.Export(), dst.Export(); !reflect.DeepEqual(a, b) {
		t.Fatalf("absorbed state diverges:\n src=%+v\n dst=%+v", a, b)
	}
	// The preserved timestamp keeps retention behavior identical: the old
	// event is already past a 24h window on both stores.
	if n := dst.CleanupOlderThan(24 * time.Hour); n != 1 {
		t.Fatalf("retention on absorbed store reaped %d, want 1", n)
	}
}

// TestPropertyTwoNodeReplicationEquivalence extends the PR 4
// replay-equivalence property to a two-node topology: an owner executes a
// random mutation trace while log-shipping frames (in randomly sized
// batches, with random redelivery and random follower outages that force
// snapshot catch-up) to a follower. After the trace the follower must hold
// byte-identical state; after the owner dies and the follower reopens
// uncleanly — the promote path — the follower's replayed state must still
// be byte-identical to the dead owner's durable state.
func TestPropertyTwoNodeReplicationEquivalence(t *testing.T) {
	t.Parallel()
	trials := 120
	if testing.Short() {
		trials = 15
	}
	for _, seed := range []uint64{404, 505} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			root := stats.NewRNG(seed)
			for trial := 0; trial < trials; trial++ {
				r := root.SplitIndexed(uint64(trial))
				runTwoNodeTrial(t, r, seed, trial)
				if t.Failed() {
					return
				}
			}
		})
	}
}

func runTwoNodeTrial(t *testing.T, r *stats.RNG, seed uint64, trial int) {
	t.Helper()
	clock := resilience.NewFakeClock(time.Unix(int64(80000+trial), 0))
	tap := &frameTap{}
	ownerDir, followerDir := t.TempDir(), t.TempDir()
	owner := mustOpen(t, ownerDir, DurableOptions{Clock: clock, CompactEvery: 5, OnAppend: tap.observe})
	follower := mustOpen(t, followerDir, DurableOptions{Clock: clock, CompactEvery: 7})

	label := func(step string) string {
		return fmt.Sprintf("seed %d trial %d: %s", seed, trial, step)
	}
	paths := []string{
		EventPath("job-a", 0), EventPath("job-b", 1),
		ModelPath("u1", "sig-1"), ModelPath("u2", "sig-2"),
		ArtifactPath("art", "blob.bin"),
	}
	shipped := 0 // frames delivered to the follower so far
	ship := func(to int) {
		t.Helper()
		if to <= shipped {
			return
		}
		from := shipped
		if r.Intn(4) == 0 && from > 0 {
			from-- // redeliver the previous frame: dup-skip must hold
		}
		seq, err := follower.ApplyReplicated(tap.batch(from, to))
		if errors.Is(err, ErrReplicaGap) {
			image, _, serr := owner.SnapshotImage()
			if serr != nil {
				t.Fatalf("%s: %v", label("snapshot image"), serr)
			}
			if _, serr := follower.InstallSnapshot(image); serr != nil {
				t.Fatalf("%s: %v", label("install snapshot"), serr)
			}
			shipped = len(tap.frames) // snapshot covers every captured frame
			return
		}
		if err != nil {
			t.Fatalf("%s: seq=%d err=%v", label("apply"), seq, err)
		}
		shipped = to
	}

	nops := 6 + r.Intn(24)
	for i := 0; i < nops; i++ {
		clock.Advance(time.Duration(1+r.Intn(600)) * time.Second)
		p := paths[r.Intn(len(paths))]
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			if err := owner.put(p, []byte(fmt.Sprintf("v-%d-%d", i, r.Uint64())), telemetry.SpanContext{}); err != nil {
				t.Fatalf("%s: %v", label("put"), err)
			}
		case 6:
			if err := owner.Delete(p); err != nil {
				t.Fatalf("%s: %v", label("del"), err)
			}
		case 7:
			owner.CleanupOlderThan(time.Duration(1+r.Intn(12)) * time.Hour)
		case 8:
			// Follower outage: a run of frames is lost in flight. The next
			// delivery must detect the gap and trigger snapshot catch-up.
			if len(tap.frames) > shipped {
				shipped = len(tap.frames)
			}
		default:
			if err := owner.Compact(); err != nil {
				t.Fatalf("%s: %v", label("compact"), err)
			}
		}
		if r.Intn(3) == 0 {
			ship(len(tap.frames))
		}
	}
	ship(len(tap.frames))
	// An outage on the final op can leave the follower behind with no
	// delivery left to expose the gap; the drain below is the catch-up.
	if follower.Seq() != owner.Seq() {
		image, _, err := owner.SnapshotImage()
		if err != nil {
			t.Fatalf("%s: %v", label("final snapshot"), err)
		}
		if _, err := follower.InstallSnapshot(image); err != nil {
			t.Fatalf("%s: %v", label("final install"), err)
		}
	}
	wantExportsEqual(t, label("synced"), owner, follower)

	// Owner dies; follower reopens uncleanly (the promote path) and must
	// replay to state byte-identical to the dead owner's durable state.
	owner.abandon()
	follower.abandon()
	deadOwner := mustOpen(t, ownerDir, DurableOptions{Clock: clock, CompactEvery: -1})
	promoted := mustOpen(t, followerDir, DurableOptions{Clock: clock, CompactEvery: -1})
	wantExportsEqual(t, label("promoted"), deadOwner, promoted)

	// The promoted store absorbs into a fresh survivor via PutBatchAt; the
	// survivor must agree byte-for-byte, timestamps included.
	survivor := mustOpen(t, t.TempDir(), DurableOptions{Clock: clock, CompactEvery: -1})
	export := promoted.Export()
	for len(export) > 0 {
		n := 3
		if n > len(export) {
			n = len(export)
		}
		if err := survivor.PutBatchAt(export[:n]); err != nil {
			t.Fatalf("%s: %v", label("absorb"), err)
		}
		export = export[n:]
	}
	wantExportsEqual(t, label("absorbed"), promoted, survivor)
	for _, d := range []*DurableStore{deadOwner, promoted, survivor} {
		if err := d.Close(); err != nil {
			t.Fatalf("%s: %v", label("close"), err)
		}
	}
}
