package store

import (
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// TestDurableStoreMetrics walks a put/delete/compact/replay cycle and checks
// every durability instrument against an isolated registry: WAL appends,
// fsync latency observations, snapshot duration, and replayed record counts.
func TestDurableStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	d, err := OpenDurable(dir, []byte("k"), DurableOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	d.PutInternal("models/u/a.model", []byte("alpha"))
	d.PutInternal("models/u/b.model", []byte("beta"))
	if err := d.Delete("models/u/a.model"); err != nil {
		t.Fatal(err)
	}

	appends := reg.Counter("rockhopper_wal_appends_total", "").With()
	if got := appends.Value(); got != 3 {
		t.Errorf("wal appends = %v, want 3 (2 puts + 1 delete)", got)
	}
	fsyncs := reg.Histogram("rockhopper_wal_fsync_seconds", "", nil).With()
	if got := fsyncs.Count(); got != 3 {
		t.Errorf("fsync observations = %v, want 3 (one per acknowledged record)", got)
	}

	snaps := reg.Histogram("rockhopper_wal_snapshot_seconds", "", nil).With()
	if got := snaps.Count(); got != 0 {
		t.Fatalf("snapshot observations before Compact = %v, want 0", got)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := snaps.Count(); got != 1 {
		t.Errorf("snapshot observations = %v, want 1", got)
	}

	// One record past the snapshot, then an unclean exit: reopening must
	// replay exactly that suffix — and count it on the new registry.
	d.PutInternal("models/u/c.model", []byte("gamma"))
	d.abandon()

	reg2 := telemetry.NewRegistry()
	d2, err := OpenDurable(dir, []byte("k"), DurableOptions{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := reg2.Counter("rockhopper_wal_replayed_records_total", "").With().Value(); got != 1 {
		t.Errorf("replayed records = %v, want 1", got)
	}
	if got := reg2.Counter("rockhopper_wal_appends_total", "").With().Value(); got != 0 {
		t.Errorf("appends after pure replay = %v, want 0 (replay is not an append)", got)
	}
	if _, err := d2.GetInternal("models/u/c.model"); err != nil {
		t.Errorf("replayed object missing: %v", err)
	}

	// The first store's instruments saw no replay at all.
	if got := reg.Counter("rockhopper_wal_replayed_records_total", "").With().Value(); got != 0 {
		t.Errorf("fresh-dir open replayed = %v, want 0", got)
	}
}
