package store

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// The crash matrix drives a fixed mutation trace into a durable store,
// kills it at every (crash point × operation index) combination via the
// injector, reopens the directory, and asserts the recovered state is
// prefix-consistent: exactly the acknowledged mutations, nothing else.

var errBoom = errors.New("boom")

type traceOp struct {
	del  bool
	path string
	data string
}

var matrixOps = []traceOp{
	{path: "models/u/a.model", data: "alpha-1"},
	{path: "events/j/run-000000.jsonl", data: "e0"},
	{path: "models/u/a.model", data: "alpha-2"}, // overwrite
	{del: true, path: "events/j/run-000000.jsonl"},
	{path: "index/u/sig/j-000000"},
	{path: "models/u/b.model", data: "beta"},
	{del: true, path: "models/u/a.model"},
	{path: "appcache/app_cache.json", data: "cache"},
}

// fireAt returns an injector that crashes on the n-th visit to point.
func fireAt(point CrashPoint, n int) func(CrashPoint) error {
	seen := 0
	return func(p CrashPoint) error {
		if p != point {
			return nil
		}
		seen++
		if seen == n {
			return errBoom
		}
		return nil
	}
}

// applyOp sends one trace op to a durable store (error returned) and, when
// acked is true, mirrors it into the in-memory reference.
func applyOp(d *DurableStore, op traceOp) error {
	if op.del {
		return d.Delete(op.path)
	}
	return d.put(op.path, []byte(op.data), telemetry.SpanContext{})
}

func mirrorOp(ref *Store, op traceOp) {
	if op.del {
		ref.Delete(op.path)
	} else {
		ref.PutInternal(op.path, []byte(op.data))
	}
}

// runCrashTrace applies matrixOps to a durable store in dir with the given
// injector, mirroring every acknowledged op into a reference store, and
// returns the reference plus how many ops were acknowledged. Both stores
// share one fake clock so creation timestamps line up exactly.
func runCrashTrace(t *testing.T, dir string, hooks func(CrashPoint) error, compactEvery int) (*Store, int) {
	t.Helper()
	clock := resilience.NewFakeClock(time.Unix(30000, 0))
	ref := New([]byte("k"))
	ref.SetClock(clock.Now)
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: compactEvery, Hooks: hooks})
	acked := 0
	for _, op := range matrixOps {
		clock.Advance(time.Minute)
		if err := applyOp(d, op); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("op %d failed with %v; want ErrCrashed", acked, err)
			}
			// A dead store must stay dead: no later mutation may sneak in.
			if err := d.put("models/u/late.model", []byte("x"), telemetry.SpanContext{}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash put = %v; want ErrCrashed", err)
			}
			return ref, acked
		}
		mirrorOp(ref, op)
		acked++
	}
	d.abandon()
	return ref, acked
}

// reopenAndCompare recovers dir and asserts it matches the reference.
func reopenAndCompare(t *testing.T, dir string, ref *Store, label string) {
	t.Helper()
	clock := resilience.NewFakeClock(time.Unix(90000, 0))
	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	if got, want := exportOf(re), exportOf(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: recovery diverged from acknowledged prefix:\n got=%+v\n want=%+v", label, got, want)
	}
	// Recovery must leave a writable log behind: the next mutation appends
	// cleanly past any truncated tail.
	if err := re.put("probe/after-recovery", []byte("ok"), telemetry.SpanContext{}); err != nil {
		t.Fatalf("%s: store not writable after recovery: %v", label, err)
	}
}

// TestCrashMatrixWAL kills the store at every WAL crash point before every
// mutation of the trace: the recovered state must hold exactly the
// acknowledged prefix (the crashed mutation wholly absent, torn records
// dropped).
func TestCrashMatrixWAL(t *testing.T) {
	t.Parallel()
	for _, point := range []CrashPoint{CrashPreWrite, CrashMidRecord} {
		for k := 1; k <= len(matrixOps); k++ {
			point, k := point, k
			t.Run(fmt.Sprintf("%s/op-%d", point, k), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				ref, acked := runCrashTrace(t, dir, fireAt(point, k), -1)
				if acked != k-1 {
					t.Fatalf("acked %d ops; want %d", acked, k-1)
				}
				reopenAndCompare(t, dir, ref, point.String())
			})
		}
	}
}

// TestCrashMatrixWALWithInterleavedSnapshots repeats the WAL matrix with
// record-count compaction every 3 records, so recovery exercises
// snapshot + WAL-suffix replay rather than a pure log.
func TestCrashMatrixWALWithInterleavedSnapshots(t *testing.T) {
	t.Parallel()
	for _, point := range []CrashPoint{CrashPreWrite, CrashMidRecord} {
		for k := 1; k <= len(matrixOps); k++ {
			point, k := point, k
			t.Run(fmt.Sprintf("%s/op-%d", point, k), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				ref, acked := runCrashTrace(t, dir, fireAt(point, k), 3)
				if acked != k-1 {
					t.Fatalf("acked %d ops; want %d", acked, k-1)
				}
				reopenAndCompare(t, dir, ref, point.String())
			})
		}
	}
}

// TestCrashMatrixSnapshot kills the store around the snapshot rename after
// every prefix of the trace. Both sides of the rename must recover the
// full acknowledged state: before it via old snapshot + intact WAL, after
// it via the new snapshot (skipping the stale WAL records it covers).
func TestCrashMatrixSnapshot(t *testing.T) {
	t.Parallel()
	for _, point := range []CrashPoint{CrashPreRename, CrashPostRename} {
		for k := 1; k <= len(matrixOps); k++ {
			point, k := point, k
			t.Run(fmt.Sprintf("%s/after-op-%d", point, k), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				clock := resilience.NewFakeClock(time.Unix(30000, 0))
				ref := New([]byte("k"))
				ref.SetClock(clock.Now)
				d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1, Hooks: fireAt(point, 1)})
				for i := 0; i < k; i++ {
					clock.Advance(time.Minute)
					if err := applyOp(d, matrixOps[i]); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					mirrorOp(ref, matrixOps[i])
				}
				if err := d.Compact(); !errors.Is(err, ErrCrashed) {
					t.Fatalf("Compact = %v; want injected ErrCrashed", err)
				}
				reopenAndCompare(t, dir, ref, point.String())
			})
		}
	}
}

// TestCrashThenRecoverThenCrashAgain chains two crash/recover cycles to
// prove recovery composes: a store that already survived a torn record can
// crash at a snapshot rename and still recover everything acknowledged.
func TestCrashThenRecoverThenCrashAgain(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ref, acked := runCrashTrace(t, dir, fireAt(CrashMidRecord, 4), -1)
	if acked != 3 {
		t.Fatalf("first crash acked %d; want 3", acked)
	}
	clock := resilience.NewFakeClock(time.Unix(31000, 0))
	ref.SetClock(clock.Now)
	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1, Hooks: fireAt(CrashPostRename, 1)})
	clock.Advance(time.Minute)
	if err := re.put("models/u/second-life.model", []byte("v2"), telemetry.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	ref.PutInternal("models/u/second-life.model", []byte("v2"))
	if err := re.Compact(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Compact = %v; want injected ErrCrashed", err)
	}
	reopenAndCompare(t, dir, ref, "second crash")
}
