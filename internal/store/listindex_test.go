package store

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// naiveList is the reference implementation the key index must match: a
// full scan of the object map.
func naiveList(s *Store, prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.objects {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func listsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestListIndexMatchesNaiveScan drives the sorted-key index through every
// structural regime — pure overflow, merged snapshot, tombstones, delete +
// re-put across a merge boundary — and checks List against a full map scan
// after each step. The operation count crosses the merge threshold several
// times so both the merged and unmerged paths are exercised.
func TestListIndexMatchesNaiveScan(t *testing.T) {
	s := New([]byte("k"))
	rng := stats.NewRNG(7)
	prefixes := []string{"", "events/", "events/job-1/", "index/u/", "models/", "zzz/"}
	check := func(step int) {
		t.Helper()
		for _, p := range prefixes {
			got, want := s.List(p), naiveList(s, p)
			if !listsEqual(got, want) {
				t.Fatalf("step %d: List(%q) = %d paths, naive scan = %d\ngot:  %v\nwant: %v",
					step, p, len(got), len(want), got, want)
			}
		}
	}
	var live []string
	for step := 0; step < 4*overflowMergeThreshold; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0: // put a fresh key
			p := fmt.Sprintf("%sobj-%05d", prefixes[rng.Intn(len(prefixes))], step)
			s.PutInternal(p, []byte("v"))
			live = append(live, p)
		case op < 8: // overwrite an existing key (no index growth)
			s.PutInternal(live[rng.Intn(len(live))], []byte("v2"))
		default: // delete, sometimes followed by an immediate re-put
			i := rng.Intn(len(live))
			p := live[i]
			s.Delete(p)
			if rng.Intn(2) == 0 {
				s.PutInternal(p, []byte("v3"))
			} else {
				live = append(live[:i], live[i+1:]...)
			}
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(-1)

	// Mass deletion must compact the tombstones out of the snapshot, not
	// leave List scanning a dead index.
	for _, p := range live {
		s.Delete(p)
	}
	check(-2)
	if got := s.List(""); len(got) != 0 {
		t.Fatalf("emptied store still lists %d paths: %v", len(got), got[:min(len(got), 5)])
	}
}

// BenchmarkListPointLookup is the Model Updater's access pattern: one List
// of a single signature's index folder while the store holds many others.
// The amortized key index keeps this O(log n + matches); the former full
// map scan made bulk ingest quadratic in fleet-scale runs.
func BenchmarkListPointLookup(b *testing.B) {
	s := New([]byte("k"))
	for i := 0; i < 100_000; i++ {
		s.PutInternal(fmt.Sprintf("index/u/sig-%06d/job-%d", i, i), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.List(fmt.Sprintf("index/u/sig-%06d/", i%100_000)); len(got) != 1 {
			b.Fatalf("point lookup returned %d paths", len(got))
		}
	}
}
