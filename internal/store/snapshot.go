// Snapshot encoding for the durable store. A snapshot is the full store
// state at one WAL sequence number, written as a single CRC-framed JSON
// document. Snapshots are always produced atomically — written to a
// temporary file, synced, then renamed over the live name — so the live
// snapshot is either the complete old state or the complete new state,
// never a torn mix.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// On-disk layout inside a durable store directory.
const (
	snapshotFile = "snapshot.json"
	snapshotTemp = "snapshot.tmp"
	walFile      = "wal.log"
)

// snapshotVersion guards against format drift across releases.
const snapshotVersion = 1

// snapshot is the durable image of the whole store.
type snapshot struct {
	// Version is snapshotVersion.
	Version int `json:"version"`
	// WALSeq is the last WAL sequence number folded into Entries; replay
	// skips WAL records at or below it.
	WALSeq uint64 `json:"wal_seq"`
	// Entries is the full object set, sorted by path.
	Entries []snapEntry `json:"entries"`
}

// encodeSnapshot renders a snapshot as one framed line.
func encodeSnapshot(s snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("store: encode snapshot: %w", err)
	}
	return frame(payload), nil
}

// decodeSnapshot parses a snapshot image. Unlike WAL corruption — expected
// after a crash, recovered by prefix truncation — a corrupt snapshot means
// the atomic-rename contract was violated (manual edit, disk fault) and is
// surfaced as an error rather than silently treated as empty state.
func decodeSnapshot(data []byte) (snapshot, error) {
	line, ok := bytes.CutSuffix(data, []byte("\n"))
	if !ok {
		return snapshot{}, fmt.Errorf("store: snapshot image is truncated")
	}
	payload, err := unframe(line)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return snapshot{}, fmt.Errorf("store: decode snapshot: %v", err)
	}
	if s.Version != snapshotVersion {
		return snapshot{}, fmt.Errorf("store: snapshot version %d not supported (want %d)", s.Version, snapshotVersion)
	}
	return s, nil
}
