package store

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestAppendWALRecordMatchesEncode is the WAL fast path's compatibility
// property: appendWALRecord must produce byte-identical framed lines to the
// json.Marshal-based encodeWALRecord for every record shape, so logs written
// by either encoder replay through the same decoder.
func TestAppendWALRecordMatchesEncode(t *testing.T) {
	t.Parallel()
	fixed := []walRecord{
		{Seq: 1, Op: opPut, Path: "models/a.gob", Data: []byte{1, 2, 3}, Created: 1234},
		{Seq: 2, Op: opDel, Path: "models/a.gob"},
		{Seq: 3, Op: opSweep, Paths: []string{"x", "y/z", "with space"}},
		{Seq: 18446744073709551615, Op: opPut, Path: `esc "quote" \slash`, Created: -5},
		{Seq: 7, Op: opPut, Path: "unicode/日本/ログ", Data: []byte{}},
		{Seq: 8, Op: opPut, Path: "html<&>" + string(rune(0x2028)), Data: bytes.Repeat([]byte{0xFF}, 300)},
		{Seq: 9, Op: ""},
		{Seq: 10, Op: opPut, Path: "ctrl\x01\ttab"},
		{Seq: 11, Op: opBatch, Entries: []snapEntry{
			{Path: "events/j/run-000000.jsonl", Data: []byte("payload"), Created: 77},
			{Path: "index/u/sig/j-000000", Created: 0},
			{Path: `esc "batch" \entry`, Data: []byte{}, Created: -3},
		}},
		{Seq: 12, Op: opBatch, Entries: []snapEntry{{Path: "solo", Created: 1}}},
	}
	for i, rec := range fixed {
		want, err := encodeWALRecord(rec)
		if err != nil {
			t.Fatalf("fixture %d: encodeWALRecord: %v", i, err)
		}
		got := appendWALRecord(nil, rec)
		if !bytes.Equal(got, want) {
			t.Fatalf("fixture %d:\n got %q\nwant %q", i, got, want)
		}
		// And the fast line must decode back to the same record when valid.
		if validWALOp(rec) && rec.Seq != 0 {
			back, err := decodeWALRecord(got[:len(got)-1])
			if err != nil {
				t.Fatalf("fixture %d: decode of fast line: %v", i, err)
			}
			if back.Seq != rec.Seq || back.Op != rec.Op || back.Path != rec.Path {
				t.Fatalf("fixture %d: round trip drifted: %+v vs %+v", i, back, rec)
			}
		}
	}
	f := func(seq uint64, op, path string, paths []string, data []byte, created int64, entryPaths []string, entryData []byte) bool {
		rec := walRecord{Seq: seq, Op: op, Path: path, Paths: paths, Data: data, Created: created}
		for i, p := range entryPaths {
			e := snapEntry{Path: p, Created: created + int64(i)}
			if i%2 == 0 {
				e.Data = entryData
			}
			rec.Entries = append(rec.Entries, e)
		}
		want, err := encodeWALRecord(rec)
		if err != nil {
			return true
		}
		return bytes.Equal(appendWALRecord(nil, rec), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendWALRecordReusesBuffer pins the in-place reuse contract: a second
// render into the same backing array must not allocate a new one.
func TestAppendWALRecordReusesBuffer(t *testing.T) {
	t.Parallel()
	buf := appendWALRecord(nil, walRecord{Seq: 1, Op: opPut, Path: "a", Data: []byte("payload")})
	grown := appendWALRecord(buf[:0], walRecord{Seq: 2, Op: opDel, Path: "b"})
	if &grown[0] != &buf[0] {
		t.Fatal("small record did not reuse the existing buffer")
	}
	want, err := encodeWALRecord(walRecord{Seq: 2, Op: opDel, Path: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(grown, want) {
		t.Fatalf("reused render drifted: %q vs %q", grown, want)
	}
}
