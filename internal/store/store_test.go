package store

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func fixedClock(t time.Time) func() time.Time { return func() time.Time { return t } }

func TestPathHelpers(t *testing.T) {
	t.Parallel()
	if EventPath("job-1", 7) != "events/job-1/run-000007.jsonl" {
		t.Fatalf("event path = %q", EventPath("job-1", 7))
	}
	if ArtifactPath("a1", "cache.json") != "artifacts/a1/cache.json" {
		t.Fatal("artifact path wrong")
	}
	if ModelPath("u1", "sig-9") != "models/u1/sig-9.model" {
		t.Fatal("model path wrong")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	t.Parallel()
	s := New([]byte("secret"))
	tok := s.Sign("events/job-1/", PermWrite, time.Hour)
	if err := s.Verify(tok, "events/job-1/run-000001.jsonl", PermWrite); err != nil {
		t.Fatal(err)
	}
}

func TestTokenScope(t *testing.T) {
	t.Parallel()
	s := New([]byte("secret"))
	tok := s.Sign("events/job-1/", PermWrite, time.Hour)
	if err := s.Verify(tok, "events/job-2/x", PermWrite); !errors.Is(err, ErrTokenScope) {
		t.Fatalf("cross-job access should be scoped out, got %v", err)
	}
	if err := s.Verify(tok, "events/job-1/x", PermRead); !errors.Is(err, ErrTokenScope) {
		t.Fatalf("write token must not grant read, got %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	t.Parallel()
	s := New([]byte("secret"))
	base := time.Unix(1000, 0)
	s.SetClock(fixedClock(base))
	tok := s.Sign("models/", PermRead, time.Minute)
	s.SetClock(fixedClock(base.Add(2 * time.Minute)))
	if err := s.Verify(tok, "models/u/sig.model", PermRead); !errors.Is(err, ErrTokenExpired) {
		t.Fatalf("expected expiry, got %v", err)
	}
}

func TestTokenForgery(t *testing.T) {
	t.Parallel()
	s1 := New([]byte("secret-a"))
	s2 := New([]byte("secret-b"))
	tok := s1.Sign("models/", PermRead, time.Hour)
	if err := s2.Verify(tok, "models/x", PermRead); !errors.Is(err, ErrTokenInvalid) {
		t.Fatalf("cross-secret token should be invalid, got %v", err)
	}
	if err := s1.Verify("garbage!!", "models/x", PermRead); !errors.Is(err, ErrTokenInvalid) {
		t.Fatalf("garbage token should be invalid, got %v", err)
	}
}

func TestPutGetWithTokens(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	w := s.Sign("events/j/", PermWrite, time.Hour)
	r := s.Sign("events/j/", PermRead, time.Hour)
	p := EventPath("j", 1)
	if err := s.Put(w, p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(r, p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if _, err := s.Get(r, EventPath("j", 2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object should be ErrNotFound, got %v", err)
	}
	if err := s.Put(r, p, []byte("x")); err == nil {
		t.Fatal("read token must not allow writes")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	s.PutInternal("models/u/a.model", []byte{1, 2, 3})
	blob, err := s.GetInternal("models/u/a.model")
	if err != nil {
		t.Fatal(err)
	}
	blob[0] = 99
	again, _ := s.GetInternal("models/u/a.model")
	if again[0] == 99 {
		t.Fatal("store leaked internal buffer")
	}
}

func TestList(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	s.PutInternal("events/a/1", nil)
	s.PutInternal("events/a/2", nil)
	s.PutInternal("events/b/1", nil)
	if got := s.List("events/a/"); len(got) != 2 || got[0] != "events/a/1" {
		t.Fatalf("list = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Delete("events/a/1")
	if s.Len() != 2 {
		t.Fatal("delete failed")
	}
	s.Delete("events/a/1") // idempotent
}

func TestRetentionCleanup(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	base := time.Unix(5000, 0)
	s.SetClock(fixedClock(base))
	s.PutInternal("events/j/old", []byte("x"))
	s.PutInternal("models/u/keep.model", []byte("m"))
	s.SetClock(fixedClock(base.Add(48 * time.Hour)))
	s.PutInternal("events/j/new", []byte("y"))
	n := s.CleanupOlderThan(24 * time.Hour)
	if n != 1 {
		t.Fatalf("cleaned %d; want 1", n)
	}
	if _, err := s.GetInternal("events/j/old"); err == nil {
		t.Fatal("old event should be gone")
	}
	if _, err := s.GetInternal("events/j/new"); err != nil {
		t.Fatal("new event should remain")
	}
	if _, err := s.GetInternal("models/u/keep.model"); err != nil {
		t.Fatal("models are not subject to event retention")
	}
}

func TestConcurrentAccess(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p := EventPath("job", i*1000+j)
				s.PutInternal(p, []byte{byte(j)})
				if _, err := s.GetInternal(p); err != nil {
					t.Error(err)
					return
				}
				s.List("events/")
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestOrphanSweepReapsFailedIngest: a two-phase ingest that crashed between
// staging the event file and committing its index entry leaves an orphan.
// The retention sweep reaps it once it outlives the orphan grace — and
// counts it — while indexed files of the same age survive until the real
// retention cutoff.
func TestOrphanSweepReapsFailedIngest(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	base := time.Unix(5000, 0)
	s.SetClock(fixedClock(base))
	// Committed ingest: event file plus its index entry.
	s.PutInternal(EventPath("job-1", 0), []byte("committed"))
	s.PutInternal("index/u1/sig-a/job-1-000000", nil)
	// Failed ingest: the staged file never got its phase-2 index entry.
	s.PutInternal(EventPath("job-1", 1), []byte("staged-then-crashed"))

	// Before the grace expires nothing is reaped: a healthy ingest may
	// still be between its two phases.
	if n := s.CleanupOlderThan(30 * 24 * time.Hour); n != 0 {
		t.Fatalf("sweep inside orphan grace reaped %d; want 0", n)
	}
	s.SetClock(fixedClock(base.Add(2 * time.Hour)))
	if n := s.CleanupOlderThan(30 * 24 * time.Hour); n != 1 {
		t.Fatalf("sweep reaped %d; want exactly the orphan", n)
	}
	if _, err := s.GetInternal(EventPath("job-1", 1)); !errors.Is(err, ErrNotFound) {
		t.Fatal("orphaned event file should be gone")
	}
	if _, err := s.GetInternal(EventPath("job-1", 0)); err != nil {
		t.Fatal("indexed event file must survive the orphan sweep")
	}
	if _, err := s.GetInternal("index/u1/sig-a/job-1-000000"); err != nil {
		t.Fatal("index entries are not subject to the orphan sweep")
	}
}

// TestOrphanSweepSlashJobID: job IDs are unsanitized query params and may
// contain '/'. Reconstructing the indexed set must strip exactly the
// <user>/<sig> segments of "index/<user>/<sig>/<jobID>-<seq>" — like the
// backend's own index parser — not everything up to the LAST '/', or an
// indexed event file whose jobID contains a slash is misread as an orphan
// and permanently reaped.
func TestOrphanSweepSlashJobID(t *testing.T) {
	t.Parallel()
	s := New([]byte("k"))
	base := time.Unix(5000, 0)
	s.SetClock(fixedClock(base))
	for _, jobID := range []string{"a/b", "team/job-7", "x/y/z-1"} {
		s.PutInternal(EventPath(jobID, 1), []byte("committed"))
		s.PutInternal("index/u1/sig-a/"+jobID+"-000001", nil)
	}
	s.SetClock(fixedClock(base.Add(2 * time.Hour)))
	if n := s.CleanupOlderThan(30 * 24 * time.Hour); n != 0 {
		t.Fatalf("sweep reaped %d indexed file(s); want 0", n)
	}
	for _, jobID := range []string{"a/b", "team/job-7", "x/y/z-1"} {
		if _, err := s.GetInternal(EventPath(jobID, 1)); err != nil {
			t.Fatalf("indexed event file for jobID %q must survive the orphan sweep: %v", jobID, err)
		}
	}
	// An actual orphan with a slash-containing jobID is still reaped.
	s.PutInternal(EventPath("a/b", 2), []byte("staged-then-crashed"))
	s.SetClock(fixedClock(base.Add(4 * time.Hour)))
	if n := s.CleanupOlderThan(30 * 24 * time.Hour); n != 1 {
		t.Fatalf("sweep reaped %d; want exactly the slash-jobID orphan", n)
	}
}
