// Package store is the Autotune Backend's storage manager (Section 5): it
// keeps event files and model blobs in per-application folders, enforces
// restricted access through expiring HMAC-signed tokens (the stand-in for
// Azure SAS URLs), and runs the GDPR-compliance retention cleanup that
// removes outdated event files.
//
// Folder conventions mirror the paper: each Spark application gets a folder
// for its event files keyed by job ID, plus a folder keyed by artifact_id
// shared across runs of the same Spark definition, and models live under the
// owning user and query signature so that "models are trained exclusively
// with baseline data and query traces originating from the same user and
// query signature".
package store

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
)

// Permission is the access mode a token grants.
type Permission string

// Token permissions.
const (
	PermRead  Permission = "r"
	PermWrite Permission = "w"
)

// Errors returned by token verification and object access.
var (
	ErrTokenInvalid = errors.New("store: token signature invalid")
	ErrTokenExpired = errors.New("store: token expired")
	ErrTokenScope   = errors.New("store: token does not cover this path or permission")
	ErrNotFound     = errors.New("store: object not found")
)

// Path helpers encode the backend's folder conventions.

// EventPath returns the event-file path for one run of a job.
func EventPath(jobID string, seq int) string {
	return path.Join("events", jobID, fmt.Sprintf("run-%06d.jsonl", seq))
}

// ArtifactPath returns the shared folder path for an artifact-scoped object.
func ArtifactPath(artifactID, name string) string {
	return path.Join("artifacts", artifactID, name)
}

// ModelPath returns the model-blob path for a user's query signature.
func ModelPath(user, signature string) string {
	return path.Join("models", user, signature+".model")
}

// AppCachePath is the singleton app_cache object path.
const AppCachePath = "appcache/app_cache.json"

// token is the wire format of a signed access grant.
type token struct {
	// Prefix is the path prefix the token covers.
	Prefix string `json:"p"`
	// Perm is the granted permission.
	Perm Permission `json:"m"`
	// Expires is the Unix-nano expiry.
	Expires int64 `json:"e"`
	// Sig is the HMAC-SHA256 over "prefix|perm|expires".
	Sig []byte `json:"s"`
}

// Store is an in-memory object store with token-gated access. All methods
// are safe for concurrent use. The clock is injectable for tests.
type Store struct {
	secret []byte
	now    func() time.Time

	mu      sync.RWMutex
	objects map[string]object

	// keys and overflow index List. keys is a sorted snapshot of the key
	// set (it may retain recently deleted keys — the objects map stays the
	// source of truth and filters them out); overflow holds keys put since
	// the last merge. A List binary-searches keys for the prefix range and
	// scans only the bounded overflow, so it costs O(log n + matches)
	// amortized instead of a full map walk — the difference between linear
	// and quadratic total work for callers that List once per inserted key,
	// like the Model Updater retraining behind bulk ingest.
	keys     []string
	overflow []string
	// stale counts deletions not yet compacted out of keys; crossing the
	// merge threshold forces a compaction so List never scans a key slice
	// dominated by tombstones.
	stale int
}

// overflowMergeThreshold bounds the unsorted overflow a List must scan;
// reaching it merges the overflow into the sorted key snapshot.
const overflowMergeThreshold = 512

type object struct {
	data    []byte
	created time.Time
}

// New returns a store signing tokens with the given secret.
func New(secret []byte) *Store {
	return &Store{
		secret:  append([]byte(nil), secret...),
		now:     resilience.RealClock{}.Now,
		objects: make(map[string]object),
	}
}

// SetClock overrides the store's clock (tests and simulations).
func (s *Store) SetClock(now func() time.Time) { s.now = now }

func (s *Store) sign(prefix string, perm Permission, expires int64) []byte {
	mac := hmac.New(sha256.New, s.secret)
	fmt.Fprintf(mac, "%s|%s|%d", prefix, perm, expires)
	return mac.Sum(nil)
}

// Sign issues a token granting perm on every path under prefix until ttl
// elapses — the analogue of generating a SAS URL.
func (s *Store) Sign(prefix string, perm Permission, ttl time.Duration) string {
	exp := s.now().Add(ttl).UnixNano()
	t := token{Prefix: prefix, Perm: perm, Expires: exp, Sig: s.sign(prefix, perm, exp)}
	blob, _ := json.Marshal(t) // marshal of this struct cannot fail
	return base64.URLEncoding.EncodeToString(blob)
}

// Verify checks that tok grants perm on p.
func (s *Store) Verify(tok, p string, perm Permission) error {
	raw, err := base64.URLEncoding.DecodeString(tok)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTokenInvalid, err)
	}
	var t token
	if err := json.Unmarshal(raw, &t); err != nil {
		return fmt.Errorf("%w: %v", ErrTokenInvalid, err)
	}
	if !hmac.Equal(t.Sig, s.sign(t.Prefix, t.Perm, t.Expires)) {
		return ErrTokenInvalid
	}
	if s.now().UnixNano() > t.Expires {
		return ErrTokenExpired
	}
	if t.Perm != perm {
		return ErrTokenScope
	}
	if !strings.HasPrefix(p, t.Prefix) {
		return ErrTokenScope
	}
	return nil
}

// Put writes an object after verifying the write token.
func (s *Store) Put(tok, p string, data []byte) error {
	if err := s.Verify(tok, p, PermWrite); err != nil {
		return err
	}
	s.putUnchecked(p, data)
	return nil
}

// Get reads an object after verifying the read token.
func (s *Store) Get(tok, p string) ([]byte, error) {
	if err := s.Verify(tok, p, PermRead); err != nil {
		return nil, err
	}
	return s.getUnchecked(p)
}

// putUnchecked bypasses token checks; for backend-internal writers.
func (s *Store) putUnchecked(p string, data []byte) {
	s.putAt(p, data, s.now())
}

// putAt installs an object with an explicit creation time. The durability
// layer uses it so WAL replay reconstructs byte-identical state, retention
// timestamps included.
func (s *Store) putAt(p string, data []byte, created time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, exists := s.objects[p]
	s.objects[p] = object{data: append([]byte(nil), data...), created: created}
	if !exists {
		// Index after the insert: the merge filters through the objects
		// map, and must see the key it is about to fold in as live.
		s.overflow = append(s.overflow, p)
		if len(s.overflow) >= overflowMergeThreshold {
			s.mergeKeysLocked()
		}
	}
}

// mergeKeysLocked folds the overflow into the sorted key snapshot and drops
// tombstones, restoring List's O(log n + matches) bound.
func (s *Store) mergeKeysLocked() {
	sort.Strings(s.overflow)
	merged := make([]string, 0, len(s.keys)+len(s.overflow))
	i, j := 0, 0
	for i < len(s.keys) || j < len(s.overflow) {
		var k string
		switch {
		case i >= len(s.keys):
			k = s.overflow[j]
			j++
		case j >= len(s.overflow):
			k = s.keys[i]
			i++
		case s.keys[i] < s.overflow[j]:
			k = s.keys[i]
			i++
		case s.keys[i] > s.overflow[j]:
			k = s.overflow[j]
			j++
		default: // same key reinserted after a delete: emit once
			k = s.keys[i]
			i++
			j++
		}
		if len(merged) > 0 && merged[len(merged)-1] == k {
			continue // duplicate within the overflow (delete + re-put)
		}
		if _, live := s.objects[k]; live {
			merged = append(merged, k)
		}
	}
	s.keys = merged
	s.overflow = s.overflow[:0]
	s.stale = 0
}

// deleteLocked removes an object and compacts the key index once tombstones
// dominate it.
func (s *Store) deleteLocked(p string) {
	if _, ok := s.objects[p]; !ok {
		return
	}
	delete(s.objects, p)
	s.stale++
	if s.stale > len(s.keys)/2+overflowMergeThreshold {
		s.mergeKeysLocked()
	}
}

// getUnchecked bypasses token checks; for backend-internal readers.
func (s *Store) getUnchecked(p string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	return append([]byte(nil), o.data...), nil
}

// PutInternal writes without a token; only backend components hold the
// store directly, mirroring the admin-workspace trust boundary.
func (s *Store) PutInternal(p string, data []byte) { s.putUnchecked(p, data) }

// BatchEntry is one mutation in a PutBatch group commit.
type BatchEntry struct {
	Path string
	Data []byte
}

// PutBatch applies a group of internal writes. The in-memory store has no
// log to amortize, so the entries are applied one by one after an upfront
// shape check; the durable store commits the same batch behind a single
// WAL record (one append + fsync) and replays it atomically.
func (s *Store) PutBatch(entries []BatchEntry) error {
	for i, e := range entries {
		if e.Path == "" {
			return fmt.Errorf("store: batch entry %d has an empty path", i)
		}
	}
	for _, e := range entries {
		s.putUnchecked(e.Path, e.Data)
	}
	return nil
}

// GetInternal reads without a token.
func (s *Store) GetInternal(p string) ([]byte, error) { return s.getUnchecked(p) }

// List returns the paths under prefix, sorted. It reads the sorted key
// snapshot through a binary search plus the bounded overflow, never the
// whole object map.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.SearchStrings(s.keys, prefix)
	var out []string
	for i := lo; i < len(s.keys) && strings.HasPrefix(s.keys[i], prefix); i++ {
		if _, live := s.objects[s.keys[i]]; live {
			out = append(out, s.keys[i])
		}
	}
	if len(s.overflow) == 0 {
		return out
	}
	snap := len(out)
	for _, k := range s.overflow {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if _, live := s.objects[k]; !live {
			continue
		}
		// Skip keys already emitted from the snapshot range (a key lands in
		// the overflow again when it is deleted and re-put before a merge).
		if idx := sort.SearchStrings(s.keys, k); idx < len(s.keys) && s.keys[idx] == k {
			continue
		}
		out = append(out, k)
	}
	if len(out) > snap {
		sort.Strings(out[snap:])
		out = mergeSortedDedup(out[:snap], out[snap:])
	}
	return out
}

// mergeSortedDedup merges two sorted string slices, dropping duplicates.
func mergeSortedDedup(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var k string
		switch {
		case i >= len(a):
			k = b[j]
			j++
		case j >= len(b):
			k = a[i]
			i++
		case a[i] <= b[j]:
			k = a[i]
			i++
		default:
			k = b[j]
			j++
		}
		if len(out) == 0 || out[len(out)-1] != k {
			out = append(out, k)
		}
	}
	return out
}

// Delete removes an object; deleting a missing object is a no-op.
func (s *Store) Delete(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deleteLocked(p)
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// DefaultOrphanGrace is how long a staged event file may sit without an
// index entry before the retention sweep treats it as an orphan. The
// two-phase event-log ingest stages event files first and commits index
// entries second; a backend crash between the phases leaves the staged file
// invisible to the Model Updater forever. Every live ingest finishes well
// inside the request deadline, so an hour is conservatively past any
// in-flight write.
const DefaultOrphanGrace = time.Hour

// CleanupOlderThan removes event files older than the retention window and
// returns how many were deleted — the Storage Manager's GDPR cleanup. Only
// objects under "events/" are subject to retention; models and caches are
// derived artifacts. The sweep also reaps orphaned event files: staged
// writes a failed two-phase ingest never indexed, older than
// DefaultOrphanGrace.
func (s *Store) CleanupOlderThan(retention time.Duration) int {
	return len(s.sweepExpired(retention))
}

// sweepExpired deletes what expiredEvents reports and returns the reaped
// paths, sorted.
func (s *Store) sweepExpired(retention time.Duration) []string {
	reaped := s.expiredEvents(retention)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range reaped {
		s.deleteLocked(p)
	}
	return reaped
}

// expiredEvents returns, sorted, the event paths the retention sweep would
// reap right now: event files older than retention, plus unindexed
// (orphaned) event files older than DefaultOrphanGrace.
func (s *Store) expiredEvents(retention time.Duration) []string {
	now := s.now()
	cutoff := now.Add(-retention)
	orphanCutoff := now.Add(-DefaultOrphanGrace)
	s.mu.RLock()
	defer s.mu.RUnlock()
	indexed := s.indexedEventsLocked()
	var reaped []string
	for p, o := range s.objects {
		if !strings.HasPrefix(p, "events/") {
			continue
		}
		if o.created.Before(cutoff) || (!indexed[p] && o.created.Before(orphanCutoff)) {
			reaped = append(reaped, p)
		}
	}
	sort.Strings(reaped)
	return reaped
}

// indexedEventsLocked reconstructs the event path referenced by every
// "index/<user>/<sig>/<jobID>-<seq>" entry. Like the backend's index
// parser, it strips exactly the <user> and <sig> segments — job IDs are
// unsanitized caller input and may themselves contain '/' — and splits the
// remainder on the LAST '-' because job IDs may contain dashes and
// sequence numbers outgrow their %06d padding.
func (s *Store) indexedEventsLocked() map[string]bool {
	out := make(map[string]bool)
	for p := range s.objects {
		rest, ok := strings.CutPrefix(p, "index/")
		if !ok {
			continue
		}
		user := strings.IndexByte(rest, '/')
		if user < 0 {
			continue
		}
		sig := strings.IndexByte(rest[user+1:], '/')
		if sig < 0 {
			continue
		}
		rest = rest[user+1+sig+1:]
		i := strings.LastIndexByte(rest, '-')
		if i <= 0 || i == len(rest)-1 {
			continue
		}
		seq, err := strconv.Atoi(rest[i+1:])
		if err != nil || seq < 0 {
			continue
		}
		out[EventPath(rest[:i], seq)] = true
	}
	return out
}

// export returns a deep copy of the store's full state, sorted by path —
// the payload of a durability snapshot.
func (s *Store) export() []snapEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]snapEntry, 0, len(s.objects))
	for p, o := range s.objects {
		out = append(out, snapEntry{
			Path:    p,
			Data:    append([]byte(nil), o.data...),
			Created: o.created.UnixNano(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
