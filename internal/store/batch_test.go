package store

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// batchEntries builds n distinct event-file + index-entry pairs shaped like
// the batched ingest endpoint's commits.
func batchEntries(n int) []BatchEntry {
	out := make([]BatchEntry, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out,
			BatchEntry{Path: EventPath("job", i), Data: []byte(fmt.Sprintf("trace-%d", i))},
			BatchEntry{Path: fmt.Sprintf("index/u/sig%03d/job-%06d", i, i)},
		)
	}
	return out
}

// TestPutBatchGroupCommitSingleFsync is the amortization proof: committing
// 512 entries through PutBatch costs exactly ONE WAL append and ONE fsync,
// where the same entries through the single-record path cost one each. Sync
// is deliberately left ON so the fsync histogram counts real syncs.
func TestPutBatchGroupCommitSingleFsync(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	d, err := OpenDurable(t.TempDir(), []byte("k"), DurableOptions{
		Clock:        resilience.NewFakeClock(time.Unix(9000, 0)),
		CompactEvery: -1,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	entries := batchEntries(256) // 512 entries total
	if err := d.PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	if got := d.walAppends.Value(); got != 1 {
		t.Fatalf("512-entry batch cost %v WAL appends; want 1", got)
	}
	if got := d.fsyncSeconds.Count(); got != 1 {
		t.Fatalf("512-entry batch cost %d fsyncs; want 1", got)
	}
	for _, e := range entries {
		blob, err := d.GetInternal(e.Path)
		if err != nil {
			t.Fatalf("entry %s missing after batch commit: %v", e.Path, err)
		}
		if string(blob) != string(e.Data) {
			t.Fatalf("entry %s holds %q; want %q", e.Path, blob, e.Data)
		}
	}

	// The unbatched control: the same number of entries one put at a time
	// costs one fsync per entry.
	for i, e := range entries {
		d.PutInternal("solo/"+e.Path, e.Data)
		if err := d.Err(); err != nil {
			t.Fatalf("solo put %d: %v", i, err)
		}
	}
	if got := d.fsyncSeconds.Count(); got != 1+uint64(len(entries)) {
		t.Fatalf("%d solo puts grew fsync count to %d; want %d", len(entries), got, 1+len(entries))
	}
}

// TestPutBatchReplayEquivalence interleaves batches with singles and
// deletes, exits uncleanly, and asserts pure WAL replay (and then a
// snapshot + reopen) reconstructs byte-identical state.
func TestPutBatchReplayEquivalence(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(9000, 0))
	ref := New([]byte("k"))
	ref.SetClock(clock.Now)
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})

	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	step(d.put("models/u/a.model", []byte("alpha"), telemetry.SpanContext{}))
	ref.PutInternal("models/u/a.model", []byte("alpha"))
	clock.Advance(time.Minute)
	step(d.PutBatch(batchEntries(3)))
	step(ref.PutBatch(batchEntries(3)))
	clock.Advance(time.Minute)
	step(d.Delete(EventPath("job", 1)))
	ref.Delete(EventPath("job", 1))
	// A second batch overwrites paths from the first: last write wins.
	step(d.PutBatch([]BatchEntry{{Path: EventPath("job", 0), Data: []byte("rewritten")}}))
	step(ref.PutBatch([]BatchEntry{{Path: EventPath("job", 0), Data: []byte("rewritten")}}))

	d.abandon()
	reopenAndCompare(t, dir, ref, "WAL replay with batch records")
	// reopenAndCompare wrote this probe under its own clock (Unix 90000).
	ref.putAt("probe/after-recovery", []byte("ok"), time.Unix(90000, 0))

	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	step(re.Compact())
	step(re.Close())
	reopenAndCompare(t, dir, ref, "snapshot containing batch-applied state")
}

// TestPutBatchCrashAtomicity is the no-partial-batch proof: a crash while
// the batch record is being written (a torn group commit) must leave NONE
// of the batch's entries visible after recovery — an acknowledged batch is
// all-in, an unacknowledged one is all-out.
func TestPutBatchCrashAtomicity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(9000, 0))
	ref := New([]byte("k"))
	ref.SetClock(clock.Now)
	// The first two appends (the acknowledged prefix) survive; the third —
	// the batch — tears mid-record.
	d := mustOpen(t, dir, DurableOptions{
		Clock: clock, CompactEvery: -1, Hooks: fireAt(CrashMidRecord, 3),
	})

	if err := d.put("models/u/a.model", []byte("alpha"), telemetry.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	ref.PutInternal("models/u/a.model", []byte("alpha"))
	if err := d.put("models/u/b.model", []byte("beta"), telemetry.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	ref.PutInternal("models/u/b.model", []byte("beta"))

	err := d.PutBatch(batchEntries(8))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn batch commit returned %v; want ErrCrashed", err)
	}
	// The latch holds: no later mutation may outrun the broken log.
	if err := d.PutBatch([]BatchEntry{{Path: "late", Data: []byte("x")}}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash batch = %v; want ErrCrashed", err)
	}

	reopenAndCompare(t, dir, ref, "torn batch record")

	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	for _, p := range re.List("") {
		if strings.HasPrefix(p, "events/") || strings.HasPrefix(p, "index/") {
			t.Fatalf("partial batch leaked %s through recovery", p)
		}
	}
}

// TestPutBatchRejectsEmptyPath pins the upfront shape check on both store
// flavors: a bad entry fails the whole batch before any write happens.
func TestPutBatchRejectsEmptyPath(t *testing.T) {
	t.Parallel()
	bad := []BatchEntry{{Path: "ok", Data: []byte("x")}, {Path: ""}}
	mem := New([]byte("k"))
	if err := mem.PutBatch(bad); err == nil {
		t.Fatal("in-memory PutBatch accepted an empty path")
	}
	if mem.Len() != 0 {
		t.Fatal("rejected batch still wrote entries")
	}
	d := mustOpen(t, t.TempDir(), DurableOptions{
		Clock: resilience.NewFakeClock(time.Unix(9000, 0)), CompactEvery: -1,
	})
	defer d.Close()
	if err := d.PutBatch(bad); err == nil {
		t.Fatal("durable PutBatch accepted an empty path")
	}
	if d.Len() != 0 {
		t.Fatal("rejected batch still wrote entries")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("shape rejection must not latch the store: %v", err)
	}
	if err := d.PutBatch(nil); err != nil {
		t.Fatalf("empty batch must be a no-op, got %v", err)
	}
}
