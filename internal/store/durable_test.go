package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// abandon releases the WAL handle WITHOUT the final snapshot Close takes,
// simulating an unclean (but not torn) exit so tests can exercise pure WAL
// replay on reopen.
func (d *DurableStore) abandon() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down == nil {
		d.down = ErrClosed
	}
	d.wal.Close()
}

// exportOf returns the full state of either store flavor for comparison.
func exportOf(v any) []snapEntry {
	switch s := v.(type) {
	case *Store:
		return s.export()
	case *DurableStore:
		return s.mem.export()
	}
	panic("exportOf: unsupported store type")
}

// wantSameState fails the test unless both stores hold byte-identical
// state: paths, object bytes, and creation timestamps.
func wantSameState(t *testing.T, label string, a, b any) {
	t.Helper()
	ea, eb := exportOf(a), exportOf(b)
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("%s: states diverge:\n a=%+v\n b=%+v", label, ea, eb)
	}
}

func mustOpen(t *testing.T, dir string, opts DurableOptions) *DurableStore {
	t.Helper()
	d, err := OpenDurable(dir, []byte("k"), DurableOptions{
		Clock:            opts.Clock,
		SnapshotInterval: opts.SnapshotInterval,
		CompactEvery:     opts.CompactEvery,
		NoSync:           true,
		Hooks:            opts.Hooks,
		OnAppend:         opts.OnAppend,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDurableReopenByteIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(9000, 0))
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	d.PutInternal("models/u/a.model", []byte("alpha"))
	clock.Advance(time.Minute)
	d.PutInternal("events/j/run-000000.jsonl", []byte("e0"))
	clock.Advance(time.Minute)
	d.PutInternal("models/u/a.model", []byte("alpha-v2")) // overwrite
	if err := d.Delete("events/j/run-000000.jsonl"); err != nil {
		t.Fatal(err)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	before := exportOf(d)
	d.abandon()

	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	if got := exportOf(re); !reflect.DeepEqual(got, before) {
		t.Fatalf("pure WAL replay diverged:\n got=%+v\n want=%+v", got, before)
	}
	blob, err := re.GetInternal("models/u/a.model")
	if err != nil || !bytes.Equal(blob, []byte("alpha-v2")) {
		t.Fatalf("recovered model = %q, %v", blob, err)
	}
}

func TestCompactionPreservesStateAcrossReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(9000, 0))
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	d.PutInternal("models/u/a.model", []byte("alpha"))
	d.PutInternal("models/u/b.model", []byte("beta"))
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot land in the WAL suffix.
	clock.Advance(time.Hour)
	d.PutInternal("models/u/c.model", []byte("gamma"))
	if err := d.Delete("models/u/a.model"); err != nil {
		t.Fatal(err)
	}
	want := exportOf(d)
	d.abandon()

	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	if got := exportOf(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot+WAL replay diverged:\n got=%+v\n want=%+v", got, want)
	}
}

func TestCloseFlushesFinalSnapshot(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(9000, 0))
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	d.PutInternal("models/u/a.model", []byte("alpha"))
	want := exportOf(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Err after Close = %v", err)
	}
	d.PutInternal("models/u/late.model", []byte("x")) // must be refused, logged, latched

	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	if got := exportOf(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("state after Close+reopen diverged:\n got=%+v\n want=%+v", got, want)
	}
}

// TestDurableMatchesMemoryGolden is the golden equivalence test: a durable
// store and the plain in-memory store, driven through the public token API
// by one seeded random operation trace, must produce identical List and
// Get results — before and after a reopen.
func TestDurableMatchesMemoryGolden(t *testing.T) {
	t.Parallel()
	r := stats.NewRNG(1234)
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(40000, 0))
	mem := New([]byte("k"))
	mem.SetClock(clock.Now)
	dur := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: 5})

	paths := []string{
		EventPath("job-a", 0), EventPath("job-a", 1), EventPath("job-b", 0),
		ModelPath("u1", "sig-1"), ModelPath("u2", "sig-2"),
		ArtifactPath("art-1", "cache.json"), AppCachePath,
	}
	wtokMem := mem.Sign("", PermWrite, 90*24*time.Hour)
	wtokDur := dur.Sign("", PermWrite, 90*24*time.Hour)
	for i := 0; i < 300; i++ {
		clock.Advance(time.Duration(1+r.Intn(600)) * time.Second)
		p := paths[r.Intn(len(paths))]
		switch r.Intn(8) {
		case 0, 1, 2, 3:
			data := []byte(fmt.Sprintf("payload-%d-%d", i, r.Uint64()))
			if err := mem.Put(wtokMem, p, data); err != nil {
				t.Fatal(err)
			}
			if err := dur.Put(wtokDur, p, data); err != nil {
				t.Fatal(err)
			}
		case 4:
			mem.Delete(p)
			if err := dur.Delete(p); err != nil {
				t.Fatal(err)
			}
		case 5:
			ret := time.Duration(1+r.Intn(72)) * time.Hour
			nm, nd := mem.CleanupOlderThan(ret), dur.CleanupOlderThan(ret)
			if nm != nd {
				t.Fatalf("op %d: sweep reaped %d (mem) vs %d (durable)", i, nm, nd)
			}
		default:
			gm, em := mem.GetInternal(p)
			gd, ed := dur.GetInternal(p)
			if (em == nil) != (ed == nil) || !bytes.Equal(gm, gd) {
				t.Fatalf("op %d: Get(%s) diverged: (%q,%v) vs (%q,%v)", i, p, gm, em, gd, ed)
			}
		}
	}
	for _, prefix := range []string{"", "events/", "models/", "artifacts/"} {
		if m, d := mem.List(prefix), dur.List(prefix); !reflect.DeepEqual(m, d) {
			t.Fatalf("List(%q) diverged: %v vs %v", prefix, m, d)
		}
	}
	wantSameState(t, "golden trace", mem, dur)

	dur.abandon()
	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: 5})
	defer re.Close()
	wantSameState(t, "golden trace after reopen", mem, re)
}

// TestDurableOrphanSweep: a simulated failed two-phase ingest stages an
// event file but crashes before the index commit; the retention sweep
// reaps the orphan (and counts it), the reap is WAL-logged, and a reopen
// agrees — all on a fake clock.
func TestDurableOrphanSweep(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(70000, 0))
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	// Committed ingest: event file plus its index entry.
	d.PutInternal(EventPath("job-1", 0), []byte("committed"))
	d.PutInternal("index/u1/sig-a/job-1-000000", nil)
	// Failed two-phase ingest: the staged file never got an index entry.
	d.PutInternal(EventPath("job-1", 1), []byte("staged-then-crashed"))

	clock.Advance(2 * time.Hour) // past the orphan grace, inside retention
	if n := d.CleanupOlderThan(30 * 24 * time.Hour); n != 1 {
		t.Fatalf("sweep reaped %d; want exactly the orphan", n)
	}
	if _, err := d.GetInternal(EventPath("job-1", 1)); !errors.Is(err, ErrNotFound) {
		t.Fatal("orphaned event file should be gone")
	}
	if _, err := d.GetInternal(EventPath("job-1", 0)); err != nil {
		t.Fatal("indexed event file must survive the orphan sweep")
	}
	want := exportOf(d)
	d.abandon()
	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	if got := exportOf(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("orphan sweep not durable:\n got=%+v\n want=%+v", got, want)
	}
}

// TestSweepBatchesOneWALRecord: the retention sweep logs its whole batch as
// a single WAL record — one append + fsync under the store mutex no matter
// how many files expired — and that batch record replays correctly.
func TestSweepBatchesOneWALRecord(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := resilience.NewFakeClock(time.Unix(70000, 0))
	d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	const expired = 16
	for i := 0; i < expired; i++ {
		d.PutInternal(EventPath("job-1", i), []byte("old"))
	}
	clock.Advance(48 * time.Hour)
	d.PutInternal(EventPath("job-1", expired), []byte("fresh"))
	walLines := func() int {
		img, err := os.ReadFile(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Count(img, []byte("\n"))
	}
	before := walLines()
	if n := d.CleanupOlderThan(24 * time.Hour); n != expired {
		t.Fatalf("sweep reaped %d; want %d", n, expired)
	}
	if got := walLines(); got != before+1 {
		t.Fatalf("sweep appended %d WAL record(s); want exactly 1", got-before)
	}
	want := exportOf(d)
	d.abandon()
	re := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
	defer re.Close()
	if got := exportOf(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("batched sweep record did not replay:\n got=%+v\n want=%+v", got, want)
	}
	if _, err := re.GetInternal(EventPath("job-1", expired)); err != nil {
		t.Fatal("fresh event file must survive the sweep and its replay")
	}
}

// TestOpenFailsOnWALHeadGap: a log whose first record skips past the
// snapshot sequence has lost acknowledged history from its head — no crash
// produces that state. Opening must fail with ErrWALGap and leave the WAL
// bytes untouched for forensics, not truncate the evidence and serve as
// healthy.
func TestOpenFailsOnWALHeadGap(t *testing.T) {
	t.Parallel()
	t.Run("no-snapshot", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		line, err := encodeWALRecord(walRecord{Seq: 3, Op: opPut, Path: "models/u/a.model", Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFile), line, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err = OpenDurable(dir, []byte("k"), DurableOptions{NoSync: true})
		if !errors.Is(err, ErrWALGap) {
			t.Fatalf("open = %v; want ErrWALGap", err)
		}
		after, rerr := os.ReadFile(filepath.Join(dir, walFile))
		if rerr != nil || !bytes.Equal(after, line) {
			t.Fatalf("refusing to open must not modify the WAL (err=%v)", rerr)
		}
	})
	t.Run("after-snapshot", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		clock := resilience.NewFakeClock(time.Unix(70000, 0))
		d := mustOpen(t, dir, DurableOptions{Clock: clock, CompactEvery: -1})
		d.PutInternal("models/u/a.model", []byte("alpha")) // seq 1
		d.PutInternal("models/u/b.model", []byte("beta"))  // seq 2
		if err := d.Compact(); err != nil {                // snapshot covers seq 2
			t.Fatal(err)
		}
		d.abandon()
		// Simulate lost acknowledged records: the next record on disk claims
		// seq 4, skipping seq 3.
		line, err := encodeWALRecord(walRecord{Seq: 4, Op: opDel, Path: "models/u/a.model"})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFile), line, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDurable(dir, []byte("k"), DurableOptions{NoSync: true}); !errors.Is(err, ErrWALGap) {
			t.Fatalf("open = %v; want ErrWALGap", err)
		}
	})
}
